#!/usr/bin/env python3
"""End-to-end smoke gate for `fpart serve` over a Unix socket.

Usage: server_smoke.py <fpart-binary> [--transcript FILE]

Drives one full protocol session against a real server process:

1. generate a seeded 2000-node Rent netlist with `fpart gen`,
2. start `fpart serve --listen <socket>` and wait for readiness,
3. `load` the netlist into a session and assert the typed result,
4. run a deterministic `partition` (seed 1) and assert it completes,
5. apply an inline `eco` edit script and assert the repair result,
6. `query` the session and assert its request/assignment bookkeeping,
7. submit two byte-identical `partition` requests back-to-back and
   assert the duplicate coalesces onto the leader's in-flight run (its
   fanned-out reply is marked `"coalesced": true` and carries the
   identical result), then `query` again and assert the session counted
   one coalesced duplicate and a stable 128-bit graph fingerprint,
8. submit a long `partition` and `cancel` it mid-flight, asserting the
   cancel is acknowledged and the run's final reply is a verifiable
   cancelled/degraded outcome,
9. `shutdown`, assert the goodbye reply, and require a clean exit 0.

Every reply must be a well-formed JSON line naming the request id —
any parse failure, missing reply, or unexpected error code fails the
gate. The normalized exchange (volatile fields like `elapsed_ms`,
host paths, and the racy cancel outcome replaced with stable
placeholders; the racily-ordered cancel/final pair emitted in a fixed
order) is written to `--transcript` so CI can diff it against the
committed golden in `goldens/server_smoke.transcript`.
"""

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import time

SMOKE_NODES = 2000
SMOKE_TERMINALS = 120
LONG_RESTARTS = 32


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


class Client:
    """A paced JSON-Lines client: one request, then read until its
    final reply (interim events are collected, not skipped)."""

    def __init__(self, sock):
        self.reader = sock.makefile("r", encoding="utf-8", newline="\n")
        self.writer = sock.makefile("w", encoding="utf-8", newline="\n")

    def read_line(self):
        line = self.reader.readline()
        expect(line, "server closed the connection mid-session")
        try:
            return json.loads(line)
        except json.JSONDecodeError as err:
            fail(f"reply is not valid JSON ({err}): {line!r}")

    def send(self, doc):
        self.writer.write(json.dumps(doc) + "\n")
        self.writer.flush()

    def request(self, doc):
        """Sends one request and reads to its final reply; returns
        (final, interim_events)."""
        self.send(doc)
        events = []
        while True:
            reply = self.read_line()
            expect(reply.get("id") == doc["id"],
                   f"reply for {doc['id']!r} names id {reply.get('id')!r}: "
                   f"{reply}")
            if "ok" in reply:
                return reply, events
            expect("event" in reply,
                   f"interim reply carries neither ok nor event: {reply}")
            events.append(reply)


def normalize(doc, netlist_path):
    """Replaces volatile reply fields with stable placeholders."""
    if isinstance(doc, dict):
        out = {}
        for key, value in doc.items():
            if key == "elapsed_ms":
                out[key] = 0
            elif key == "path" and isinstance(value, str):
                out[key] = os.path.basename(value)
            else:
                out[key] = normalize(value, netlist_path)
        return out
    if isinstance(doc, list):
        return [normalize(v, netlist_path) for v in doc]
    return doc


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("binary", help="path to the fpart binary")
    parser.add_argument("--transcript", help="write the normalized exchange here")
    args = parser.parse_args()

    tmp = tempfile.mkdtemp(prefix="fpart-server-smoke-")
    netlist = os.path.join(tmp, "smoke.fhg")
    sock_path = os.path.join(tmp, "serve.sock")

    gen = subprocess.run(
        [args.binary, "gen", "rent", "--nodes", str(SMOKE_NODES),
         "--terminals", str(SMOKE_TERMINALS), "--seed", "5",
         "--output", netlist],
        capture_output=True, text=True)
    expect(gen.returncode == 0, f"fpart gen failed: {gen.stderr}")

    server = subprocess.Popen(
        [args.binary, "serve", "--listen", sock_path, "--threads", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        ready = server.stdout.readline()
        expect(ready.startswith("listening "),
               f"server did not announce readiness: {ready!r}")
        deadline = time.monotonic() + 10.0
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        while True:
            try:
                sock.connect(sock_path)
                break
            except (FileNotFoundError, ConnectionRefusedError):
                expect(time.monotonic() < deadline,
                       "socket never became connectable")
                time.sleep(0.02)
        client = Client(sock)
        transcript = []

        hello = client.read_line()
        expect(hello.get("event") == "hello" and "schema_version" in hello,
               f"first line must be the hello banner: {hello}")
        transcript.append(hello)

        load, _ = client.request({
            "id": "load", "cmd": "load", "session": "s", "path": netlist,
            "s_max": 40, "t_max": 24})
        expect(load.get("ok") is True, f"load failed: {load}")
        expect(load["result"]["nodes"] == SMOKE_NODES,
               f"load saw {load['result']['nodes']} nodes: {load}")
        transcript.append(load)

        run, _ = client.request({
            "id": "run", "cmd": "partition", "session": "s", "seed": 1})
        expect(run.get("ok") is True, f"partition failed: {run}")
        expect(run["result"]["completion"] == "complete",
               f"unbudgeted partition must complete: {run}")
        expect(run["result"]["devices"] >= 1, f"no devices: {run}")
        transcript.append(run)

        edits = ('{"op": "add_node", "name": "eco0", "size": 1}\n'
                 '{"op": "add_net", "name": "eco_net", "pins": ["eco0", "x0"]}')
        eco, _ = client.request({
            "id": "eco", "cmd": "eco", "session": "s", "edits": edits})
        expect(eco.get("ok") is True, f"eco failed: {eco}")
        expect(eco["result"]["nodes"] == SMOKE_NODES + 1,
               f"eco must grow the session netlist by one node: {eco}")
        transcript.append(eco)

        query, _ = client.request({"id": "query", "cmd": "query", "session": "s"})
        expect(query.get("ok") is True, f"query failed: {query}")
        expect(query["result"]["requests"] == 2,
               f"session must have served 2 runs: {query}")
        expect(query["result"]["has_assignment"] is True,
               f"session must hold the eco assignment: {query}")
        transcript.append(query)

        # Two byte-identical submits: the duplicate must coalesce onto
        # the leader's in-flight run — the server runs the search once
        # and fans the result out, marking the follower's reply. The
        # leader's search takes orders of magnitude longer than reading
        # the already-buffered duplicate line, so the join is reliable.
        dup = {"cmd": "partition", "session": "s", "seed": 3, "restarts": 2}
        client.send({"id": "d1", **dup})
        client.send({"id": "d2", **dup})
        dpair = {}
        while len(dpair) < 2:
            reply = client.read_line()
            expect("ok" in reply and reply.get("id") in ("d1", "d2"),
                   f"unexpected reply during the dedup exchange: {reply}")
            expect(reply["id"] not in dpair,
                   f"duplicate final reply for {reply['id']!r}")
            dpair[reply["id"]] = reply
        d1, d2 = dpair["d1"], dpair["d2"]
        expect(d1.get("ok") is True, f"leader run failed: {d1}")
        expect(d2.get("ok") is True, f"coalesced run failed: {d2}")
        expect("coalesced" not in d1["result"],
               f"the leader ran for real, not coalesced: {d1}")
        expect(d2["result"].get("coalesced") is True,
               f"the duplicate must be served from the leader's run: {d2}")
        for key in ("cut", "devices", "completion", "feasible"):
            expect(d1["result"].get(key) == d2["result"].get(key),
                   f"fanned-out {key} differs: {d1} vs {d2}")
        transcript.append(d1)
        transcript.append(d2)

        query2, _ = client.request({"id": "query2", "cmd": "query",
                                    "session": "s"})
        expect(query2.get("ok") is True, f"query2 failed: {query2}")
        counters = query2["result"]["counters"]
        expect(counters.get("server_coalesced") == 1,
               f"the session must have counted one coalesced duplicate: "
               f"{query2}")
        expect(query2["result"]["requests"] == 3,
               f"the coalesced duplicate must not count as a served run: "
               f"{query2}")
        fingerprint = query2["result"].get("fingerprint", "")
        expect(len(fingerprint) == 32
               and all(c in "0123456789abcdef" for c in fingerprint),
               f"query must render the 128-bit graph fingerprint: {query2}")
        transcript.append(query2)

        # Submit a long run and cancel it mid-flight. The final reply
        # for "big" and the inline reply for "kill" race on the wire,
        # so read both, then record them in a fixed order. Whether the
        # cancel landed before the run finished is timing-dependent;
        # both sides of the race are normalized, but they must agree.
        client.send({"id": "big", "cmd": "partition", "session": "s",
                     "restarts": LONG_RESTARTS, "seed": 2})
        client.send({"id": "kill", "cmd": "cancel", "target": "big"})
        pair = {}
        while len(pair) < 2:
            reply = client.read_line()
            expect("ok" in reply and reply.get("id") in ("big", "kill"),
                   f"unexpected reply during the cancel exchange: {reply}")
            expect(reply["id"] not in pair,
                   f"duplicate final reply for {reply['id']!r}")
            pair[reply["id"]] = reply
        kill, big = pair["kill"], pair["big"]
        expect(kill.get("ok") is True, f"cancel failed: {kill}")
        expect(kill["result"]["target"] == "big", f"wrong cancel target: {kill}")
        expect(big.get("ok") is True,
               f"a cancelled run still returns its best result: {big}")
        completion = big["result"]["completion"]
        if kill["result"]["cancelled"]:
            expect(completion in ("cancelled", "degraded"),
                   f"cancelled run must report cancelled/degraded: {big}")
        else:
            expect(completion == "complete",
                   f"a run that beat the cancel must be complete: {big}")
        expect(len(big["result"].get("assignment", [])) == 0
               or len(big["result"]["assignment"]) == SMOKE_NODES + 1,
               f"assignment length mismatch: {big}")
        kill["result"]["cancelled"] = "RACY"
        big["result"] = {"completion": "CANCELLED_OR_DEGRADED"}
        transcript.append(kill)
        transcript.append(big)

        bye, _ = client.request({"id": "bye", "cmd": "shutdown"})
        expect(bye.get("ok") is True, f"shutdown failed: {bye}")
        expect(bye["result"].get("shutdown") is True, f"no goodbye: {bye}")
        transcript.append(bye)

        tail = client.reader.readline()
        expect(tail == "", f"server wrote past the shutdown reply: {tail!r}")
        sock.close()

        code = server.wait(timeout=10)
        expect(code == 0,
               f"server exited {code}: {server.stderr.read()}")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()

    lines = [json.dumps(normalize(doc, netlist), sort_keys=True)
             for doc in transcript]
    text = "\n".join(lines) + "\n"
    if args.transcript:
        with open(args.transcript, "w") as f:
            f.write(text)
        print(f"server smoke: OK, transcript -> {args.transcript}")
    else:
        sys.stdout.write(text)
        print("server smoke: OK")


if __name__ == "__main__":
    main()
