#!/usr/bin/env python3
"""Quality-regression gate: compare a quality artifact against a golden.

Usage: check_quality.py <result.json> <golden.json> [--tolerance PCT]

Every row of the result (one per pinned circuit x method) is matched to
its golden row by (name, method) and compared on the lexicographic
quality key `(f, devices, d_k, T_SUM, d_k^E, cut)`:

* `feasible` must not regress (an infeasible result never passes when
  the golden was feasible);
* `devices` must not exceed the golden count (strict — a device-count
  regression is never noise, the runs are fully seeded);
* `infeasibility`, `terminal_sum`, `external_balance`, and `cut` may
  exceed the golden by at most --tolerance percent (default 5%).

The pinned runs are single-threaded and deterministic, so in practice a
passing run reproduces the golden exactly; the tolerance exists as
headroom for intentional algorithm changes, which should still update
the golden in the same commit. Improvements (better than golden) pass
with a note, as a reminder to refresh the golden.
"""

import argparse
import json
import sys


def rows_by_key(doc, path):
    assert "circuits" in doc, f"{path}: missing 'circuits'"
    out = {}
    for row in doc["circuits"]:
        out[(row["name"], row["method"])] = row
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("result", help="freshly produced quality JSON")
    parser.add_argument("golden", help="checked-in golden quality JSON")
    parser.add_argument("--tolerance", type=float, default=5.0,
                        help="allowed regression in percent (default 5)")
    args = parser.parse_args()

    with open(args.result) as f:
        result = json.load(f)
    with open(args.golden) as f:
        golden = json.load(f)

    got = rows_by_key(result, args.result)
    want = rows_by_key(golden, args.golden)
    missing = sorted(set(want) - set(got))
    assert not missing, f"result is missing golden rows: {missing}"

    slack = 1.0 + args.tolerance / 100.0
    failures = []
    improvements = []
    for key in sorted(want):
        g, r = want[key], got[key]
        label = f"{key[0]}/{key[1]}"
        if g["feasible"] and not r["feasible"]:
            failures.append(f"{label}: became infeasible")
            continue
        if r["devices"] > g["devices"]:
            failures.append(
                f"{label}: devices {r['devices']} > golden {g['devices']}")
        for field in ["infeasibility", "terminal_sum", "external_balance",
                      "cut"]:
            # Absolute epsilon so a zero golden tolerates float dust.
            limit = g[field] * slack + 1e-9
            if r[field] > limit:
                failures.append(
                    f"{label}: {field} {r[field]} > golden {g[field]} "
                    f"(+{args.tolerance}% = {limit:.4f})")
        if (r["devices"] < g["devices"]
                or r["cut"] < g["cut"] * (2.0 - slack) - 1e-9):
            improvements.append(label)

    for line in failures:
        print(f"REGRESSION: {line}", file=sys.stderr)
    if failures:
        sys.exit(1)
    if improvements:
        print("note: results improved on the golden for "
              + ", ".join(improvements)
              + " — consider refreshing goldens/quality_gate.json")
    print(f"quality gate OK: {len(want)} rows within {args.tolerance}% "
          "of the golden")


if __name__ == "__main__":
    main()
