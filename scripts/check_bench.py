#!/usr/bin/env python3
"""Validate a smoke-bench artifact against its documented schema.

Usage: check_bench.py <bench.json> [--schema-version N]
       check_bench.py --compare OLD.json NEW.json

The artifact must be valid JSON and carry every documented section with
the right key types, so a malformed bench emitter fails CI rather than
silently shipping an unusable artifact. When the `multilevel` section is
present it is also checked for the PR's performance claims: the n-level
V-cycle must be at least 2x faster than the flat driver on the 20k-node
Rent circuit without losing quality (`quality_not_worse`). When the
`eco` section is present, the incremental repair must be at least 2x
faster than a from-scratch multilevel run on the edited 20k-node
circuit, feasible, and quality-comparable (devices strict, scalars
within 5%). When the `intra_run` section is present, the single-run
multilevel thread sweep must report a bit-identical assignment at every
worker count, and — on machines with at least 4 cores, where the claim
is physically testable — a >= 1.5x speedup at 4 workers over 1.

Schema 7 adds the span profiler: `engine_counters` carries a `spans`
record list, the `profile` section must attribute >= 95% of the observed
20k-node multilevel run's wall time to phase self-time, the `memory`
section reports peak RSS (null off Linux) and bytes/pin, and the
metered-vs-unmetered overhead — now including span bookkeeping — must
stay <= 2%.

Schema 8 adds durability: the `durability` section compares the
checkpointed multilevel restart search against the identical search
without a writer on the 20k-node Rent circuit. The writer must actually
write (`checkpoint_writes >= 1`), resuming from a torn one-restart
prefix of the final snapshot must reproduce the uninterrupted baseline
exactly (`resume_bit_identical`), and the median checkpointing overhead
must stay <= 2%.

Schema 9 adds the partition server: the `server` section compares a
warm-session `partition` request (netlist already loaded, parse
skipped) against a cold one-shot CLI run of the identical
deadline-bounded search on the 20k-node circuit; the warm request must
cost at most half the cold one (`warm_over_cold <= 0.5`).

Schema 10 adds memoization: the `memo` section compares a cached re-run
of an identical multilevel restart request against the cold baseline on
the 20k-node circuit. The cached run must be >= 10x faster and
bit-identical, a fresh (never-hit) store must cost <= 1% over no store
at all, and a post-ECO request through the warm store must miss — its
result bit-identical to the memo-less run on the edited graph.

`--compare OLD.json NEW.json` is the trend gate: instead of validating
one artifact it diffs the machine-normalized speedup ratios two
artifacts share (`multilevel.speedup`, `eco.speedup`,
`intra_run.speedup_4_workers`) and fails when NEW regresses any of them
by more than 25% (new >= old * 0.75). Ratios are compared rather than
raw seconds so the gate holds across machines of different speeds;
sections absent from either artifact are skipped with a note.
"""

import argparse
import json
import sys


def require(obj, key, types, ctx):
    assert key in obj, f"{ctx}: missing key {key!r}"
    assert isinstance(obj[key], types), \
        f"{ctx}: {key!r} is {type(obj[key]).__name__}, expected {types}"
    return obj[key]


def check(path, schema_version):
    with open(path) as f:
        doc = json.load(f)
    ctx = path

    got = require(doc, "schema_version", int, ctx)
    assert got == schema_version, \
        f"{ctx}: schema_version {got}, expected {schema_version}"
    require(doc, "circuit", str, ctx)
    require(doc, "nodes", int, ctx)
    require(doc, "available_parallelism", int, ctx)

    for row in require(doc, "pass_throughput", list, ctx):
        for key, types in [("case", str), ("moves", int), ("passes", int),
                           ("seconds", (int, float)),
                           ("moves_per_sec", (int, float))]:
            require(row, key, types, "pass_throughput row")

    for row in require(doc, "key_eval_per_move", list, ctx):
        for key, types in [("blocks", int), ("moves", int),
                           ("move_only_ns", (int, float)),
                           ("incremental_ns", (int, float)),
                           ("from_scratch_ns", (int, float)),
                           ("loop_gain_pct", (int, float)),
                           ("eval_component_gain_pct", (int, float))]:
            require(row, key, types, "key_eval_per_move row")

    for row in require(doc, "thread_sweep", list, ctx):
        for key, types in [("threads", int),
                           ("bipartition_runs8_seconds", (int, float)),
                           ("restarts4_seconds", (int, float))]:
            require(row, key, types, "thread_sweep row")

    counters = require(require(doc, "engine_counters", dict, ctx),
                       "counters", dict, "engine_counters")
    for name in ["passes", "moves_applied", "moves_reverted",
                 "gain_bucket_pops", "stack_restarts", "key_evaluations",
                 "snapshots_materialized", "improve_calls", "iterations",
                 "bipartitions", "runs", "budget_stops", "faults_injected",
                 "failed_restarts", "coarsen_levels",
                 "boundary_refinements", "eco_edits_applied",
                 "eco_dirty_blocks", "eco_fallbacks", "pair_jobs",
                 "pair_panics"]:
        require(counters, name, int, "engine_counters.counters")
    assert counters["passes"] > 0, "a real bench run executes passes"
    require(doc["engine_counters"], "improve_time", dict, "engine_counters")
    if schema_version >= 7:
        require(doc["engine_counters"], "spans", list, "engine_counters")

    metering = require(doc, "metering", dict, ctx)
    for key in ["unmetered_seconds", "metered_seconds", "overhead_pct"]:
        require(metering, key, (int, float), "metering")
    if schema_version >= 7:
        # The span profiler rides on the metered path; the "zero overhead
        # when disabled / cheap when enabled" claim stays enforced.
        assert metering["overhead_pct"] <= 2.0, \
            (f"metered-vs-unmetered overhead must stay <= 2%, got "
             f"{metering['overhead_pct']}%")

    control = require(doc, "execution_control", dict, ctx)
    for key, types in [("budget_overhead_pct", (int, float)),
                       ("deadline_completion", str),
                       ("deadline_seconds", (int, float)),
                       ("deadline_budget_stops", int),
                       ("fault_completion", str),
                       ("fault_failed_restarts", int)]:
        require(control, key, types, "execution_control")
    assert control["deadline_completion"] == "deadline_expired", \
        "deadline run must report deadline_expired"
    assert control["fault_failed_restarts"] == 1, \
        "injected panic must be reported"

    if "multilevel" in doc:
        ml = require(doc, "multilevel", dict, ctx)
        for key, types in [("circuit", str), ("nodes", int),
                           ("flat_seconds", (int, float)),
                           ("multilevel_seconds", (int, float)),
                           ("speedup", (int, float)),
                           ("coarsen_levels", int),
                           ("flat", dict), ("nlevel", dict),
                           ("quality_not_worse", bool)]:
            require(ml, key, types, "multilevel")
        for side in ["flat", "nlevel"]:
            for key, types in [("feasible", bool), ("devices", int),
                               ("infeasibility", (int, float)),
                               ("terminal_sum", int),
                               ("external_balance", (int, float)),
                               ("cut", int)]:
                require(ml[side], key, types, f"multilevel.{side}")
        assert ml["nodes"] >= 20000, \
            "multilevel comparison must run on a 20k+-node circuit"
        assert ml["coarsen_levels"] >= 3, \
            f"n-level means a real hierarchy, got {ml['coarsen_levels']} levels"
        assert ml["speedup"] >= 2.0, \
            f"n-level must be >= 2x faster than flat, got {ml['speedup']}x"
        assert ml["quality_not_worse"], \
            "n-level must not lose quality for its speed"

    if "eco" in doc:
        eco = require(doc, "eco", dict, ctx)
        for key, types in [("circuit", str), ("nodes", int),
                           ("edits", int), ("churn", (int, float)),
                           ("repaired", bool), ("dirty_blocks", int),
                           ("repair_seconds", (int, float)),
                           ("scratch_seconds", (int, float)),
                           ("speedup", (int, float)),
                           ("eco_feasible", bool),
                           ("quality_comparable", bool),
                           ("repair", dict), ("scratch", dict)]:
            require(eco, key, types, "eco")
        for side in ["repair", "scratch"]:
            for key, types in [("feasible", bool), ("devices", int),
                               ("infeasibility", (int, float)),
                               ("terminal_sum", int),
                               ("external_balance", (int, float)),
                               ("cut", int)]:
                require(eco[side], key, types, f"eco.{side}")
        assert eco["nodes"] >= 20000, \
            "ECO comparison must run on a 20k+-node circuit"
        assert eco["repaired"], \
            "the benchmark edit is capacity-balanced; repair must stay local"
        assert eco["speedup"] >= 2.0, \
            f"ECO repair must be >= 2x faster than from-scratch, got {eco['speedup']}x"
        assert eco["eco_feasible"], "the ECO repair must be feasible"
        assert eco["quality_comparable"], \
            "ECO repair must stay quality-comparable to from-scratch"

    if "intra_run" in doc:
        intra = require(doc, "intra_run", dict, ctx)
        for key, types in [("circuit", str), ("nodes", int),
                           ("bit_identical", bool),
                           ("speedup_4_workers", (int, float)),
                           ("runs", list)]:
            require(intra, key, types, "intra_run")
        workers_seen = []
        for row in intra["runs"]:
            workers_seen.append(require(row, "workers", int, "intra_run row"))
            require(row, "seconds", (int, float), "intra_run row")
        assert workers_seen == [1, 2, 4], \
            f"intra_run must sweep 1/2/4 workers, got {workers_seen}"
        assert intra["nodes"] >= 20000, \
            "intra-run scaling must run on a 20k+-node circuit"
        assert intra["bit_identical"], \
            "intra-run parallelism must be bit-identical at every worker count"
        # The speedup claim is only physically testable with enough
        # cores: a 1-core container shows ~1.0x no matter how good the
        # parallel decomposition is. Determinism is gated everywhere.
        if doc["available_parallelism"] >= 4:
            assert intra["speedup_4_workers"] >= 1.5, \
                (f"4-worker intra-run speedup must be >= 1.5x on a 4+-core "
                 f"machine, got {intra['speedup_4_workers']}x")

    if schema_version >= 7:
        profile = require(doc, "profile", dict, ctx)
        for key, types in [("circuit", str),
                           ("wall_seconds", (int, float)),
                           ("attributed_self_seconds", (int, float)),
                           ("self_coverage_pct", (int, float)),
                           ("spans", list)]:
            require(profile, key, types, "profile")
        assert len(profile["spans"]) > 0, "profile must carry span records"
        for row in profile["spans"]:
            for key, types in [("kind", str), ("level", int),
                               ("count", int), ("total_ns", int),
                               ("self_ns", int)]:
                require(row, key, types, "profile span row")
            assert "parent" in row, "profile span row: missing key 'parent'"
        kinds = {row["kind"] for row in profile["spans"]}
        for kind in ["coarsen_level", "initial", "refine_level"]:
            assert kind in kinds, \
                f"profile of a multilevel run must record {kind!r} spans"
        assert profile["self_coverage_pct"] >= 95.0, \
            (f"phase self-times must attribute >= 95% of wall time, got "
             f"{profile['self_coverage_pct']}%")

        memory = require(doc, "memory", dict, ctx)
        require(memory, "largest_circuit", str, "memory")
        require(memory, "pins", int, "memory")
        assert "peak_rss_bytes" in memory, "memory: missing key 'peak_rss_bytes'"
        assert "bytes_per_pin" in memory, "memory: missing key 'bytes_per_pin'"
        peak = memory["peak_rss_bytes"]
        assert peak is None or isinstance(peak, int), \
            "memory: peak_rss_bytes must be int or null (non-Linux)"
        per_pin = memory["bytes_per_pin"]
        assert per_pin is None or isinstance(per_pin, (int, float)), \
            "memory: bytes_per_pin must be a number or null"
        assert (peak is None) == (per_pin is None), \
            "memory: bytes_per_pin must be present exactly when peak RSS is"
        if peak is not None:
            assert peak > 0, "memory: a real process has a nonzero peak RSS"

    if schema_version >= 8:
        dur = require(doc, "durability", dict, ctx)
        for key, types in [("circuit", str), ("nodes", int),
                           ("restarts", int),
                           ("baseline_seconds", (int, float)),
                           ("checkpointed_seconds", (int, float)),
                           ("overhead_pct", (int, float)),
                           ("checkpoint_writes", int),
                           ("resume_bit_identical", bool)]:
            require(dur, key, types, "durability")
        assert dur["nodes"] >= 20000, \
            "durability comparison must run on a 20k+-node circuit"
        assert dur["checkpoint_writes"] >= 1, \
            "the checkpointed run must put at least one snapshot on disk"
        assert dur["resume_bit_identical"], \
            "resuming a torn checkpoint must reproduce the baseline exactly"
        assert dur["overhead_pct"] <= 2.0, \
            (f"checkpointing overhead must stay <= 2%, got "
             f"{dur['overhead_pct']}%")

    if schema_version >= 9:
        server = require(doc, "server", dict, ctx)
        for key, types in [("circuit", str), ("nodes", int),
                           ("deadline_ms", int), ("cold_mode", str),
                           ("cold_seconds", (int, float)),
                           ("warm_seconds", (int, float)),
                           ("warm_over_cold", (int, float))]:
            require(server, key, types, "server")
        assert server["nodes"] >= 20000, \
            "server comparison must run on a 20k+-node circuit"
        assert server["cold_mode"] in ("cli", "in_process"), \
            f"server: unknown cold_mode {server['cold_mode']!r}"
        assert server["warm_over_cold"] <= 0.5, \
            (f"a warm session request must cost <= 0.5x a cold one-shot, "
             f"got {server['warm_over_cold']}x")

    if schema_version >= 10:
        memo = require(doc, "memo", dict, ctx)
        for key, types in [("circuit", str), ("nodes", int),
                           ("restarts", int),
                           ("cold_seconds", (int, float)),
                           ("cached_seconds", (int, float)),
                           ("cached_speedup", (int, float)),
                           ("bit_identical", bool),
                           ("cold_overhead_pct", (int, float)),
                           ("post_eco_cold_seconds", (int, float)),
                           ("post_eco_cached_seconds", (int, float)),
                           ("post_eco_bit_identical", bool),
                           ("solution_hits", int),
                           ("hierarchy_hits", int)]:
            require(memo, key, types, "memo")
        assert memo["nodes"] >= 20000, \
            "memo comparison must run on a 20k+-node circuit"
        assert memo["bit_identical"], \
            "cached runs must be bit-identical to the memo-less baseline"
        assert memo["cached_speedup"] >= 10.0, \
            (f"a warm store must answer the identical request >= 10x "
             f"faster, got {memo['cached_speedup']}x")
        assert memo["cold_overhead_pct"] <= 1.0, \
            (f"a never-hit store must cost <= 1% over no store, got "
             f"{memo['cold_overhead_pct']}%")
        assert memo["post_eco_bit_identical"], \
            "a post-ECO request must miss and match the memo-less result"
        assert memo["solution_hits"] >= 1, \
            "the cached re-runs must actually hit the solution memo"

    if "large_run" in doc:
        large = require(doc, "large_run", dict, ctx)
        for key, types in [("circuit", str), ("nodes", int),
                           ("deadline_seconds", (int, float)),
                           ("seconds", (int, float)), ("devices", int),
                           ("cut", int), ("feasible", bool),
                           ("completion", str)]:
            require(large, key, types, "large_run")
        assert large["nodes"] >= 200000, \
            "large run must use a 200k+-node circuit"
        assert large["seconds"] <= large["deadline_seconds"] * 1.5, \
            "large run must respect its wall-clock cap (50% grace for teardown)"

    print(f"{path} matches the schema")


# The speedup ratios two artifacts can be compared on: each is a
# machine-normalized "X times faster than the in-artifact baseline"
# scalar, so the trend gate holds across hosts of different speeds.
TREND_RATIOS = [
    ("multilevel", "speedup"),
    ("eco", "speedup"),
    ("intra_run", "speedup_4_workers"),
    ("memo", "cached_speedup"),
]


def compare(old_path, new_path, tolerance=0.25):
    with open(old_path) as f:
        old = json.load(f)
    with open(new_path) as f:
        new = json.load(f)
    failures = []
    for section, key in TREND_RATIOS:
        name = f"{section}.{key}"
        if section not in old or section not in new:
            print(f"{name}: skipped (section absent from "
                  f"{old_path if section not in old else new_path})")
            continue
        before = require(old[section], key, (int, float), f"{old_path}: {section}")
        after = require(new[section], key, (int, float), f"{new_path}: {section}")
        floor = before * (1.0 - tolerance)
        verdict = "ok" if after >= floor else "REGRESSED"
        print(f"{name}: {before:.2f} -> {after:.2f} "
              f"(floor {floor:.2f}) {verdict}")
        if after < floor:
            failures.append(
                f"{name} regressed more than {tolerance:.0%}: "
                f"{before:.2f} -> {after:.2f}")
    assert not failures, "; ".join(failures)
    print(f"{new_path} holds every trend ratio within "
          f"{tolerance:.0%} of {old_path}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", nargs="?", help="bench JSON artifact to validate")
    parser.add_argument("--schema-version", type=int, default=10,
                        help="expected schema_version (default 10)")
    parser.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                        help="trend mode: diff two artifacts' speedup "
                             "ratios, fail on a >25%% regression")
    args = parser.parse_args()
    try:
        if args.compare:
            if args.file is not None:
                parser.error("--compare takes exactly two artifacts; "
                             "drop the positional file")
            compare(*args.compare)
        else:
            if args.file is None:
                parser.error("a bench JSON artifact is required")
            check(args.file, args.schema_version)
    except AssertionError as err:
        print(f"FAIL: {err}", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
