#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, tests, smoke bench.
#
# Usage: scripts/ci.sh [--skip-bench]
#
# The workspace is fully offline (no crates.io dependencies), so this
# runs anywhere the Rust toolchain is installed.

set -euo pipefail
cd "$(dirname "$0")/.."

skip_bench=0
for arg in "$@"; do
    case "$arg" in
        --skip-bench) skip_bench=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo build --release"
cargo build --release --workspace

step "cargo test"
cargo test --workspace -q

if [ "$skip_bench" -eq 0 ]; then
    step "smoke bench -> BENCH_pr1.json"
    ./target/release/smoke BENCH_pr1.json
    # The file must be valid JSON.
    python3 -c "import json; json.load(open('BENCH_pr1.json'))"
    echo "BENCH_pr1.json is valid JSON"
fi

step "CI OK"
