#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, tests, smoke bench.
#
# Usage: scripts/ci.sh [--skip-bench]
#
# The workspace is fully offline (no crates.io dependencies), so this
# runs anywhere the Rust toolchain is installed.

set -euo pipefail
cd "$(dirname "$0")/.."

skip_bench=0
for arg in "$@"; do
    case "$arg" in
        --skip-bench) skip_bench=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo build --release"
cargo build --release --workspace

step "cargo test"
cargo test --workspace -q

if [ "$skip_bench" -eq 0 ]; then
    step "smoke bench -> BENCH_pr2.json"
    ./target/release/smoke BENCH_pr2.json
    # The file must be valid JSON *and* match the documented schema
    # (required keys with the right types), so a malformed bench emitter
    # fails CI rather than silently shipping an unusable artifact.
    python3 - <<'EOF'
import json

with open("BENCH_pr2.json") as f:
    doc = json.load(f)

def require(obj, key, types, ctx="BENCH_pr2.json"):
    assert key in obj, f"{ctx}: missing key {key!r}"
    assert isinstance(obj[key], types), \
        f"{ctx}: {key!r} is {type(obj[key]).__name__}, expected {types}"
    return obj[key]

assert require(doc, "schema_version", int) == 2, "unexpected schema_version"
require(doc, "circuit", str)
require(doc, "nodes", int)
require(doc, "available_parallelism", int)

for row in require(doc, "pass_throughput", list):
    for key, types in [("case", str), ("moves", int), ("passes", int),
                       ("seconds", (int, float)), ("moves_per_sec", (int, float))]:
        require(row, key, types, "pass_throughput row")

for row in require(doc, "key_eval_per_move", list):
    for key, types in [("blocks", int), ("moves", int), ("move_only_ns", (int, float)),
                       ("incremental_ns", (int, float)), ("from_scratch_ns", (int, float)),
                       ("loop_gain_pct", (int, float)), ("eval_component_gain_pct", (int, float))]:
        require(row, key, types, "key_eval_per_move row")

for row in require(doc, "thread_sweep", list):
    for key, types in [("threads", int), ("bipartition_runs8_seconds", (int, float)),
                       ("restarts4_seconds", (int, float))]:
        require(row, key, types, "thread_sweep row")

counters = require(require(doc, "engine_counters", dict), "counters", dict, "engine_counters")
for name in ["passes", "moves_applied", "moves_reverted", "gain_bucket_pops",
             "stack_restarts", "key_evaluations", "snapshots_materialized",
             "improve_calls", "iterations", "bipartitions", "runs"]:
    require(counters, name, int, "engine_counters.counters")
assert counters["passes"] > 0, "a real bench run executes passes"
require(doc["engine_counters"], "improve_time", dict, "engine_counters")

metering = require(doc, "metering", dict)
for key in ["unmetered_seconds", "metered_seconds", "overhead_pct"]:
    require(metering, key, (int, float), "metering")

print("BENCH_pr2.json matches the schema")
EOF
fi

step "CI OK"
