#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, tests, degradation
# smoke, smoke bench.
#
# Usage: scripts/ci.sh [--skip-bench]
#
# The workspace is fully offline (no crates.io dependencies), so this
# runs anywhere the Rust toolchain is installed.

set -euo pipefail
cd "$(dirname "$0")/.."

skip_bench=0
for arg in "$@"; do
    case "$arg" in
        --skip-bench) skip_bench=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo build --release"
cargo build --release --workspace

step "cargo test"
cargo test --workspace -q

step "degradation smoke (50 ms deadline on a large netlist)"
# A wall-clock budget must yield a *successful* run that says it was cut
# short: exit 0, a verifiable assignment, and `deadline_expired` in the
# metrics JSON. The hard timeout guards against the deadline never being
# checked (the exact failure mode this gate exists to catch).
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/fpart gen rent --nodes 20000 --terminals 600 --seed 42 \
    --output "$smoke_dir/large.fhg"
timeout 60 ./target/release/fpart partition "$smoke_dir/large.fhg" \
    --s-max 400 --t-max 120 --deadline-ms 50 \
    --output "$smoke_dir/assignment.txt" --metrics "$smoke_dir/metrics.json"
grep -q '"completion": "deadline_expired"' "$smoke_dir/metrics.json" \
    || { echo "metrics JSON does not report deadline_expired" >&2; exit 1; }
# The best-so-far assignment may be infeasible (that is the point of
# degradation) but must still be structurally verifiable output.
timeout 60 ./target/release/fpart verify "$smoke_dir/large.fhg" \
    "$smoke_dir/assignment.txt" --s-max 1000000000 --t-max 1000000000
# Malformed input exits 2 with a line-numbered message, no backtrace.
printf '3 4\n1 2\n' > "$smoke_dir/truncated.hgr"
set +e
err=$(./target/release/fpart stats "$smoke_dir/truncated.hgr" 2>&1)
code=$?
set -e
[ "$code" -eq 2 ] || { echo "malformed input should exit 2, got $code" >&2; exit 1; }
case "$err" in
    *"line "*) ;;
    *) echo "parse error lacks line context: $err" >&2; exit 1 ;;
esac
case "$err" in
    *RUST_BACKTRACE*) echo "parse error printed a backtrace: $err" >&2; exit 1 ;;
esac

if [ "$skip_bench" -eq 0 ]; then
    step "smoke bench -> BENCH_pr3.json"
    timeout 900 ./target/release/smoke BENCH_pr3.json
    # The file must be valid JSON *and* match the documented schema
    # (required keys with the right types), so a malformed bench emitter
    # fails CI rather than silently shipping an unusable artifact.
    python3 - <<'EOF'
import json

with open("BENCH_pr3.json") as f:
    doc = json.load(f)

def require(obj, key, types, ctx="BENCH_pr3.json"):
    assert key in obj, f"{ctx}: missing key {key!r}"
    assert isinstance(obj[key], types), \
        f"{ctx}: {key!r} is {type(obj[key]).__name__}, expected {types}"
    return obj[key]

assert require(doc, "schema_version", int) == 3, "unexpected schema_version"
require(doc, "circuit", str)
require(doc, "nodes", int)
require(doc, "available_parallelism", int)

for row in require(doc, "pass_throughput", list):
    for key, types in [("case", str), ("moves", int), ("passes", int),
                       ("seconds", (int, float)), ("moves_per_sec", (int, float))]:
        require(row, key, types, "pass_throughput row")

for row in require(doc, "key_eval_per_move", list):
    for key, types in [("blocks", int), ("moves", int), ("move_only_ns", (int, float)),
                       ("incremental_ns", (int, float)), ("from_scratch_ns", (int, float)),
                       ("loop_gain_pct", (int, float)), ("eval_component_gain_pct", (int, float))]:
        require(row, key, types, "key_eval_per_move row")

for row in require(doc, "thread_sweep", list):
    for key, types in [("threads", int), ("bipartition_runs8_seconds", (int, float)),
                       ("restarts4_seconds", (int, float))]:
        require(row, key, types, "thread_sweep row")

counters = require(require(doc, "engine_counters", dict), "counters", dict, "engine_counters")
for name in ["passes", "moves_applied", "moves_reverted", "gain_bucket_pops",
             "stack_restarts", "key_evaluations", "snapshots_materialized",
             "improve_calls", "iterations", "bipartitions", "runs",
             "budget_stops", "faults_injected", "failed_restarts"]:
    require(counters, name, int, "engine_counters.counters")
assert counters["passes"] > 0, "a real bench run executes passes"
require(doc["engine_counters"], "improve_time", dict, "engine_counters")

metering = require(doc, "metering", dict)
for key in ["unmetered_seconds", "metered_seconds", "overhead_pct"]:
    require(metering, key, (int, float), "metering")

control = require(doc, "execution_control", dict)
for key, types in [("budget_overhead_pct", (int, float)),
                   ("deadline_completion", str), ("deadline_seconds", (int, float)),
                   ("deadline_budget_stops", int), ("fault_completion", str),
                   ("fault_failed_restarts", int)]:
    require(control, key, types, "execution_control")
assert control["deadline_completion"] == "deadline_expired", \
    "deadline run must report deadline_expired"
assert control["fault_failed_restarts"] == 1, "injected panic must be reported"

print("BENCH_pr3.json matches the schema")
EOF
fi

step "CI OK"
