#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, tests, parser fuzz,
# degradation smoke, kill-resume durability gate, quality-regression
# gate, observability smoke, partition-server smoke, smoke bench.
#
# Usage: scripts/ci.sh [--skip-bench]
#
# The workspace is fully offline (no crates.io dependencies), so this
# runs anywhere the Rust toolchain is installed.
#
# FPART_THREADS_LIST overrides the worker counts the test suite runs
# under (default "1 4"); the hosted matrix sets it to a single value
# per leg so each thread count gets its own runner.

set -euo pipefail
cd "$(dirname "$0")/.."

skip_bench=0
for arg in "$@"; do
    case "$arg" in
        --skip-bench) skip_bench=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo build --release"
cargo build --release --workspace

fpart_threads_list=${FPART_THREADS_LIST:-"1 4"}
step "cargo test (thread matrix: FPART_THREADS in: $fpart_threads_list)"
# Every parallel stage (restart fan-out, multilevel matching, net
# projection, boundary pair refinement) is bit-identical at every
# thread count, and the worker-count defaults honour FPART_THREADS.
# Running the identical suite at 1 and 4 workers therefore proves the
# determinism contract on every test, not just the dedicated
# invariance proptests — a scheduling-dependent result fails one leg.
for fpart_threads in $fpart_threads_list; do
    echo "--- FPART_THREADS=$fpart_threads"
    FPART_THREADS=$fpart_threads cargo test --workspace -q
done

step "parser fuzz (20k seeded mutations x 7 targets)"
# Every parser (.fhg, hMETIS, BLIF, edit script, checkpoint, server
# protocol request lines) must return typed errors — never panic — on
# arbitrary input, and every edit script that *does* apply must leave
# the incremental fingerprint delta agreeing with a from-scratch
# rehash (checked here in release mode, where debug_asserts are off).
# The fuzzer is fully deterministic (workspace RNG, no external deps);
# a failure prints the exact replay command.
timeout 120 ./target/release/fuzz 20000 1

step "degradation smoke (50 ms deadline on a large netlist)"
# A wall-clock budget must yield a *successful* run that says it was cut
# short: exit 0, a verifiable assignment, and `deadline_expired` in the
# metrics JSON. The hard timeout guards against the deadline never being
# checked (the exact failure mode this gate exists to catch).
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/fpart gen rent --nodes 20000 --terminals 600 --seed 42 \
    --output "$smoke_dir/large.fhg"
timeout 60 ./target/release/fpart partition "$smoke_dir/large.fhg" \
    --s-max 400 --t-max 120 --deadline-ms 50 \
    --output "$smoke_dir/assignment.txt" --metrics "$smoke_dir/metrics.json"
grep -q '"completion": "deadline_expired"' "$smoke_dir/metrics.json" \
    || { echo "metrics JSON does not report deadline_expired" >&2; exit 1; }
# The best-so-far assignment may be infeasible (that is the point of
# degradation) but must still be structurally verifiable output.
timeout 60 ./target/release/fpart verify "$smoke_dir/large.fhg" \
    "$smoke_dir/assignment.txt" --s-max 1000000000 --t-max 1000000000
# Malformed input exits 2 with a line-numbered message, no backtrace.
printf '3 4\n1 2\n' > "$smoke_dir/truncated.hgr"
set +e
err=$(./target/release/fpart stats "$smoke_dir/truncated.hgr" 2>&1)
code=$?
set -e
[ "$code" -eq 2 ] || { echo "malformed input should exit 2, got $code" >&2; exit 1; }
case "$err" in
    *"line "*) ;;
    *) echo "parse error lacks line context: $err" >&2; exit 1 ;;
esac
case "$err" in
    *RUST_BACKTRACE*) echo "parse error printed a backtrace: $err" >&2; exit 1 ;;
esac

step "kill-resume durability gate (SIGKILL mid-run, resume, bit-identical)"
# The crash-safety contract end to end, against a real process: a
# checkpointed 6-restart multilevel run on the 20k-node circuit is
# SIGKILLed as soon as its first snapshot lands on disk; the snapshot
# must still parse (atomic temp-file + rename — a torn write would fail
# the resume), and resuming it must produce the *bit-identical*
# assignment, cut, and device count of an uninterrupted run.
timeout 120 ./target/release/fpart partition "$smoke_dir/large.fhg" \
    --s-max 400 --t-max 120 --multilevel --restarts 6 \
    --output "$smoke_dir/uninterrupted.txt" \
    --metrics "$smoke_dir/uninterrupted.json"
./target/release/fpart partition "$smoke_dir/large.fhg" \
    --s-max 400 --t-max 120 --multilevel --restarts 6 \
    --checkpoint "$smoke_dir/run.ckpt" --checkpoint-interval-ms 0 \
    --output "$smoke_dir/killed.txt" >/dev/null 2>&1 &
victim=$!
for _ in $(seq 1 1200); do
    [ -f "$smoke_dir/run.ckpt" ] && break
    sleep 0.05
done
[ -f "$smoke_dir/run.ckpt" ] \
    || { echo "no checkpoint appeared before the kill" >&2; exit 1; }
kill -9 "$victim" 2>/dev/null || true
set +e
wait "$victim" 2>/dev/null
set -e
timeout 120 ./target/release/fpart partition "$smoke_dir/large.fhg" \
    --s-max 400 --t-max 120 --multilevel --restarts 6 \
    --resume "$smoke_dir/run.ckpt" \
    --output "$smoke_dir/resumed.txt" --metrics "$smoke_dir/resumed.json"
cmp "$smoke_dir/uninterrupted.txt" "$smoke_dir/resumed.txt" \
    || { echo "resumed assignment differs from the uninterrupted run" >&2; exit 1; }
python3 - "$smoke_dir/uninterrupted.json" "$smoke_dir/resumed.json" <<'EOF'
import json, sys
ref = json.load(open(sys.argv[1]))
res = json.load(open(sys.argv[2]))
for key in ("cut", "device_count", "feasible"):
    assert ref["quality"][key] == res["quality"][key], \
        f"{key}: {ref['quality'][key]} != {res['quality'][key]}"
resumed = res["totals"]["counters"]["restarts_resumed"]
assert resumed >= 1, "the killed run must have banked at least one restart"
print(f"kill-resume gate: {resumed} restart(s) restored, result bit-identical")
EOF

step "quality-regression gate (pinned circuits vs goldens/quality_gate.json)"
# Three pinned, seeded circuits are partitioned with the flat driver and
# the n-level multilevel flow; the lexicographic quality key of every
# result must stay within scripts/check_quality.py's tolerance of the
# checked-in golden. The runs are deterministic, so a regression here is
# an algorithm change, not noise — intentional changes must refresh the
# golden in the same commit.
timeout 300 ./target/release/quality "$smoke_dir/quality.json"
python3 scripts/check_quality.py "$smoke_dir/quality.json" goldens/quality_gate.json

step "observability smoke (span profile + fpart report)"
# A profiled multilevel run must produce a loadable metrics document, a
# Chrome trace array, and an `fpart report` rendering whose phase tree
# names the multilevel phases — so the whole observability pipeline
# (instrument -> export -> render) is exercised end to end, not just in
# unit tests.
timeout 120 ./target/release/fpart partition "$smoke_dir/large.fhg" \
    --s-max 400 --t-max 120 --multilevel \
    --metrics "$smoke_dir/profile.json" \
    --trace-chrome "$smoke_dir/trace.chrome.json"
report=$(timeout 60 ./target/release/fpart report \
    --metrics "$smoke_dir/profile.json")
for needle in "phase tree" "self-time coverage" "coarsen_level" \
              "refine_level" "hot phases"; do
    case "$report" in
        *"$needle"*) ;;
        *) echo "fpart report output lacks '$needle'" >&2; exit 1 ;;
    esac
done
grep -q '"ph": "X"' "$smoke_dir/trace.chrome.json" \
    || { echo "chrome trace has no complete events" >&2; exit 1; }

step "partition server smoke (fpart serve over a Unix socket)"
# A scripted client drives one full protocol session against a real
# `fpart serve` process: load, a deterministic partition, an inline
# eco edit, a session query, a coalesced duplicate-request pair (the
# second byte-identical partition must be served from the leader's
# run and marked `"coalesced": true`), a cancelled long run, and a
# clean shutdown (exit 0). Every reply must be a typed JSON line; the
# normalized exchange must match the committed golden byte for byte,
# so a protocol drift is a reviewed diff, not a silent change.
timeout 120 python3 scripts/server_smoke.py ./target/release/fpart \
    --transcript "$smoke_dir/server.transcript"
diff goldens/server_smoke.transcript "$smoke_dir/server.transcript" \
    || { echo "server transcript drifted from the golden" >&2; exit 1; }

if [ "$skip_bench" -eq 0 ]; then
    step "smoke bench -> BENCH_pr10.json"
    timeout 900 ./target/release/smoke BENCH_pr10.json
    # The artifact must be valid JSON *and* match the documented schema
    # (required keys with the right types), its multilevel section must
    # hold the n-level performance claims (>= 2x over flat at equal or
    # better quality), its eco section must hold the incremental repair
    # claims (>= 2x over from-scratch at comparable quality), its
    # intra_run section must show a bit-identical thread sweep (plus a
    # >= 1.5x 4-worker speedup on 4+-core machines), its profile
    # section must attribute >= 95% of the multilevel run's wall time to
    # phase self-time with metering overhead <= 2%, its durability
    # section must show checkpointing costs <= 2% with a bit-identical
    # torn-checkpoint resume, its server section must show a warm
    # session request costing <= 0.5x a cold one-shot, and its memo
    # section must show warm-started restarts >= 10x faster than cold
    # with bit-identical results and a cold-path memo overhead <= 1%,
    # so a malformed or regressed bench fails CI rather than silently
    # shipping.
    python3 scripts/check_bench.py BENCH_pr10.json --schema-version 10

    step "bench trend gate (BENCH_pr10.json vs committed BENCH_pr9.json)"
    # The machine-normalized speedup ratios the two artifacts share
    # (multilevel, eco, intra-run scaling) may not regress by more than
    # 25% against the committed previous-PR baseline. Ratios — not raw
    # seconds — so the gate holds on runners of any speed.
    python3 scripts/check_bench.py --compare BENCH_pr9.json BENCH_pr10.json
fi

step "CI OK"
