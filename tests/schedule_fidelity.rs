//! Paper-fidelity tests of the §3.1 improvement schedule, checked
//! against recorded traces.

use fpart_core::{partition_traced, FpartConfig, ImproveKind, TraceEvent};
use fpart_device::Device;
use fpart_hypergraph::gen::{find_profile, synthesize_mcnc, Technology};

/// Collects `(iteration, kind)` pairs of all Improve events.
fn improve_kinds(trace: &fpart_core::Trace) -> Vec<(usize, ImproveKind)> {
    trace
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Improve { iteration, kind, .. } => Some((*iteration, *kind)),
            _ => None,
        })
        .collect()
}

/// Small-M circuit (s5378 on XC3020, M = 7 ≤ N_small = 15): every
/// iteration runs LastPair first, the all-block pass appears, and the
/// final pairwise sweep fires exactly at the iteration where k = M.
#[test]
fn small_m_schedule_follows_algorithm_1() {
    let profile = find_profile("s5378").expect("known circuit");
    let graph = synthesize_mcnc(profile, Technology::Xc3000);
    let constraints = Device::XC3020.constraints(0.9);
    let outcome =
        partition_traced(&graph, constraints, &FpartConfig::default(), true).expect("runs");
    let m = outcome.lower_bound;
    assert!(m <= 15, "premise: small-M circuit");

    let kinds = improve_kinds(&outcome.trace);
    assert!(!kinds.is_empty());

    // 1. The first Improve of every iteration is the last-pair pass.
    let mut seen_iterations = std::collections::HashSet::new();
    for &(iteration, kind) in &kinds {
        if seen_iterations.insert(iteration) {
            assert_eq!(
                kind,
                ImproveKind::LastPair,
                "iteration {iteration} must start with Improve(R_k, P_k)"
            );
        }
    }

    // 2. The all-block pass runs (M ≤ N_small) once three blocks exist.
    assert!(
        kinds.iter().any(|&(_, k)| k == ImproveKind::AllBlocks),
        "all-block pass missing for a small-M circuit"
    );

    // 3. The selected-block passes of §3.1 appear.
    for expected in [ImproveKind::MinSize, ImproveKind::MinIo, ImproveKind::MaxFree] {
        assert!(kinds.iter().any(|&(_, k)| k == expected), "{expected:?} pass missing");
    }

    // 4. The final pairwise sweep fires at iteration M only.
    let sweep_iterations: std::collections::HashSet<usize> =
        kinds.iter().filter(|&&(_, k)| k == ImproveKind::FinalSweep).map(|&(i, _)| i).collect();
    assert_eq!(
        sweep_iterations,
        std::collections::HashSet::from([m]),
        "final sweep must fire exactly at k = M"
    );
}

/// Large-M circuit (s13207 on XC3020, M = 16 > N_small): the all-block
/// pass and the final sweep are disabled; the remainder-vs-selected-block
/// passes still run.
#[test]
fn large_m_schedule_skips_all_block_pass() {
    let profile = find_profile("s13207").expect("known circuit");
    let graph = synthesize_mcnc(profile, Technology::Xc3000);
    let constraints = Device::XC3020.constraints(0.9);
    let outcome =
        partition_traced(&graph, constraints, &FpartConfig::default(), true).expect("runs");
    assert!(outcome.lower_bound > 15, "premise: large-M circuit");

    let kinds = improve_kinds(&outcome.trace);
    assert!(kinds.iter().all(|&(_, k)| k != ImproveKind::AllBlocks));
    assert!(kinds.iter().all(|&(_, k)| k != ImproveKind::FinalSweep));
    assert!(kinds.iter().any(|&(_, k)| k == ImproveKind::MinSize));
    assert!(kinds.iter().any(|&(_, k)| k == ImproveKind::MaxFree));
}

/// With the schedule ablated, only last-pair passes remain.
#[test]
fn ablated_schedule_runs_last_pair_only() {
    let profile = find_profile("c3540").expect("known circuit");
    let graph = synthesize_mcnc(profile, Technology::Xc3000);
    let constraints = Device::XC3020.constraints(0.9);
    let config = FpartConfig { use_improvement_schedule: false, ..FpartConfig::default() };
    let outcome = partition_traced(&graph, constraints, &config, true).expect("runs");
    let kinds = improve_kinds(&outcome.trace);
    assert!(!kinds.is_empty());
    assert!(kinds.iter().all(|&(_, k)| k == ImproveKind::LastPair));
}

/// Intermediate solutions stay semi-feasible (or feasible) — §3.5's
/// premise "only semi-feasible solutions are accepted as intermediate
/// solutions between the Algorithm 1 steps".
#[test]
fn intermediate_solutions_are_semi_feasible() {
    let profile = find_profile("s9234").expect("known circuit");
    let graph = synthesize_mcnc(profile, Technology::Xc3000);
    let constraints = Device::XC3020.constraints(0.9);
    let outcome =
        partition_traced(&graph, constraints, &FpartConfig::default(), true).expect("runs");
    for event in outcome.trace.events() {
        if let TraceEvent::Solution { iteration, class, .. } = event {
            assert_ne!(
                *class,
                fpart_core::FeasibilityClass::Infeasible,
                "iteration {iteration} ended infeasible"
            );
        }
    }
}
