//! Integration tests of the extension features: multilevel clustering,
//! replication, the classical FM facade, heterogeneous device fitting,
//! and the paper's §5 future-work options.

use fpart_baselines::replicate;
use fpart_core::config::GainObjective;
use fpart_core::fm::{bipartition_fm, FmConfig};
use fpart_core::{partition, FpartConfig, MultilevelConfig, QualityReport};
use fpart_device::fit::{default_price_list, fit_blocks};
use fpart_device::Device;
use fpart_hypergraph::coarsen::coarsen_by_connectivity;
use fpart_hypergraph::gen::{find_profile, synthesize_mcnc, Technology};

#[test]
fn multilevel_flow_is_feasible_on_mcnc() {
    let p = find_profile("s13207").expect("known circuit");
    let g = synthesize_mcnc(p, Technology::Xc3000);
    let constraints = Device::XC3020.constraints(0.9);
    let mut obs = fpart_core::Observer::new(fpart_core::Metrics::enabled(), None);
    let out = fpart_core::partition_multilevel_observed(
        &g,
        constraints,
        &FpartConfig::default(),
        &MultilevelConfig::default(),
        &mut obs,
    )
    .expect("runs");
    assert!(out.feasible);
    assert!(out.device_count >= out.lower_bound);
    let total: u64 = out.blocks.iter().map(|b| b.size).sum();
    assert_eq!(total, g.total_size());
    // A real n-level run: the hierarchy has depth and every level's
    // boundary refinement is accounted in the metrics registry.
    assert!(out.metrics.get(fpart_core::Counter::CoarsenLevels) >= 2);
    assert!(out.metrics.get(fpart_core::Counter::BoundaryRefinements) > 0);
}

#[test]
fn coarsening_then_fm_recovers_structure() {
    let p = find_profile("s9234").expect("known circuit");
    let g = synthesize_mcnc(p, Technology::Xc3000);
    let c = coarsen_by_connectivity(&g, 6, 3);
    assert!(c.coarse.node_count() < g.node_count());
    assert_eq!(c.coarse.total_size(), g.total_size());
    // FM on the coarse graph, projected back, is still a valid split.
    let coarse_split = bipartition_fm(&c.coarse, &FmConfig::default());
    let fine = c.project(&coarse_split.side);
    let state = fpart_core::PartitionState::from_assignment(&g, fine, 2);
    assert_eq!(state.block_size(0) + state.block_size(1), g.total_size());
    assert!(state.cut_count() > 0); // the circuit is connected
}

#[test]
fn replication_after_fpart_only_improves_io() {
    let p = find_profile("s5378").expect("known circuit");
    let g = synthesize_mcnc(p, Technology::Xc3000);
    let constraints = Device::XC3020.constraints(0.9);
    let out = partition(&g, constraints, &FpartConfig::default()).expect("runs");
    let rep = replicate(&g, &out.assignment, out.device_count, constraints);
    for b in 0..out.device_count {
        assert!(rep.terminals_after[b] <= rep.terminals_before[b], "block {b} got worse");
        assert!(rep.sizes_after[b] <= constraints.s_max, "block {b} over capacity");
    }
    // The reported pre-replication terminals agree with the outcome.
    for (b, block) in out.blocks.iter().enumerate() {
        assert_eq!(rep.terminals_before[b], block.terminals, "block {b}");
    }
}

#[test]
fn hetero_fitting_never_costs_more_than_homogeneous() {
    let p = find_profile("s15850").expect("known circuit");
    let g = synthesize_mcnc(p, Technology::Xc3000);
    let constraints = Device::XC3090.constraints(0.9);
    let out = partition(&g, constraints, &FpartConfig::default()).expect("runs");
    let list = default_price_list();
    let report = fit_blocks(&out.usages(), 0.9, &list).expect("all blocks fit something");
    let xc3090_price = list.iter().find(|d| d.device == Device::XC3090).expect("catalog").price;
    assert!(report.total_price <= xc3090_price * out.device_count as f64 + 1e-9);
    assert_eq!(report.per_block.len(), out.device_count);
}

#[test]
fn in_flow_hetero_is_cheapest_of_the_three_strategies() {
    let p = find_profile("s13207").expect("known circuit");
    let g = synthesize_mcnc(p, Technology::Xc3000);
    let list = default_price_list();
    let hetero =
        fpart_core::partition_hetero(&g, &list, 0.9, &FpartConfig::default()).expect("runs");
    assert!(hetero.feasible);
    // Sizes conserve across the heterogeneous assignment.
    let total: u64 = hetero.usages.iter().map(|u| u.size).sum();
    assert_eq!(total, g.total_size());
    // In-flow never costs more than homogeneous-XC3090 + refit.
    let homogeneous =
        partition(&g, Device::XC3090.constraints(0.9), &FpartConfig::default()).expect("runs");
    let refit = fit_blocks(&homogeneous.usages(), 0.9, &list).expect("fits");
    assert!(
        hetero.total_price <= refit.total_price + 1e-9,
        "in-flow {} vs refit {}",
        hetero.total_price,
        refit.total_price
    );
}

#[test]
fn future_work_configs_produce_valid_partitions() {
    let p = find_profile("s9234").expect("known circuit");
    let g = synthesize_mcnc(p, Technology::Xc3000);
    let constraints = Device::XC3020.constraints(0.9);
    for config in [
        FpartConfig { gain_objective: GainObjective::IoPins, ..FpartConfig::default() },
        FpartConfig { early_stop_patience: Some(16), ..FpartConfig::default() },
    ] {
        let out = partition(&g, constraints, &config).expect("runs");
        assert!(out.feasible);
        let total: u64 = out.blocks.iter().map(|b| b.size).sum();
        assert_eq!(total, g.total_size());
        assert!(out.device_count <= 2 * out.lower_bound);
    }
}

#[test]
fn quality_report_reflects_outcome() {
    let p = find_profile("c3540").expect("known circuit");
    let g = synthesize_mcnc(p, Technology::Xc3000);
    let constraints = Device::XC3020.constraints(0.9);
    let out = partition(&g, constraints, &FpartConfig::default()).expect("runs");
    let report = QualityReport::new(&out, constraints);
    assert_eq!(report.device_count, out.device_count);
    assert_eq!(report.cut, out.cut);
    assert!(report.mean_fill > 0.5, "mean fill {}", report.mean_fill);
    assert!(report.to_string().contains("devices:"));
}

#[test]
fn fm_facade_bipartitions_mcnc_circuit() {
    let p = find_profile("c3540").expect("known circuit");
    let g = synthesize_mcnc(p, Technology::Xc3000);
    let result = bipartition_fm(&g, &FmConfig::default());
    assert!(result.balance() > 0.38, "balance {}", result.balance());
    // The cut should be far below the net count on a Rent-structured
    // circuit (a random split would cut a large fraction).
    assert!(result.cut * 4 < g.net_count(), "cut {} of {} nets", result.cut, g.net_count());
}
