//! Golden-workload determinism tests.
//!
//! Every experiment in EXPERIMENTS.md depends on the synthetic MCNC
//! workloads being *bit-identical* across runs and refactors — the Rent
//! calibration (DESIGN.md) is tied to these exact netlists. These tests
//! pin a structural fingerprint of each workload; if a generator change
//! alters them, the calibration and the recorded results must be redone,
//! and this failing test is the reminder.

use fpart_hypergraph::gen::{mcnc_profiles, synthesize_mcnc, Technology};
use fpart_hypergraph::Hypergraph;

/// FNV-1a over the full net/pin/terminal structure.
fn fingerprint(graph: &Hypergraph) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |value: u64| {
        for byte in value.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(graph.node_count() as u64);
    mix(graph.net_count() as u64);
    mix(graph.terminal_count() as u64);
    for net in graph.net_ids() {
        mix(graph.pins(net).len() as u64);
        for &pin in graph.pins(net) {
            mix(pin.index() as u64);
        }
    }
    for t in graph.terminal_ids() {
        mix(graph.terminal_net(t).index() as u64);
    }
    h
}

#[test]
fn workload_fingerprints_are_stable_within_a_run() {
    for profile in mcnc_profiles().iter().take(4) {
        let a = fingerprint(&synthesize_mcnc(profile, Technology::Xc3000));
        let b = fingerprint(&synthesize_mcnc(profile, Technology::Xc3000));
        assert_eq!(a, b, "{} is not deterministic", profile.name);
    }
}

/// The pinned fingerprints of all ten XC3000-mapped workloads. If this
/// test fails after an intentional generator change, re-run the full
/// calibration (see DESIGN.md), update EXPERIMENTS.md, and re-pin.
#[test]
fn xc3000_workload_fingerprints_are_pinned() {
    let measured: Vec<(String, u64)> = mcnc_profiles()
        .iter()
        .map(|p| {
            let g = synthesize_mcnc(p, Technology::Xc3000);
            (p.name.to_owned(), fingerprint(&g))
        })
        .collect();
    // To re-pin after an intentional change, print `measured` and paste.
    let pinned: Vec<(String, u64)> =
        PINNED_XC3000.iter().map(|(n, f)| ((*n).to_owned(), *f)).collect();
    assert_eq!(
        measured, pinned,
        "workload fingerprints changed — recalibrate and re-pin (see test docs)"
    );
}

/// Pinned on the calibration used by EXPERIMENTS.md. Re-pinned when the
/// generators moved from the external `rand` crate to the in-tree
/// xoshiro256** module (`fpart_hypergraph::rng`), which changed the
/// underlying streams once.
const PINNED_XC3000: [(&str, u64); 10] = [
    ("c3540", 0x0e1c812101ff9f7b),
    ("c5315", 0x12a656699116c0ec),
    ("c6288", 0xcf1155a2344641a2),
    ("c7552", 0x461b232e43435e74),
    ("s5378", 0x95ad7c572e567ef3),
    ("s9234", 0xfb79119a0bc85e20),
    ("s13207", 0x5991dda05f884d10),
    ("s15850", 0x78646ce7a3efb2fa),
    ("s38417", 0x7194927b51eac60c),
    ("s38584", 0x67b5f986566263a0),
];
