//! Adversarial and degenerate-input tests: the shapes that break naive
//! partitioners — giant nets, stars, disconnected components, heavy
//! cells, I/O-impossible circuits.

use fpart_core::{partition, FpartConfig, PartitionError};
use fpart_device::DeviceConstraints;
use fpart_hypergraph::{Hypergraph, HypergraphBuilder, NodeId};

/// One net containing every cell: always cut once split, exposed to
/// every block.
#[test]
fn single_giant_net() {
    let mut b = HypergraphBuilder::new();
    let nodes: Vec<NodeId> = (0..60).map(|i| b.add_node(format!("n{i}"), 1)).collect();
    b.add_net("giant", nodes).unwrap();
    let g = b.finish().unwrap();
    let constraints = DeviceConstraints::new(20, 10);
    let outcome = partition(&g, constraints, &FpartConfig::default()).expect("runs");
    assert!(outcome.feasible);
    assert!(outcome.device_count >= 3);
    // The giant net is exposed to every block.
    for block in &outcome.blocks {
        assert!(block.terminals >= 1);
    }
}

/// A star: one hub on 50 two-pin nets. The hub's block pays one IOB per
/// spoke net that leaves it.
#[test]
fn star_topology() {
    let mut b = HypergraphBuilder::new();
    let hub = b.add_node("hub", 1);
    for i in 0..50 {
        let leaf = b.add_node(format!("leaf{i}"), 1);
        b.add_net(format!("spoke{i}"), [hub, leaf]).unwrap();
    }
    let g = b.finish().unwrap();
    let constraints = DeviceConstraints::new(30, 25);
    let outcome = partition(&g, constraints, &FpartConfig::default()).expect("runs");
    assert!(outcome.feasible, "blocks: {:?}", outcome.blocks);
    // With 25 IOBs per device, the hub's block keeps ≥ 25 leaves local.
    let hub_block = outcome.assignment[hub.index()];
    let hub_block_report = &outcome.blocks[hub_block as usize];
    assert!(hub_block_report.size >= 25);
}

/// Many disconnected components (no net crosses them): bin-packing-like.
#[test]
fn disconnected_components() {
    let mut b = HypergraphBuilder::new();
    for c in 0..12 {
        let nodes: Vec<NodeId> = (0..5).map(|i| b.add_node(format!("c{c}n{i}"), 1)).collect();
        for w in nodes.windows(2) {
            b.add_net(format!("c{c}e{}", w[0]), [w[0], w[1]]).unwrap();
        }
    }
    let g = b.finish().unwrap();
    let constraints = DeviceConstraints::new(15, 10);
    let outcome = partition(&g, constraints, &FpartConfig::default()).expect("runs");
    assert!(outcome.feasible);
    // 60 cells / 15 per device → at least 4; components are free to pack.
    assert!(outcome.device_count >= 4);
    assert!(outcome.device_count <= 8, "used {}", outcome.device_count);
    // No component needs to be cut: cut can be zero (components fit).
    assert!(outcome.cut <= 12);
}

/// Wildly heterogeneous cell sizes: two near-device-sized cells plus
/// dust. Exercises packing around immovable boulders.
#[test]
fn boulders_and_dust() {
    let mut b = HypergraphBuilder::new();
    let big1 = b.add_node("big1", 50);
    let big2 = b.add_node("big2", 50);
    let mut prev = big1;
    for i in 0..40 {
        let dust = b.add_node(format!("d{i}"), 1);
        b.add_net(format!("e{i}"), [prev, dust]).unwrap();
        prev = dust;
    }
    b.add_net("bridge", [prev, big2]).unwrap();
    let g = b.finish().unwrap();
    let constraints = DeviceConstraints::new(57, 64);
    let outcome = partition(&g, constraints, &FpartConfig::default()).expect("runs");
    assert!(outcome.feasible);
    // The boulders can never share a device (50 + 50 > 57).
    let b1 = outcome.assignment[big1.index()];
    let b2 = outcome.assignment[big2.index()];
    assert_ne!(b1, b2);
}

/// A circuit whose terminals alone exceed any achievable block count:
/// every cell drives a terminal net and T_MAX is 1.
#[test]
fn io_impossible_circuit_fails_gracefully() {
    let mut b = HypergraphBuilder::new();
    let nodes: Vec<NodeId> = (0..8).map(|i| b.add_node(format!("n{i}"), 1)).collect();
    for w in nodes.windows(2) {
        b.add_net(format!("e{}", w[0]), [w[0], w[1]]).unwrap();
    }
    // Every cell also has a terminal net.
    for (i, &n) in nodes.iter().enumerate() {
        let net = b.add_net(format!("t{i}"), [n]).unwrap();
        b.add_terminal(format!("pad{i}"), net).unwrap();
    }
    let g = b.finish().unwrap();
    // One IOB per device but each cell needs one for its pad plus any
    // cut nets — a single-cell block costs ≥ 1 (pad) + crossing chain
    // nets, so feasibility is impossible.
    let constraints = DeviceConstraints::new(4, 1);
    match partition(&g, constraints, &FpartConfig::default()) {
        Err(PartitionError::IterationLimit { .. }) => {}
        Ok(outcome) => assert!(!outcome.feasible, "cannot be feasible"),
        Err(e) => panic!("unexpected error: {e}"),
    }
}

/// Nets with duplicate structure (parallel nets between the same pins)
/// are each counted separately in gains and IOBs.
#[test]
fn parallel_nets() {
    let mut b = HypergraphBuilder::new();
    let x = b.add_node("x", 1);
    let y = b.add_node("y", 1);
    for i in 0..5 {
        b.add_net(format!("p{i}"), [x, y]).unwrap();
    }
    let g = b.finish().unwrap();
    let state = fpart_core::PartitionState::from_assignment(&g, vec![0, 1], 2);
    assert_eq!(state.cut_count(), 5);
    assert_eq!(state.block_terminals(0), 5);
    // Merging removes all five at once.
    let constraints = DeviceConstraints::new(2, 10);
    let outcome = partition(&g, constraints, &FpartConfig::default()).expect("runs");
    assert_eq!(outcome.device_count, 1);
    assert_eq!(outcome.cut, 0);
}

/// Zero-terminal circuit: the I/O machinery must not divide by zero or
/// misbehave when `|Y₀| = 0` (external balance is undefined).
#[test]
fn no_terminals_at_all() {
    let mut b = HypergraphBuilder::new();
    let nodes: Vec<NodeId> = (0..30).map(|i| b.add_node(format!("n{i}"), 1)).collect();
    for w in nodes.windows(2) {
        b.add_net(format!("e{}", w[0]), [w[0], w[1]]).unwrap();
    }
    let g = b.finish().unwrap();
    let constraints = DeviceConstraints::new(10, 5);
    let outcome = partition(&g, constraints, &FpartConfig::default()).expect("runs");
    assert!(outcome.feasible);
    assert_eq!(outcome.device_count, 3);
}

/// The same circuit under ever-tighter terminal budgets: device counts
/// must be monotone (non-decreasing) as T_MAX shrinks.
#[test]
fn tighter_io_budgets_never_help() {
    let g = chain_with_terminals(80, 20);
    let mut last = 0usize;
    for t_max in [64usize, 16, 8, 4] {
        let constraints = DeviceConstraints::new(30, t_max);
        let Ok(outcome) = partition(&g, constraints, &FpartConfig::default()) else {
            continue; // tightest budgets may be infeasible — fine
        };
        if !outcome.feasible {
            continue;
        }
        assert!(
            outcome.device_count >= last,
            "t_max {t_max}: {} devices after {last}",
            outcome.device_count
        );
        last = outcome.device_count;
    }
}

fn chain_with_terminals(n: usize, terminals: usize) -> Hypergraph {
    let mut b = HypergraphBuilder::new();
    let nodes: Vec<NodeId> = (0..n).map(|i| b.add_node(format!("n{i}"), 1)).collect();
    let mut nets = Vec::new();
    for w in nodes.windows(2) {
        nets.push(b.add_net(format!("e{}", w[0]), [w[0], w[1]]).unwrap());
    }
    for t in 0..terminals {
        let net = nets[t * nets.len() / terminals];
        b.add_terminal(format!("pad{t}"), net).unwrap();
    }
    b.finish().unwrap()
}
