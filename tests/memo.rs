//! Memoization determinism contracts (PR 10 acceptance gates).
//!
//! The memo subsystem's one non-negotiable rule: wiring a
//! [`MemoStore`] into a run may change *wall time*, never *results*.
//! These tests pin that from the outside:
//!
//! * proptest (c): runs with a memo store — first (populating) and
//!   second (fully warm) — are bit-identical to the memo-less run at
//!   1 and 4 threads;
//! * gate (d): on the pinned quality-gate circuits (the same three
//!   `quality` bench circuits `ci.sh` holds against
//!   `goldens/quality_gate.json`), warm-started restarts verify
//!   cleanly and never degrade the quality of the cold result.

use fpart_core::{
    partition_multilevel_restarts, verify_assignment, FpartConfig, MemoStore, MultilevelConfig,
    PartitionOutcome,
};
use fpart_device::DeviceConstraints;
use fpart_hypergraph::gen::{
    clustered_circuit, layered_circuit, rent_circuit, window_circuit, ClusteredConfig,
    LayeredConfig, RentConfig, WindowConfig,
};
use fpart_hypergraph::Hypergraph;

use proptest::prelude::*;

fn assert_bit_identical(cold: &PartitionOutcome, warm: &PartitionOutcome, what: &str) {
    assert_eq!(cold.assignment, warm.assignment, "{what}: assignment");
    assert_eq!(cold.device_count, warm.device_count, "{what}: device count");
    assert_eq!(cold.cut, warm.cut, "{what}: cut");
    assert_eq!(cold.feasible, warm.feasible, "{what}: feasibility");
    assert_eq!(cold.completion, warm.completion, "{what}: completion");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Acceptance gate (c): cached runs are bit-identical to uncached
    /// runs at 1 and 4 threads — on the populating pass and on the
    /// fully warm pass.
    #[test]
    fn cached_runs_are_bit_identical_to_uncached(
        nodes in 80usize..200,
        seed in 0u64..300,
        restarts in 1usize..4,
    ) {
        let graph = window_circuit(&WindowConfig::new("memoprop", nodes, 8), 13);
        let constraints = DeviceConstraints::new(40, 24);
        let cfg = FpartConfig { seed, ..FpartConfig::default() };
        let cold = partition_multilevel_restarts(
            &graph,
            constraints,
            &cfg,
            &MultilevelConfig::default(),
            restarts,
            1,
        )
        .unwrap();

        let store = MemoStore::shared();
        for threads in [1usize, 4] {
            let ml = MultilevelConfig {
                memo: Some(store.clone()),
                ..MultilevelConfig::default()
            };
            for pass in ["populating", "warm"] {
                let warm = partition_multilevel_restarts(
                    &graph, constraints, &cfg, &ml, restarts, threads,
                )
                .unwrap();
                assert_bit_identical(
                    &cold,
                    &warm,
                    &format!("{pass} pass at {threads} thread(s)"),
                );
            }
        }
        // The store really was consulted: by the final pass every
        // restart key has been both missed (pass 1) and hit (pass 2+).
        let stats = store.stats();
        prop_assert!(
            stats.solution_hits >= restarts as u64,
            "warm passes should hit the solution memo: {stats:?}"
        );
        // A solution-memo hit short-circuits before coarsening, so only
        // the populating pass consults the hierarchy cache — but it must
        // have done so at least once.
        prop_assert!(
            stats.hierarchy_hits + stats.hierarchy_misses >= 1,
            "hierarchy cache never consulted: {stats:?}"
        );
    }
}

/// The pinned quality-gate circuits of the `quality` bench /
/// `goldens/quality_gate.json` (same generators, seeds, and devices).
fn quality_gate_circuits() -> Vec<(Hypergraph, DeviceConstraints)> {
    vec![
        (rent_circuit(&RentConfig::new("rent", 4000, 200), 11), DeviceConstraints::new(400, 120)),
        (
            layered_circuit(&LayeredConfig::new("layered", 40, 80), 7),
            DeviceConstraints::new(500, 150),
        ),
        (
            clustered_circuit(&ClusteredConfig::new("clustered", 12, 260), 3).0,
            DeviceConstraints::new(450, 130),
        ),
    ]
}

/// Acceptance gate (d): warm-started restarts never verify-fail or
/// degrade quality vs cold on the pinned quality-gate circuits.
/// (Determinism makes "never degrade" exact equality; the extra
/// information here is that the warm path really ran — the memo hit
/// counters prove it — and that its output verifies structurally.)
#[test]
fn warm_started_restarts_never_degrade_on_quality_gate_circuits() {
    let restarts = 2;
    for (graph, constraints) in quality_gate_circuits() {
        let cfg = FpartConfig::default();
        let cold = partition_multilevel_restarts(
            &graph,
            constraints,
            &cfg,
            &MultilevelConfig::default(),
            restarts,
            2,
        )
        .unwrap();

        let store = MemoStore::shared();
        let ml = MultilevelConfig { memo: Some(store.clone()), ..MultilevelConfig::default() };
        let populate =
            partition_multilevel_restarts(&graph, constraints, &cfg, &ml, restarts, 2).unwrap();
        let warm =
            partition_multilevel_restarts(&graph, constraints, &cfg, &ml, restarts, 2).unwrap();

        let name = graph.name().to_owned();
        assert_bit_identical(&cold, &populate, &format!("{name}: populating run"));
        assert_bit_identical(&cold, &warm, &format!("{name}: warm run"));

        // Quality must not degrade (equality is the strongest form).
        assert!(
            warm.feasible == cold.feasible
                && warm.device_count <= cold.device_count
                && warm.cut <= cold.cut,
            "{name}: warm start degraded quality"
        );

        // The warm run's winner still verifies against the live graph.
        let verification =
            verify_assignment(&graph, &warm.assignment, warm.blocks.len(), constraints);
        assert!(
            verification.violations.is_empty(),
            "{name}: warm-started winner must verify: {:?}",
            verification.violations
        );

        // And the warm path genuinely replayed memoized restarts
        // rather than silently falling back cold every time.
        let stats = store.stats();
        assert!(
            stats.solution_hits >= restarts as u64,
            "{name}: warm run never hit the solution memo: {stats:?}"
        );
    }
}
