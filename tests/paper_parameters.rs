//! Paper-fidelity checks: the fixed parameter values of §4 and the exact
//! reproducibility of every `M` column in Tables 2–5.

use fpart_core::FpartConfig;
use fpart_device::{lower_bound, Device};
use fpart_hypergraph::gen::{find_profile, mcnc_profiles, synthesize_mcnc, Technology};

/// §4: "All the results of the FPART algorithm were obtained with the
/// following fixed values of the parameters…"
#[test]
fn default_config_is_the_papers_parameterization() {
    let c = FpartConfig::default();
    assert_eq!(c.sigma1, 0.5);
    assert_eq!(c.sigma2, 0.5);
    assert_eq!(c.n_small, 15);
    assert_eq!(c.lambda_s, 0.4);
    assert_eq!(c.lambda_t, 0.6);
    assert_eq!(c.lambda_r, 0.1);
    assert_eq!(c.eps_max, 1.05);
    assert_eq!(c.eps_min_multi, 0.3);
    assert_eq!(c.eps_min_two, 0.95);
    assert_eq!(c.stack_depth, 4);
    assert_eq!(c.gain_levels, 2);
}

/// The M column of Table 2 (XC3020, δ = 0.9), all ten circuits.
#[test]
fn table2_lower_bounds_exact() {
    let expected = [5, 7, 15, 9, 7, 8, 16, 15, 39, 51];
    let constraints = Device::XC3020.constraints(0.9);
    for (profile, m) in mcnc_profiles().iter().zip(expected) {
        let graph = synthesize_mcnc(profile, Technology::Xc3000);
        assert_eq!(lower_bound(&graph, constraints), m, "{}", profile.name);
    }
}

/// The M column of Table 3 (XC3042, δ = 0.9).
#[test]
fn table3_lower_bounds_exact() {
    let expected = [3, 4, 7, 4, 3, 4, 8, 7, 18, 23];
    let constraints = Device::XC3042.constraints(0.9);
    for (profile, m) in mcnc_profiles().iter().zip(expected) {
        let graph = synthesize_mcnc(profile, Technology::Xc3000);
        assert_eq!(lower_bound(&graph, constraints), m, "{}", profile.name);
    }
}

/// The M column of Table 4 (XC3090, δ = 0.9).
#[test]
fn table4_lower_bounds_exact() {
    let expected = [1, 3, 3, 3, 2, 2, 4, 3, 8, 11];
    let constraints = Device::XC3090.constraints(0.9);
    for (profile, m) in mcnc_profiles().iter().zip(expected) {
        let graph = synthesize_mcnc(profile, Technology::Xc3000);
        assert_eq!(lower_bound(&graph, constraints), m, "{}", profile.name);
    }
}

/// The M column of Table 5 (XC2064, δ = 1.0, XC2000 mapping).
#[test]
fn table5_lower_bounds_exact() {
    let expected = [("c3540", 6), ("c5315", 9), ("c7552", 10), ("c6288", 14)];
    let constraints = Device::XC2064.constraints(1.0);
    for (name, m) in expected {
        let profile = find_profile(name).expect("known circuit");
        let graph = synthesize_mcnc(profile, Technology::Xc2000);
        assert_eq!(lower_bound(&graph, constraints), m, "{name}");
    }
}

/// Table 1 is reproduced exactly by the synthesizer: node counts per
/// mapping and terminal counts for every circuit.
#[test]
fn table1_circuit_characteristics_exact() {
    for profile in mcnc_profiles() {
        for tech in [Technology::Xc2000, Technology::Xc3000] {
            let graph = synthesize_mcnc(profile, tech);
            assert_eq!(graph.node_count(), profile.clbs(tech), "{} {tech}", profile.name);
            assert_eq!(graph.terminal_count(), profile.iobs, "{} {tech}", profile.name);
            assert_eq!(graph.total_size(), profile.clbs(tech) as u64);
        }
    }
}

/// The paper's device data sheet values.
#[test]
fn device_catalog_matches_section4() {
    assert_eq!((Device::XC3020.s_ds, Device::XC3020.t_max), (64, 64));
    assert_eq!((Device::XC3042.s_ds, Device::XC3042.t_max), (144, 96));
    assert_eq!((Device::XC3090.s_ds, Device::XC3090.t_max), (320, 144));
    assert_eq!((Device::XC2064.s_ds, Device::XC2064.t_max), (64, 58));
}
