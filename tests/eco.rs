//! End-to-end properties of the ECO repair subsystem:
//!
//! * **Always verifiable** — repairing any randomized edit of any
//!   randomized circuit yields an assignment that covers every node of
//!   the edited graph and verifies (feasible, or on the fallback path a
//!   full repartition's own guarantees) (property test).
//! * **Empty script is a no-op** — repairing with no edits returns the
//!   previous assignment bit-identically: nothing was dirty, so nothing
//!   may move (property test).
//! * **Degradation** — repairing under an already-expired deadline
//!   still returns full-coverage, structurally valid output with only
//!   capacity violations possible (property test).
//! * **Thread invariance** — the restarts entry point returns a
//!   bit-identical winner at 1, 2, and 4 threads (property test).

use std::time::Duration;

use fpart_core::verify::{verify_assignment, Violation};
use fpart_core::{repartition_eco, repartition_eco_restarts, EcoConfig, FpartConfig, RunBudget};
use fpart_device::DeviceConstraints;
use fpart_hypergraph::gen::{window_circuit, WindowConfig};
use fpart_hypergraph::{apply_script, EditOp, EditScript, Hypergraph};
use proptest::prelude::*;

/// Strategy: a random circuit plus constraints loose enough that the
/// baseline partition is usually feasible (an ECO flow starts from a
/// working partition).
fn arb_workload() -> impl Strategy<Value = (Hypergraph, DeviceConstraints)> {
    (40usize..120, 4usize..16, any::<u64>(), 30u64..70, 40usize..90).prop_map(
        |(nodes, terminals, seed, s_max, t_max)| {
            let graph = window_circuit(&WindowConfig::new("eco", nodes, terminals), seed);
            (graph, DeviceConstraints::new(s_max, t_max))
        },
    )
}

/// A small randomized edit: remove `removals` cells spread over the
/// design, then add `adds` fresh cells each wired into a surviving
/// neighbourhood. Always applies cleanly by construction.
fn random_edit(graph: &Hypergraph, removals: usize, adds: usize, seed: u64) -> EditScript {
    let n = graph.node_count();
    let mut ops = Vec::new();
    let mut removed = std::collections::HashSet::new();
    for i in 0..removals.min(n.saturating_sub(2)) {
        // Deterministic spread over node ids without Date/rand.
        let idx =
            ((seed.wrapping_mul(2_654_435_761).wrapping_add(i as u64 * 97)) % n as u64) as usize;
        if removed.insert(idx) {
            let v = graph.node_ids().nth(idx).expect("index in range");
            ops.push(EditOp::RemoveNode { name: graph.node_name(v).to_owned() });
        }
    }
    let survivor = graph
        .node_ids()
        .map(|v| v.index())
        .find(|i| !removed.contains(i))
        .expect("removals leave survivors");
    let survivor = graph.node_ids().nth(survivor).expect("in range");
    for i in 0..adds {
        let name = format!("eco_add_{i}");
        ops.push(EditOp::AddNode { name: name.clone(), size: 1 });
        ops.push(EditOp::AddNet {
            name: format!("eco_net_{i}"),
            pins: vec![name, graph.node_name(survivor).to_owned()],
        });
    }
    EditScript::new(ops)
}

/// A feasible-ish baseline partition to repair from: the real driver.
fn baseline(graph: &Hypergraph, constraints: DeviceConstraints) -> Vec<u32> {
    fpart_core::partition(graph, constraints, &FpartConfig::default())
        .expect("baseline partitions")
        .assignment
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn eco_repair_output_is_always_verifiable(
        (graph, constraints) in arb_workload(),
        removals in 0usize..6,
        adds in 0usize..4,
        edit_seed in any::<u64>(),
    ) {
        let previous = baseline(&graph, constraints);
        let script = random_edit(&graph, removals, adds, edit_seed);
        let applied = apply_script(&graph, &script).expect("edit applies");
        let report = repartition_eco(
            &applied.graph,
            constraints,
            &FpartConfig::default(),
            &EcoConfig::default(),
            &previous,
            &applied.node_map,
        ).expect("repairs");
        let out = &report.outcome;
        prop_assert_eq!(out.assignment.len(), applied.graph.node_count());
        let v = verify_assignment(&applied.graph, &out.assignment, out.device_count, constraints);
        prop_assert!(v.is_feasible() == out.feasible,
            "outcome feasibility must match independent verification: {:?}", v.violations);
        // Whatever path was taken, the result must be structurally
        // valid: any violation is a capacity violation, never a
        // structural one.
        prop_assert!(v.violations.iter().all(|x| matches!(
            x,
            Violation::OverSize { .. } | Violation::OverTerminals { .. }
        )), "structural violations: {:?}", v.violations);
    }

    #[test]
    fn empty_edit_script_is_a_bit_identical_noop(
        (graph, constraints) in arb_workload(),
    ) {
        let previous = baseline(&graph, constraints);
        let applied = apply_script(&graph, &EditScript::default()).expect("no-op applies");
        prop_assert_eq!(applied.graph.node_count(), graph.node_count());
        let report = repartition_eco(
            &applied.graph,
            constraints,
            &FpartConfig::default(),
            &EcoConfig::default(),
            &previous,
            &applied.node_map,
        ).expect("repairs");
        prop_assert!(report.repaired);
        prop_assert_eq!(report.placed, 0);
        prop_assert_eq!(report.removed, 0);
        prop_assert_eq!(report.dirty_blocks, 0);
        // No dirty blocks means no repair pass ran: the assignment is
        // carried over bit-identically (block ids included — nothing
        // was compacted away because every previous block still has
        // its cells).
        prop_assert_eq!(&report.outcome.assignment, &previous);
    }

    #[test]
    fn repair_under_expired_deadline_is_still_verifiable(
        (graph, constraints) in arb_workload(),
        removals in 1usize..5,
        edit_seed in any::<u64>(),
    ) {
        let previous = baseline(&graph, constraints);
        let script = random_edit(&graph, removals, 2, edit_seed);
        let applied = apply_script(&graph, &script).expect("edit applies");
        let config = FpartConfig {
            budget: RunBudget { deadline: Some(Duration::ZERO), ..RunBudget::default() },
            ..FpartConfig::default()
        };
        let report = repartition_eco(
            &applied.graph,
            constraints,
            &config,
            &EcoConfig::default(),
            &previous,
            &applied.node_map,
        ).expect("degrades, does not error");
        let out = &report.outcome;
        prop_assert_eq!(out.assignment.len(), applied.graph.node_count());
        let v = verify_assignment(&applied.graph, &out.assignment, out.device_count, constraints);
        prop_assert!(v.violations.iter().all(|x| matches!(
            x,
            Violation::OverSize { .. } | Violation::OverTerminals { .. }
        )), "violations: {:?}", v.violations);
    }

    #[test]
    fn eco_repair_is_thread_count_invariant(
        (graph, constraints) in arb_workload(),
        removals in 0usize..5,
        adds in 0usize..3,
        edit_seed in any::<u64>(),
    ) {
        let previous = baseline(&graph, constraints);
        let script = random_edit(&graph, removals, adds, edit_seed);
        let applied = apply_script(&graph, &script).expect("edit applies");
        let run = |threads: usize| {
            repartition_eco_restarts(
                &applied.graph,
                constraints,
                &FpartConfig::default(),
                &EcoConfig::default(),
                &previous,
                &applied.node_map,
                3,
                threads,
            ).expect("repairs")
        };
        let sequential = run(1);
        for threads in [2usize, 4] {
            let parallel = run(threads);
            prop_assert_eq!(&sequential.assignment, &parallel.assignment,
                "threads={}", threads);
            prop_assert_eq!(sequential.device_count, parallel.device_count);
            prop_assert_eq!(sequential.cut, parallel.cut);
        }
    }
}
