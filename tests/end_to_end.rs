//! End-to-end integration: synthesize each paper workload, run FPART,
//! and check the full result contract (feasibility, lower bound,
//! conservation, determinism).

use fpart_core::{partition, FpartConfig, PartitionState};
use fpart_device::{lower_bound, Device};
use fpart_hypergraph::gen::{find_profile, mcnc_profiles, synthesize_mcnc, Technology};

/// Checks every invariant a finished partition must satisfy.
fn check_contract(
    graph: &fpart_hypergraph::Hypergraph,
    constraints: fpart_device::DeviceConstraints,
    outcome: &fpart_core::PartitionOutcome,
) {
    assert_eq!(outcome.assignment.len(), graph.node_count());
    assert_eq!(outcome.blocks.len(), outcome.device_count);
    // Sizes conserve.
    let total: u64 = outcome.blocks.iter().map(|b| b.size).sum();
    assert_eq!(total, graph.total_size());
    // Reported block stats must match a recount from the assignment.
    let state =
        PartitionState::from_assignment(graph, outcome.assignment.clone(), outcome.device_count);
    for (b, report) in outcome.blocks.iter().enumerate() {
        assert_eq!(state.block_size(b), report.size, "block {b} size");
        assert_eq!(state.block_terminals(b), report.terminals, "block {b} terminals");
        assert_eq!(state.block_externals(b), report.externals, "block {b} externals");
        assert_eq!(
            constraints.fits(report.size, report.terminals),
            report.feasible,
            "block {b} feasibility flag"
        );
    }
    assert_eq!(state.cut_count(), outcome.cut);
    if outcome.feasible {
        assert!(outcome.device_count >= outcome.lower_bound);
        assert!(outcome.blocks.iter().all(|b| b.feasible));
    }
}

#[test]
fn all_mcnc_circuits_partition_feasibly_on_xc3020() {
    let constraints = Device::XC3020.constraints(0.9);
    for profile in mcnc_profiles() {
        let graph = synthesize_mcnc(profile, Technology::Xc3000);
        let outcome = partition(&graph, constraints, &FpartConfig::default())
            .unwrap_or_else(|e| panic!("{} failed: {e}", profile.name));
        assert!(outcome.feasible, "{} infeasible", profile.name);
        check_contract(&graph, constraints, &outcome);
        assert_eq!(outcome.lower_bound, lower_bound(&graph, constraints));
        // Sanity band: within 2× of the bound on every circuit (the
        // measured results are far tighter; this guards regressions).
        assert!(
            outcome.device_count <= 2 * outcome.lower_bound,
            "{}: {} devices vs bound {}",
            profile.name,
            outcome.device_count,
            outcome.lower_bound
        );
    }
}

#[test]
fn xc3090_small_circuits_match_published_exactly() {
    // Paper Table 4, small group: every method agrees, so the synthetic
    // reproduction must too.
    let expected =
        [("c3540", 1), ("c5315", 3), ("c6288", 3), ("c7552", 3), ("s5378", 2), ("s9234", 2)];
    let constraints = Device::XC3090.constraints(0.9);
    for (name, k) in expected {
        let profile = find_profile(name).expect("known circuit");
        let graph = synthesize_mcnc(profile, Technology::Xc3000);
        let outcome = partition(&graph, constraints, &FpartConfig::default()).expect("runs");
        assert!(outcome.feasible);
        assert_eq!(outcome.device_count, k, "{name} on XC3090");
    }
}

#[test]
fn partitioning_is_deterministic_end_to_end() {
    let profile = find_profile("c5315").expect("known circuit");
    let graph = synthesize_mcnc(profile, Technology::Xc3000);
    let constraints = Device::XC3042.constraints(0.9);
    let a = partition(&graph, constraints, &FpartConfig::default()).expect("runs");
    let b = partition(&graph, constraints, &FpartConfig::default()).expect("runs");
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.device_count, b.device_count);
    assert_eq!(a.cut, b.cut);
    assert_eq!(a.iterations, b.iterations);
}

#[test]
fn xc2064_uses_the_xc2000_mapping() {
    let profile = find_profile("c6288").expect("known circuit");
    let graph = synthesize_mcnc(profile, Technology::Xc2000);
    let constraints = Device::XC2064.constraints(1.0);
    let outcome = partition(&graph, constraints, &FpartConfig::default()).expect("runs");
    assert!(outcome.feasible);
    check_contract(&graph, constraints, &outcome);
    // Paper Table 5: every method uses exactly 14 devices for c6288.
    assert_eq!(outcome.device_count, 14);
}

/// Full-size stress run on the biggest circuit × every paper device.
/// Slow in debug builds, so opt-in: `cargo test -- --ignored`.
#[test]
#[ignore = "several-second stress run; enable with --ignored"]
fn s38584_all_devices_stress() {
    let profile = find_profile("s38584").expect("known circuit");
    for device in [Device::XC3020, Device::XC3042, Device::XC3090] {
        let graph = synthesize_mcnc(profile, Technology::Xc3000);
        let constraints = device.constraints(0.9);
        let outcome = partition(&graph, constraints, &FpartConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", device.name));
        assert!(outcome.feasible, "{}", device.name);
        check_contract(&graph, constraints, &outcome);
    }
}

#[test]
fn trace_matches_untraced_result() {
    let profile = find_profile("s9234").expect("known circuit");
    let graph = synthesize_mcnc(profile, Technology::Xc3000);
    let constraints = Device::XC3042.constraints(0.9);
    let plain = partition(&graph, constraints, &FpartConfig::default()).expect("runs");
    let traced = fpart_core::partition_traced(&graph, constraints, &FpartConfig::default(), true)
        .expect("runs");
    assert_eq!(plain.assignment, traced.assignment);
    assert!(traced.trace.events().len() > plain.trace.events().len());
}
