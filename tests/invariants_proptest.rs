//! Property-based tests over the core data structures and algorithms:
//! random circuits, random move sequences, random device constraints.

use fpart_core::bucket::GainBucket;
use fpart_core::cost::CostEvaluator;
use fpart_core::{
    partition, partition_multilevel, partition_multilevel_restarts, partition_restarts, Completion,
    FpartConfig, KeyTracker, MultilevelConfig, PartitionState, RunBudget, SolutionKey,
};
use fpart_device::DeviceConstraints;
use fpart_hypergraph::coarsen::coarsen_to_floor;
use fpart_hypergraph::gen::{window_circuit, WindowConfig};
use fpart_hypergraph::{Hypergraph, NodeId};
use proptest::prelude::*;

/// Strategy: a small random hypergraph (connected enough to be
/// interesting, with random sizes and a few terminals).
fn arb_graph() -> impl Strategy<Value = Hypergraph> {
    (4usize..40, 0usize..8, any::<u64>()).prop_map(|(nodes, terminals, seed)| {
        let mut cfg = WindowConfig::new("prop", nodes, terminals);
        cfg.extra_size_prob = 0.3;
        window_circuit(&cfg, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental bookkeeping in `PartitionState` stays exactly
    /// consistent with a from-scratch recount under arbitrary move
    /// sequences.
    #[test]
    fn partition_state_consistent_under_random_moves(
        graph in arb_graph(),
        moves in proptest::collection::vec((any::<u32>(), 0usize..4), 0..60),
        k in 2usize..5,
    ) {
        let n = graph.node_count();
        let assignment: Vec<u32> = (0..n as u32).map(|i| i % k as u32).collect();
        let mut state = PartitionState::from_assignment(&graph, assignment, k);
        for (node, block) in moves {
            let node = NodeId::from_index(node as usize % n);
            state.move_node(node, block % k);
        }
        state.assert_consistent();
    }

    /// Terminal sums and cut counts are invariant under block
    /// relabeling-like move cycles (move a node away and back).
    #[test]
    fn move_cycles_restore_state(
        graph in arb_graph(),
        picks in proptest::collection::vec(any::<u32>(), 1..20),
    ) {
        let n = graph.node_count();
        let assignment: Vec<u32> = (0..n as u32).map(|i| i % 3).collect();
        let mut state = PartitionState::from_assignment(&graph, assignment.clone(), 3);
        let before: Vec<(u64, usize, usize)> = (0..3)
            .map(|b| (state.block_size(b), state.block_terminals(b), state.block_externals(b)))
            .collect();
        let cut = state.cut_count();
        for &p in &picks {
            let node = NodeId::from_index(p as usize % n);
            let home = state.block_of(node);
            state.move_node(node, (home + 1) % 3);
            state.move_node(node, (home + 2) % 3);
            state.move_node(node, home);
        }
        let after: Vec<(u64, usize, usize)> = (0..3)
            .map(|b| (state.block_size(b), state.block_terminals(b), state.block_externals(b)))
            .collect();
        prop_assert_eq!(before, after);
        prop_assert_eq!(cut, state.cut_count());
    }

    /// The incremental `KeyTracker` key equals the from-scratch O(k)
    /// evaluation after arbitrary move / rollback sequences — the
    /// correctness contract behind the engine's O(1)-per-move cost
    /// updates. Rollbacks are modeled exactly as the pass engine performs
    /// them: replaying logged moves in reverse, tracker updated per step.
    #[test]
    fn incremental_key_matches_from_scratch(
        graph in arb_graph(),
        moves in proptest::collection::vec((any::<u32>(), 0usize..4), 1..50),
        k in 2usize..5,
        s_max in 8u64..48,
        t_max in 8usize..48,
        rollback_frac in 0.0f64..1.0,
    ) {
        let n = graph.node_count();
        let constraints = DeviceConstraints::new(s_max, t_max);
        let evaluator =
            CostEvaluator::new(constraints, &FpartConfig::default(), k, graph.terminal_count());
        let assignment: Vec<u32> = (0..n as u32).map(|i| i % k as u32).collect();
        let mut state = PartitionState::from_assignment(&graph, assignment, k);
        let mut tracker = KeyTracker::new(&evaluator, &state);

        // Forward phase: random moves, tracker updated incrementally.
        let mut log: Vec<(NodeId, u32)> = Vec::new();
        for (pick, block) in moves {
            let node = NodeId::from_index(pick as usize % n);
            let from = state.block_of(node);
            let to = (block % k) as u32;
            state.move_node(node, to as usize);
            tracker.apply_move(&evaluator, &state, from, to as usize);
            log.push((node, from as u32));
            prop_assert_eq!(
                tracker.key(&evaluator, &state, None),
                evaluator.key(&state, None),
                "incremental key diverged after a forward move"
            );
        }

        // Rollback phase: undo a suffix of the log in reverse order.
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let keep = ((log.len() as f64) * rollback_frac) as usize;
        while log.len() > keep {
            let (node, home) = log.pop().unwrap();
            let from = state.block_of(node);
            state.move_node(node, home as usize);
            tracker.apply_move(&evaluator, &state, from, home as usize);
            prop_assert_eq!(
                tracker.key(&evaluator, &state, None),
                evaluator.key(&state, None),
                "incremental key diverged after a rollback step"
            );
        }

        // A remainder designation changes the assembled key but must not
        // break the equality either.
        prop_assert_eq!(
            tracker.key(&evaluator, &state, Some(0)),
            evaluator.key(&state, Some(0)),
            "incremental key diverged under a remainder designation"
        );
    }

    /// Parallel multi-run search is bit-identical to sequential for any
    /// thread count on random circuits.
    #[test]
    fn restarts_thread_invariant_on_random_circuits(
        graph in arb_graph(),
        s_max in 16u64..48,
        t_max in 16usize..48,
        threads in 2usize..9,
    ) {
        let constraints = DeviceConstraints::new(s_max, t_max);
        let max_node = graph.node_ids().map(|v| u64::from(graph.node_size(v))).max().unwrap_or(0);
        prop_assume!(max_node <= s_max);
        let config = FpartConfig::default();
        let sequential = partition_restarts(&graph, constraints, &config, 3, 1);
        let parallel = partition_restarts(&graph, constraints, &config, 3, threads);
        match (sequential, parallel) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.assignment, b.assignment);
                prop_assert_eq!(a.device_count, b.device_count);
                prop_assert_eq!(a.cut, b.cut);
                prop_assert_eq!(a.feasible, b.feasible);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => {
                return Err(TestCaseError::fail(format!(
                    "sequential and parallel disagree on success: {a:?} vs {b:?}"
                )));
            }
        }
    }

    /// FPART on random circuits: always terminates, and when it reports
    /// feasible every block really fits and the count respects the bound.
    #[test]
    fn fpart_outcome_contract_on_random_circuits(
        graph in arb_graph(),
        s_max in 8u64..64,
        t_max in 8usize..64,
    ) {
        let constraints = DeviceConstraints::new(s_max, t_max);
        let max_node = graph.node_ids().map(|v| u64::from(graph.node_size(v))).max().unwrap_or(0);
        prop_assume!(max_node <= s_max);
        match partition(&graph, constraints, &FpartConfig::default()) {
            Ok(outcome) => {
                let total: u64 = outcome.blocks.iter().map(|b| b.size).sum();
                prop_assert_eq!(total, graph.total_size());
                if outcome.feasible {
                    prop_assert!(outcome.device_count >= outcome.lower_bound);
                    for b in &outcome.blocks {
                        prop_assert!(constraints.fits(b.size, b.terminals));
                    }
                }
            }
            Err(fpart_core::PartitionError::IterationLimit { .. }) => {
                // Permitted on adversarial I/O-dominated inputs.
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        }
    }

    /// GainBucket behaves like a naive map from cell to gain.
    #[test]
    fn gain_bucket_matches_model(
        ops in proptest::collection::vec((0u32..64, -8i32..=8, any::<bool>()), 1..200)
    ) {
        let mut bucket = GainBucket::new(64, 8);
        let mut model: std::collections::HashMap<u32, i32> = std::collections::HashMap::new();
        for (cell, gain, insert) in ops {
            if insert {
                model.entry(cell).or_insert_with(|| {
                    bucket.insert(cell, gain);
                    gain
                });
            } else {
                let was = model.remove(&cell).is_some();
                prop_assert_eq!(bucket.remove(cell), was);
            }
            prop_assert_eq!(bucket.len(), model.len());
        }
        // Max gain agrees with the model.
        prop_assert_eq!(bucket.max_gain(), model.values().max().copied());
        // Every modeled cell is present with the right gain.
        for (&cell, &gain) in &model {
            prop_assert!(bucket.contains(cell));
            prop_assert_eq!(bucket.gain_of(cell), gain);
        }
    }

    /// The text parsers never panic on arbitrary input — they either
    /// parse or return a structured error.
    #[test]
    fn parsers_never_panic_on_garbage(text in "\\PC*{0,400}") {
        let _ = fpart_hypergraph::io::parse_netlist(&text);
        let _ = fpart_hypergraph::hmetis::parse_hmetis(&text);
        let _ = fpart_hypergraph::blif::parse_blif(&text);
    }

    /// Structured-ish random `.fhg` documents: parse errors are fine,
    /// successful parses must produce self-consistent graphs.
    #[test]
    fn fhg_fuzz_with_plausible_records(
        records in proptest::collection::vec(
            proptest::sample::select(vec![
                "node a 1", "node b 2", "node c 3", "net n1 a b", "net n2 b c",
                "net n3 a", "terminal t1 n1", "terminal t2 n9", "circuit x",
                "# comment", "", "node a", "net", "bogus line",
            ]),
            0..20,
        )
    ) {
        let text = records.join("\n");
        if let Ok(g) = fpart_hypergraph::io::parse_netlist(&text) {
            for net in g.net_ids() {
                for &pin in g.pins(net) {
                    prop_assert!(g.nets(pin).contains(&net));
                }
            }
        }
    }

    /// Coarsening conserves total size and yields a surjective map onto
    /// the coarse nodes, for random circuits and caps.
    #[test]
    fn coarsening_invariants(
        graph in arb_graph(),
        cap in 2u64..12,
        seed in any::<u64>(),
    ) {
        let c = fpart_hypergraph::coarsen::coarsen_by_connectivity(&graph, cap, seed);
        prop_assert_eq!(c.coarse.total_size(), graph.total_size());
        prop_assert_eq!(c.map.len(), graph.node_count());
        let mut hit = vec![false; c.coarse.node_count()];
        for m in &c.map {
            prop_assert!(m.index() < c.coarse.node_count());
            hit[m.index()] = true;
        }
        prop_assert!(hit.iter().all(|&h| h), "every coarse node has members");
        prop_assert_eq!(c.coarse.terminal_count(), graph.terminal_count());
    }

    /// An n-level hierarchy's projection to the finest graph is always
    /// verifiable: any assignment of the coarsest nodes projects to a
    /// full-coverage, in-range assignment of the input graph that
    /// conserves every block's size.
    #[test]
    fn nlevel_projection_is_always_verifiable(
        graph in arb_graph(),
        cap in 2u64..10,
        floor in 2usize..12,
        k in 1usize..5,
        seed in any::<u64>(),
    ) {
        let hierarchy = coarsen_to_floor(&graph, cap, floor, 64, seed);
        let coarsest_n = hierarchy.coarsest().map_or(graph.node_count(), |c| c.node_count());
        prop_assert!(coarsest_n <= graph.node_count());
        let coarse: Vec<u32> =
            (0..coarsest_n as u32).map(|i| (i.wrapping_mul(7)) % k as u32).collect();
        let fine = hierarchy.project_to_finest(&coarse);
        prop_assert_eq!(fine.len(), graph.node_count());
        for &b in &fine {
            prop_assert!((b as usize) < k);
        }
        // Block sizes conserve through every projection level.
        let fine_state = PartitionState::from_assignment(&graph, fine, k);
        if let Some(coarsest) = hierarchy.coarsest() {
            let coarse_state = PartitionState::from_assignment(coarsest, coarse, k);
            for b in 0..k {
                prop_assert_eq!(fine_state.block_size(b), coarse_state.block_size(b));
            }
        }
    }

    /// The multilevel restart search is bit-identical across thread
    /// counts, exactly like the flat search.
    #[test]
    fn multilevel_restarts_thread_invariant_on_random_circuits(
        graph in arb_graph(),
        s_max in 16u64..48,
        t_max in 16usize..48,
        threads in 2usize..5,
    ) {
        let constraints = DeviceConstraints::new(s_max, t_max);
        let max_node = graph.node_ids().map(|v| u64::from(graph.node_size(v))).max().unwrap_or(0);
        prop_assume!(max_node <= s_max);
        let config = FpartConfig::default();
        let ml = MultilevelConfig { coarsen_floor: 8, ..MultilevelConfig::default() };
        let sequential = partition_multilevel_restarts(&graph, constraints, &config, &ml, 3, 1);
        let parallel =
            partition_multilevel_restarts(&graph, constraints, &config, &ml, 3, threads);
        match (sequential, parallel) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.assignment, b.assignment);
                prop_assert_eq!(a.device_count, b.device_count);
                prop_assert_eq!(a.cut, b.cut);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => {
                return Err(TestCaseError::fail(format!(
                    "sequential and parallel disagree on success: {a:?} vs {b:?}"
                )));
            }
        }
    }

    /// An already-expired deadline anywhere in the V-cycle still yields
    /// full-coverage, in-range output flagged `deadline_expired` — the
    /// graceful-degradation contract holds mid-uncoarsening.
    #[test]
    fn multilevel_deadline_always_yields_verifiable_output(
        graph in arb_graph(),
        s_max in 16u64..48,
        t_max in 16usize..48,
    ) {
        let constraints = DeviceConstraints::new(s_max, t_max);
        let max_node = graph.node_ids().map(|v| u64::from(graph.node_size(v))).max().unwrap_or(0);
        prop_assume!(max_node <= s_max);
        let config = FpartConfig {
            budget: RunBudget {
                deadline: Some(std::time::Duration::ZERO),
                ..RunBudget::default()
            },
            ..FpartConfig::default()
        };
        let ml = MultilevelConfig { coarsen_floor: 4, ..MultilevelConfig::default() };
        let out = partition_multilevel(&graph, constraints, &config, &ml);
        match out {
            Ok(out) => {
                // A circuit that fits one device can finish before any
                // pass runs (legitimately `Complete`); any multi-block
                // solve must have hit the expired deadline.
                if out.device_count > 1 {
                    prop_assert_eq!(out.completion, Completion::DeadlineExpired);
                }
                prop_assert_eq!(out.assignment.len(), graph.node_count());
                for &b in &out.assignment {
                    prop_assert!((b as usize) < out.device_count);
                }
                let total: u64 = out.blocks.iter().map(|b| b.size).sum();
                prop_assert_eq!(total, graph.total_size());
            }
            Err(e) => {
                return Err(TestCaseError::fail(format!("deadline must degrade, not fail: {e}")));
            }
        }
    }

    /// The independent verifier agrees with the incremental state on
    /// random assignments.
    #[test]
    fn verifier_matches_state(
        graph in arb_graph(),
        k in 1usize..5,
        seed in any::<u32>(),
    ) {
        let n = graph.node_count();
        let assignment: Vec<u32> =
            (0..n as u32).map(|i| (i.wrapping_mul(seed | 1)) % k as u32).collect();
        let state = PartitionState::from_assignment(&graph, assignment.clone(), k);
        let v = fpart_core::verify_assignment(
            &graph,
            &assignment,
            k,
            DeviceConstraints::new(u64::MAX / 2, usize::MAX / 2),
        );
        prop_assert_eq!(v.cut, state.cut_count());
        for b in 0..k {
            prop_assert_eq!(v.sizes[b], state.block_size(b));
            prop_assert_eq!(v.terminals[b], state.block_terminals(b));
        }
    }

    /// The lexicographic solution order is total, antisymmetric, and
    /// transitive over random keys.
    #[test]
    fn solution_key_order_is_consistent(
        raw in proptest::collection::vec(
            (0usize..5, 0.0f64..4.0, 0usize..200, 0.0f64..2.0, 0usize..100),
            3..12,
        )
    ) {
        let keys: Vec<SolutionKey> = raw
            .into_iter()
            .map(|(f, d, t, e, c)| SolutionKey {
                feasible_blocks: f,
                total_blocks: 5,
                infeasibility: d,
                terminal_sum: t,
                external_balance: e,
                cut: c,
            })
            .collect();
        for a in &keys {
            prop_assert!(!a.better_than(a));
            for b in &keys {
                if a.better_than(b) {
                    prop_assert!(!b.better_than(a));
                }
                for c in &keys {
                    if a.better_than(b) && b.better_than(c) {
                        prop_assert!(a.better_than(c));
                    }
                }
            }
        }
    }
}
