#[test]
fn deep_nesting_does_not_crash() {
    let line = "[".repeat(400_000);
    let _ = fpart_core::Json::parse(&line);
}
