//! Observability-layer guarantees, end to end:
//!
//! * **Non-interference** — instrumented (metrics + sinks enabled) and
//!   uninstrumented runs produce **bit-identical partitions**, at 1 and
//!   4 threads, over randomized circuits and devices (property test).
//! * **Deterministic aggregation** — `partition_restarts_observed`
//!   totals equal the field-wise per-restart sums and are invariant to
//!   the thread count.
//! * **Consistency** — counters cross-check against the outcome
//!   (`improve_calls`, `iterations`, retained moves) and against the
//!   recorded trace.
//! * **Serialization** — JSONL event streams and metrics JSON parse as
//!   the documented shapes.

use fpart_core::fm::{bipartition_fm, bipartition_fm_metered, FmConfig};
use fpart_core::{
    partition, partition_observed, partition_restarts, partition_restarts_observed, Counter,
    EventSink, FpartConfig, JsonlSink, Metrics, Observer, Trace, TraceEvent,
};
use fpart_device::DeviceConstraints;
use fpart_hypergraph::gen::{window_circuit, WindowConfig};
use fpart_hypergraph::Hypergraph;
use proptest::prelude::*;

/// Strategy: a random circuit plus device constraints tight enough to
/// force several peeling iterations (so the improvement schedule, the
/// stacks, and the restart machinery all execute).
fn arb_workload() -> impl Strategy<Value = (Hypergraph, DeviceConstraints)> {
    (30usize..120, 4usize..16, any::<u64>(), 20u64..60, 30usize..80).prop_map(
        |(nodes, terminals, seed, s_max, t_max)| {
            let graph = window_circuit(&WindowConfig::new("obs", nodes, terminals), seed);
            (graph, DeviceConstraints::new(s_max, t_max))
        },
    )
}

/// A sink that counts events without retaining them, to prove the
/// `EventSink` generalization works for non-`Trace` consumers too.
#[derive(Default)]
struct CountingSink {
    events: usize,
}

impl EventSink for CountingSink {
    fn record_event(&mut self, _event: &TraceEvent) {
        self.events += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole acceptance property: metrics-enabled and
    /// metrics-disabled runs yield bit-identical partitions, at 1 and 4
    /// threads.
    #[test]
    fn instrumented_runs_are_bit_identical((graph, constraints) in arb_workload()) {
        let config = FpartConfig::default();
        let plain = partition(&graph, constraints, &config);

        // Fully instrumented single run: metrics + two fanned-out sinks.
        let mut trace = Trace::enabled();
        let mut counting = CountingSink::default();
        let observed = {
            let mut fanout = fpart_core::FanoutSink::new(vec![&mut trace, &mut counting]);
            let mut obs = Observer::new(Metrics::enabled(), Some(&mut fanout));
            partition_observed(&graph, constraints, &config, &mut obs)
        };

        match (plain, observed) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a.assignment, &b.assignment);
                prop_assert_eq!(a.device_count, b.device_count);
                prop_assert_eq!(a.cut, b.cut);
                prop_assert_eq!(a.feasible, b.feasible);
                prop_assert_eq!(a.iterations, b.iterations);
                prop_assert_eq!(a.improve_calls, b.improve_calls);
                prop_assert_eq!(a.total_moves, b.total_moves);
                prop_assert_eq!(trace.events().len(), counting.events);
                // Counters agree with the driver's own accounting.
                prop_assert_eq!(b.metrics.get(Counter::Iterations), b.iterations as u64);
                prop_assert_eq!(b.metrics.get(Counter::Bipartitions), b.iterations as u64);
                prop_assert!(b.metrics.get(Counter::ImproveCalls) >= b.improve_calls as u64);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "divergent results: {a:?} vs {b:?}"),
        }

        // Observed restarts match plain restarts at 1 and 4 threads.
        for threads in [1usize, 4] {
            let plain = partition_restarts(&graph, constraints, &config, 4, threads);
            let observed = partition_restarts_observed(&graph, constraints, &config, 4, threads);
            match (plain, observed) {
                (Ok(a), Ok(r)) => {
                    prop_assert_eq!(&a.assignment, &r.outcome.assignment, "threads={}", threads);
                    prop_assert_eq!(a.device_count, r.outcome.device_count);
                    prop_assert_eq!(a.cut, r.outcome.cut);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(false, "divergent results: {a:?} vs {b:?}"),
            }
        }
    }

    /// Restart totals are the per-restart sums, and the whole report is
    /// thread-count invariant.
    #[test]
    fn restart_aggregation_is_deterministic((graph, constraints) in arb_workload()) {
        let config = FpartConfig::default();
        let Ok(reference) = partition_restarts_observed(&graph, constraints, &config, 3, 1)
        else { return Ok(()); };

        prop_assert_eq!(reference.per_restart.len(), 3);
        prop_assert_eq!(reference.totals.get(Counter::Runs), 3);
        for counter in Counter::ALL {
            let sum: u64 = reference.per_restart.iter().map(|m| m.get(counter)).sum();
            prop_assert_eq!(reference.totals.get(counter), sum, "{}", counter.name());
        }

        for threads in [2usize, 4] {
            let report = partition_restarts_observed(&graph, constraints, &config, 3, threads)
                .expect("succeeded at 1 thread");
            prop_assert_eq!(&report.outcome.assignment, &reference.outcome.assignment);
            for counter in Counter::ALL {
                prop_assert_eq!(
                    report.totals.get(counter),
                    reference.totals.get(counter),
                    "threads={} {}",
                    threads,
                    counter.name()
                );
            }
        }
    }

    /// The metered FM facade returns the same bipartition as the plain
    /// one at 1 and 4 threads, with a thread-invariant aggregate.
    #[test]
    fn metered_fm_matches_plain(
        (graph, _) in arb_workload(),
        runs in 1usize..5,
    ) {
        let base = FmConfig { runs, ..FmConfig::default() };
        let plain = bipartition_fm(&graph, &base);
        let mut reference: Option<Metrics> = None;
        for threads in [1usize, 4] {
            let config = FmConfig { threads, ..base.clone() };
            let mut metrics = Metrics::enabled();
            let metered = bipartition_fm_metered(&graph, &config, &mut metrics);
            prop_assert_eq!(&metered, &plain, "threads={}", threads);
            prop_assert_eq!(metrics.get(Counter::Runs), runs as u64);
            prop_assert_eq!(metrics.get(Counter::ImproveCalls), runs as u64);
            match &reference {
                None => reference = Some(metrics),
                Some(r) => prop_assert_eq!(r, &metrics, "threads={}", threads),
            }
        }
    }
}

/// Counters cross-check against the outcome and the trace on a fixed
/// multi-device workload.
#[test]
fn counters_cross_check_against_trace() {
    let graph = window_circuit(&WindowConfig::new("xcheck", 150, 16), 11);
    let constraints = DeviceConstraints::new(40, 60);
    let config = FpartConfig::default();

    let mut trace = Trace::enabled();
    let outcome = {
        let mut obs = Observer::new(Metrics::enabled(), Some(&mut trace));
        partition_observed(&graph, constraints, &config, &mut obs).expect("partitions")
    };
    let metrics = &outcome.metrics;

    assert!(outcome.iterations > 1, "workload must force several iterations");
    assert_eq!(metrics.get(Counter::Iterations), outcome.iterations as u64);
    assert_eq!(metrics.get(Counter::Bipartitions), outcome.iterations as u64);

    // Driver-level improve calls: the trace records exactly those, and
    // each records a wall-time sample for its schedule slot.
    let improve_events = trace.improve_events().count();
    assert_eq!(improve_events, outcome.improve_calls);
    let timed: u64 =
        fpart_core::ImproveKind::ALL.iter().map(|&k| metrics.improve_time(k).count).sum();
    assert_eq!(timed, outcome.improve_calls as u64);

    // Trace-visible totals agree with the counters; the engine may run
    // more improve calls than the driver (none here) but never fewer.
    let (mut passes, mut moves, mut restarts) = (0u64, 0u64, 0u64);
    for event in trace.improve_events() {
        if let TraceEvent::Improve { passes: p, moves: m, restarts: r, .. } = event {
            passes += *p as u64;
            moves += *m as u64;
            restarts += *r as u64;
        }
    }
    assert_eq!(metrics.get(Counter::Passes), passes);
    assert_eq!(metrics.get(Counter::StackRestarts), restarts);
    assert_eq!(outcome.total_moves as u64, moves);
    // Retained moves = applied − reverted.
    assert_eq!(metrics.get(Counter::MovesApplied) - metrics.get(Counter::MovesReverted), moves);
    assert!(metrics.get(Counter::GainBucketPops) >= metrics.get(Counter::MovesApplied));
    assert!(metrics.get(Counter::KeyEvaluations) > 0);
}

/// JSONL streaming during a real run: one parseable object per line,
/// event counts matching the in-memory trace.
#[test]
fn jsonl_stream_matches_trace() {
    let graph = window_circuit(&WindowConfig::new("jsonl", 120, 12), 3);
    let constraints = DeviceConstraints::new(35, 50);
    let config = FpartConfig::default();

    let mut trace = Trace::enabled();
    let mut jsonl = JsonlSink::new(Vec::new());
    {
        let mut fanout = fpart_core::FanoutSink::new(vec![&mut trace, &mut jsonl]);
        let mut obs = Observer::new(Metrics::disabled(), Some(&mut fanout));
        partition_observed(&graph, constraints, &config, &mut obs).expect("partitions");
    }

    assert_eq!(jsonl.lines() as usize, trace.events().len());
    assert!(trace.events().len() > 3);
    let text = String::from_utf8(jsonl.into_inner()).expect("utf8");
    for (line, event) in text.lines().zip(trace.events()) {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert_eq!(line, fpart_core::event_to_json(event));
    }
}
