//! Execution-control and fault-containment guarantees, end to end:
//!
//! * **Graceful degradation** — randomized circuits under randomized
//!   budgets (pass caps, forced deadline expiry) always terminate,
//!   return a structurally valid assignment, and report the correct
//!   [`Completion`] status (property test).
//! * **Panic isolation** — a restart that panics at any index is
//!   reported as a failed job in the [`RestartsReport`] while the
//!   survivors merge deterministically, bit-identical at 1 and 4
//!   threads (property test).
//! * **Total failure** — only when *every* restart panics does the run
//!   error, with the first panic's index and message.
//! * **Cancellation** — a cancelled token stops the driver cleanly with
//!   `Completion::Cancelled` and a usable best-so-far result.
//! * **Config validation** — zero restarts or threads are rejected up
//!   front with a typed error, not a hang or a panic.

use std::sync::Once;
use std::time::{Duration, Instant};

use fpart_core::verify::{verify_assignment, Violation};
use fpart_core::{
    partition, partition_restarts, partition_restarts_observed, CancelToken, Completion, Counter,
    FaultPlan, FpartConfig, PartitionError, PartitionOutcome, RunBudget,
};
use fpart_device::DeviceConstraints;
use fpart_hypergraph::gen::{window_circuit, WindowConfig};
use fpart_hypergraph::Hypergraph;
use proptest::prelude::*;

/// Keeps deliberately injected panics out of the test output while
/// still printing real ones. Installed once per test binary; the
/// previous hook handles everything that is not an injected fault.
fn quiet_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected fault"));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Strategy: a random circuit plus device constraints tight enough to
/// usually force several peeling iterations (so budget checks at pass
/// and peel boundaries all execute).
fn arb_workload() -> impl Strategy<Value = (Hypergraph, DeviceConstraints)> {
    (30usize..120, 4usize..16, any::<u64>(), 20u64..60, 30usize..80).prop_map(
        |(nodes, terminals, seed, s_max, t_max)| {
            let graph = window_circuit(&WindowConfig::new("rob", nodes, terminals), seed);
            (graph, DeviceConstraints::new(s_max, t_max))
        },
    )
}

/// A budget scenario paired with the completions it may legitimately
/// produce (a run that finishes before the limit bites stays
/// `Complete`).
#[derive(Debug, Clone)]
enum Scenario {
    Unlimited,
    PassCap(u64),
    ExpireAtPass(u64),
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (0u8..3, 0u64..6).prop_map(|(kind, n)| match kind {
        0 => Scenario::Unlimited,
        1 => Scenario::PassCap(n),
        _ => Scenario::ExpireAtPass(n + 1),
    })
}

/// Asserts the outcome is structurally sound: every node assigned to an
/// in-range, non-empty block. Degraded outcomes may violate capacity
/// (that is what `feasible: false` reports) but never structure.
fn assert_structurally_valid(graph: &Hypergraph, outcome: &PartitionOutcome) {
    let verification = verify_assignment(
        graph,
        &outcome.assignment,
        outcome.device_count,
        DeviceConstraints::new(u64::MAX, usize::MAX),
    );
    let structural: Vec<&Violation> = verification
        .violations
        .iter()
        .filter(|v| {
            matches!(
                v,
                Violation::WrongLength { .. }
                    | Violation::BlockOutOfRange { .. }
                    | Violation::EmptyBlock { .. }
            )
        })
        .collect();
    assert!(structural.is_empty(), "structural violations: {structural:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole acceptance property: random netlists under random
    /// budgets terminate, verify, and report the correct completion.
    #[test]
    fn budgeted_runs_terminate_and_verify(
        (graph, constraints) in arb_workload(),
        scenario in arb_scenario(),
    ) {
        let reference = partition(&graph, constraints, &FpartConfig::default());

        let mut config = FpartConfig::default();
        match &scenario {
            Scenario::Unlimited => {}
            Scenario::PassCap(limit) => config.budget.max_passes = Some(*limit),
            Scenario::ExpireAtPass(pass) => config.fault_plan = Some(FaultPlan::expire_at(*pass)),
        }
        let outcome = partition(&graph, constraints, &config);

        match (&scenario, outcome) {
            (Scenario::Unlimited, outcome) => {
                // No budget, no behavior change at all.
                prop_assert_eq!(outcome.as_ref().ok().map(|o| o.completion), reference.as_ref().ok().map(|_| Completion::Complete));
                match (outcome, reference) {
                    (Ok(a), Ok(b)) => prop_assert_eq!(a.assignment, b.assignment),
                    (Err(a), Err(b)) => prop_assert_eq!(a, b),
                    (a, b) => prop_assert!(false, "divergent: {a:?} vs {b:?}"),
                }
            }
            (Scenario::PassCap(_), Ok(outcome)) => {
                prop_assert!(
                    matches!(outcome.completion, Completion::Complete | Completion::Degraded),
                    "pass cap must complete or degrade, got {}",
                    outcome.completion
                );
                assert_structurally_valid(&graph, &outcome);
                if outcome.completion == Completion::Complete {
                    let reference = reference.expect("unbudgeted run matches");
                    prop_assert_eq!(outcome.assignment, reference.assignment);
                }
            }
            (Scenario::ExpireAtPass(_), Ok(outcome)) => {
                prop_assert!(
                    matches!(outcome.completion, Completion::Complete | Completion::DeadlineExpired),
                    "forced expiry must complete or expire, got {}",
                    outcome.completion
                );
                assert_structurally_valid(&graph, &outcome);
            }
            // A budget never *introduces* failure: the only error paths
            // are the same infeasibility errors the plain run can hit.
            (_, Err(e)) => {
                let reference = reference.expect_err("budgeted error implies plain error");
                prop_assert_eq!(e, reference);
            }
        }
    }

    /// The fault-injection acceptance property: a panicking restart at
    /// any index is contained, reported, and the merged report is
    /// bit-identical across thread counts.
    #[test]
    fn restart_panic_isolation_is_thread_invariant(
        (graph, constraints) in arb_workload(),
        victim in 0usize..3,
    ) {
        quiet_injected_panics();
        let config = FpartConfig {
            fault_plan: Some(FaultPlan::panic_at(1, "boom").for_only_restart(victim)),
            ..FpartConfig::default()
        };

        let reference = match partition_restarts_observed(&graph, constraints, &config, 3, 1) {
            Ok(report) => report,
            // All-failed only happens when every restart panics; with a
            // single victim that means restarts were collapsed — not
            // possible here, but infeasibility errors are.
            Err(e) => {
                prop_assert!(!matches!(e, PartitionError::RestartPanicked { .. }), "{e}");
                return Ok(());
            }
        };

        // The victim either panicked at pass 1 or never reached a pass
        // (trivial workload): both are legitimate, but the report must
        // say which happened.
        if reference.failed.is_empty() {
            prop_assert_eq!(reference.completion, Completion::Complete);
        } else {
            prop_assert_eq!(reference.failed.len(), 1);
            prop_assert_eq!(reference.failed[0].restart, victim);
            prop_assert!(reference.failed[0].message.contains("boom"), "{}", reference.failed[0].message);
            prop_assert_eq!(reference.completion, Completion::Degraded);
            prop_assert_eq!(reference.totals.get(Counter::FailedRestarts), 1);
        }
        // Survivors + synthesized failed registries all appear.
        prop_assert_eq!(reference.per_restart.len(), 3);
        for counter in Counter::ALL {
            let sum: u64 = reference.per_restart.iter().map(|m| m.get(counter)).sum();
            prop_assert_eq!(reference.totals.get(counter), sum, "{}", counter.name());
        }
        assert_structurally_valid(&graph, &reference.outcome);

        for threads in [2usize, 4] {
            let report = partition_restarts_observed(&graph, constraints, &config, 3, threads)
                .expect("succeeded at 1 thread");
            prop_assert_eq!(&report.outcome.assignment, &reference.outcome.assignment, "threads={}", threads);
            prop_assert_eq!(report.outcome.cut, reference.outcome.cut);
            prop_assert_eq!(report.completion, reference.completion);
            prop_assert_eq!(&report.failed, &reference.failed);
            prop_assert_eq!(report.per_restart.len(), reference.per_restart.len());
            // Counters are deterministic; wall-clock timing stats are not.
            for counter in Counter::ALL {
                prop_assert_eq!(report.totals.get(counter), reference.totals.get(counter), "{}", counter.name());
                for (restart, (a, b)) in
                    report.per_restart.iter().zip(&reference.per_restart).enumerate()
                {
                    prop_assert_eq!(
                        a.get(counter),
                        b.get(counter),
                        "threads={} restart={} {}",
                        threads,
                        restart,
                        counter.name()
                    );
                }
            }
        }

        // The plain facade agrees with the observed one and degrades the
        // winner's completion (it has no report channel to carry it).
        if let Ok(outcome) = partition_restarts(&graph, constraints, &config, 3, 4) {
            prop_assert_eq!(&outcome.assignment, &reference.outcome.assignment);
            if !reference.failed.is_empty() {
                prop_assert_eq!(outcome.completion, Completion::Degraded);
            }
        }
    }
}

/// A workload that always needs several peeling iterations and FM
/// passes, so budget and fault hooks are guaranteed to fire.
fn busy_workload() -> (Hypergraph, DeviceConstraints) {
    (window_circuit(&WindowConfig::new("busy", 150, 16), 11), DeviceConstraints::new(40, 60))
}

#[test]
fn every_restart_panicking_is_a_typed_error() {
    quiet_injected_panics();
    let (graph, constraints) = busy_workload();
    let config = FpartConfig {
        fault_plan: Some(FaultPlan::panic_at(1, "total loss")),
        ..FpartConfig::default()
    };
    for threads in [1usize, 4] {
        let err = partition_restarts_observed(&graph, constraints, &config, 2, threads)
            .expect_err("all restarts panic");
        match err {
            PartitionError::RestartPanicked { restart, message } => {
                assert_eq!(restart, 0, "first failure wins deterministically");
                assert!(message.contains("total loss"), "{message}");
            }
            other => panic!("expected RestartPanicked, got {other:?}"),
        }
        let err = partition_restarts(&graph, constraints, &config, 2, threads)
            .expect_err("all restarts panic");
        assert!(matches!(err, PartitionError::RestartPanicked { restart: 0, .. }), "{err:?}");
    }
}

#[test]
fn zero_deadline_expires_at_the_first_boundary() {
    let (graph, constraints) = busy_workload();
    let config = FpartConfig {
        budget: RunBudget { deadline: Some(Duration::ZERO), ..RunBudget::default() },
        ..FpartConfig::default()
    };
    let started = Instant::now();
    let outcome = partition(&graph, constraints, &config).expect("returns best-so-far");
    // Deadline + at most one boundary's work: generous bound, the point
    // is that the run does not grind through the full schedule.
    assert!(started.elapsed() < Duration::from_secs(10));
    assert_eq!(outcome.completion, Completion::DeadlineExpired);
    assert!(!outcome.feasible, "stopping before the first peel cannot be feasible here");
    assert_structurally_valid(&graph, &outcome);
}

#[test]
fn cancelled_token_stops_cleanly_with_best_so_far() {
    let (graph, constraints) = busy_workload();
    let cancel = CancelToken::new();
    cancel.cancel();
    let config = FpartConfig {
        budget: RunBudget { cancel: Some(cancel), ..RunBudget::default() },
        ..FpartConfig::default()
    };
    let outcome = partition(&graph, constraints, &config).expect("returns best-so-far");
    assert_eq!(outcome.completion, Completion::Cancelled);
    assert_structurally_valid(&graph, &outcome);

    // Cancellation also wins over other limits (highest severity).
    let cancel = CancelToken::new();
    cancel.cancel();
    let config = FpartConfig {
        budget: RunBudget {
            cancel: Some(cancel),
            deadline: Some(Duration::ZERO),
            ..RunBudget::default()
        },
        ..FpartConfig::default()
    };
    let outcome = partition(&graph, constraints, &config).expect("returns best-so-far");
    assert_eq!(outcome.completion, Completion::Cancelled);
}

#[test]
fn degenerate_search_configs_are_rejected_up_front() {
    let (graph, constraints) = busy_workload();
    let config = FpartConfig::default();
    for (restarts, threads) in [(0usize, 1usize), (1, 0), (0, 0)] {
        let err = partition_restarts(&graph, constraints, &config, restarts, threads)
            .expect_err("invalid config");
        assert!(matches!(err, PartitionError::InvalidConfig { .. }), "{err:?}");
        let text = err.to_string();
        assert!(text.contains("at least 1"), "{text}");
        let err = partition_restarts_observed(&graph, constraints, &config, restarts, threads)
            .expect_err("invalid config");
        assert!(matches!(err, PartitionError::InvalidConfig { .. }), "{err:?}");
    }
}

/// An injected delay slows a restart down without changing its result —
/// the merge order is restart-index order, not completion order.
#[test]
fn delayed_restart_does_not_change_the_winner() {
    let (graph, constraints) = busy_workload();
    let plain =
        partition_restarts(&graph, constraints, &FpartConfig::default(), 3, 1).expect("partitions");
    let config = FpartConfig {
        fault_plan: Some(FaultPlan::delay_at(1, Duration::from_millis(30)).for_only_restart(0)),
        ..FpartConfig::default()
    };
    let delayed = partition_restarts(&graph, constraints, &config, 3, 4).expect("partitions");
    assert_eq!(delayed.assignment, plain.assignment);
    assert_eq!(delayed.completion, Completion::Complete);
}

/// A pass budget bounds the work: with the cap the run does fewer (or
/// equal) passes than without, and the counter records the stop.
#[test]
fn pass_budget_bounds_the_pass_count() {
    let (graph, constraints) = busy_workload();
    let free = {
        let mut obs = fpart_core::Observer::new(fpart_core::Metrics::enabled(), None);
        fpart_core::partition_observed(&graph, constraints, &FpartConfig::default(), &mut obs)
            .expect("partitions")
    };
    let free_passes = free.metrics.get(Counter::Passes);
    assert!(free_passes > 3, "workload must be non-trivial, got {free_passes} passes");

    let config = FpartConfig {
        budget: RunBudget { max_passes: Some(3), ..RunBudget::default() },
        ..FpartConfig::default()
    };
    let capped = {
        let mut obs = fpart_core::Observer::new(fpart_core::Metrics::enabled(), None);
        fpart_core::partition_observed(&graph, constraints, &config, &mut obs)
            .expect("returns best-so-far")
    };
    assert_eq!(capped.completion, Completion::Degraded);
    assert!(
        capped.metrics.get(Counter::Passes) <= 4,
        "cap of 3 allows at most the in-flight pass to finish, got {}",
        capped.metrics.get(Counter::Passes)
    );
    assert_eq!(capped.metrics.get(Counter::BudgetStops), 1);
    assert_structurally_valid(&graph, &capped);
}
