//! Determinism contract of the intra-run parallel stages, end to end:
//!
//! * **Multilevel invariance** — a single multilevel run (parallel
//!   matching, net projection, boundary pair refinement) returns a
//!   bit-identical outcome at 1 and 2–5 workers (property test).
//! * **Boundary-refine invariance** — the flat pairwise boundary
//!   refiner applied directly to a scrambled partition moves exactly
//!   the same cells at every worker count (property test).
//! * **ECO invariance** — repairing a randomized edit returns a
//!   bit-identical repair at 1 and 2–5 workers, on both the dirty-block
//!   path and the full-repartition fallback (property test).
//! * **Cancellation** — a cancelled token stops a parallel run at the
//!   next boundary with `Completion::Cancelled` and a full-coverage,
//!   structurally valid best-so-far assignment.
//! * **Worker panic containment** — a `FaultPlan` targeting one pair
//!   job panics inside a worker; the job's moves are dropped, the rest
//!   of the round commits, and the recovery is bit-identical at every
//!   worker count.
//! * **Observation neutrality** — instrumented and uninstrumented
//!   parallel runs return the same assignment.

use std::sync::Once;

use fpart_core::cost::CostEvaluator;
use fpart_core::refine::{refine_boundary_metered, RefineConfig};
use fpart_core::verify::{verify_assignment, Violation};
use fpart_core::{
    partition_multilevel, partition_multilevel_observed, repartition_eco, CancelToken, Completion,
    Counter, EcoConfig, EventSink, FaultPlan, FpartConfig, Heartbeat, Metrics, MultilevelConfig,
    Observer, PartitionState, RunBudget, SpanKind, TraceEvent,
};
use fpart_device::DeviceConstraints;
use fpart_hypergraph::gen::{clustered_circuit, window_circuit, ClusteredConfig, WindowConfig};
use fpart_hypergraph::{apply_script, EditOp, EditScript, Hypergraph};
use proptest::prelude::*;

/// Keeps deliberately injected panics out of the test output while
/// still printing real ones (same contract as `tests/robustness.rs`).
fn quiet_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected fault"));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Strategy: a random circuit plus constraints tight enough to need a
/// handful of devices, so boundary refinement sees several block pairs
/// per round (one pair would make the worker sweep trivially serial).
fn arb_workload() -> impl Strategy<Value = (Hypergraph, DeviceConstraints)> {
    (80usize..240, 6usize..20, any::<u64>(), 20u64..50, 30usize..70).prop_map(
        |(nodes, terminals, seed, s_max, t_max)| {
            let graph = window_circuit(&WindowConfig::new("par", nodes, terminals), seed);
            (graph, DeviceConstraints::new(s_max, t_max))
        },
    )
}

/// Small coarsening floor so even the proptest-sized circuits build a
/// real hierarchy and exercise the parallel matcher at several levels.
fn ml_config(workers: usize) -> MultilevelConfig {
    MultilevelConfig { coarsen_floor: 32, threads: workers, ..MultilevelConfig::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole acceptance property: one multilevel run is
    /// bit-identical at every worker count.
    #[test]
    fn multilevel_run_is_worker_count_invariant(
        (graph, constraints) in arb_workload(),
    ) {
        let config = FpartConfig::default();
        let reference = partition_multilevel(&graph, constraints, &config, &ml_config(1));
        for workers in 2usize..=5 {
            let parallel = partition_multilevel(&graph, constraints, &config, &ml_config(workers));
            match (&reference, &parallel) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a.assignment, &b.assignment, "workers={}", workers);
                    prop_assert_eq!(a.device_count, b.device_count);
                    prop_assert_eq!(a.cut, b.cut);
                    prop_assert_eq!(a.feasible, b.feasible);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(false, "divergent: {a:?} vs {b:?}"),
            }
        }
    }

    /// The flat boundary refiner commits the same moves at every worker
    /// count when pointed directly at a scrambled partition.
    #[test]
    fn boundary_refine_is_worker_count_invariant(
        clusters in 3usize..6,
        per_cluster in 10usize..30,
        seed in any::<u64>(),
        scramble in 2usize..6,
    ) {
        let (graph, planted) = clustered_circuit(
            &ClusteredConfig::new("par", clusters, per_cluster), seed);
        let mut scrambled = planted;
        for i in (0..scrambled.len()).step_by(scramble) {
            scrambled[i] = (scrambled[i] + 1) % clusters as u32;
        }
        let config = FpartConfig::default();
        let evaluator = CostEvaluator::new(
            DeviceConstraints::new(per_cluster as u64 + 5, 100),
            &config,
            clusters,
            graph.terminal_count(),
        );
        let run = |workers: usize| {
            let mut state =
                PartitionState::from_assignment(&graph, scrambled.clone(), clusters);
            let mut metrics = Metrics::enabled();
            let refine = RefineConfig { workers, ..RefineConfig::default() };
            let stats =
                refine_boundary_metered(&mut state, &evaluator, &config, &refine, None, &mut metrics);
            state.assert_consistent();
            let assignment: Vec<usize> =
                (0..graph.node_count()).map(|i| state.block_of(fpart_hypergraph::NodeId::from_index(i))).collect();
            (assignment, stats.moves, stats.improved, metrics)
        };
        let (ref_assignment, ref_moves, ref_improved, ref_metrics) = run(1);
        for workers in 2usize..=5 {
            let (assignment, moves, improved, metrics) = run(workers);
            prop_assert_eq!(&assignment, &ref_assignment, "workers={}", workers);
            prop_assert_eq!(moves, ref_moves);
            prop_assert_eq!(improved, ref_improved);
            // Deterministic counters merge identically; PairJobs counts
            // every dispatched job regardless of worker count.
            for counter in [Counter::PairJobs, Counter::BoundaryRefinements, Counter::PairPanics] {
                prop_assert_eq!(
                    metrics.get(counter), ref_metrics.get(counter), "{}", counter.name());
            }
        }
    }

    /// ECO repair (dirty-block path and fallback alike) is bit-identical
    /// at every worker count.
    #[test]
    fn eco_repair_is_worker_count_invariant(
        (graph, constraints) in arb_workload(),
        removals in 0usize..5,
        adds in 1usize..4,
        edit_seed in any::<u64>(),
    ) {
        let config = FpartConfig::default();
        let Ok(previous) = fpart_core::partition(&graph, constraints, &config) else {
            return Ok(()); // infeasible baseline: nothing to repair
        };
        let script = random_edit(&graph, removals, adds, edit_seed);
        let applied = apply_script(&graph, &script).expect("edit applies");
        let eco_at = |workers: usize| EcoConfig {
            multilevel: ml_config(workers),
            ..EcoConfig::default()
        };
        let reference = repartition_eco(
            &applied.graph, constraints, &config, &eco_at(1),
            &previous.assignment, &applied.node_map,
        ).expect("repairs at one worker");
        for workers in 2usize..=5 {
            let parallel = repartition_eco(
                &applied.graph, constraints, &config, &eco_at(workers),
                &previous.assignment, &applied.node_map,
            ).expect("repairs at any worker count");
            prop_assert_eq!(
                &parallel.outcome.assignment,
                &reference.outcome.assignment,
                "workers={}", workers
            );
            prop_assert_eq!(parallel.repaired, reference.repaired);
            prop_assert_eq!(parallel.dirty_blocks, reference.dirty_blocks);
            prop_assert_eq!(parallel.outcome.cut, reference.outcome.cut);
        }
    }
}

/// Same shape as the bench's capacity-balanced script: deterministic
/// removals spread over the design plus fresh cells wired to survivors.
fn random_edit(graph: &Hypergraph, removals: usize, adds: usize, seed: u64) -> EditScript {
    let n = graph.node_count();
    let mut ops = Vec::new();
    let mut removed = std::collections::HashSet::new();
    for i in 0..removals.min(n.saturating_sub(2)) {
        let idx =
            ((seed.wrapping_mul(2_654_435_761).wrapping_add(i as u64 * 97)) % n as u64) as usize;
        if removed.insert(idx) {
            let v = graph.node_ids().nth(idx).expect("index in range");
            ops.push(EditOp::RemoveNode { name: graph.node_name(v).to_owned() });
        }
    }
    let survivor =
        graph.node_ids().find(|v| !removed.contains(&v.index())).expect("removals leave survivors");
    for i in 0..adds {
        let name = format!("par_add_{i}");
        ops.push(EditOp::AddNode { name: name.clone(), size: 1 });
        ops.push(EditOp::AddNet {
            name: format!("par_net_{i}"),
            pins: vec![name, graph.node_name(survivor).to_owned()],
        });
    }
    EditScript::new(ops)
}

/// A workload whose multilevel run reliably refines several block pairs
/// per round, so pair jobs actually fan out across workers.
fn busy_workload() -> (Hypergraph, DeviceConstraints) {
    (window_circuit(&WindowConfig::new("busy", 400, 24), 7), DeviceConstraints::new(40, 60))
}

/// A pre-cancelled token stops the parallel run at the next check with
/// a verifiable degraded result — the workers all observe the shared
/// token, so no pair job can commit after the stop latches.
#[test]
fn cancellation_during_parallel_run_degrades_verifiably() {
    let (graph, constraints) = busy_workload();
    for workers in [1usize, 4] {
        let cancel = CancelToken::new();
        cancel.cancel();
        let config = FpartConfig {
            budget: RunBudget { cancel: Some(cancel), ..RunBudget::default() },
            ..FpartConfig::default()
        };
        let outcome = partition_multilevel(&graph, constraints, &config, &ml_config(workers))
            .expect("returns best-so-far");
        assert_eq!(outcome.completion, Completion::Cancelled, "workers={workers}");
        assert_eq!(outcome.assignment.len(), graph.node_count());
        let v = verify_assignment(
            &graph,
            &outcome.assignment,
            outcome.device_count,
            DeviceConstraints::new(u64::MAX, usize::MAX),
        );
        let structural: Vec<&Violation> = v
            .violations
            .iter()
            .filter(|x| {
                matches!(
                    x,
                    Violation::WrongLength { .. }
                        | Violation::BlockOutOfRange { .. }
                        | Violation::EmptyBlock { .. }
                )
            })
            .collect();
        assert!(structural.is_empty(), "workers={workers}: {structural:?}");
    }
}

/// A fault plan aimed at one pair job panics inside the worker that
/// runs it; the engine drops that job's moves, keeps the round's other
/// commits, counts the panic, and recovers bit-identically at every
/// worker count.
#[test]
fn targeted_pair_job_panic_recovers_deterministically() {
    quiet_injected_panics();
    let (graph, constraints) = busy_workload();
    let clean = partition_multilevel(&graph, constraints, &FpartConfig::default(), &ml_config(1))
        .expect("clean run partitions");

    let config = FpartConfig {
        fault_plan: Some(FaultPlan::panic_at(1, "pair worker down").for_only_pair_job(0)),
        ..FpartConfig::default()
    };
    let mut reference: Option<(Vec<u32>, u64, u64)> = None;
    for workers in [1usize, 2, 4] {
        let mut obs = Observer::new(Metrics::enabled(), None);
        let outcome = partition_multilevel_observed(
            &graph,
            constraints,
            &config,
            &ml_config(workers),
            &mut obs,
        )
        .expect("survives the worker panic");
        let panics = obs.metrics.get(Counter::PairPanics);
        let jobs = obs.metrics.get(Counter::PairJobs);
        assert!(panics >= 1, "workers={workers}: the targeted job must panic, got {panics}");
        assert!(jobs > panics, "workers={workers}: other pair jobs must still run");
        let row = (outcome.assignment, panics, jobs);
        match &reference {
            None => reference = Some(row),
            Some(expected) => assert_eq!(expected, &row, "workers={workers}"),
        }
    }

    // The panicked job only loses its own moves; the run still returns
    // a full-coverage structurally valid partition (it may differ from
    // the clean run — a refinement region was dropped).
    let (assignment, _, _) = reference.expect("three runs completed");
    assert_eq!(assignment.len(), clean.assignment.len());
}

/// Metrics recording must not steer the parallel stages: instrumented
/// and uninstrumented runs return the same assignment.
#[test]
fn observation_does_not_change_parallel_results() {
    let (graph, constraints) = busy_workload();
    let config = FpartConfig::default();
    for workers in [1usize, 4] {
        let plain = partition_multilevel(&graph, constraints, &config, &ml_config(workers))
            .expect("partitions");
        let mut obs = Observer::new(Metrics::enabled(), None);
        let observed = partition_multilevel_observed(
            &graph,
            constraints,
            &config,
            &ml_config(workers),
            &mut obs,
        )
        .expect("partitions");
        assert_eq!(plain.assignment, observed.assignment, "workers={workers}");
        assert_eq!(plain.cut, observed.cut);
        assert!(obs.metrics.get(Counter::PairJobs) > 0, "pair jobs must be metered");
    }
}

/// The span profiler's deterministic-merge contract: a fully
/// instrumented multilevel run produces the same span records (kinds,
/// levels, parents, counts, stats, counter deltas — wall times are
/// outside the contract and excluded from equality) at every worker
/// count, and the whole registry compares equal via `Metrics`'
/// span-aware `PartialEq`.
#[test]
fn span_profile_is_worker_count_invariant() {
    let (graph, constraints) = busy_workload();
    let config = FpartConfig::default();
    let run = |workers: usize| {
        let mut obs = Observer::new(Metrics::enabled(), None);
        let outcome = partition_multilevel_observed(
            &graph,
            constraints,
            &config,
            &ml_config(workers),
            &mut obs,
        )
        .expect("partitions");
        (outcome.assignment, obs.metrics)
    };
    let (ref_assignment, ref_metrics) = run(1);
    let kinds: Vec<SpanKind> = ref_metrics.spans().records().iter().map(|r| r.kind).collect();
    for kind in
        [SpanKind::CoarsenLevel, SpanKind::Initial, SpanKind::RefineLevel, SpanKind::PairJob]
    {
        assert!(kinds.contains(&kind), "expected a {} span, got {kinds:?}", kind.as_str());
    }
    for workers in [2usize, 4] {
        let (assignment, metrics) = run(workers);
        assert_eq!(assignment, ref_assignment, "workers={workers}");
        // SpanStack equality covers kinds, levels, parents, counts,
        // stats, and counter deltas; wall times are excluded (the
        // improve-time histograms bucket wall clocks, so they are
        // likewise compared counter-by-counter, not wholesale).
        assert_eq!(
            metrics.spans(),
            ref_metrics.spans(),
            "workers={workers}: span records must merge identically"
        );
        for counter in Counter::ALL {
            assert_eq!(
                metrics.get(counter),
                ref_metrics.get(counter),
                "workers={workers}: {}",
                counter.name()
            );
        }
    }
}

/// Counts heartbeat events without otherwise reacting to them.
#[derive(Default)]
struct ProgressCounter {
    progress: usize,
}

impl EventSink for ProgressCounter {
    fn record_event(&mut self, event: &TraceEvent) {
        if matches!(event, TraceEvent::Progress { .. }) {
            self.progress += 1;
        }
    }
}

/// Live progress streaming must not steer the search either: with an
/// unthrottled heartbeat attached, the run emits progress events at 1
/// and 4 workers and still returns the plain run's assignment.
#[test]
fn progress_streaming_does_not_change_parallel_results() {
    let (graph, constraints) = busy_workload();
    let config = FpartConfig::default();
    for workers in [1usize, 4] {
        let plain = partition_multilevel(&graph, constraints, &config, &ml_config(workers))
            .expect("partitions");
        let mut sink = ProgressCounter::default();
        let mut obs = Observer::new(Metrics::enabled(), Some(&mut sink));
        obs.heartbeat = Heartbeat::every(std::time::Duration::ZERO);
        let observed = partition_multilevel_observed(
            &graph,
            constraints,
            &config,
            &ml_config(workers),
            &mut obs,
        )
        .expect("partitions");
        assert_eq!(plain.assignment, observed.assignment, "workers={workers}");
        assert!(sink.progress > 0, "workers={workers}: an unthrottled heartbeat must tick");
    }
}
