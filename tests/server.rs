//! Protocol-level tests of the sessionful partition server.
//!
//! Covers the PR-9 acceptance gates: a protocol `partition` is
//! bit-identical to the library search with the same seed/config,
//! cancelling an in-flight run yields a verifiable degraded/cancelled
//! outcome, and a corpus of malformed requests produces typed error
//! replies without ever dropping the connection.

use std::io::{BufRead, BufReader, Cursor, Write};
use std::path::PathBuf;

use fpart_core::server::protocol;
use fpart_core::{
    partition_multilevel_restarts, verify_assignment, FpartConfig, Json, MultilevelConfig, Server,
    ServerConfig,
};
use fpart_device::DeviceConstraints;
use fpart_hypergraph::gen::{rent_circuit, window_circuit, RentConfig, WindowConfig};
use fpart_hypergraph::Hypergraph;

use proptest::prelude::*;

fn write_netlist(name: &str, graph: &Hypergraph) -> PathBuf {
    let dir = std::env::temp_dir().join("fpart_server_it");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}.fhg"));
    let file = std::fs::File::create(&path).unwrap();
    fpart_hypergraph::io::write_netlist(file, graph).unwrap();
    path
}

fn parse_lines(out: &[u8]) -> Vec<Json> {
    String::from_utf8(out.to_vec())
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad reply line `{l}`: {e}")))
        .collect()
}

fn final_reply<'a>(replies: &'a [Json], id: &str) -> &'a Json {
    replies
        .iter()
        .find(|r| r.get("id").and_then(Json::as_str) == Some(id) && r.get("ok").is_some())
        .unwrap_or_else(|| panic!("no final reply for id {id}"))
}

fn assignment_of(result: &Json) -> Vec<u32> {
    result
        .get("assignment")
        .and_then(Json::as_array)
        .expect("result carries the assignment")
        .iter()
        .map(|v| u32::try_from(v.as_u64().unwrap()).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A protocol `partition` returns exactly what the library's
    /// restarts search returns for the same seed, restarts, and thread
    /// budget — streamed progress included (restarts == 1 path).
    #[test]
    fn protocol_partition_matches_library(
        nodes in 60usize..160,
        seed in 0u64..1000,
        restarts in 1usize..3,
        threads in 1usize..3,
        progress in any::<bool>(),
    ) {
        let graph = window_circuit(&WindowConfig::new("prop", nodes, 8), 11);
        let constraints = DeviceConstraints::new(40, 24);
        let path = write_netlist(&format!("prop_{nodes}_{seed}_{restarts}"), &graph);

        let server = Server::new(ServerConfig { threads, ..ServerConfig::default() });
        let mut out = Vec::new();
        server.handle(
            &format!(
                "{{\"id\": \"l\", \"cmd\": \"load\", \"session\": \"s\", \"path\": {}, \
                 \"s_max\": 40, \"t_max\": 24}}",
                protocol::json_string(path.to_str().unwrap())
            ),
            &mut out,
        );
        server.handle(
            &format!(
                "{{\"id\": \"p\", \"cmd\": \"partition\", \"session\": \"s\", \"seed\": {seed}, \
                 \"restarts\": {restarts}, \"threads\": {threads}, \"assignment\": true, \
                 \"progress\": {progress}}}"
            ),
            &mut out,
        );
        let replies = parse_lines(&out);
        let result = final_reply(&replies, "p").get("result").unwrap();

        let cfg = FpartConfig { seed, ..FpartConfig::default() };
        let expected = partition_multilevel_restarts(
            &graph,
            constraints,
            &cfg,
            &MultilevelConfig::default(),
            restarts,
            threads,
        )
        .unwrap();

        prop_assert_eq!(assignment_of(result), expected.assignment.clone());
        prop_assert_eq!(result.get("cut").unwrap().as_u64().unwrap() as usize, expected.cut);
        prop_assert_eq!(
            result.get("devices").unwrap().as_u64().unwrap() as usize,
            expected.device_count
        );
        prop_assert_eq!(
            result.get("completion").unwrap().as_str().unwrap(),
            expected.completion.as_str()
        );
    }
}

/// Cancelling an in-flight request stops it cooperatively and the
/// early outcome is still a verifiable partition of the session's
/// graph.
#[test]
fn cancel_mid_run_yields_verifiable_outcome() {
    let graph = rent_circuit(&RentConfig::new("cancel", 4000, 200), 3);
    let constraints = DeviceConstraints::new(250, 90);
    let path = write_netlist("cancel", &graph);

    let socket = std::env::temp_dir().join("fpart_server_it").join("cancel.sock");
    let server = Server::new(ServerConfig::default());
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.serve_unix(&socket));
        let mut stream = loop {
            match std::os::unix::net::UnixStream::connect(&socket) {
                Ok(stream) => break stream,
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        };
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap(); // hello banner
        assert!(line.contains("\"hello\""), "{line}");

        writeln!(
            stream,
            "{{\"id\": \"l\", \"cmd\": \"load\", \"session\": \"s\", \"path\": {}, \
             \"s_max\": 250, \"t_max\": 90}}",
            protocol::json_string(path.to_str().unwrap())
        )
        .unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\": true"), "{line}");

        // A many-restart run long enough for the cancel to land while
        // it is in flight.
        writeln!(
            stream,
            "{{\"id\": \"run\", \"cmd\": \"partition\", \"session\": \"s\", \
             \"restarts\": 16, \"assignment\": true}}"
        )
        .unwrap();
        writeln!(stream, "{{\"id\": \"c\", \"cmd\": \"cancel\", \"target\": \"run\"}}").unwrap();

        // The cancel reply comes back inline (the run holds the
        // worker); then the cancelled run's own final reply.
        let mut cancel_reply = None;
        let mut run_reply = None;
        while run_reply.is_none() {
            line.clear();
            reader.read_line(&mut line).unwrap();
            let doc = Json::parse(line.trim()).unwrap();
            match doc.get("id").and_then(Json::as_str) {
                Some("c") => cancel_reply = Some(doc),
                Some("run") if doc.get("ok").is_some() => run_reply = Some(doc),
                _ => {}
            }
        }
        let cancel_reply = cancel_reply.unwrap();
        assert_eq!(
            cancel_reply.get("result").unwrap().get("cancelled"),
            Some(&Json::Bool(true)),
            "cancel must find the in-flight run"
        );
        let result = run_reply.as_ref().unwrap().get("result").unwrap();
        let completion = result.get("completion").unwrap().as_str().unwrap();
        assert!(
            completion == "cancelled" || completion == "degraded",
            "cancelled run must not report a natural finish, got {completion}"
        );
        // The early outcome is still a complete, valid assignment.
        let assignment = assignment_of(result);
        let blocks = result.get("devices").unwrap().as_u64().unwrap() as usize;
        let verification = verify_assignment(&graph, &assignment, blocks, constraints);
        assert_eq!(assignment.len(), graph.node_count());
        assert!(
            verification.violations.iter().all(|v| !matches!(
                v,
                fpart_core::Violation::WrongLength { .. }
                    | fpart_core::Violation::BlockOutOfRange { .. }
            )),
            "cancelled outcome must still be structurally sound: {:?}",
            verification.violations
        );

        writeln!(stream, "{{\"id\": \"q\", \"cmd\": \"shutdown\"}}").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"shutdown\": true"), "{line}");
        handle.join().unwrap().unwrap();
    });
}

/// The malformed-request corpus: every hostile line gets a typed error
/// reply with the right code, and the connection keeps serving
/// afterwards (the final valid request succeeds).
#[test]
fn malformed_requests_get_typed_errors_and_never_disconnect() {
    let graph = window_circuit(&WindowConfig::new("mal", 80, 8), 5);
    let path = write_netlist("malformed", &graph);
    let load = format!(
        "{{\"id\": \"ok-load\", \"cmd\": \"load\", \"session\": \"s\", \"path\": {}, \
         \"s_max\": 40, \"t_max\": 24}}",
        protocol::json_string(path.to_str().unwrap())
    );

    let limits = fpart_hypergraph::ParseLimits { max_line_len: 512, ..Default::default() };
    let oversized =
        format!("{{\"id\": \"big\", \"cmd\": \"query\", \"pad\": \"{}\"}}", "x".repeat(600));
    let script = [
        "this is not json",                                               // parse_error
        "[1, 2, 3]",                                  // bad_request (not an object)
        "{\"cmd\": \"query\"}",                       // bad_request (no id)
        "{\"id\": \"u\", \"cmd\": \"transmogrify\"}", // unknown_command
        "{\"id\": \"w\", \"cmd\": \"partition\", \"session\": \"nope\"}", // unknown_session
        "{\"id\": \"e\", \"cmd\": \"eco\", \"session\": \"s\"}", // bad_request (no edits)
        "{\"id\": \"r\", \"cmd\": \"partition\", \"session\": \"s\", \"restarts\": 0}",
        &oversized, // line_too_long
        &load,      // valid
        "{\"id\": \"ok-run\", \"cmd\": \"partition\", \"session\": \"s\", \"seed\": 1}",
        "{\"id\": \"bye\", \"cmd\": \"shutdown\"}",
    ]
    .join("\n");

    let server = Server::new(ServerConfig { limits, ..ServerConfig::default() });
    let mut out = Vec::new();
    server.serve(Cursor::new(script), &mut out).unwrap();
    let replies = parse_lines(&out);

    let code_of = |idx: usize| {
        replies[idx].get("error").and_then(|e| e.get("code")).and_then(Json::as_str).unwrap()
    };
    assert!(replies[0].get("event").and_then(Json::as_str) == Some("hello"));
    assert_eq!(code_of(1), "parse_error");
    assert_eq!(code_of(2), "bad_request");
    assert_eq!(code_of(3), "bad_request");
    assert_eq!(code_of(4), "unknown_command");
    assert_eq!(code_of(5), "unknown_session");
    assert_eq!(code_of(6), "bad_request");
    assert_eq!(code_of(7), "bad_request");
    assert_eq!(code_of(8), "line_too_long");
    // The connection survived all of it: load + partition + shutdown
    // all succeeded.
    assert_eq!(final_reply(&replies, "ok-load").get("ok"), Some(&Json::Bool(true)));
    assert_eq!(final_reply(&replies, "ok-run").get("ok"), Some(&Json::Bool(true)));
    assert_eq!(final_reply(&replies, "bye").get("ok"), Some(&Json::Bool(true)));
}

/// Duplicate in-flight `partition` requests coalesce: the leader runs
/// the search once and the follower's reply is fanned out from the
/// same result (marked `"coalesced": true`), while a request with
/// different params still runs on its own.
#[test]
fn identical_concurrent_partitions_coalesce() {
    let graph = rent_circuit(&RentConfig::new("dedup", 2000, 120), 5);
    let path = write_netlist("dedup", &graph);
    let socket = std::env::temp_dir().join("fpart_server_it").join("dedup.sock");
    let server = Server::new(ServerConfig::default());
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.serve_unix(&socket));
        let mut stream = loop {
            match std::os::unix::net::UnixStream::connect(&socket) {
                Ok(stream) => break stream,
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        };
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap(); // hello banner
        writeln!(
            stream,
            "{{\"id\": \"l\", \"cmd\": \"load\", \"session\": \"s\", \"path\": {}, \
             \"s_max\": 150, \"t_max\": 60}}",
            protocol::json_string(path.to_str().unwrap())
        )
        .unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\": true"), "{line}");

        // Two byte-identical submits plus one that differs only in its
        // seed, sent back-to-back: p2 must join p1's run, p3 must not.
        let run = |id: &str, seed: u64| {
            format!(
                "{{\"id\": \"{id}\", \"cmd\": \"partition\", \"session\": \"s\", \
                 \"seed\": {seed}, \"restarts\": 2, \"assignment\": true}}"
            )
        };
        writeln!(stream, "{}", run("p1", 7)).unwrap();
        writeln!(stream, "{}", run("p2", 7)).unwrap();
        writeln!(stream, "{}", run("p3", 8)).unwrap();

        let mut finals: std::collections::HashMap<String, Json> = std::collections::HashMap::new();
        while finals.len() < 3 {
            line.clear();
            reader.read_line(&mut line).unwrap();
            let doc = Json::parse(line.trim()).unwrap();
            if doc.get("ok").is_some() {
                let id = doc.get("id").and_then(Json::as_str).unwrap().to_owned();
                finals.insert(id, doc);
            }
        }
        let result = |id: &str| finals[id].get("result").unwrap();
        for id in ["p1", "p2", "p3"] {
            assert_eq!(finals[id].get("ok"), Some(&Json::Bool(true)), "{id}");
        }
        assert_eq!(result("p1").get("coalesced"), None, "the leader ran for real");
        assert_eq!(
            result("p2").get("coalesced"),
            Some(&Json::Bool(true)),
            "the duplicate must be served from the leader's run"
        );
        assert_eq!(result("p3").get("coalesced"), None, "different seed, own run");
        assert_eq!(
            assignment_of(result("p1")),
            assignment_of(result("p2")),
            "fanned-out reply carries the identical assignment"
        );
        assert_eq!(result("p1").get("cut"), result("p2").get("cut"));

        // p3 ran for real: the session counted two actual runs and one
        // coalesced duplicate. (Comparing p3's assignment to p1's would
        // be fragile — different seeds may legitimately converge to the
        // same partition.)
        writeln!(stream, "{{\"id\": \"q\", \"cmd\": \"query\", \"session\": \"s\"}}").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        let q = Json::parse(line.trim()).unwrap();
        let qr = q.get("result").unwrap();
        assert_eq!(qr.get("requests").and_then(Json::as_u64), Some(2));
        let counters = qr.get("counters").unwrap();
        assert_eq!(counters.get("server_requests").and_then(Json::as_u64), Some(2));
        assert_eq!(counters.get("server_coalesced").and_then(Json::as_u64), Some(1));
        let fp = qr.get("fingerprint").and_then(Json::as_str).unwrap();
        assert_eq!(fp.len(), 32, "128-bit session fingerprint rendered as hex: {fp}");

        writeln!(stream, "{{\"id\": \"bye\", \"cmd\": \"shutdown\"}}").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"shutdown\": true"), "{line}");
        handle.join().unwrap().unwrap();
    });
}

/// Folded in from the old `deep_json_test.rs`: pathologically nested
/// input is a *typed* depth error, not a stack overflow — standalone
/// and over the wire (where it surfaces as a `parse_error` reply).
#[test]
fn deep_nesting_is_a_typed_error_not_a_crash() {
    let line = "[".repeat(400_000);
    let err = fpart_core::Json::parse(&line).unwrap_err();
    assert!(
        matches!(err, fpart_core::JsonParseError::TooDeep { limit: 128, .. }),
        "expected a typed depth error, got {err}"
    );

    let server = Server::new(ServerConfig::default());
    let mut out = Vec::new();
    let deep = format!("{}1{}", "[".repeat(200), "]".repeat(200));
    server.handle(&deep, &mut out);
    let replies = parse_lines(&out);
    assert_eq!(
        replies[0].get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
        Some("parse_error")
    );
    let message =
        replies[0].get("error").and_then(|e| e.get("message")).and_then(Json::as_str).unwrap();
    assert!(message.contains("128"), "depth limit named in the reply: {message}");
}

/// The eco flow over the protocol: partition, edit, repair; the
/// session's graph advances to the edited netlist.
#[test]
fn eco_round_trip_updates_the_session() {
    let graph = window_circuit(&WindowConfig::new("eco", 120, 8), 9);
    let path = write_netlist("eco", &graph);
    let server = Server::new(ServerConfig::default());
    let mut out = Vec::new();
    server.handle(
        &format!(
            "{{\"id\": \"1\", \"cmd\": \"load\", \"session\": \"s\", \"path\": {}, \
             \"s_max\": 40, \"t_max\": 24}}",
            protocol::json_string(path.to_str().unwrap())
        ),
        &mut out,
    );
    // Eco before any partition: typed error.
    server.handle(
        "{\"id\": \"early\", \"cmd\": \"eco\", \"session\": \"s\", \
         \"edits\": \"{\\\"op\\\": \\\"add_node\\\", \\\"name\\\": \\\"island\\\", \\\"size\\\": 1}\"}",
        &mut out,
    );
    server.handle(
        "{\"id\": \"2\", \"cmd\": \"partition\", \"session\": \"s\", \"seed\": 2}",
        &mut out,
    );
    // An island node edit is name-independent of the generated circuit.
    server.handle(
        "{\"id\": \"3\", \"cmd\": \"eco\", \"session\": \"s\", \
         \"edits\": \"{\\\"op\\\": \\\"add_node\\\", \\\"name\\\": \\\"island\\\", \\\"size\\\": 1}\"}",
        &mut out,
    );
    server.handle("{\"id\": \"4\", \"cmd\": \"query\", \"session\": \"s\"}", &mut out);
    let replies = parse_lines(&out);
    assert_eq!(
        final_reply(&replies, "early")
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("no_assignment")
    );
    let eco = final_reply(&replies, "3").get("result").unwrap();
    assert_eq!(eco.get("added_nodes").unwrap().as_u64(), Some(1));
    assert_eq!(eco.get("nodes").unwrap().as_u64(), Some(121));
    let q = final_reply(&replies, "4").get("result").unwrap();
    assert_eq!(q.get("nodes").unwrap().as_u64(), Some(121), "session graph advances");
    assert_eq!(q.get("requests").unwrap().as_u64(), Some(2));
}

/// Queue backpressure: submits beyond the session's bounded queue are
/// refused with `busy`, parked ones are acknowledged with `queued`,
/// and every accepted request still gets its final reply.
#[test]
fn bounded_queue_reports_busy_and_queued() {
    let graph = rent_circuit(&RentConfig::new("queue", 2500, 150), 8);
    let path = write_netlist("queue", &graph);
    let load = format!(
        "{{\"id\": \"l\", \"cmd\": \"load\", \"session\": \"s\", \"path\": {}, \
         \"s_max\": 200, \"t_max\": 80}}",
        protocol::json_string(path.to_str().unwrap())
    );
    // Queue capacity 2: the first run occupies the worker (or its
    // buffer slot), the second parks with a `queued` ack, and the
    // burst after that bounces with `busy`. Distinct seeds keep the
    // submits from coalescing — identical ones would dedup instead of
    // exercising the queue.
    let mut script = vec![load];
    for i in 0..6 {
        script.push(format!(
            "{{\"id\": \"r{i}\", \"cmd\": \"partition\", \"session\": \"s\", \
             \"seed\": {i}, \"restarts\": 4}}"
        ));
    }
    script.push("{\"id\": \"bye\", \"cmd\": \"shutdown\"}".to_owned());

    let server = Server::new(ServerConfig { queue_capacity: 2, ..ServerConfig::default() });
    let mut out = Vec::new();
    server.serve(Cursor::new(script.join("\n")), &mut out).unwrap();
    let replies = parse_lines(&out);

    let busy = replies
        .iter()
        .filter(|r| {
            r.get("error").and_then(|e| e.get("code")).and_then(Json::as_str) == Some("busy")
        })
        .count();
    let queued =
        replies.iter().filter(|r| r.get("event").and_then(Json::as_str) == Some("queued")).count();
    assert!(busy >= 1, "an overflowing submit must be refused: {replies:?}");
    assert!(queued >= 1, "a parked submit must be acknowledged: {replies:?}");
    // Every non-busy run got a final reply.
    let finals = replies
        .iter()
        .filter(|r| {
            r.get("ok") == Some(&Json::Bool(true))
                && r.get("id").and_then(Json::as_str).is_some_and(|id| id.starts_with('r'))
        })
        .count();
    assert_eq!(finals + busy, 6, "accepted + refused must cover all submits");
}
