//! Durability integration tests: crash-safe checkpoint/resume
//! bit-identity, torn-file atomicity, and typed rejection of hostile
//! or stale inputs — the cross-crate contracts behind `--checkpoint`,
//! `--resume`, and the `--max-*` limits.

use std::path::PathBuf;

use fpart_core::{
    fingerprint_run, partition_restarts_durable, read_checkpoint, write_checkpoint, AtomicFile,
    Checkpoint, CheckpointWriter, Counter, FpartConfig, MultilevelConfig, ReadCheckpointError,
    SCHEMA_VERSION,
};
use fpart_device::DeviceConstraints;
use fpart_hypergraph::gen::{window_circuit, WindowConfig};
use fpart_hypergraph::io::parse_netlist_limited;
use fpart_hypergraph::{Hypergraph, ParseLimits, ParseNetlistError};
use proptest::prelude::*;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fpart-durability-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn device() -> DeviceConstraints {
    DeviceConstraints::new(20, 24)
}

/// Runs the durable search end to end with a live [`CheckpointWriter`]
/// and returns the final on-disk checkpoint (every restart completed).
fn full_checkpoint(
    graph: &Hypergraph,
    config: &FpartConfig,
    ml: Option<&MultilevelConfig>,
    restarts: usize,
    dir: &std::path::Path,
) -> Checkpoint {
    let fp = fingerprint_run(graph, device(), config, ml, restarts);
    let path = dir.join("full.ckpt");
    let writer = CheckpointWriter::spawn(path.clone(), std::time::Duration::ZERO);
    partition_restarts_durable(graph, device(), config, ml, restarts, 1, fp, None, Some(&writer))
        .expect("search succeeds");
    let writes = writer.finish().expect("writer flushes");
    assert!(writes >= 1, "at least the final snapshot must hit disk");
    let checkpoint = read_checkpoint(&path).expect("final checkpoint parses");
    assert_eq!(checkpoint.completed.len(), restarts, "final snapshot covers every restart");
    checkpoint
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// SIGKILL at any restart boundary is recoverable: resuming from a
    /// checkpoint holding any prefix subset of completed restarts
    /// reproduces the uninterrupted run bit for bit — assignment, cut,
    /// device count, feasibility — at 1 and at 4 threads, flat and
    /// multilevel.
    #[test]
    fn resume_after_kill_at_any_restart_boundary_is_bit_identical(
        nodes in 30usize..70,
        seed in 0u64..500,
        restarts in 2usize..4,
        kill_after in 0usize..3,
        multilevel in any::<bool>(),
    ) {
        let kill_after = kill_after.min(restarts - 1); // 0..restarts-1 completed
        let graph = window_circuit(&WindowConfig::new("durability", nodes, 6), seed);
        let config = FpartConfig::default();
        let ml_cfg = MultilevelConfig { coarsen_floor: 16, ..MultilevelConfig::default() };
        let ml = multilevel.then_some(&ml_cfg);
        let fp = fingerprint_run(&graph, device(), &config, ml, restarts);

        let baseline =
            partition_restarts_durable(&graph, device(), &config, ml, restarts, 1, fp, None, None)
                .expect("baseline search succeeds");

        let dir = temp_dir("kill-resume");
        let full = full_checkpoint(&graph, &config, ml, restarts, &dir);
        // A kill after `kill_after` completions leaves exactly that
        // prefix in the last atomically-written snapshot.
        let torn = Checkpoint {
            completed: full.completed.into_iter().take(kill_after).collect(),
            ..full
        };
        let path = dir.join("torn.ckpt");
        write_checkpoint(&path, &torn).expect("write");
        let saved = read_checkpoint(&path).expect("round-trips");

        for threads in [1usize, 4] {
            let resumed = partition_restarts_durable(
                &graph, device(), &config, ml, restarts, threads, fp, Some(&saved), None,
            )
            .expect("resumed search succeeds");
            prop_assert_eq!(&resumed.outcome.assignment, &baseline.outcome.assignment);
            prop_assert_eq!(resumed.outcome.cut, baseline.outcome.cut);
            prop_assert_eq!(resumed.outcome.device_count, baseline.outcome.device_count);
            prop_assert_eq!(resumed.outcome.feasible, baseline.outcome.feasible);
            prop_assert_eq!(resumed.outcome.completion, baseline.outcome.completion);
            prop_assert_eq!(
                resumed.totals.get(Counter::RestartsResumed),
                kill_after as u64
            );
            // Totals stay the exact per-restart sum even when part of
            // the registries came off disk.
            for &counter in Counter::ALL.iter() {
                let sum: u64 =
                    resumed.per_restart.iter().map(|m| m.get(counter)).sum();
                prop_assert_eq!(resumed.totals.get(counter), sum);
            }
        }
    }

    /// `--max-name-len` violations carry the exact 1-based line and
    /// column of the offending token, wherever it sits in the file.
    #[test]
    fn name_limit_violations_report_exact_line_and_column(
        pad_nodes in 0usize..40,
        over in 1usize..30,
    ) {
        let limit = 8usize;
        let mut text = String::from("circuit prop\n");
        for i in 0..pad_nodes {
            text.push_str(&format!("node p{i} 1\n"));
        }
        let long = "x".repeat(limit + over);
        text.push_str(&format!("node {long} 1\n"));
        let limits = ParseLimits { max_name_len: limit, ..ParseLimits::unlimited() };
        let err = parse_netlist_limited(&text, &limits).unwrap_err();
        prop_assert_eq!(
            err,
            ParseNetlistError::LimitExceeded {
                line: 2 + pad_nodes, // `circuit` header + pads, 1-based
                column: 6,           // the name token after `node `
                what: "name length",
                limit,
            }
        );
    }

    /// `--max-nodes` violations point at the first record past the cap.
    #[test]
    fn node_count_violations_report_the_first_excess_record(
        cap in 1usize..20,
        extra in 1usize..10,
    ) {
        let mut text = String::new();
        for i in 0..cap + extra {
            text.push_str(&format!("node n{i} 1\n"));
        }
        let limits = ParseLimits { max_nodes: cap, ..ParseLimits::unlimited() };
        let err = parse_netlist_limited(&text, &limits).unwrap_err();
        prop_assert_eq!(
            err,
            ParseNetlistError::LimitExceeded {
                line: cap + 1,
                column: 1,
                what: "node count",
                limit: cap,
            }
        );
    }

    /// Truncating a checkpoint at any byte — the torn-file shapes a
    /// crash without atomic writes would produce — yields a typed
    /// `Malformed`/`Io` error, never a panic and never a silent
    /// partial resume.
    #[test]
    fn truncated_checkpoints_are_typed_errors(cut_permille in 0u32..1000) {
        let graph = window_circuit(&WindowConfig::new("trunc", 40, 4), 11);
        let config = FpartConfig::default();
        let dir = temp_dir("trunc");
        let full = full_checkpoint(&graph, &config, None, 2, &dir);
        let text = full.to_text();
        let cut = (text.len() as u64 * u64::from(cut_permille) / 1000) as usize;
        // Walk down to a char boundary (the text is ASCII, but keep
        // the test honest about the contract).
        let mut cut = cut.min(text.len());
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        match Checkpoint::parse(&text[..cut]) {
            // Cutting only trailing whitespace after the `end` sentinel
            // still parses — but then it must parse to the *same*
            // snapshot, never a silently shortened one.
            Ok(parsed) => prop_assert_eq!(parsed, full),
            Err(err) => prop_assert!(
                matches!(
                    err,
                    ReadCheckpointError::Malformed { .. }
                        | ReadCheckpointError::SchemaVersionMismatch { .. }
                ),
                "typed error, got {err:?}"
            ),
        }
    }
}

/// A checkpoint from another schema generation is rejected with the
/// typed mismatch error — not a parse failure deeper in the file.
#[test]
fn schema_version_mismatch_is_typed() {
    let text = format!(
        "#%fpart-checkpoint v{}\nfingerprint 1\nrestarts 1\ncompleted 0\nend\n",
        SCHEMA_VERSION - 1
    );
    let err = Checkpoint::parse(&text).unwrap_err();
    assert_eq!(
        err,
        ReadCheckpointError::SchemaVersionMismatch {
            found: SCHEMA_VERSION - 1,
            expected: SCHEMA_VERSION,
        }
    );
}

/// A checkpoint recorded for a different run (graph, device, config, or
/// restart count) refuses to merge.
#[test]
fn fingerprint_mismatch_refuses_to_merge() {
    let graph = window_circuit(&WindowConfig::new("fp", 40, 4), 3);
    let other = window_circuit(&WindowConfig::new("fp", 44, 4), 3);
    let config = FpartConfig::default();
    let fp = fingerprint_run(&graph, device(), &config, None, 2);
    let fp_other = fingerprint_run(&other, device(), &config, None, 2);
    assert_ne!(fp, fp_other, "different graphs must fingerprint differently");

    let dir = temp_dir("fp");
    let full = full_checkpoint(&graph, &config, None, 2, &dir);
    assert!(full.verify(fp).is_ok());
    assert_eq!(
        full.verify(fp_other),
        Err(ReadCheckpointError::FingerprintMismatch { found: fp, expected: fp_other })
    );
    let err = partition_restarts_durable(
        &other,
        device(),
        &config,
        None,
        2,
        1,
        fp_other,
        Some(&full),
        None,
    )
    .unwrap_err();
    assert!(err.to_string().contains("fingerprint"), "{err}");
}

/// A writer killed mid-write (simulated by dropping an [`AtomicFile`]
/// without commit) leaves the previous checkpoint intact and readable —
/// resume picks up from the older-but-consistent snapshot.
#[test]
fn kill_mid_checkpoint_write_preserves_the_previous_snapshot() {
    use std::io::Write as _;

    let graph = window_circuit(&WindowConfig::new("torn", 40, 4), 5);
    let config = FpartConfig::default();
    let dir = temp_dir("torn-write");
    let full = full_checkpoint(&graph, &config, None, 2, &dir);
    let path = dir.join("live.ckpt");
    write_checkpoint(&path, &full).expect("write");

    {
        let mut torn = AtomicFile::create(&path).expect("temp opens");
        torn.write_all(b"#%fpart-checkpoint v8\nfingerprint 99\nrest").expect("partial write");
        // Dropped without commit: the crash point.
    }
    let back = read_checkpoint(&path).expect("previous snapshot survives the torn write");
    assert_eq!(back, full);
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.contains(".tmp."))
        .collect();
    assert!(leftovers.is_empty(), "no temp litter: {leftovers:?}");

    let fp = fingerprint_run(&graph, device(), &config, None, 2);
    let resumed =
        partition_restarts_durable(&graph, device(), &config, None, 2, 1, fp, Some(&back), None)
            .expect("resume from the surviving snapshot");
    assert_eq!(resumed.totals.get(Counter::RestartsResumed), 2);
}
