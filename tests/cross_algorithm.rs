//! Cross-method integration: the ordering claims of the paper's tables
//! must hold between our implementations on the synthesized workloads.

use fpart_baselines::{fbb_mw_partition, first_fit_partition, kway_partition, FlowConfig};
use fpart_core::{partition, FpartConfig};
use fpart_device::Device;
use fpart_hypergraph::gen::{find_profile, synthesize_mcnc, Technology};

/// FPART never uses more devices than the recursive-FM baseline — the
/// paper's headline (Table 2: 180 vs 210).
#[test]
fn fpart_beats_or_ties_kway_everywhere() {
    let constraints = Device::XC3020.constraints(0.9);
    for name in ["c3540", "c5315", "c7552", "s5378", "s9234", "s13207"] {
        let graph = synthesize_mcnc(find_profile(name).expect("known"), Technology::Xc3000);
        let fpart = partition(&graph, constraints, &FpartConfig::default()).expect("fpart");
        let kway = kway_partition(&graph, constraints).expect("kway");
        assert!(fpart.feasible, "{name}: fpart infeasible");
        // An infeasible greedy result is a loss regardless of its count.
        assert!(
            !kway.feasible || fpart.device_count <= kway.device_count,
            "{name}: fpart {} > kway {}",
            fpart.device_count,
            kway.device_count
        );
    }
}

/// Every serious method beats naive first-fit.
#[test]
fn everyone_beats_naive() {
    let constraints = Device::XC3020.constraints(0.9);
    for name in ["c3540", "s9234"] {
        let graph = synthesize_mcnc(find_profile(name).expect("known"), Technology::Xc3000);
        let naive = first_fit_partition(&graph, constraints);
        let fpart = partition(&graph, constraints, &FpartConfig::default()).expect("fpart");
        let flow = fbb_mw_partition(&graph, constraints, &FlowConfig::default()).expect("flow");
        assert!(fpart.device_count < naive.device_count, "{name} fpart vs naive");
        assert!(flow.device_count < naive.device_count, "{name} flow vs naive");
    }
}

/// All methods produce structurally valid partitions of the same circuit
/// (validated independently by `BaselineOutcome::validate`).
#[test]
fn all_methods_produce_valid_partitions() {
    let constraints = Device::XC3042.constraints(0.9);
    let graph = synthesize_mcnc(find_profile("s5378").expect("known"), Technology::Xc3000);

    let kway = kway_partition(&graph, constraints).expect("kway");
    kway.validate(&graph, constraints);

    let flow = fbb_mw_partition(&graph, constraints, &FlowConfig::default()).expect("flow");
    flow.validate(&graph, constraints);

    let naive = first_fit_partition(&graph, constraints);
    naive.validate(&graph, constraints);

    let fpart = partition(&graph, constraints, &FpartConfig::default()).expect("fpart");
    // Adapt the core outcome to the same validator.
    let as_baseline = fpart_baselines::BaselineOutcome {
        assignment: fpart.assignment.clone(),
        device_count: fpart.device_count,
        feasible: fpart.feasible,
        cut: fpart.cut,
    };
    as_baseline.validate(&graph, constraints);
}

/// The ablated (classical) configuration is never better than the full
/// FPART configuration on the paper workloads — each §3 device earns its
/// keep.
#[test]
fn full_config_dominates_classical_config() {
    let constraints = Device::XC3020.constraints(0.9);
    for name in ["c5315", "s9234", "s13207"] {
        let graph = synthesize_mcnc(find_profile(name).expect("known"), Technology::Xc3000);
        let full = partition(&graph, constraints, &FpartConfig::default()).expect("full");
        let classical =
            partition(&graph, constraints, &FpartConfig::classical()).expect("classical");
        assert!(
            full.device_count <= classical.device_count,
            "{name}: full {} > classical {}",
            full.device_count,
            classical.device_count
        );
    }
}

/// I/O-critical circuit: c5315 (301 IOBs) exceeds its size-only bound on
/// XC3020 for every method, exactly as in the paper (M = 7, all methods
/// ≥ 8).
#[test]
fn io_critical_circuit_exceeds_size_bound() {
    let constraints = Device::XC3020.constraints(0.9);
    let graph = synthesize_mcnc(find_profile("c5315").expect("known"), Technology::Xc3000);
    let fpart = partition(&graph, constraints, &FpartConfig::default()).expect("fpart");
    assert!(fpart.feasible);
    assert!(
        fpart.device_count > fpart.lower_bound,
        "expected I/O pressure to push c5315 above its size bound"
    );
}
