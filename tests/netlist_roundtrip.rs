//! Text-format integration: circuits survive a write/parse round trip
//! with identical structure and identical partitioning results.

use fpart_core::{partition, FpartConfig};
use fpart_device::DeviceConstraints;
use fpart_hypergraph::gen::{
    clustered_circuit, layered_circuit, window_circuit, ClusteredConfig, LayeredConfig,
    WindowConfig,
};
use fpart_hypergraph::io::{netlist_to_string, parse_netlist};
use fpart_hypergraph::Hypergraph;

fn assert_same_structure(a: &Hypergraph, b: &Hypergraph) {
    assert_eq!(a.name(), b.name());
    assert_eq!(a.node_count(), b.node_count());
    assert_eq!(a.net_count(), b.net_count());
    assert_eq!(a.terminal_count(), b.terminal_count());
    assert_eq!(a.total_size(), b.total_size());
    for (na, nb) in a.net_ids().zip(b.net_ids()) {
        assert_eq!(a.net_name(na), b.net_name(nb));
        let pins_a: Vec<&str> = a.pins(na).iter().map(|&p| a.node_name(p)).collect();
        let pins_b: Vec<&str> = b.pins(nb).iter().map(|&p| b.node_name(p)).collect();
        assert_eq!(pins_a, pins_b);
    }
    for (ta, tb) in a.terminal_ids().zip(b.terminal_ids()) {
        assert_eq!(a.terminal_name(ta), b.terminal_name(tb));
        assert_eq!(a.net_name(a.terminal_net(ta)), b.net_name(b.terminal_net(tb)));
    }
}

#[test]
fn window_circuit_roundtrips() {
    let g = window_circuit(&WindowConfig::new("w", 300, 24), 5);
    let text = netlist_to_string(&g);
    let parsed = parse_netlist(&text).expect("parses back");
    assert_same_structure(&g, &parsed);
}

#[test]
fn layered_circuit_roundtrips() {
    let g = layered_circuit(&LayeredConfig::new("dag", 6, 10), 3);
    let parsed = parse_netlist(&netlist_to_string(&g)).expect("parses back");
    assert_same_structure(&g, &parsed);
}

#[test]
fn clustered_circuit_roundtrips() {
    let (g, _) = clustered_circuit(&ClusteredConfig::new("cl", 3, 12), 1);
    let parsed = parse_netlist(&netlist_to_string(&g)).expect("parses back");
    assert_same_structure(&g, &parsed);
}

/// Partitioning the parsed copy gives the identical result — the text
/// format carries everything the algorithms see.
#[test]
fn partition_is_identical_across_roundtrip() {
    let g = window_circuit(&WindowConfig::new("w", 250, 30), 11);
    let parsed = parse_netlist(&netlist_to_string(&g)).expect("parses back");
    let constraints = DeviceConstraints::new(40, 48);
    let a = partition(&g, constraints, &FpartConfig::default()).expect("original");
    let b = partition(&parsed, constraints, &FpartConfig::default()).expect("parsed");
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.device_count, b.device_count);
    assert_eq!(a.cut, b.cut);
}

/// Sizes above one survive the round trip (regression guard: the format
/// must not assume unit sizes).
#[test]
fn sized_nodes_roundtrip() {
    let mut cfg = WindowConfig::new("sized", 120, 10);
    cfg.extra_size_prob = 0.5;
    let g = window_circuit(&cfg, 7);
    let parsed = parse_netlist(&netlist_to_string(&g)).expect("parses back");
    for (a, b) in g.node_ids().zip(parsed.node_ids()) {
        assert_eq!(g.node_size(a), parsed.node_size(b));
    }
}
