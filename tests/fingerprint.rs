//! Incremental-fingerprint contracts (PR 10 acceptance gates).
//!
//! Two properties anchor the memo subsystem:
//!
//! * **Incrementality** — for any valid [`EditScript`], the XOR delta
//!   reported by [`apply_script`] advances the pre-edit fingerprint to
//!   exactly the from-scratch fingerprint of the edited graph. (Debug
//!   builds also assert this inside `apply_script`; the proptest here
//!   pins the *public* contract, release mode included.)
//! * **Separation** — a 10k-sample corpus of structurally distinct
//!   graphs produces 10k distinct fingerprints. A 128-bit hash cannot
//!   collide by chance at this scale, so any collision is a
//!   construction bug (a token that ignores sizes, wiring, or names).

use std::collections::HashSet;

use fpart_hypergraph::gen::{rent_circuit, window_circuit, RentConfig, WindowConfig};
use fpart_hypergraph::{
    apply_script, fingerprint_graph, order_checksum, EditOp, EditScript, Fingerprint, Hypergraph,
    HypergraphBuilder, NetId, NodeId,
};

use proptest::prelude::*;

/// Mirror of the live graph that [`materialize`] edits against, so
/// every generated op is valid by construction. The cascade rules
/// match `apply_script`: removing a node drops its pins, and a net
/// left pinless (by node removal or disconnect) is removed too.
struct Model {
    nodes: Vec<String>,
    nets: Vec<(String, Vec<String>)>,
    fresh: usize,
}

impl Model {
    fn of(graph: &Hypergraph) -> Model {
        let nodes =
            (0..graph.node_count()).map(|i| graph.node_name(NodeId::from_index(i)).to_owned());
        let nets = (0..graph.net_count()).map(|i| {
            let net = NetId::from_index(i);
            let pins =
                graph.pins(net).iter().map(|&n| graph.node_name(n).to_owned()).collect::<Vec<_>>();
            (graph.net_name(net).to_owned(), pins)
        });
        Model { nodes: nodes.collect(), nets: nets.collect(), fresh: 0 }
    }

    fn drop_node(&mut self, name: &str) {
        self.nodes.retain(|n| n != name);
        for (_, pins) in &mut self.nets {
            pins.retain(|p| p != name);
        }
        self.nets.retain(|(_, pins)| !pins.is_empty());
    }
}

/// Turns raw proptest entropy into a valid edit script: each tuple is
/// (op selector, two index seeds, a size), resolved against the model.
/// Choices that cannot apply (e.g. disconnect on an empty graph) fall
/// through to an always-valid `add_node`.
fn materialize(graph: &Hypergraph, raw: &[(u8, u16, u16, u32)]) -> EditScript {
    let mut model = Model::of(graph);
    let mut ops = Vec::new();
    for &(choice, a, b, size) in raw {
        let a = a as usize;
        let b = b as usize;
        let op = match choice {
            1 if model.nodes.len() > 2 => {
                let name = model.nodes[a % model.nodes.len()].clone();
                model.drop_node(&name);
                EditOp::RemoveNode { name }
            }
            2 if !model.nodes.is_empty() => {
                let name = model.nodes[a % model.nodes.len()].clone();
                EditOp::ResizeNode { name, size }
            }
            3 if !model.nodes.is_empty() => {
                // 1-3 distinct pins drawn from a window of the node list.
                let want = 1 + b % 3;
                let mut pins = Vec::new();
                for k in 0..model.nodes.len().min(want) {
                    pins.push(model.nodes[(a + k) % model.nodes.len()].clone());
                }
                pins.sort();
                pins.dedup();
                let name = format!("pnet{}", model.fresh);
                model.fresh += 1;
                model.nets.push((name.clone(), pins.clone()));
                EditOp::AddNet { name, pins }
            }
            4 if !model.nets.is_empty() => {
                let (name, _) = model.nets.swap_remove(a % model.nets.len());
                EditOp::RemoveNet { name }
            }
            5 if !model.nets.is_empty() && !model.nodes.is_empty() => {
                let net_idx = a % model.nets.len();
                let node = model.nodes[b % model.nodes.len()].clone();
                if model.nets[net_idx].1.contains(&node) {
                    continue; // already a pin; connect would be refused
                }
                model.nets[net_idx].1.push(node.clone());
                EditOp::ConnectPin { net: model.nets[net_idx].0.clone(), node }
            }
            6 if !model.nets.is_empty() => {
                let net_idx = a % model.nets.len();
                let (net, pins) = &mut model.nets[net_idx];
                let net = net.clone();
                let node = pins.swap_remove(b % pins.len());
                if pins.is_empty() {
                    model.nets.swap_remove(net_idx);
                }
                EditOp::DisconnectPin { net, node }
            }
            _ => {
                let name = format!("pnode{}", model.fresh);
                model.fresh += 1;
                model.nodes.push(name.clone());
                EditOp::AddNode { name, size }
            }
        };
        ops.push(op);
    }
    EditScript::new(ops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Acceptance gate (a): incremental fingerprint after any random
    /// edit script equals the from-scratch recompute.
    #[test]
    fn incremental_fingerprint_equals_recompute_after_any_script(
        nodes in 15usize..60,
        seed in 0u64..400,
        raw in proptest::collection::vec(
            (0u8..7, any::<u16>(), any::<u16>(), 1u32..9),
            0..32,
        ),
    ) {
        let graph = window_circuit(&WindowConfig::new("fpedit", nodes, 6), seed);
        let script = materialize(&graph, &raw);
        let applied = apply_script(&graph, &script)
            .expect("materialize only emits valid ops");
        let incremental = fingerprint_graph(&graph) ^ applied.fingerprint_delta;
        prop_assert_eq!(incremental, fingerprint_graph(&applied.graph));
        // Delta composes backwards too: XOR is its own inverse.
        prop_assert_eq!(
            incremental ^ applied.fingerprint_delta,
            fingerprint_graph(&graph)
        );
    }
}

/// Acceptance gate (b): >=10k structurally distinct graphs, zero
/// fingerprint collisions. Three families stress different token
/// paths: node sizes alone, wiring alone, and whole generated
/// circuits.
#[test]
fn ten_thousand_distinct_graphs_never_collide() {
    let mut seen: HashSet<Fingerprint> = HashSet::new();
    let mut orders: HashSet<(Fingerprint, u64)> = HashSet::new();
    let mut check = |graph: &Hypergraph, what: &str| {
        let fp = fingerprint_graph(graph);
        assert!(seen.insert(fp), "fingerprint collision in family {what}");
        assert!(
            orders.insert((fp, order_checksum(graph))),
            "(fingerprint, order) collision in family {what}"
        );
    };

    // Family 1: fixed wiring, node sizes enumerate 0..4000 in base 10
    // — only the size tokens separate these graphs.
    for i in 0u32..4000 {
        let mut b = HypergraphBuilder::named("sizes");
        let digits = [i % 10, (i / 10) % 10, (i / 100) % 10, (i / 1000) % 10];
        let ids: Vec<NodeId> =
            digits.iter().enumerate().map(|(j, d)| b.add_node(format!("n{j}"), d + 1)).collect();
        b.add_net("e0", [ids[0], ids[1]]).unwrap();
        b.add_net("e1", [ids[2], ids[3]]).unwrap();
        check(&b.finish().unwrap(), "sizes");
    }

    // Family 2: fixed sizes, wiring enumerates all 4096 subsets of 12
    // candidate two-pin nets over 8 nodes — only the (net, pin) tokens
    // separate these graphs.
    let pairs: [(usize, usize); 12] = [
        (0, 1),
        (0, 2),
        (0, 3),
        (1, 2),
        (1, 3),
        (2, 3),
        (4, 5),
        (4, 6),
        (4, 7),
        (5, 6),
        (5, 7),
        (6, 7),
    ];
    for mask in 0u32..4096 {
        let mut b = HypergraphBuilder::named("wires");
        let ids: Vec<NodeId> = (0..8).map(|j| b.add_node(format!("n{j}"), 1)).collect();
        for (j, &(x, y)) in pairs.iter().enumerate() {
            if mask & (1 << j) != 0 {
                b.add_net(format!("e{j}"), [ids[x], ids[y]]).unwrap();
            }
        }
        check(&b.finish().unwrap(), "wires");
    }

    // Family 3: 2000 whole generated circuits across sizes and seeds.
    for i in 0u64..1000 {
        let nodes = 40 + (i % 50) as usize;
        let seed = i / 50;
        check(&window_circuit(&WindowConfig::new("corpus", nodes, 8), seed), "window");
        check(&rent_circuit(&RentConfig::new("corpus", nodes, 10), seed), "rent");
    }

    assert!(seen.len() >= 10_000, "corpus too small: {}", seen.len());
}

/// The order checksum separates graphs whose XOR fingerprint is
/// legitimately equal: same content inserted in a different id order.
#[test]
fn order_checksum_separates_insertion_orders() {
    let mut fwd = HypergraphBuilder::named("ord");
    let a = fwd.add_node("a", 1);
    let b = fwd.add_node("b", 2);
    fwd.add_net("e", [a, b]).unwrap();
    let fwd = fwd.finish().unwrap();

    let mut rev = HypergraphBuilder::named("ord");
    let b2 = rev.add_node("b", 2);
    let a2 = rev.add_node("a", 1);
    rev.add_net("e", [a2, b2]).unwrap();
    let rev = rev.finish().unwrap();

    assert_eq!(
        fingerprint_graph(&fwd),
        fingerprint_graph(&rev),
        "XOR composition is insertion-order-insensitive by design"
    );
    assert_ne!(
        order_checksum(&fwd),
        order_checksum(&rev),
        "the order checksum must pin the id assignment"
    );
}
