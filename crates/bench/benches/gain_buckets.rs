//! Microbenchmark: gain-bucket operations (the FM inner-loop data
//! structure, §3.7).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fpart_core::bucket::GainBucket;

fn bench_buckets(c: &mut Criterion) {
    let n = 4096usize;
    let p_max = 16usize;

    c.bench_function("bucket_insert_4096", |b| {
        b.iter_batched(
            || GainBucket::new(n, p_max),
            |mut bucket| {
                for cell in 0..n as u32 {
                    bucket.insert(cell, (cell as i32 % 33) - 16);
                }
                bucket
            },
            BatchSize::SmallInput,
        );
    });

    c.bench_function("bucket_adjust_4096", |b| {
        let mut filled = GainBucket::new(n, p_max);
        for cell in 0..n as u32 {
            filled.insert(cell, (cell as i32 % 33) - 16);
        }
        b.iter_batched(
            || filled.clone(),
            |mut bucket| {
                for cell in 0..n as u32 {
                    let delta = if cell % 2 == 0 { 1 } else { -1 };
                    let g = bucket.gain_of(cell);
                    if (-(p_max as i32)..=p_max as i32).contains(&(g + delta)) {
                        bucket.adjust(cell, delta);
                    }
                }
                bucket
            },
            BatchSize::SmallInput,
        );
    });

    c.bench_function("bucket_pop_best_4096", |b| {
        let mut filled = GainBucket::new(n, p_max);
        for cell in 0..n as u32 {
            filled.insert(cell, (cell as i32 % 33) - 16);
        }
        b.iter_batched(
            || filled.clone(),
            |mut bucket| {
                while let Some(g) = bucket.max_gain() {
                    let cell = *bucket.cells_at(g).last().expect("non-empty bucket");
                    bucket.remove(cell);
                }
                bucket
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_buckets);
criterion_main!(benches);
