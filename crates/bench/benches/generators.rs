//! Microbenchmark: synthetic-circuit generation and coarsening — the
//! workload-preparation substrate every experiment pays for.

use criterion::{criterion_group, criterion_main, Criterion};
use fpart_hypergraph::coarsen::{coarsen_by_connectivity, coarsen_to_floor};
use fpart_hypergraph::gen::{find_profile, rent_circuit, synthesize_mcnc, RentConfig, Technology};

fn bench_generators(c: &mut Criterion) {
    c.bench_function("rent_circuit_1000", |b| {
        let config = RentConfig::new("bench", 1000, 100);
        b.iter(|| rent_circuit(&config, 7).node_count());
    });

    c.bench_function("synthesize_s13207", |b| {
        let profile = find_profile("s13207").expect("profile");
        b.iter(|| synthesize_mcnc(profile, Technology::Xc3000).net_count());
    });

    let graph = synthesize_mcnc(find_profile("s13207").expect("profile"), Technology::Xc3000);
    c.bench_function("coarsen_s13207", |b| {
        b.iter(|| coarsen_by_connectivity(&graph, 6, 3).coarse.node_count());
    });

    // The full n-level hierarchy (coarsen until the floor), the setup
    // cost every multilevel V-cycle pays before its coarse partition.
    c.bench_function("coarsen_to_floor_s13207", |b| {
        b.iter(|| coarsen_to_floor(&graph, 6, 64, 64, 3).level_count());
    });
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
