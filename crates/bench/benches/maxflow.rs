//! Microbenchmark: Dinic max-flow on star-expanded circuit networks (the
//! FBB-MW substrate).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fpart_baselines::flow::{FlowNetwork, CAP_INF};
use fpart_hypergraph::gen::{find_profile, synthesize_mcnc, Technology};
use fpart_hypergraph::Hypergraph;

/// Builds the star-expanded flow network of the whole circuit with
/// source/sink attached to the first and last node.
fn star_network(graph: &Hypergraph) -> (FlowNetwork, usize, usize) {
    let nc = graph.node_count();
    let nets: Vec<_> = graph.net_ids().filter(|&e| graph.pins(e).len() >= 2).collect();
    let source = nc + 2 * nets.len();
    let sink = source + 1;
    let mut network = FlowNetwork::new(sink + 1);
    for (j, &net) in nets.iter().enumerate() {
        let e_in = nc + 2 * j;
        let e_out = e_in + 1;
        network.add_edge(e_in, e_out, 1);
        for &p in graph.pins(net) {
            network.add_edge(p.index(), e_in, CAP_INF);
            network.add_edge(e_out, p.index(), CAP_INF);
        }
    }
    network.add_edge(source, 0, CAP_INF);
    network.add_edge(nc - 1, sink, CAP_INF);
    (network, source, sink)
}

fn bench_maxflow(c: &mut Criterion) {
    for name in ["s9234", "s13207"] {
        let graph = synthesize_mcnc(find_profile(name).expect("profile"), Technology::Xc3000);
        let (network, source, sink) = star_network(&graph);
        c.bench_function(&format!("dinic_star_{name}"), |b| {
            b.iter_batched(
                || network.clone(),
                |mut net| net.max_flow(source, sink),
                BatchSize::SmallInput,
            );
        });
    }
}

criterion_group!(benches, bench_maxflow);
criterion_main!(benches);
