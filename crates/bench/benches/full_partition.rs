//! End-to-end benchmark: full multi-way partitioning per method on a
//! small and a mid-size MCNC workload (the Table 6 timing experiment in
//! Criterion form).

use criterion::{criterion_group, criterion_main, Criterion};
use fpart_baselines::{fbb_mw_partition, first_fit_partition, kway_partition, FlowConfig};
use fpart_core::{partition, FpartConfig};
use fpart_device::Device;
use fpart_hypergraph::gen::{find_profile, synthesize_mcnc, Technology};

fn bench_full(c: &mut Criterion) {
    for name in ["c3540", "s9234"] {
        let graph = synthesize_mcnc(find_profile(name).expect("profile"), Technology::Xc3000);
        let constraints = Device::XC3020.constraints(0.9);

        c.bench_function(&format!("fpart_{name}_xc3020"), |b| {
            b.iter(|| {
                partition(&graph, constraints, &FpartConfig::default())
                    .expect("partitions")
                    .device_count
            });
        });
        c.bench_function(&format!("kway_{name}_xc3020"), |b| {
            b.iter(|| kway_partition(&graph, constraints).expect("partitions").device_count);
        });
        c.bench_function(&format!("flow_{name}_xc3020"), |b| {
            b.iter(|| {
                fbb_mw_partition(&graph, constraints, &FlowConfig::default())
                    .expect("partitions")
                    .device_count
            });
        });
        c.bench_function(&format!("naive_{name}_xc3020"), |b| {
            b.iter(|| first_fit_partition(&graph, constraints).device_count);
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_full
}
criterion_main!(benches);
