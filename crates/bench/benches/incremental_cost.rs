//! Microbenchmarks for the incremental cost evaluation and the
//! deterministic parallel multi-run search.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use fpart_core::cost::CostEvaluator;
use fpart_core::fm::{bipartition_fm, FmConfig};
use fpart_core::{FpartConfig, KeyTracker, PartitionState};
use fpart_device::Device;
use fpart_hypergraph::gen::{find_profile, synthesize_mcnc, Technology};
use fpart_hypergraph::NodeId;

fn bench_incremental_key(c: &mut Criterion) {
    let graph = synthesize_mcnc(find_profile("s9234").expect("profile"), Technology::Xc3000);
    let constraints = Device::XC3020.constraints(0.9);
    let config = FpartConfig::default();
    let n = graph.node_count();

    for k in [8usize, 64] {
        let evaluator = CostEvaluator::new(constraints, &config, k, graph.terminal_count());
        let striped: Vec<u32> = (0..n).map(|i| (i * k / n) as u32).collect();
        let seq: Vec<(NodeId, usize)> =
            (0..2_000).map(|i| (NodeId::from_index((i * 17) % n), ((i * 5) / 7) % k)).collect();

        // The replaced path: full O(k) key scan after every move.
        c.bench_function(&format!("key_from_scratch_k{k}"), |b| {
            b.iter_batched(
                || PartitionState::from_assignment(&graph, striped.clone(), k),
                |mut state| {
                    let mut acc = 0usize;
                    for &(node, to) in &seq {
                        state.move_node(node, to);
                        acc ^= evaluator.key(&state, None).cut;
                    }
                    acc
                },
                BatchSize::SmallInput,
            );
        });

        // The new path: O(1) tracker update + O(1) key assembly.
        c.bench_function(&format!("key_incremental_k{k}"), |b| {
            b.iter_batched(
                || {
                    let state = PartitionState::from_assignment(&graph, striped.clone(), k);
                    let tracker = KeyTracker::new(&evaluator, &state);
                    (state, tracker)
                },
                |(mut state, mut tracker)| {
                    let mut acc = 0usize;
                    for &(node, to) in &seq {
                        let from = state.block_of(node);
                        state.move_node(node, to);
                        tracker.apply_move(&evaluator, &state, from, to);
                        acc ^= tracker.key(&evaluator, &state, None).cut;
                    }
                    acc
                },
                BatchSize::SmallInput,
            );
        });
    }
}

fn bench_parallel_runs(c: &mut Criterion) {
    let graph = synthesize_mcnc(find_profile("s9234").expect("profile"), Technology::Xc3000);
    for threads in [1usize, 2, 4] {
        let config = FmConfig { runs: 8, threads, ..FmConfig::default() };
        c.bench_function(&format!("bipartition_runs8_t{threads}"), |b| {
            b.iter(|| black_box(bipartition_fm(&graph, &config)).cut);
        });
    }
}

criterion_group!(benches, bench_incremental_key, bench_parallel_runs);
criterion_main!(benches);
