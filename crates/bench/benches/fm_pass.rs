//! Microbenchmark: one `Improve(...)` call (a full FM pass series with
//! stacks) on MCNC-scale subcircuits, two-block and multi-way.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fpart_core::{improve, CostEvaluator, FpartConfig, ImproveContext, PartitionState};
use fpart_device::Device;
use fpart_hypergraph::gen::{find_profile, synthesize_mcnc, Technology};

fn bench_improve(c: &mut Criterion) {
    let graph = synthesize_mcnc(find_profile("s9234").expect("profile"), Technology::Xc3000);
    let constraints = Device::XC3020.constraints(0.9);
    let config = FpartConfig::default();
    let evaluator = CostEvaluator::new(constraints, &config, 8, graph.terminal_count());

    // Two-block: a 57-cell prefix block vs the rest as remainder.
    let assignment: Vec<u32> = (0..graph.node_count()).map(|i| u32::from(i >= 57)).collect();
    c.bench_function("improve_two_block_s9234", |b| {
        b.iter_batched(
            || PartitionState::from_assignment(&graph, assignment.clone(), 2),
            |mut state| {
                let ctx = ImproveContext {
                    evaluator: &evaluator,
                    config: &config,
                    remainder: 1,
                    minimum_reached: false,
                    budget: None,
                };
                improve(&mut state, &[0, 1], &ctx);
                state.cut_count()
            },
            BatchSize::SmallInput,
        );
    });

    // Gain-variant costs: 1-level, 3-level, and the §5 I/O-pin objective.
    for (label, variant) in [
        ("gain1", FpartConfig { gain_levels: 1, ..FpartConfig::default() }),
        ("gain3", FpartConfig { gain_levels: 3, ..FpartConfig::default() }),
        (
            "io_gain",
            FpartConfig {
                gain_objective: fpart_core::config::GainObjective::IoPins,
                ..FpartConfig::default()
            },
        ),
    ] {
        let assignment = assignment.clone();
        let evaluator = CostEvaluator::new(constraints, &variant, 8, graph.terminal_count());
        c.bench_function(&format!("improve_two_block_s9234_{label}"), |b| {
            b.iter_batched(
                || PartitionState::from_assignment(&graph, assignment.clone(), 2),
                |mut state| {
                    let ctx = ImproveContext {
                        evaluator: &evaluator,
                        config: &variant,
                        remainder: 1,
                        minimum_reached: false,
                        budget: None,
                    };
                    improve(&mut state, &[0, 1], &ctx);
                    state.cut_count()
                },
                BatchSize::SmallInput,
            );
        });
    }

    // Multi-way: 8 stripes, all blocks active.
    let stripes: Vec<u32> =
        (0..graph.node_count()).map(|i| (i * 8 / graph.node_count()) as u32).collect();
    c.bench_function("improve_all_blocks_s9234", |b| {
        b.iter_batched(
            || PartitionState::from_assignment(&graph, stripes.clone(), 8),
            |mut state| {
                let ctx = ImproveContext {
                    evaluator: &evaluator,
                    config: &config,
                    remainder: 7,
                    minimum_reached: false,
                    budget: None,
                };
                let all: Vec<usize> = (0..8).collect();
                improve(&mut state, &all, &ctx);
                state.cut_count()
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_improve);
criterion_main!(benches);
