//! Published device counts from the paper's Tables 2–5, quoted verbatim.
//!
//! The paper compares FPART against previously published results without
//! re-running them; this module reproduces those columns so the harness
//! can print the same tables with our measured columns alongside.
//! `None` marks a dash in the original table.

/// One published row: per-method device counts for a circuit × device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishedRow {
    /// Circuit name.
    pub circuit: &'static str,
    /// k-way.x `(p,p)` of Kuznar et al. \[11\].
    pub kway_x: Option<usize>,
    /// r+p.0 `(p,r,p)` of Kuznar et al. \[11\].
    pub rp0: Option<usize>,
    /// PROP `(p,o,p)` of Kuznar & Brglez \[12\].
    pub prop_pop: Option<usize>,
    /// PROP `(p,r,o,p)` of Kuznar & Brglez \[12\].
    pub prop_prop: Option<usize>,
    /// SC of Chou et al. \[3\].
    pub sc: Option<usize>,
    /// WCDP of Huang & Kahng \[6\].
    pub wcdp: Option<usize>,
    /// FBB-MW of Liu & Wong \[16\].
    pub fbb_mw: Option<usize>,
    /// FPART (the paper's own method).
    pub fpart: Option<usize>,
    /// Lower bound `M` as printed in the paper.
    pub lower_bound: usize,
}

#[allow(clippy::too_many_arguments)] // one argument per published column
const fn row(
    circuit: &'static str,
    kway_x: Option<usize>,
    rp0: Option<usize>,
    prop_pop: Option<usize>,
    prop_prop: Option<usize>,
    sc: Option<usize>,
    wcdp: Option<usize>,
    fbb_mw: Option<usize>,
    fpart: Option<usize>,
    lower_bound: usize,
) -> PublishedRow {
    PublishedRow { circuit, kway_x, rp0, prop_pop, prop_prop, sc, wcdp, fbb_mw, fpart, lower_bound }
}

/// Table 2: partitioning into XC3020 devices (δ = 0.9).
pub const TABLE2_XC3020: [PublishedRow; 10] = [
    row("c3540", Some(6), Some(6), Some(6), Some(6), None, None, Some(6), Some(6), 5),
    row("c5315", Some(9), Some(8), Some(9), Some(8), None, None, Some(8), Some(9), 7),
    row("c6288", Some(16), Some(16), Some(12), Some(12), None, None, Some(15), Some(15), 15),
    row("c7552", Some(10), Some(10), Some(9), Some(9), None, None, Some(9), Some(9), 9),
    row("s5378", Some(11), Some(10), Some(11), Some(9), None, None, Some(9), Some(9), 7),
    row("s9234", Some(10), Some(10), Some(9), Some(9), None, None, Some(8), Some(8), 8),
    row("s13207", Some(23), Some(23), Some(21), Some(19), None, None, Some(18), Some(18), 16),
    row("s15850", Some(19), Some(19), Some(17), Some(16), None, None, Some(15), Some(15), 15),
    row("s38417", Some(46), Some(48), Some(44), Some(44), None, None, Some(41), Some(39), 39),
    row("s38584", Some(60), Some(60), Some(60), Some(56), None, None, Some(54), Some(52), 51),
];

/// Table 3: partitioning into XC3042 devices (δ = 0.9).
pub const TABLE3_XC3042: [PublishedRow; 10] = [
    row("c3540", Some(3), Some(3), Some(2), Some(2), None, None, Some(3), Some(3), 3),
    row("c5315", Some(5), Some(5), Some(4), Some(4), None, None, Some(4), Some(5), 4),
    row("c6288", Some(7), Some(7), Some(6), Some(5), None, None, Some(7), Some(7), 7),
    row("c7552", Some(4), Some(4), Some(5), Some(4), None, None, Some(4), Some(4), 4),
    row("s5378", Some(5), Some(4), Some(4), Some(4), None, None, Some(4), Some(4), 3),
    row("s9234", Some(4), Some(4), Some(4), Some(4), None, None, Some(4), Some(4), 4),
    row("s13207", Some(11), Some(10), Some(9), Some(8), None, None, Some(9), Some(9), 8),
    row("s15850", Some(8), Some(9), Some(8), Some(7), None, None, Some(8), Some(7), 7),
    row("s38417", Some(20), Some(20), Some(20), Some(19), None, None, Some(18), Some(18), 18),
    row("s38584", Some(27), Some(27), Some(25), Some(25), None, None, Some(23), Some(23), 23),
];

/// Table 4: partitioning into XC3090 devices (δ = 0.9).
pub const TABLE4_XC3090: [PublishedRow; 10] = [
    row("c3540", Some(1), Some(1), None, None, None, None, None, Some(1), 1),
    row("c5315", Some(3), Some(3), None, None, None, None, None, Some(3), 3),
    row("c6288", Some(3), Some(3), None, None, None, None, None, Some(3), 3),
    row("c7552", Some(3), Some(3), None, None, None, None, None, Some(3), 3),
    row("s5378", Some(2), Some(2), None, None, None, None, None, Some(2), 2),
    row("s9234", Some(2), Some(2), None, None, None, None, None, Some(2), 2),
    row("s13207", Some(7), Some(4), None, None, Some(6), Some(6), Some(5), Some(5), 4),
    row("s15850", Some(4), Some(3), None, None, Some(3), Some(3), Some(3), Some(3), 3),
    row("s38417", Some(9), Some(8), None, None, Some(10), Some(8), Some(8), Some(8), 8),
    row("s38584", Some(14), Some(11), None, None, Some(14), Some(12), Some(11), Some(11), 11),
];

/// Table 5: partitioning into XC2064 devices (δ = 1.0); the paper covers
/// only the four combinational circuits here.
pub const TABLE5_XC2064: [PublishedRow; 4] = [
    row("c3540", Some(6), None, None, None, Some(6), Some(7), Some(6), Some(6), 6),
    row("c5315", Some(11), None, None, None, Some(12), Some(12), Some(10), Some(10), 9),
    row("c7552", Some(11), None, None, None, Some(11), Some(11), Some(10), Some(10), 10),
    row("c6288", Some(14), None, None, None, Some(14), Some(14), Some(14), Some(14), 14),
];

/// One Table 6 row: `(circuit, XC3020, XC3042, XC3090, XC2064)` CPU
/// seconds, `None` = dash.
pub type CpuRow = (&'static str, Option<f64>, Option<f64>, Option<f64>, Option<f64>);

/// Table 6: FPART CPU seconds on a SUN Sparc Ultra 5.
pub const TABLE6_CPU: [CpuRow; 10] = [
    ("c3540", Some(15.59), Some(2.75), Some(1.00), Some(11.2)),
    ("c5315", Some(43.99), Some(16.12), Some(6.15), Some(34.74)),
    ("c6288", Some(89.14), Some(36.45), Some(10.83), Some(64.62)),
    ("c7552", Some(46.23), Some(14.11), Some(6.05), Some(40.89)),
    ("s5378", Some(52.09), Some(22.01), Some(3.87), None),
    ("s9234", Some(59.47), Some(23.65), Some(3.45), None),
    ("s13207", Some(121.51), Some(95.18), Some(91.61), None),
    ("s15850", Some(156.25), Some(61.54), Some(15.61), None),
    ("s38417", Some(464.66), Some(131.48), Some(78.54), None),
    ("s38584", Some(875.26), Some(258.73), Some(184.12), None),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_totals_match_paper() {
        let total = |t: &[PublishedRow], f: fn(&PublishedRow) -> Option<usize>| -> usize {
            t.iter().filter_map(f).sum()
        };
        // Totals printed in the paper's tables.
        assert_eq!(total(&TABLE2_XC3020, |r| r.kway_x), 210);
        assert_eq!(total(&TABLE2_XC3020, |r| r.rp0), 210);
        assert_eq!(total(&TABLE2_XC3020, |r| r.prop_pop), 198);
        assert_eq!(total(&TABLE2_XC3020, |r| r.prop_prop), 188);
        assert_eq!(total(&TABLE2_XC3020, |r| r.fbb_mw), 183);
        assert_eq!(total(&TABLE2_XC3020, |r| r.fpart), 180);
        assert_eq!(TABLE2_XC3020.iter().map(|r| r.lower_bound).sum::<usize>(), 172);

        assert_eq!(total(&TABLE3_XC3042, |r| r.kway_x), 94);
        assert_eq!(total(&TABLE3_XC3042, |r| r.rp0), 93);
        assert_eq!(total(&TABLE3_XC3042, |r| r.prop_pop), 87);
        assert_eq!(total(&TABLE3_XC3042, |r| r.prop_prop), 82);
        assert_eq!(total(&TABLE3_XC3042, |r| r.fbb_mw), 84);
        assert_eq!(total(&TABLE3_XC3042, |r| r.fpart), 84);
        assert_eq!(TABLE3_XC3042.iter().map(|r| r.lower_bound).sum::<usize>(), 81);

        // Table 4 splits small (first 6) and large (last 4) circuits.
        let small: usize = TABLE4_XC3090[..6].iter().filter_map(|r| r.fpart).sum();
        let large: usize = TABLE4_XC3090[6..].iter().filter_map(|r| r.fpart).sum();
        assert_eq!(small, 14);
        assert_eq!(large, 27);

        assert_eq!(total(&TABLE5_XC2064, |r| r.kway_x), 42);
        assert_eq!(total(&TABLE5_XC2064, |r| r.sc), 43);
        assert_eq!(total(&TABLE5_XC2064, |r| r.wcdp), 44);
        assert_eq!(total(&TABLE5_XC2064, |r| r.fbb_mw), 40);
        assert_eq!(total(&TABLE5_XC2064, |r| r.fpart), 40);
    }

    #[test]
    fn rows_align_with_mcnc_profiles() {
        for (row, profile) in TABLE2_XC3020.iter().zip(fpart_hypergraph::gen::mcnc_profiles()) {
            assert_eq!(row.circuit, profile.name);
        }
    }
}
