//! Running every implemented method on one workload.

use std::time::{Duration, Instant};

use fpart_baselines::{fbb_mw_partition, first_fit_partition, kway_partition, FlowConfig};
use fpart_core::{partition, FpartConfig};
use fpart_device::{lower_bound, Device, DeviceConstraints};
use fpart_hypergraph::gen::{synthesize_mcnc, McncProfile, Technology};
use fpart_hypergraph::Hypergraph;

/// One benchmark workload: a synthesized MCNC circuit and a device.
#[derive(Debug)]
pub struct Workload {
    /// Circuit name (matches the paper's tables).
    pub circuit: &'static str,
    /// Synthesized hypergraph.
    pub graph: Hypergraph,
    /// Device constraints (filling ratio already applied).
    pub constraints: DeviceConstraints,
    /// Theoretical lower bound `M`.
    pub lower_bound: usize,
}

impl Workload {
    /// Builds the workload for one paper circuit × device combination,
    /// choosing the technology mapping by device family and the paper's
    /// filling ratio by device (0.9 for XC3000 parts, 1.0 for XC2064).
    #[must_use]
    pub fn new(profile: &McncProfile, device: Device) -> Self {
        let tech = if device.is_xc2000_family() { Technology::Xc2000 } else { Technology::Xc3000 };
        let delta = if device.is_xc2000_family() { 1.0 } else { 0.9 };
        let constraints = device.constraints(delta);
        let graph = synthesize_mcnc(profile, tech);
        let lower_bound = lower_bound(&graph, constraints);
        Workload { circuit: profile.name, graph, constraints, lower_bound }
    }
}

/// Result of one method on one workload.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method name (`"FPART"`, `"kway"`, `"flow"`, `"naive"`).
    pub method: &'static str,
    /// Devices used.
    pub device_count: usize,
    /// Whether every block met the constraints.
    pub feasible: bool,
    /// Nets spanning more than one block.
    pub cut: usize,
    /// Wall-clock run time.
    pub elapsed: Duration,
}

/// Runs FPART and all baselines on a workload. Methods that error
/// (oversized node, iteration valve) are reported infeasible with zero
/// devices rather than aborting the table.
#[must_use]
pub fn run_methods(workload: &Workload) -> Vec<MethodResult> {
    let mut results = Vec::with_capacity(4);

    let start = Instant::now();
    let fpart = partition(&workload.graph, workload.constraints, &FpartConfig::default());
    results.push(match fpart {
        Ok(o) => MethodResult {
            method: "FPART",
            device_count: o.device_count,
            feasible: o.feasible,
            cut: o.cut,
            elapsed: start.elapsed(),
        },
        Err(_) => failed("FPART", start.elapsed()),
    });

    let start = Instant::now();
    let kway = kway_partition(&workload.graph, workload.constraints);
    results.push(match kway {
        Ok(o) => MethodResult {
            method: "kway",
            device_count: o.device_count,
            feasible: o.feasible,
            cut: o.cut,
            elapsed: start.elapsed(),
        },
        Err(_) => failed("kway", start.elapsed()),
    });

    let start = Instant::now();
    let flow = fbb_mw_partition(&workload.graph, workload.constraints, &FlowConfig::default());
    results.push(match flow {
        Ok(o) => MethodResult {
            method: "flow",
            device_count: o.device_count,
            feasible: o.feasible,
            cut: o.cut,
            elapsed: start.elapsed(),
        },
        Err(_) => failed("flow", start.elapsed()),
    });

    let start = Instant::now();
    let naive = first_fit_partition(&workload.graph, workload.constraints);
    results.push(MethodResult {
        method: "naive",
        device_count: naive.device_count,
        feasible: naive.feasible,
        cut: naive.cut,
        elapsed: start.elapsed(),
    });

    results
}

fn failed(method: &'static str, elapsed: Duration) -> MethodResult {
    MethodResult { method, device_count: 0, feasible: false, cut: 0, elapsed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_hypergraph::gen::find_profile;

    #[test]
    fn workload_uses_family_specific_mapping() {
        let p = find_profile("c3540").unwrap();
        let w2064 = Workload::new(p, Device::XC2064);
        let w3020 = Workload::new(p, Device::XC3020);
        assert_eq!(w2064.graph.node_count(), p.clbs_xc2000);
        assert_eq!(w3020.graph.node_count(), p.clbs_xc3000);
        assert_eq!(w2064.constraints.s_max, 64); // δ = 1.0
        assert_eq!(w3020.constraints.s_max, 57); // δ = 0.9
        assert_eq!(w2064.lower_bound, 6);
        assert_eq!(w3020.lower_bound, 5);
    }

    #[test]
    fn run_methods_reports_all_four() {
        let p = find_profile("c3540").unwrap();
        let w = Workload::new(p, Device::XC3090);
        let results = run_methods(&w);
        assert_eq!(results.len(), 4);
        let names: Vec<_> = results.iter().map(|r| r.method).collect();
        assert_eq!(names, vec!["FPART", "kway", "flow", "naive"]);
        for r in &results {
            assert!(r.feasible, "{} infeasible", r.method);
            assert!(r.device_count >= w.lower_bound);
        }
    }
}
