//! Utility: print the workload fingerprints to pin in
//! `tests/golden_workloads.rs` after an intentional generator change.

use fpart_hypergraph::gen::{mcnc_profiles, synthesize_mcnc, Technology};
use fpart_hypergraph::Hypergraph;

fn fingerprint(graph: &Hypergraph) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |value: u64| {
        for byte in value.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(graph.node_count() as u64);
    mix(graph.net_count() as u64);
    mix(graph.terminal_count() as u64);
    for net in graph.net_ids() {
        mix(graph.pins(net).len() as u64);
        for &pin in graph.pins(net) {
            mix(pin.index() as u64);
        }
    }
    for t in graph.terminal_ids() {
        mix(graph.terminal_net(t).index() as u64);
    }
    h
}

fn main() {
    for p in mcnc_profiles() {
        let g = synthesize_mcnc(p, Technology::Xc3000);
        println!("    (\"{}\", {:#018x}),", p.name, fingerprint(&g));
    }
}
