//! Regenerates paper **Figure 3**: the feasible space for cell moves.
//!
//! Figure 3 shows the size window a non-remainder block must stay inside
//! for a move to be admissible — strict in two-block passes (`ε²_min`),
//! loose in multi-block passes (`ε*_min`), unbounded for the remainder.
//! This binary prints the windows for the XC3020 device and an acceptance
//! map over block sizes, verifying the three regimes.

use fpart_core::constraints::{MoveRegions, PassKind};
use fpart_core::{FpartConfig, PartitionState};
use fpart_device::Device;
use fpart_hypergraph::HypergraphBuilder;

fn main() {
    let config = FpartConfig::default();
    let constraints = Device::XC3020.constraints(0.9);
    println!("Figure 3: feasible move regions on XC3020 (S_MAX = {})\n", constraints.s_max);
    for (label, kind) in [
        ("two-block pass (ε²_min = 0.95, ε_max = 1.05)", PassKind::TwoBlock),
        ("multi-block pass (ε*_min = 0.3, ε_max = 1.05)", PassKind::MultiBlock),
    ] {
        let regions = MoveRegions::new(&config, constraints, kind, usize::MAX, false);
        println!(
            "{label}: non-remainder block size window [{}, {}]",
            regions.lower_bound(),
            regions.upper_bound()
        );
    }
    let after_m = MoveRegions::new(&config, constraints, PassKind::TwoBlock, usize::MAX, true);
    println!("after k > M: upper bound tightens to S_MAX = {}\n", after_m.upper_bound());

    // Acceptance map: can a unit cell leave/enter a block of size S?
    // Build a 3-block state: probe block (varying), peer block, remainder.
    println!("acceptance of a unit-cell move vs donor block size (two-block pass):");
    println!("{:>5}  {:>6}  {:>7}", "S", "donate", "receive");
    for size in [10u64, 30, 40, 54, 55, 56, 57, 58, 59, 60] {
        let mut b = HypergraphBuilder::new();
        let probe = b.add_node("probe", size as u32);
        let unit = b.add_node("unit", 1);
        let peer = b.add_node("peer", 40);
        let rem = b.add_node("rem", 100);
        b.add_net("n1", [probe, unit]).expect("valid pins");
        b.add_net("n2", [peer, rem]).expect("valid pins");
        let g = b.finish().expect("valid graph");
        // probe+unit in block 0, peer in block 1, remainder cell in block 2
        let state = PartitionState::from_assignment(&g, vec![0, 0, 1, 2], 3);
        let regions = MoveRegions::new(&config, constraints, PassKind::TwoBlock, 2, false);
        let donate = regions.move_allowed(&state, 1, 0, 2);
        let receive = regions.move_allowed(&state, 1, 2, 0);
        println!(
            "{:>5}  {:>6}  {:>7}",
            size + 1,
            if donate { "yes" } else { "no" },
            if receive { "yes" } else { "no" }
        );
    }
    println!("\n(the remainder itself is exempt from both bounds: ε^R_max = ∞)");
}
