//! Batch runner: every circuit × device × method of Tables 2–5 in one
//! pass, emitting a CSV (`results.csv` by default) for downstream
//! analysis and the EXPERIMENTS.md bookkeeping.
//!
//! ```sh
//! cargo run --release -p fpart-bench --bin all_tables [output.csv]
//! ```

use std::io::Write;

use fpart_bench::published::{
    PublishedRow, TABLE2_XC3020, TABLE3_XC3042, TABLE4_XC3090, TABLE5_XC2064,
};
use fpart_bench::runner::{run_methods, Workload};
use fpart_device::Device;
use fpart_hypergraph::gen::find_profile;

fn main() -> std::io::Result<()> {
    let path = std::env::args().nth(1).unwrap_or_else(|| "results.csv".to_owned());
    let mut out = std::fs::File::create(&path)?;
    writeln!(
        out,
        "table,device,circuit,method,devices,feasible,cut,seconds,published_fpart,lower_bound"
    )?;

    let tables: [(&str, Device, &[PublishedRow]); 4] = [
        ("table2", Device::XC3020, &TABLE2_XC3020),
        ("table3", Device::XC3042, &TABLE3_XC3042),
        ("table4", Device::XC3090, &TABLE4_XC3090),
        ("table5", Device::XC2064, &TABLE5_XC2064),
    ];

    for (table, device, rows) in tables {
        for row in rows {
            let profile = find_profile(row.circuit).expect("published rows match profiles");
            let workload = Workload::new(profile, device);
            for result in run_methods(&workload) {
                writeln!(
                    out,
                    "{table},{},{},{},{},{},{},{:.4},{},{}",
                    device.name,
                    row.circuit,
                    result.method,
                    result.device_count,
                    result.feasible,
                    result.cut,
                    result.elapsed.as_secs_f64(),
                    row.fpart.map_or_else(|| "-".to_owned(), |v| v.to_string()),
                    workload.lower_bound,
                )?;
            }
            eprintln!("{table} {} {} done", device.name, row.circuit);
        }
    }
    println!("wrote {path}");
    Ok(())
}
