//! In-tree deterministic parser fuzzer: `fuzz [iterations] [seed]`.
//!
//! Mutates valid corpus documents (`.fhg`, hMETIS, BLIF, the eco edit
//! script, the checkpoint format, `fpart serve` protocol request
//! lines) with seeded byte- and token-level
//! havoc, then feeds every parser the result — twice, once under the
//! default [`ParseLimits`] and once under hostile-tight limits so the
//! limit-enforcement paths get exercised too. Any panic is a bug: the
//! parsers' contract is *typed errors only* on arbitrary input. On
//! panic the seed, iteration, parser, and offending document are
//! printed so the case replays exactly (`fuzz 1 <seed+iteration>`
//! deterministically regenerates it).
//!
//! No external fuzzing deps: the workspace RNG drives everything, so a
//! bounded run rides in `scripts/ci.sh` on every commit.

use std::panic::{catch_unwind, AssertUnwindSafe};

use fpart_core::server::protocol;
use fpart_core::Checkpoint;
use fpart_hypergraph::gen::{window_circuit, WindowConfig};
use fpart_hypergraph::rng::StdRng;
use fpart_hypergraph::{
    apply_script, blif, fingerprint_graph, hmetis, io, EditScript, Hypergraph, ParseLimits,
};

/// Hostile-tight limits: small enough that mutated documents routinely
/// trip every cap, covering the rejection paths as well as the happy
/// ones.
fn tight_limits() -> ParseLimits {
    ParseLimits { max_nodes: 64, max_nets: 64, max_pins: 256, max_name_len: 16, max_line_len: 128 }
}

/// One corpus document per grammar the workspace parses.
fn corpus() -> Vec<(&'static str, String)> {
    let g = window_circuit(&WindowConfig::new("fuzz", 24, 4), 7);
    let mut fhg = Vec::new();
    io::write_netlist(&mut fhg, &g).expect("in-memory write");
    let mut hgr = Vec::new();
    hmetis::write_hmetis(&mut hgr, &g).expect("in-memory write");
    let blif = "\
.model fuzz\n.inputs a b c\n.outputs y z\n.names a b t0\n11 1\n\
.names t0 c y\n10 1\n.latch y z re clk 0\n.end\n";
    let edits = "\
{\"op\": \"add_node\", \"name\": \"n_new\", \"size\": 2}\n\
{\"op\": \"add_net\", \"name\": \"w_new\", \"pins\": [\"n_new\", \"n0\"]}\n\
{\"op\": \"resize_node\", \"name\": \"n1\", \"size\": 3}\n\
{\"op\": \"remove_net\", \"name\": \"w0\"}\n";
    let checkpoint = format!(
        "#%fpart-checkpoint v{}\nfingerprint 123456789\nrestarts 2\ncompleted 1\n\
         restart 0 complete\nstats 2 1 1 17 3 9 40\nblocks 2\nblock 12 3 2 1\nblock 12 4 1 1\n\
         assignment 4 0 1 1 0\ncounters 3 5 9 2\nend\n",
        fpart_core::SCHEMA_VERSION
    );
    let protocol = "\
{\"id\": \"1\", \"cmd\": \"load\", \"session\": \"s\", \"path\": \"a.fhg\", \"device\": \"XC3020\", \"delta\": 0.9}\n\
{\"id\": 2, \"cmd\": \"partition\", \"session\": \"s\", \"restarts\": 4, \"threads\": 2, \"seed\": 7, \
\"deadline_ms\": 100, \"max_passes\": 8, \"method\": \"multilevel\", \"progress\": true, \"assignment\": true}\n\
{\"id\": \"3\", \"cmd\": \"eco\", \"session\": \"s\", \"edits\": \"{\\\"op\\\": \\\"remove_node\\\", \\\"name\\\": \\\"n0\\\"}\"}\n\
{\"id\": \"4\", \"cmd\": \"query\"}\n{\"id\": \"5\", \"cmd\": \"cancel\", \"target\": \"2\"}\n\
{\"id\": \"6\", \"cmd\": \"shutdown\"}\n";
    vec![
        ("fhg", String::from_utf8(fhg).expect("ascii")),
        ("hgr", String::from_utf8(hgr).expect("ascii")),
        ("blif", blif.to_owned()),
        ("edits", edits.to_owned()),
        ("checkpoint", checkpoint),
        ("protocol", protocol.to_owned()),
    ]
}

/// Tokens the mutator splices in: format keywords, huge counts (the
/// pre-allocation attack), negatives, floats, and non-ASCII bytes.
const SPICE: &[&str] = &[
    "99999999999999999999",
    "4294967296",
    "18446744073709551615",
    "-1",
    "0",
    "1e308",
    "NaN",
    ".names",
    ".end",
    "net",
    "node",
    "terminal",
    "restart",
    "assignment",
    "counters",
    "end",
    "\u{fffd}\u{30c6}",
    "{\"op\":",
    "{\"id\":",
    "\"cmd\"",
    "\\u0022",
];

/// Applies 1–8 seeded mutations to `base`.
fn mutate(rng: &mut StdRng, base: &str) -> String {
    let mut text = base.as_bytes().to_vec();
    for _ in 0..rng.gen_range(1..=8u32) {
        if text.is_empty() {
            text.extend_from_slice(b"x 1 2");
        }
        match rng.gen_range(0..7u32) {
            // Flip a byte.
            0 => {
                let at = rng.gen_range(0..text.len());
                text[at] ^= 1 << rng.gen_range(0..8u32);
            }
            // Truncate anywhere (torn-file shape).
            1 => {
                let at = rng.gen_range(0..=text.len());
                text.truncate(at);
            }
            // Duplicate a random slice.
            2 => {
                let a = rng.gen_range(0..text.len());
                let b = rng.gen_range(a..text.len().min(a + 200));
                let slice = text[a..=b].to_vec();
                let at = rng.gen_range(0..=text.len());
                text.splice(at..at, slice);
            }
            // Splice in a hostile token.
            3 => {
                let token = SPICE[rng.gen_range(0..SPICE.len())];
                let at = rng.gen_range(0..=text.len());
                text.splice(at..at, token.bytes());
            }
            // Overlong line / name.
            4 => {
                let at = rng.gen_range(0..=text.len());
                let run = vec![b'a'; rng.gen_range(1..400usize)];
                text.splice(at..at, run);
            }
            // Delete a random slice.
            5 => {
                let a = rng.gen_range(0..text.len());
                let b = rng.gen_range(a..text.len().min(a + 100));
                text.drain(a..=b);
            }
            // Swap two random lines.
            _ => {
                let mut s = String::from_utf8_lossy(&text).into_owned();
                let mut lines: Vec<&str> = s.lines().collect();
                if lines.len() >= 2 {
                    let a = rng.gen_range(0..lines.len());
                    let b = rng.gen_range(0..lines.len());
                    lines.swap(a, b);
                    s = lines.join("\n");
                }
                text = s.into_bytes();
            }
        }
    }
    String::from_utf8_lossy(&text).into_owned()
}

/// Runs every parser over `text` under `limits`; returns the name of
/// the first parser that panicked, if any. Parse *errors* are the
/// expected outcome and ignored. `base` is the edit-application target:
/// a mutated script that still parses *and* applies must leave the
/// incremental fingerprint delta in agreement with a from-scratch
/// recompute — that contract is release-mode-checked here, not just a
/// debug assertion inside `apply_script`.
fn run_parsers(text: &str, limits: &ParseLimits, base: &Hypergraph) -> Option<&'static str> {
    let cases: [(&'static str, &dyn Fn()); 7] = [
        ("parse_netlist_limited", &|| drop(io::parse_netlist_limited(text, limits))),
        ("parse_hmetis_limited", &|| drop(hmetis::parse_hmetis_limited(text, limits))),
        ("parse_blif_limited", &|| drop(blif::parse_blif_limited(text, limits))),
        ("EditScript::parse_limited", &|| drop(EditScript::parse_limited(text, limits))),
        ("Checkpoint::parse", &|| drop(Checkpoint::parse(text))),
        // The server parses one request per line; feed it each mutated
        // line the way `serve` would see them.
        ("protocol::parse_request", &|| {
            for line in text.lines() {
                drop(protocol::parse_request(line));
            }
        }),
        ("fingerprint_delta", &|| {
            if let Ok(script) = EditScript::parse_limited(text, limits) {
                if let Ok(applied) = apply_script(base, &script) {
                    assert_eq!(
                        fingerprint_graph(base) ^ applied.fingerprint_delta,
                        fingerprint_graph(&applied.graph),
                        "incremental fingerprint diverged from recompute"
                    );
                }
            }
        }),
    ];
    for (name, run) in cases {
        if catch_unwind(AssertUnwindSafe(run)).is_err() {
            return Some(name);
        }
    }
    None
}

fn main() {
    let mut args = std::env::args().skip(1);
    let iterations: u64 = args.next().map_or(1000, |v| v.parse().expect("iterations: integer"));
    let seed: u64 = args.next().map_or(0xF0CC_5EED, |v| v.parse().expect("seed: integer"));
    let corpus = corpus();
    let base_graph = window_circuit(&WindowConfig::new("fuzz", 24, 4), 7);
    let tight = tight_limits();
    let defaults = ParseLimits::default();

    // Parser panics land on stderr by default; silence them while
    // fuzzing (a failure reprints everything needed to replay).
    std::panic::set_hook(Box::new(|_| {}));
    for i in 0..iterations {
        // Derive the iteration stream from seed+i so `fuzz 1 <seed+i>`
        // replays a failure exactly, independent of iteration count.
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i));
        let (kind, base) = &corpus[rng.gen_range(0..corpus.len())];
        let mutated = mutate(&mut rng, base);
        let limits = if rng.gen_bool(0.5) { &tight } else { &defaults };
        if let Some(parser) = run_parsers(&mutated, limits, &base_graph) {
            let _ = std::panic::take_hook();
            eprintln!(
                "fuzz: PANIC in {parser} (corpus {kind}, seed {seed}, iteration {i}; \
                 replay with `fuzz 1 {}`)\n--- input ({} bytes) ---\n{mutated}\n--- end ---",
                seed.wrapping_add(i),
                mutated.len()
            );
            std::process::exit(1);
        }
    }
    let _ = std::panic::take_hook();
    println!("fuzz: {iterations} iterations x 7 parsers, seed {seed}: no panics");
}
