//! Heterogeneous device-cost study (our extension; the
//! total-device-cost objective of Kuznar/Brglez/Zajc, DAC'94, which the
//! paper cites as related work).
//!
//! Three strategies per circuit:
//!
//! * **homogeneous** — FPART onto the largest catalog part (XC3090);
//! * **refit** — the same partition, each block downgraded to the
//!   cheapest device it still fits;
//! * **in-flow** — [`fpart_core::partition_hetero`]: every peel
//!   auditions each device type and the best price-per-packed-cell wins.

use fpart_bench::render_table;
use fpart_bench::runner::Workload;
use fpart_core::{partition, partition_hetero, FpartConfig};
use fpart_device::fit::{default_price_list, fit_blocks};
use fpart_device::Device;
use fpart_hypergraph::gen::find_profile;

fn main() {
    let circuits = ["c3540", "c5315", "s5378", "s9234", "s13207", "s15850"];
    let list = default_price_list();
    let xc3090_price =
        list.iter().find(|p| p.device == Device::XC3090).expect("catalog has the XC3090").price;

    let header = [
        "circuit",
        "homog. k",
        "homog. cost",
        "refit cost",
        "in-flow k",
        "in-flow cost",
        "in-flow mix",
    ];
    let mut rows = Vec::new();
    for circuit in circuits {
        let profile = find_profile(circuit).expect("known circuit");
        let workload = Workload::new(profile, Device::XC3090);
        let Ok(outcome) = partition(&workload.graph, workload.constraints, &FpartConfig::default())
        else {
            continue;
        };
        let usages = outcome.usages();
        let refit = fit_blocks(&usages, 0.9, &list);
        let homogeneous = xc3090_price * outcome.device_count as f64;

        let inflow = partition_hetero(&workload.graph, &list, 0.9, &FpartConfig::default());
        let (inflow_k, inflow_cost, inflow_mix) = match &inflow {
            Ok(h) => {
                let mut mix: Vec<&str> = h.devices.iter().map(|d| d.device.name).collect();
                mix.sort_unstable();
                mix.dedup();
                (
                    format!("{}{}", h.device_count(), if h.feasible { "" } else { "!" }),
                    format!("{:.1}", h.total_price),
                    mix.join("+"),
                )
            }
            Err(_) => ("err".to_owned(), "-".to_owned(), "-".to_owned()),
        };

        rows.push(vec![
            circuit.to_owned(),
            outcome.device_count.to_string(),
            format!("{homogeneous:.1}"),
            refit.map_or_else(|| "-".to_owned(), |r| format!("{:.1}", r.total_price)),
            inflow_k,
            inflow_cost,
            inflow_mix,
        ]);
    }
    println!(
        "Heterogeneous device cost: homogeneous XC3090 vs post-hoc refit vs in-flow selection\n"
    );
    print!("{}", render_table(&header, &rows, None));
    println!("\n(relative prices; the in-flow strategy may use more, cheaper devices)");
}
