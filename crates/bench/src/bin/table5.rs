//! Regenerates paper **Table 5**: results comparison on the XC2064
//! device (δ = 1.0, XC2000 technology mapping).

use fpart_bench::published::TABLE5_XC2064;
use fpart_bench::run_results_table;
use fpart_device::Device;

fn main() {
    print!(
        "{}",
        run_results_table(
            "Table 5: partitioning into XC2064 devices (S_ds=64, T_MAX=58, δ=1.0)",
            Device::XC2064,
            &TABLE5_XC2064,
        )
    );
}
