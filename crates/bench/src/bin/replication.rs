//! Replication ingredient study (our extension; models the "r" of the
//! paper's r+p.0 and PROP comparison columns).
//!
//! For each circuit on XC3020, the k-way.x-style baseline partitions the
//! circuit, then the Kring–Newton-style replication post-pass buys IOBs
//! with spare logic capacity. Reported: copies applied, total IOBs
//! saved, and blocks repaired from pin-infeasible to feasible — the
//! mechanism by which r+p.0 beat plain k-way.x in the paper's tables.

use fpart_baselines::{kway_partition, replicate};
use fpart_bench::render_table;
use fpart_bench::runner::Workload;
use fpart_device::Device;
use fpart_hypergraph::gen::find_profile;

fn main() {
    let circuits = ["c3540", "c5315", "c7552", "s5378", "s9234", "s13207"];
    let header = ["circuit", "k", "copies", "IOBs saved", "infeasible before", "infeasible after"];
    let mut rows = Vec::new();
    for circuit in circuits {
        let profile = find_profile(circuit).expect("known circuit");
        let workload = Workload::new(profile, Device::XC3020);
        let Ok(base) = kway_partition(&workload.graph, workload.constraints) else {
            rows.push(vec![
                circuit.to_owned(),
                "err".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        };
        let rep =
            replicate(&workload.graph, &base.assignment, base.device_count, workload.constraints);
        let infeasible = |terminals: &[usize], sizes: &[u64]| {
            terminals.iter().zip(sizes).filter(|&(&t, &s)| !workload.constraints.fits(s, t)).count()
        };
        // Sizes before replication equal sizes_after minus the copies'
        // contribution; recompute from the assignment for exactness.
        let mut sizes_before = vec![0u64; base.device_count];
        for v in workload.graph.node_ids() {
            sizes_before[base.assignment[v.index()] as usize] +=
                u64::from(workload.graph.node_size(v));
        }
        rows.push(vec![
            circuit.to_owned(),
            base.device_count.to_string(),
            rep.copies.len().to_string(),
            rep.terminals_saved().to_string(),
            infeasible(&rep.terminals_before, &sizes_before).to_string(),
            infeasible(&rep.terminals_after, &rep.sizes_after).to_string(),
        ]);
    }
    println!("Replication study: k-way.x baseline + Kring–Newton replication on XC3020\n");
    print!("{}", render_table(&header, &rows, None));
    println!(
        "\nReplication converts spare CLBs into IOB savings — the ingredient that\
         \nlifts r+p.0 over k-way.x in the paper's Tables 2–3."
    );
}
