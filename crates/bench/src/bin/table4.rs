//! Regenerates paper **Table 4**: results comparison on the XC3090
//! device (δ = 0.9). The paper prints separate totals for the six small
//! and four large circuits; both appear in the output here.

use fpart_bench::published::TABLE4_XC3090;
use fpart_bench::run_results_table;
use fpart_device::Device;

fn main() {
    print!(
        "{}",
        run_results_table(
            "Table 4 (small circuits): partitioning into XC3090 devices (S_ds=320, T_MAX=144, δ=0.9)",
            Device::XC3090,
            &TABLE4_XC3090[..6],
        )
    );
    println!();
    print!(
        "{}",
        run_results_table(
            "Table 4 (large circuits): partitioning into XC3090 devices (S_ds=320, T_MAX=144, δ=0.9)",
            Device::XC3090,
            &TABLE4_XC3090[6..],
        )
    );
}
