//! Regenerates paper **Figure 1**: the call schedule of the iterative
//! improvement passes.
//!
//! Figure 1 illustrates which blocks each `Improve(...)` call touches
//! per iteration for a partitioning with `M ≤ N_small`. This binary runs
//! a traced FPART on such a workload (s5378 on XC3020, M = 7) and prints
//! the actual schedule — the two-lately-partitioned pass, the all-block
//! pass, the remainder-vs-{min-size, min-IO, max-free} passes, and the
//! final pairwise sweep at k = M — with the solution key improvement each
//! call achieved.

use fpart_bench::runner::Workload;
use fpart_core::{partition_traced, FpartConfig, TraceEvent};
use fpart_device::Device;
use fpart_hypergraph::gen::find_profile;

fn main() {
    let profile = find_profile("s5378").expect("known circuit");
    let workload = Workload::new(profile, Device::XC3020);
    let outcome =
        partition_traced(&workload.graph, workload.constraints, &FpartConfig::default(), true)
            .expect("s5378 partitions");

    println!(
        "Figure 1: improvement-pass schedule for {} on XC3020 (M = {}, final k = {})\n",
        workload.circuit, workload.lower_bound, outcome.device_count
    );
    for event in outcome.trace.events() {
        match event {
            TraceEvent::IterationStart { iteration, remainder_size, remainder_terminals } => {
                println!(
                    "iteration {iteration}: remainder S={remainder_size} T={remainder_terminals}"
                );
            }
            TraceEvent::Bipartition { method, peeled_size, peeled_terminals, .. } => {
                println!("  Bipartition[{method:?}] peeled S={peeled_size} T={peeled_terminals}");
            }
            TraceEvent::Improve {
                kind,
                blocks,
                initial_key,
                final_key,
                passes,
                moves,
                restarts,
                ..
            } => {
                let blocks = if blocks.len() > 4 {
                    format!("all {} blocks", blocks.len())
                } else {
                    format!("{blocks:?}")
                };
                println!(
                    "  Improve[{kind:?}] {blocks}: d_k {:.3} -> {:.3}, cut {} -> {} ({passes} passes, {moves} moves, {restarts} restarts)",
                    initial_key.infeasibility,
                    final_key.infeasibility,
                    initial_key.cut,
                    final_key.cut,
                );
            }
            TraceEvent::Solution { class, .. } => {
                println!("  end of iteration: {class:?}");
            }
            // Heartbeats are throttled live-progress events; the figure
            // reproduces the pass schedule, so they carry no new rows.
            TraceEvent::Progress { .. } => {}
        }
    }
    println!("\nfinal: {} devices, feasible = {}", outcome.device_count, outcome.feasible);
}
