//! Regenerates paper **Table 3**: results comparison on the XC3042
//! device (δ = 0.9).

use fpart_bench::published::TABLE3_XC3042;
use fpart_bench::run_results_table;
use fpart_device::Device;

fn main() {
    print!(
        "{}",
        run_results_table(
            "Table 3: partitioning into XC3042 devices (S_ds=144, T_MAX=96, δ=0.9)",
            Device::XC3042,
            &TABLE3_XC3042,
        )
    );
}
