//! Evaluates the paper's §5 future-work proposals (our extension):
//!
//! * **I/O-pin gain** — rank cell moves by the real change in block IOB
//!   counts instead of cut nets;
//! * **early stop** — abandon an FM pass after N consecutive
//!   non-improving moves.
//!
//! Both run against the paper's default configuration on XC3020.

use fpart_bench::render_table;
use fpart_bench::runner::Workload;
use fpart_core::config::GainObjective;
use fpart_core::{partition, FpartConfig};
use fpart_device::Device;
use fpart_hypergraph::gen::find_profile;

fn main() {
    let circuits = ["c3540", "c5315", "s5378", "s9234", "s13207"];
    let variants: Vec<(&str, FpartConfig)> = vec![
        ("paper", FpartConfig::default()),
        (
            "io-gain",
            FpartConfig { gain_objective: GainObjective::IoPins, ..FpartConfig::default() },
        ),
        ("early-stop(16)", FpartConfig { early_stop_patience: Some(16), ..FpartConfig::default() }),
        (
            "both",
            FpartConfig {
                gain_objective: GainObjective::IoPins,
                early_stop_patience: Some(16),
                ..FpartConfig::default()
            },
        ),
    ];

    let mut header: Vec<String> = vec!["circuit".into(), "M".into()];
    for (name, _) in &variants {
        header.push((*name).to_owned());
        header.push(format!("t_{name}"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    for circuit in circuits {
        let profile = find_profile(circuit).expect("known circuit");
        let workload = Workload::new(profile, Device::XC3020);
        let mut row = vec![circuit.to_owned(), workload.lower_bound.to_string()];
        for (_, config) in &variants {
            let start = std::time::Instant::now();
            match partition(&workload.graph, workload.constraints, config) {
                Ok(o) => {
                    row.push(format!("{}{}", o.device_count, if o.feasible { "" } else { "!" }));
                    row.push(format!("{:.2}s", start.elapsed().as_secs_f64()));
                }
                Err(_) => {
                    row.push("err".to_owned());
                    row.push("-".to_owned());
                }
            }
        }
        rows.push(row);
    }

    println!("Future-work evaluation (paper §5) on XC3020: device count and run time\n");
    print!("{}", render_table(&header_refs, &rows, None));
    println!(
        "\nThe paper speculates the I/O-pin gain \"may more quickly direct the search\
         \ntowards finding solutions respecting the I/O pin constraint\"; compare the\
         \nI/O-critical rows (c5315, s5378) against the size-bound ones."
    );
}
