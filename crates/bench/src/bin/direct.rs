//! Direct-vs-recursive study (our extension): the paper's §3 argues for
//! the guided recursive paradigm over partitioning into `k` blocks at
//! once; this binary quantifies the difference.

use fpart_bench::render_table;
use fpart_bench::runner::Workload;
use fpart_core::{partition, partition_direct, DirectConfig, FpartConfig};
use fpart_device::Device;
use fpart_hypergraph::gen::find_profile;

fn main() {
    let circuits = ["c3540", "c5315", "s5378", "s9234", "s13207", "s15850"];
    let header = ["circuit", "M", "recursive k", "rec t", "direct k", "dir t"];
    let mut rows = Vec::new();
    for circuit in circuits {
        let profile = find_profile(circuit).expect("known circuit");
        let workload = Workload::new(profile, Device::XC3020);

        let start = std::time::Instant::now();
        let recursive = partition(&workload.graph, workload.constraints, &FpartConfig::default());
        let rec_t = start.elapsed();

        let start = std::time::Instant::now();
        let direct = partition_direct(
            &workload.graph,
            workload.constraints,
            &FpartConfig::default(),
            &DirectConfig::default(),
        );
        let dir_t = start.elapsed();

        let fmt = |r: &Result<fpart_core::PartitionOutcome, _>| match r {
            Ok(o) => format!("{}{}", o.device_count, if o.feasible { "" } else { "!" }),
            Err(_) => "fail".to_owned(),
        };
        rows.push(vec![
            circuit.to_owned(),
            workload.lower_bound.to_string(),
            fmt(&recursive),
            format!("{:.2}s", rec_t.as_secs_f64()),
            fmt(&direct),
            format!("{:.2}s", dir_t.as_secs_f64()),
        ]);
    }
    println!("Direct k-way vs the paper's recursive paradigm, XC3020\n");
    print!("{}", render_table(&header, &rows, None));
    println!("\n`fail` = no feasible k within M+8 attempts — the paper's case for recursion");
}
