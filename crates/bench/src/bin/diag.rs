use fpart_core::{partition, FpartConfig};
use fpart_device::Device;
use fpart_hypergraph::gen::{mcnc_profiles, synthesize_mcnc, Technology};
fn main() {
    for (dev, delta) in [(Device::XC3020, 0.9), (Device::XC3042, 0.9), (Device::XC3090, 0.9)] {
        let c = dev.constraints(delta);
        print!("{:8}", dev.name);
        let mut tot = 0;
        let mut mtot = 0;
        for p in mcnc_profiles() {
            let g = synthesize_mcnc(p, Technology::Xc3000);
            let o = partition(&g, c, &FpartConfig::default()).unwrap();
            print!(" {}{}", o.device_count, if o.feasible { "" } else { "!" });
            tot += o.device_count;
            mtot += o.lower_bound;
        }
        println!("  total={tot} M={mtot}");
    }
}
