//! Regenerates paper **Table 2**: results comparison on the XC3020
//! device (δ = 0.9).

use fpart_bench::published::TABLE2_XC3020;
use fpart_bench::run_results_table;
use fpart_device::Device;

fn main() {
    print!(
        "{}",
        run_results_table(
            "Table 2: partitioning into XC3020 devices (S_ds=64, T_MAX=64, δ=0.9)",
            Device::XC3020,
            &TABLE2_XC3020,
        )
    );
}
