//! Workload-stability study (our extension): how sensitive are the
//! Table 2 results to the particular synthetic netlist sample?
//!
//! Each circuit is re-synthesized with five different generator salts
//! (same published #CLBs/#IOBs, same Rent parameters, different random
//! structure) and FPART runs on each. Small spread = the reproduction's
//! conclusions are properties of the workload *class*, not of one lucky
//! sample. Salt 0 is the canonical workload used by all other tables.

use fpart_bench::render_table;
use fpart_core::{partition, FpartConfig};
use fpart_device::{lower_bound, Device};
use fpart_hypergraph::gen::{find_profile, synthesize_mcnc_with_salt, Technology};

fn main() {
    let circuits = ["c3540", "c5315", "s5378", "s9234", "s13207", "s15850"];
    let salts = [0u64, 1, 2, 3, 4];
    let constraints = Device::XC3020.constraints(0.9);

    let header = ["circuit", "M", "k per salt", "min", "max", "mean"];
    let mut rows = Vec::new();
    for circuit in circuits {
        let profile = find_profile(circuit).expect("known circuit");
        let mut ks = Vec::new();
        let mut m = 0usize;
        for &salt in &salts {
            let graph = synthesize_mcnc_with_salt(profile, Technology::Xc3000, salt);
            m = lower_bound(&graph, constraints);
            match partition(&graph, constraints, &FpartConfig::default()) {
                Ok(o) if o.feasible => ks.push(o.device_count),
                _ => {}
            }
        }
        if ks.is_empty() {
            continue;
        }
        let min = *ks.iter().min().expect("non-empty");
        let max = *ks.iter().max().expect("non-empty");
        let mean = ks.iter().sum::<usize>() as f64 / ks.len() as f64;
        rows.push(vec![
            circuit.to_owned(),
            m.to_string(),
            ks.iter().map(ToString::to_string).collect::<Vec<_>>().join(" "),
            min.to_string(),
            max.to_string(),
            format!("{mean:.1}"),
        ]);
    }
    println!("Stability: FPART on XC3020 across five workload samples per circuit\n");
    print!("{}", render_table(&header, &rows, None));
    println!("\n(salt 0 is the canonical sample used by tables 2–6)");
}
