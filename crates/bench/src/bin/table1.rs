//! Regenerates paper **Table 1**: benchmark circuit characteristics.
//!
//! For each MCNC circuit, prints the published #IOBs and #CLBs per
//! technology mapping next to the counts of the synthesized workloads
//! (which must match exactly), plus the synthetic netlist's structural
//! statistics for transparency.

use fpart_bench::render_table;
use fpart_hypergraph::gen::{mcnc_profiles, synthesize_mcnc, Technology};
use fpart_hypergraph::stats::CircuitStats;

fn main() {
    let header = [
        "circuit", "#IOBs", "CLB2000*", "CLB3000*", "CLB2000", "CLB3000", "nets", "pins",
        "mean deg",
    ];
    let mut rows = Vec::new();
    for p in mcnc_profiles() {
        let g2000 = synthesize_mcnc(p, Technology::Xc2000);
        let g3000 = synthesize_mcnc(p, Technology::Xc3000);
        let s = CircuitStats::of(&g3000);
        assert_eq!(g2000.node_count(), p.clbs_xc2000);
        assert_eq!(g3000.node_count(), p.clbs_xc3000);
        assert_eq!(g3000.terminal_count(), p.iobs);
        rows.push(vec![
            p.name.to_owned(),
            p.iobs.to_string(),
            p.clbs_xc2000.to_string(),
            p.clbs_xc3000.to_string(),
            g2000.node_count().to_string(),
            g3000.node_count().to_string(),
            s.nets.to_string(),
            s.pins.to_string(),
            format!("{:.2}", s.mean_net_degree),
        ]);
    }
    println!("Table 1: benchmark circuit characteristics");
    println!("columns marked * are published; unmarked are the synthesized workloads\n");
    print!("{}", render_table(&header, &rows, None));
}
