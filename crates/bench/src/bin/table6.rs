//! Regenerates paper **Table 6**: FPART execution time per circuit ×
//! device. Absolute numbers are incomparable (SUN Sparc Ultra 5, 1999,
//! vs this machine); the reproduced *shape* is the relative ordering —
//! time grows with the iteration count (final k) and circuit size, and
//! XC3090 runs are the cheapest.

use fpart_bench::published::TABLE6_CPU;
use fpart_bench::render_table;
use fpart_bench::runner::Workload;
use fpart_core::{partition, FpartConfig};
use fpart_device::Device;
use fpart_hypergraph::gen::find_profile;

fn main() {
    let devices = [Device::XC3020, Device::XC3042, Device::XC3090, Device::XC2064];
    let header = [
        "circuit", "XC3020*", "XC3042*", "XC3090*", "XC2064*", "XC3020", "XC3042", "XC3090",
        "XC2064",
    ];
    let fmt = |v: Option<f64>| v.map_or_else(|| "-".to_owned(), |s| format!("{s:.2}"));
    let mut rows = Vec::new();
    for &(name, p3020, p3042, p3090, p2064) in &TABLE6_CPU {
        let profile = find_profile(name).expect("table names match profiles");
        let mut measured = Vec::new();
        for (device, published) in devices.iter().zip([p3020, p3042, p3090, p2064]) {
            if published.is_none() {
                // The paper has a dash here (circuit not run on XC2064).
                measured.push("-".to_owned());
                continue;
            }
            let workload = Workload::new(profile, *device);
            let start = std::time::Instant::now();
            let _ = partition(&workload.graph, workload.constraints, &FpartConfig::default());
            measured.push(format!("{:.2}", start.elapsed().as_secs_f64()));
        }
        rows.push(vec![
            name.to_owned(),
            fmt(p3020),
            fmt(p3042),
            fmt(p3090),
            fmt(p2064),
            measured[0].clone(),
            measured[1].clone(),
            measured[2].clone(),
            measured[3].clone(),
        ]);
    }
    println!("Table 6: FPART execution time in seconds");
    println!("columns marked * are the paper's (SUN Sparc Ultra 5); unmarked are this machine\n");
    print!("{}", render_table(&header, &rows, None));
}
