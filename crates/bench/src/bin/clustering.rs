//! Clustering study (our extension; evaluates the coarsening lever the
//! paper's introduction surveys): flat FPART vs the multilevel
//! coarsen–partition–refine flow, quality and runtime.

use fpart_bench::render_table;
use fpart_bench::runner::Workload;
use fpart_core::{partition, partition_multilevel, FpartConfig, MultilevelConfig};
use fpart_device::Device;
use fpart_hypergraph::gen::find_profile;

fn main() {
    let circuits = ["c3540", "s9234", "s13207", "s15850", "s38417", "s38584"];
    let header = ["circuit", "M", "flat k", "flat t", "ml k", "ml t", "speedup"];
    let mut rows = Vec::new();
    for circuit in circuits {
        let profile = find_profile(circuit).expect("known circuit");
        let workload = Workload::new(profile, Device::XC3020);

        let start = std::time::Instant::now();
        let flat = partition(&workload.graph, workload.constraints, &FpartConfig::default());
        let flat_t = start.elapsed();

        let start = std::time::Instant::now();
        let ml = partition_multilevel(
            &workload.graph,
            workload.constraints,
            &FpartConfig::default(),
            &MultilevelConfig::default(),
        );
        let ml_t = start.elapsed();

        let fmt = |r: &Result<fpart_core::PartitionOutcome, _>| match r {
            Ok(o) => format!("{}{}", o.device_count, if o.feasible { "" } else { "!" }),
            Err(_) => "err".to_owned(),
        };
        rows.push(vec![
            circuit.to_owned(),
            workload.lower_bound.to_string(),
            fmt(&flat),
            format!("{:.2}s", flat_t.as_secs_f64()),
            fmt(&ml),
            format!("{:.2}s", ml_t.as_secs_f64()),
            format!("{:.1}x", flat_t.as_secs_f64() / ml_t.as_secs_f64().max(1e-9)),
        ]);
    }
    println!(
        "Clustering study: flat FPART vs multilevel (coarsen → partition → refine) on XC3020\n"
    );
    print!("{}", render_table(&header, &rows, None));
}
