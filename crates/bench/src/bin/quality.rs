//! Quality-regression gate data: partitions three pinned, seeded
//! circuits (Rent-style, layered, clustered) with the flat FPART driver
//! and the n-level multilevel flow, and emits each result's
//! lexicographic quality key `(f, devices, d_k, T_SUM, d_k^E, cut)` as
//! JSON.
//!
//! `scripts/check_quality.py` compares this output against the
//! checked-in golden (`goldens/quality_gate.json`) and fails CI when a
//! key regresses beyond the documented tolerance. Every run here is
//! single-threaded and fully seeded, so the output is reproducible
//! bit-for-bit; the tolerance only exists as headroom for intentional
//! algorithm changes (which must update the golden in the same commit).
//!
//! Output path: first CLI argument, default `QUALITY.json`.

use std::fmt::Write as _;

use fpart_core::cost::CostEvaluator;
use fpart_core::{
    partition, partition_multilevel, repartition_eco, EcoConfig, FpartConfig, MultilevelConfig,
    PartitionOutcome, PartitionState,
};
use fpart_device::{lower_bound, DeviceConstraints};
use fpart_hypergraph::gen::{
    clustered_circuit, layered_circuit, rent_circuit, ClusteredConfig, LayeredConfig, RentConfig,
};
use fpart_hypergraph::{apply_script, EditOp, EditScript, Hypergraph, NodeId};

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "QUALITY.json".to_owned());
    let config = FpartConfig::default();
    let ml = MultilevelConfig::default();

    // The three pinned workloads: distinct topology families so a
    // regression in any of the engine's regimes (locality, depth,
    // pre-clustered structure) shows up in at least one row.
    let circuits: Vec<(Hypergraph, DeviceConstraints)> = vec![
        (rent_circuit(&RentConfig::new("rent", 4000, 200), 11), DeviceConstraints::new(400, 120)),
        (
            layered_circuit(&LayeredConfig::new("layered", 40, 80), 7),
            DeviceConstraints::new(500, 150),
        ),
        (
            clustered_circuit(&ClusteredConfig::new("clustered", 12, 260), 3).0,
            DeviceConstraints::new(450, 130),
        ),
    ];

    let mut rows = Vec::new();
    let mut rent_previous = None;
    for (graph, constraints) in &circuits {
        let flat = partition(graph, *constraints, &config).expect("flat partitions");
        if graph.name() == "rent" {
            rent_previous = Some(flat.assignment.clone());
        }
        rows.push(row(graph, *constraints, &config, "flat", &flat));
        let nlevel =
            partition_multilevel(graph, *constraints, &config, &ml).expect("multilevel partitions");
        rows.push(row(graph, *constraints, &config, "multilevel", &nlevel));
        println!(
            "{}: flat {} devices cut {}, multilevel {} devices cut {}",
            graph.name(),
            flat.device_count,
            flat.cut,
            nlevel.device_count,
            nlevel.cut
        );
    }

    // ECO scenario: a pinned capacity-balanced edit of the Rent circuit
    // repaired from the pinned flat partition, so the incremental path's
    // quality is gated alongside the from-scratch flows. The edit stays
    // deterministic — it is derived from node indices only.
    let (rent, rent_constraints) = &circuits[0];
    let previous = rent_previous.expect("rent row ran");
    let script = pinned_edit(rent);
    let applied = apply_script(rent, &script).expect("pinned edit applies");
    let eco = repartition_eco(
        &applied.graph,
        *rent_constraints,
        &config,
        &EcoConfig::default(),
        &previous,
        &applied.node_map,
    )
    .expect("eco repairs");
    rows.push(row(&applied.graph, *rent_constraints, &config, "eco", &eco.outcome));
    println!(
        "{} (eco, {} edits): {} devices cut {} (repaired={})",
        rent.name(),
        script.len(),
        eco.outcome.device_count,
        eco.outcome.cut,
        eco.repaired
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema_version\": {},", fpart_core::SCHEMA_VERSION);
    let _ = writeln!(json, "  \"circuits\": [\n{}\n  ]", rows.join(",\n"));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write quality json");
    println!("wrote {out_path}");
}

/// The pinned ~1% churn edit: remove every 197th cell (20 in total),
/// then add an equal-size replacement wired to a surviving neighbour of
/// the cell it stands in for. Capacity-balanced by construction, so the
/// repair stays on the incremental path.
fn pinned_edit(graph: &Hypergraph) -> EditScript {
    let n = graph.node_count();
    let removed: Vec<usize> = (0..20).map(|i| (i * 197) % n).collect();
    let removed_set: std::collections::HashSet<usize> = removed.iter().copied().collect();
    let mut ops: Vec<EditOp> = removed
        .iter()
        .map(|&idx| EditOp::RemoveNode {
            name: graph.node_name(NodeId::from_index(idx)).to_owned(),
        })
        .collect();
    for (j, &idx) in removed.iter().enumerate() {
        let v = NodeId::from_index(idx);
        let neighbour = graph
            .nets(v)
            .iter()
            .flat_map(|&e| graph.pins(e).iter().copied())
            .find(|u| !removed_set.contains(&u.index()))
            .unwrap_or_else(|| {
                graph.node_ids().find(|u| !removed_set.contains(&u.index())).expect("survivors")
            });
        let name = format!("eco_{j}");
        ops.push(EditOp::AddNode { name: name.clone(), size: graph.node_size(v) });
        ops.push(EditOp::AddNet {
            name: format!("eco_net_{j}"),
            pins: vec![name, graph.node_name(neighbour).to_owned()],
        });
    }
    EditScript::new(ops)
}

/// One gate row: the solution's lexicographic quality key components.
fn row(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    method: &str,
    outcome: &PartitionOutcome,
) -> String {
    let evaluator = CostEvaluator::new(
        constraints,
        config,
        lower_bound(graph, constraints),
        graph.terminal_count(),
    );
    let state = PartitionState::from_assignment(
        graph,
        outcome.assignment.clone(),
        outcome.device_count.max(1),
    );
    let key = evaluator.key(&state, None);
    format!(
        "    {{\"name\": \"{}\", \"method\": \"{method}\", \"nodes\": {}, \
         \"feasible\": {}, \"devices\": {}, \"infeasibility\": {:.4}, \
         \"terminal_sum\": {}, \"external_balance\": {:.4}, \"cut\": {}}}",
        graph.name(),
        graph.node_count(),
        outcome.feasible,
        outcome.device_count,
        key.infeasibility,
        key.terminal_sum,
        key.external_balance,
        key.cut
    )
}
