//! Quality-regression gate data: partitions three pinned, seeded
//! circuits (Rent-style, layered, clustered) with the flat FPART driver
//! and the n-level multilevel flow, and emits each result's
//! lexicographic quality key `(f, devices, d_k, T_SUM, d_k^E, cut)` as
//! JSON.
//!
//! `scripts/check_quality.py` compares this output against the
//! checked-in golden (`goldens/quality_gate.json`) and fails CI when a
//! key regresses beyond the documented tolerance. Every run here is
//! single-threaded and fully seeded, so the output is reproducible
//! bit-for-bit; the tolerance only exists as headroom for intentional
//! algorithm changes (which must update the golden in the same commit).
//!
//! Output path: first CLI argument, default `QUALITY.json`.

use std::fmt::Write as _;

use fpart_core::cost::CostEvaluator;
use fpart_core::{
    partition, partition_multilevel, FpartConfig, MultilevelConfig, PartitionOutcome,
    PartitionState,
};
use fpart_device::{lower_bound, DeviceConstraints};
use fpart_hypergraph::gen::{
    clustered_circuit, layered_circuit, rent_circuit, ClusteredConfig, LayeredConfig, RentConfig,
};
use fpart_hypergraph::Hypergraph;

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "QUALITY.json".to_owned());
    let config = FpartConfig::default();
    let ml = MultilevelConfig::default();

    // The three pinned workloads: distinct topology families so a
    // regression in any of the engine's regimes (locality, depth,
    // pre-clustered structure) shows up in at least one row.
    let circuits: Vec<(Hypergraph, DeviceConstraints)> = vec![
        (rent_circuit(&RentConfig::new("rent", 4000, 200), 11), DeviceConstraints::new(400, 120)),
        (
            layered_circuit(&LayeredConfig::new("layered", 40, 80), 7),
            DeviceConstraints::new(500, 150),
        ),
        (
            clustered_circuit(&ClusteredConfig::new("clustered", 12, 260), 3).0,
            DeviceConstraints::new(450, 130),
        ),
    ];

    let mut rows = Vec::new();
    for (graph, constraints) in &circuits {
        let flat = partition(graph, *constraints, &config).expect("flat partitions");
        rows.push(row(graph, *constraints, &config, "flat", &flat));
        let nlevel =
            partition_multilevel(graph, *constraints, &config, &ml).expect("multilevel partitions");
        rows.push(row(graph, *constraints, &config, "multilevel", &nlevel));
        println!(
            "{}: flat {} devices cut {}, multilevel {} devices cut {}",
            graph.name(),
            flat.device_count,
            flat.cut,
            nlevel.device_count,
            nlevel.cut
        );
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema_version\": {},", fpart_core::SCHEMA_VERSION);
    let _ = writeln!(json, "  \"circuits\": [\n{}\n  ]", rows.join(",\n"));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write quality json");
    println!("wrote {out_path}");
}

/// One gate row: the solution's lexicographic quality key components.
fn row(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    method: &str,
    outcome: &PartitionOutcome,
) -> String {
    let evaluator = CostEvaluator::new(
        constraints,
        config,
        lower_bound(graph, constraints),
        graph.terminal_count(),
    );
    let state = PartitionState::from_assignment(
        graph,
        outcome.assignment.clone(),
        outcome.device_count.max(1),
    );
    let key = evaluator.key(&state, None);
    format!(
        "    {{\"name\": \"{}\", \"method\": \"{method}\", \"nodes\": {}, \
         \"feasible\": {}, \"devices\": {}, \"infeasibility\": {:.4}, \
         \"terminal_sum\": {}, \"external_balance\": {:.4}, \"cut\": {}}}",
        graph.name(),
        graph.node_count(),
        outcome.feasible,
        outcome.device_count,
        key.infeasibility,
        key.terminal_sum,
        key.external_balance,
        key.cut
    )
}
