//! Smoke performance benchmark for the incremental-cost / zero-allocation
//! / parallel-search work, emitting machine-readable `BENCH_pr10.json`
//! (schema-versioned; see `fpart_core::obs::SCHEMA_VERSION`).
//!
//! Fourteen measurements:
//!
//! 1. **Pass throughput** — retained moves per second of `improve(...)`
//!    on an MCNC-scale circuit (two-block and 8-way), exercising the
//!    zero-allocation inner loop end to end.
//! 2. **Per-move cost evaluation** — the incremental `KeyTracker` update
//!    (O(1) per move) against the from-scratch O(k) scan the pass loop
//!    performed before, over an identical move sequence. The reported
//!    percentage is the single-thread pass-component gain attributable
//!    to incremental key maintenance.
//! 3. **Thread sweep** — wall time of multi-run `bipartition_fm` and of
//!    driver-level `partition_restarts` at 1/2/4/8 threads. Results are
//!    bit-identical across the sweep (asserted); only wall time varies.
//!    `available_parallelism` is recorded because speedup is bounded by
//!    the machine: a single-core container shows ~1.0×.
//! 4. **Engine counters** — the internal `Metrics` registry of one
//!    observed `partition_restarts` search (passes, applied/reverted
//!    moves, gain-bucket pops, key evaluations, per-`ImproveKind` wall
//!    time), plus the metered-vs-unmetered wall-time ratio, so the
//!    "zero overhead when disabled" claim stays measurable over time.
//! 5. **Execution control** — completion status and budget counters of a
//!    deadline-bounded search and of a panic-injected restart search, so
//!    graceful degradation and panic isolation stay measurable, plus the
//!    budget-check wall-time ratio (unlimited budget vs no budget) to
//!    keep the "one branch when unlimited" claim honest.
//! 6. **Multilevel** — flat FPART vs the n-level V-cycle on a 20k-node
//!    Rent-style circuit: wall time of each, the speedup, the coarsening
//!    depth, and both solutions' lexicographic quality keys
//!    `(f, d_k, T_SUM, d_k^E, cut)`. `quality_not_worse` asserts the
//!    n-level result does not lose quality for its speed.
//! 7. **ECO repair** — a capacity-balanced ~1% churn edit script (remove
//!    cells, add equal-size replacements wired to surviving neighbours)
//!    applied to the 20k-node Rent circuit: wall time of
//!    `repartition_eco` carrying the pre-edit partition vs a from-scratch
//!    multilevel run on the edited graph, plus both quality keys.
//!    `quality_comparable` holds devices strict and every scalar
//!    component within 5%.
//! 8. **Intra-run thread scaling** — one multilevel run (no restarts)
//!    on the 20k-node Rent circuit at 1/2/4 workers. The parallel
//!    matching, net-projection, and boundary-pair stages are
//!    deterministic by construction, so every worker count must produce
//!    a bit-identical assignment (asserted); only wall time varies, and
//!    the speedup is bounded by `available_parallelism`.
//! 9. **Large budgeted run** — a seeded 200k-node Rent circuit under a
//!    wall-clock cap, so end-to-end scalability stays measurable while
//!    the deadline guarantees the bench finishes on any machine.
//! 10. **Span profile** — the hierarchical span records of the observed
//!     20k-node multilevel run from measurement 6, plus the fraction of
//!     its wall time the profiler attributes to phase self-time
//!     (pair-job lanes excluded so worker time is not double-counted
//!     against the refine level that contains it).
//! 11. **Memory** — peak RSS of the whole bench process (`VmHWM` from
//!     `/proc/self/status`; absent off Linux) and bytes per pin of the
//!     largest circuit held, keeping footprint measurable over time.
//! 12. **Durability** — the checkpointed multilevel restart search
//!     against the identical search without a writer on the 20k-node
//!     Rent circuit (interleaved reps, median of per-pair ratios — the
//!     same estimator as measurement 4), so the "checkpointing costs
//!     <= 2%" claim stays enforced. The final snapshot is then torn
//!     down to a one-restart prefix — the on-disk shape a mid-run
//!     SIGKILL leaves — and resumed; `resume_bit_identical` asserts
//!     the merged result matches the uninterrupted baseline exactly.
//! 13. **Partition server** — warm-session request latency of the
//!     `fpart serve` engine (`Server::handle` on a pre-loaded 20k-node
//!     session) against a cold one-shot of the same deadline-bounded
//!     search through the sibling `fpart` CLI binary (in-process
//!     parse + partition where the binary is absent). Both sides run
//!     the identical capped search, so the ratio isolates what a
//!     session amortizes — process spawn, netlist parse, graph
//!     construction — and `warm_over_cold <= 0.5` is the acceptance
//!     gate `check_bench.py` enforces.
//! 14. **Memoization** — the fingerprint-keyed memo store on the
//!     20k-node multilevel restart search: a cached re-run of the
//!     identical request against the cold baseline (gated at >= 10x and
//!     bit-identical), the cold-path overhead of a *fresh* store vs no
//!     store at all (same interleaved median-of-pair-ratios estimator
//!     as measurement 4, gated at <= 1%), and a post-ECO run through
//!     the warm store — the edited graph's fingerprint must miss, so
//!     its result stays bit-identical to the memo-less run on the
//!     edited graph.
//!
//! Output path: first CLI argument, default `BENCH_pr10.json`.

use std::fmt::Write as _;
use std::time::Instant;

use fpart_core::cost::CostEvaluator;
use fpart_core::fm::{bipartition_fm, FmConfig};
use fpart_core::server::protocol;
use fpart_core::{
    improve, partition_multilevel_observed, partition_restarts, partition_restarts_observed,
    Counter, FaultPlan, FpartConfig, ImproveContext, Json, KeyTracker, Metrics, MultilevelConfig,
    Observer, PartitionState, RunBudget, Server, ServerConfig, SpanKind,
};
use fpart_device::{Device, DeviceConstraints};
use fpart_hypergraph::gen::{find_profile, rent_circuit, synthesize_mcnc, RentConfig, Technology};
use fpart_hypergraph::NodeId;

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_pr10.json".to_owned());
    let graph = synthesize_mcnc(find_profile("s9234").expect("profile"), Technology::Xc3000);
    let constraints = Device::XC3020.constraints(0.9);
    let config = FpartConfig::default();
    let evaluator = CostEvaluator::new(constraints, &config, 8, graph.terminal_count());
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema_version\": {},", fpart_core::SCHEMA_VERSION);
    let _ = writeln!(json, "  \"circuit\": \"s9234\",");
    let _ = writeln!(json, "  \"nodes\": {},", graph.node_count());
    let _ = writeln!(json, "  \"available_parallelism\": {cores},");

    // 1. Pass throughput: two-block and 8-way improve calls.
    let two_block: Vec<u32> = (0..graph.node_count()).map(|i| u32::from(i >= 57)).collect();
    let stripes: Vec<u32> =
        (0..graph.node_count()).map(|i| (i * 8 / graph.node_count()) as u32).collect();
    let mut throughput = Vec::new();
    for (label, assignment, k, active) in [
        ("two_block", &two_block, 2usize, vec![0usize, 1]),
        ("eight_way", &stripes, 8usize, (0..8).collect()),
    ] {
        let mut moves = 0usize;
        let mut passes = 0usize;
        let reps = 8;
        let start = Instant::now();
        for _ in 0..reps {
            let mut state = PartitionState::from_assignment(&graph, assignment.clone(), k);
            let ctx = ImproveContext {
                evaluator: &evaluator,
                config: &config,
                remainder: k - 1,
                minimum_reached: false,
                budget: None,
            };
            let stats = improve(&mut state, &active, &ctx);
            moves += stats.moves;
            passes += stats.passes;
        }
        let secs = start.elapsed().as_secs_f64();
        #[allow(clippy::cast_precision_loss)]
        let moves_per_sec = moves as f64 / secs;
        println!(
            "pass throughput [{label}]: {moves} moves, {passes} passes in {secs:.3}s \
             => {moves_per_sec:.0} moves/s"
        );
        throughput.push(format!(
            "    {{\"case\": \"{label}\", \"moves\": {moves}, \"passes\": {passes}, \
             \"seconds\": {secs:.4}, \"moves_per_sec\": {moves_per_sec:.0}}}"
        ));
    }
    let _ = writeln!(json, "  \"pass_throughput\": [\n{}\n  ],", throughput.join(",\n"));

    // 2. Incremental key maintenance vs the from-scratch O(k) scan the
    //    move loop used to perform after every applied move. Every timed
    //    loop replays the identical move sequence; a move-only baseline
    //    is subtracted so the reported numbers isolate the cost-evaluation
    //    component that this change replaced.
    let n = graph.node_count();
    let mut key_eval = Vec::new();
    for k in [8usize, 64] {
        let striped: Vec<u32> = (0..n).map(|i| (i * k / n) as u32).collect();
        let seq: Vec<(NodeId, usize)> =
            (0..40_000).map(|i| (NodeId::from_index((i * 17) % n), ((i * 5) / 7) % k)).collect();
        let evaluator = CostEvaluator::new(constraints, &config, k, graph.terminal_count());
        let mut sink = 0usize;
        // Take the minimum over several repetitions: each timed loop is
        // only a few milliseconds, so a single sample is at the mercy of
        // scheduler noise. The move sequence is valid from any state, so
        // one state is reused across repetitions (construction untimed).
        let reps = 7;

        let mut state = PartitionState::from_assignment(&graph, striped.clone(), k);
        let mut move_only = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            for &(node, to) in &seq {
                state.move_node(node, to);
                sink ^= state.block_of(node) as usize;
            }
            move_only = move_only.min(start.elapsed().as_secs_f64());
        }

        let mut state = PartitionState::from_assignment(&graph, striped.clone(), k);
        let mut tracker = KeyTracker::new(&evaluator, &state);
        let mut incremental = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            for &(node, to) in &seq {
                let from = state.block_of(node);
                state.move_node(node, to);
                tracker.apply_move(&evaluator, &state, from, to);
                sink ^= tracker.key(&evaluator, &state, None).cut;
            }
            incremental = incremental.min(start.elapsed().as_secs_f64());
        }

        let mut state = PartitionState::from_assignment(&graph, striped.clone(), k);
        let mut scan = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            for &(node, to) in &seq {
                state.move_node(node, to);
                sink ^= evaluator.key(&state, None).cut;
            }
            scan = scan.min(start.elapsed().as_secs_f64());
        }
        std::hint::black_box(sink);

        #[allow(clippy::cast_precision_loss)]
        let per_move_ns = |secs: f64| secs * 1e9 / seq.len() as f64;
        let inc_component = (incremental - move_only).max(1e-9);
        let scan_component = (scan - move_only).max(1e-9);
        let loop_gain_pct = (scan / incremental - 1.0) * 100.0;
        let component_gain_pct = (scan_component / inc_component - 1.0) * 100.0;
        println!(
            "key evaluation per move (k={k}): incremental {:.0}ns, from-scratch {:.0}ns, \
             move-only baseline {:.0}ns => loop {loop_gain_pct:.1}% faster, \
             evaluation component {component_gain_pct:.0}% faster",
            per_move_ns(incremental),
            per_move_ns(scan),
            per_move_ns(move_only)
        );
        key_eval.push(format!(
            "    {{\"blocks\": {k}, \"moves\": {}, \"move_only_ns\": {:.1}, \
             \"incremental_ns\": {:.1}, \"from_scratch_ns\": {:.1}, \
             \"loop_gain_pct\": {loop_gain_pct:.1}, \
             \"eval_component_gain_pct\": {component_gain_pct:.1}}}",
            seq.len(),
            per_move_ns(move_only),
            per_move_ns(incremental),
            per_move_ns(scan)
        ));
    }
    let _ = writeln!(json, "  \"key_eval_per_move\": [\n{}\n  ],", key_eval.join(",\n"));

    // 3. Thread sweep: multi-run bipartition and driver restarts.
    let mut sweep = Vec::new();
    let mut reference_cut = None;
    for threads in [1usize, 2, 4, 8] {
        let fm_config = FmConfig { runs: 8, threads, ..FmConfig::default() };
        let start = Instant::now();
        let bp = bipartition_fm(&graph, &fm_config);
        let bp_secs = start.elapsed().as_secs_f64();
        assert_eq!(*reference_cut.get_or_insert(bp.cut), bp.cut, "thread sweep diverged");

        let start = Instant::now();
        let outcome = partition_restarts(
            &graph,
            DeviceConstraints::new(constraints.s_max, constraints.t_max),
            &config,
            4,
            threads,
        );
        let restart_secs = start.elapsed().as_secs_f64();
        let devices = outcome.map_or(0, |o| o.device_count);
        println!(
            "threads={threads}: bipartition_fm(runs=8) {bp_secs:.3}s, \
             partition_restarts(4) {restart_secs:.3}s ({devices} devices)"
        );
        sweep.push(format!(
            "    {{\"threads\": {threads}, \"bipartition_runs8_seconds\": {bp_secs:.4}, \
             \"restarts4_seconds\": {restart_secs:.4}}}"
        ));
    }
    let _ = writeln!(json, "  \"thread_sweep\": [\n{}\n  ],", sweep.join(",\n"));

    // 4. Engine counters of one observed restart search, and the wall
    //    time of the identical unobserved search on the same workload —
    //    the ratio bounds what full metering (counters, timers, and the
    //    span profiler) costs end to end. Each run is ~170 ms while the
    //    instrumentation itself is microseconds, so the estimator has to
    //    beat scheduler noise, not the metering: after a warmup of each
    //    side, the sides are interleaved (cache/frequency drift hits
    //    both equally) and the reported overhead is the *median* of the
    //    per-pair metered/unmetered ratios — a single descheduled rep
    //    shifts one pair, not the estimate. The artifact's seconds are
    //    each side's floor (minimum) over all reps.
    let metering_reps = 15;
    let mut unmetered_secs = f64::INFINITY;
    let mut metered_secs = f64::INFINITY;
    let mut pair_ratios = Vec::with_capacity(metering_reps);
    let unmetered = partition_restarts(&graph, constraints, &config, 2, 1).expect("partitions");
    let report =
        partition_restarts_observed(&graph, constraints, &config, 2, 1).expect("partitions");
    for _ in 0..metering_reps {
        let start = Instant::now();
        let run = partition_restarts(&graph, constraints, &config, 2, 1).expect("partitions");
        let u = start.elapsed().as_secs_f64();
        unmetered_secs = unmetered_secs.min(u);
        assert_eq!(run.assignment, unmetered.assignment, "unmetered rep diverged");

        let start = Instant::now();
        let run =
            partition_restarts_observed(&graph, constraints, &config, 2, 1).expect("partitions");
        let m = start.elapsed().as_secs_f64();
        metered_secs = metered_secs.min(m);
        assert_eq!(run.outcome.assignment, report.outcome.assignment, "metered rep diverged");

        pair_ratios.push(m / u.max(1e-12));
    }
    assert_eq!(unmetered.assignment, report.outcome.assignment, "metering changed the result");
    pair_ratios.sort_by(f64::total_cmp);
    let overhead_pct = (pair_ratios[pair_ratios.len() / 2] - 1.0) * 100.0;
    println!(
        "engine counters: passes={}, moves applied={}, gain-bucket pops={}; \
         metering wall-time delta {overhead_pct:+.1}%",
        report.totals.get(Counter::Passes),
        report.totals.get(Counter::MovesApplied),
        report.totals.get(Counter::GainBucketPops)
    );
    let _ = writeln!(json, "  \"engine_counters\": {},", report.totals.to_json());
    let _ = writeln!(
        json,
        "  \"metering\": {{\"unmetered_seconds\": {unmetered_secs:.4}, \
         \"metered_seconds\": {metered_secs:.4}, \"overhead_pct\": {overhead_pct:.1}}},"
    );

    // 5. Execution control: a tight deadline degrades gracefully, a
    //    panic-injected restart is contained, and an unlimited budget
    //    costs (near) nothing over no budget at all.
    let start = Instant::now();
    let unlimited_budget = FpartConfig {
        budget: RunBudget { max_passes: Some(u64::MAX), ..RunBudget::default() },
        ..FpartConfig::default()
    };
    let budgeted =
        partition_restarts(&graph, constraints, &unlimited_budget, 2, 1).expect("partitions");
    let budgeted_secs = start.elapsed().as_secs_f64();
    assert_eq!(budgeted.assignment, unmetered.assignment, "budget checks changed the result");
    let budget_overhead_pct = (budgeted_secs / unmetered_secs - 1.0) * 100.0;

    let deadline_config = FpartConfig {
        budget: RunBudget {
            deadline: Some(std::time::Duration::from_millis(1)),
            ..RunBudget::default()
        },
        ..FpartConfig::default()
    };
    let start = Instant::now();
    let deadline_report = partition_restarts_observed(&graph, constraints, &deadline_config, 2, 1)
        .expect("degrades instead of failing");
    let deadline_secs = start.elapsed().as_secs_f64();

    std::panic::set_hook(Box::new(|_| {})); // injected panic below is expected
    let fault_config = FpartConfig {
        fault_plan: Some(FaultPlan::panic_at(1, "smoke fault").for_only_restart(0)),
        ..FpartConfig::default()
    };
    let fault_report = partition_restarts_observed(&graph, constraints, &fault_config, 2, 1)
        .expect("survivor wins");
    let _ = std::panic::take_hook();

    println!(
        "execution control: unlimited-budget wall-time delta {budget_overhead_pct:+.1}%, \
         1ms deadline => {} in {deadline_secs:.3}s, injected panic => {} ({} failed restart)",
        deadline_report.completion,
        fault_report.completion,
        fault_report.failed.len()
    );
    let _ = writeln!(
        json,
        "  \"execution_control\": {{\"budget_overhead_pct\": {budget_overhead_pct:.1}, \
         \"deadline_completion\": \"{}\", \"deadline_seconds\": {deadline_secs:.4}, \
         \"deadline_budget_stops\": {}, \"fault_completion\": \"{}\", \
         \"fault_failed_restarts\": {}}},",
        deadline_report.completion,
        deadline_report.totals.get(Counter::BudgetStops),
        fault_report.completion,
        fault_report.totals.get(Counter::FailedRestarts)
    );
    // 6. Multilevel: flat FPART vs the n-level V-cycle on a 20k-node
    //    Rent-style circuit — wall time, coarsening depth, and the
    //    lexicographic quality key of both results.
    let rent = rent_circuit(&RentConfig::new("rent20k", 20_000, 600), 42);
    let rent_constraints = DeviceConstraints::new(400, 120);

    let start = Instant::now();
    let flat = fpart_core::partition(&rent, rent_constraints, &config).expect("flat partitions");
    let flat_secs = start.elapsed().as_secs_f64();

    let ml_config = MultilevelConfig::default();
    let mut obs = Observer::new(Metrics::enabled(), None);
    let start = Instant::now();
    let nlevel =
        partition_multilevel_observed(&rent, rent_constraints, &config, &ml_config, &mut obs)
            .expect("multilevel partitions");
    let ml_secs = start.elapsed().as_secs_f64();

    let speedup = flat_secs / ml_secs.max(1e-9);
    let flat_key = quality_key(&rent, rent_constraints, &config, &flat);
    let ml_key = quality_key(&rent, rent_constraints, &config, &nlevel);
    let quality_not_worse = not_worse(&ml_key, &flat_key);
    let coarsen_levels = obs.metrics.get(Counter::CoarsenLevels);
    println!(
        "multilevel: flat {flat_secs:.3}s ({} devices, cut {}), n-level {ml_secs:.3}s \
         ({} devices, cut {}, {coarsen_levels} levels) => {speedup:.1}x, \
         quality_not_worse={quality_not_worse}",
        flat.device_count, flat.cut, nlevel.device_count, nlevel.cut
    );
    let _ = writeln!(
        json,
        "  \"multilevel\": {{\"circuit\": \"rent20k\", \"nodes\": {}, \
         \"flat_seconds\": {flat_secs:.4}, \"multilevel_seconds\": {ml_secs:.4}, \
         \"speedup\": {speedup:.2}, \"coarsen_levels\": {coarsen_levels}, \
         \"flat\": {}, \"nlevel\": {}, \"quality_not_worse\": {quality_not_worse}}},",
        rent.node_count(),
        key_json(&flat_key),
        key_json(&ml_key)
    );

    // 10. Span profile of that observed multilevel run: every record the
    //     profiler kept, plus the share of wall time attributed to phase
    //     self-time. Pair-job lanes run inside a refine level, so their
    //     self-time is excluded from the coverage sum to avoid counting
    //     the same wall-clock interval twice.
    let span_records = obs.metrics.spans().records();
    #[allow(clippy::cast_precision_loss)]
    let attributed_secs = span_records
        .iter()
        .filter(|r| r.kind != SpanKind::PairJob && r.parent != Some(SpanKind::PairJob))
        .map(|r| r.self_ns)
        .sum::<u64>() as f64
        / 1e9;
    let self_coverage_pct = attributed_secs / ml_secs.max(1e-9) * 100.0;
    let span_rows: Vec<String> = span_records
        .iter()
        .map(|r| {
            format!(
                "    {{\"kind\": \"{}\", \"level\": {}, \"parent\": {}, \"count\": {}, \
                 \"total_ns\": {}, \"self_ns\": {}}}",
                r.kind.as_str(),
                r.level,
                r.parent.map_or_else(|| "null".to_owned(), |p| format!("\"{}\"", p.as_str())),
                r.count,
                r.total_ns,
                r.self_ns
            )
        })
        .collect();
    println!(
        "span profile: {} record(s), {attributed_secs:.3}s of {ml_secs:.3}s attributed \
         ({self_coverage_pct:.1}% self-time coverage)",
        span_records.len()
    );
    let _ = writeln!(
        json,
        "  \"profile\": {{\"circuit\": \"rent20k\", \"wall_seconds\": {ml_secs:.4}, \
         \"attributed_self_seconds\": {attributed_secs:.4}, \
         \"self_coverage_pct\": {self_coverage_pct:.1}, \"spans\": [\n{}\n  ]}},",
        span_rows.join(",\n")
    );

    // 7. ECO repair vs from-scratch on the same 20k circuit. The edit
    //    is capacity-balanced — every removed cell is matched by an
    //    equal-size replacement wired to a surviving neighbour — so the
    //    incremental path stays local instead of tripping the
    //    verification fallback.
    let n = rent.node_count();
    let removals = n / 200; // 0.5% removed + 0.5% added => ~1% churn
    let mut removed = std::collections::HashSet::new();
    let mut ops = Vec::new();
    for i in 0..removals {
        let idx = (i * 197) % n;
        if removed.insert(idx) {
            let v = NodeId::from_index(idx);
            ops.push(fpart_hypergraph::EditOp::RemoveNode { name: rent.node_name(v).to_owned() });
        }
    }
    // Wire each replacement to a surviving neighbour of the cell it
    // stands in for, so constructive placement lands it in the block
    // that just freed the capacity.
    let survivor_of = |idx: usize| -> NodeId {
        let v = NodeId::from_index(idx);
        rent.nets(v)
            .iter()
            .flat_map(|&e| rent.pins(e).iter().copied())
            .find(|u| !removed.contains(&u.index()))
            .unwrap_or_else(|| {
                rent.node_ids().find(|u| !removed.contains(&u.index())).expect("survivors")
            })
    };
    let mut removed_sorted: Vec<usize> = removed.iter().copied().collect();
    removed_sorted.sort_unstable();
    for (j, &idx) in removed_sorted.iter().enumerate() {
        let name = format!("eco_{j}");
        let neighbour = rent.node_name(survivor_of(idx)).to_owned();
        ops.push(fpart_hypergraph::EditOp::AddNode {
            name: name.clone(),
            size: rent.node_size(NodeId::from_index(idx)),
        });
        ops.push(fpart_hypergraph::EditOp::AddNet {
            name: format!("eco_net_{j}"),
            pins: vec![name, neighbour],
        });
    }
    let script = fpart_hypergraph::EditScript::new(ops);
    let edits = script.len();
    let applied = fpart_hypergraph::apply_script(&rent, &script).expect("edit applies");

    let start = Instant::now();
    let eco_run = fpart_core::repartition_eco(
        &applied.graph,
        rent_constraints,
        &config,
        &fpart_core::EcoConfig::default(),
        &nlevel.assignment,
        &applied.node_map,
    )
    .expect("eco repairs");
    let eco_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let scratch =
        fpart_core::partition_multilevel(&applied.graph, rent_constraints, &config, &ml_config)
            .expect("from-scratch partitions");
    let scratch_secs = start.elapsed().as_secs_f64();

    let eco_speedup = scratch_secs / eco_secs.max(1e-9);
    let eco_key = quality_key(&applied.graph, rent_constraints, &config, &eco_run.outcome);
    let scratch_key = quality_key(&applied.graph, rent_constraints, &config, &scratch);
    let eco_comparable = comparable(&eco_key, &scratch_key);
    println!(
        "eco: {edits} edits (churn {:.4}), repair {eco_secs:.3}s \
         ({} devices, cut {}, repaired={}), from-scratch {scratch_secs:.3}s \
         ({} devices, cut {}) => {eco_speedup:.1}x, quality_comparable={eco_comparable}",
        eco_run.churn,
        eco_run.outcome.device_count,
        eco_run.outcome.cut,
        eco_run.repaired,
        scratch.device_count,
        scratch.cut
    );
    let _ = writeln!(
        json,
        "  \"eco\": {{\"circuit\": \"rent20k\", \"nodes\": {n}, \"edits\": {edits}, \
         \"churn\": {:.4}, \"repaired\": {}, \"dirty_blocks\": {}, \
         \"repair_seconds\": {eco_secs:.4}, \"scratch_seconds\": {scratch_secs:.4}, \
         \"speedup\": {eco_speedup:.2}, \"eco_feasible\": {}, \
         \"quality_comparable\": {eco_comparable}, \"repair\": {}, \"scratch\": {}}},",
        eco_run.churn,
        eco_run.repaired,
        eco_run.dirty_blocks,
        eco_run.outcome.feasible,
        key_json(&eco_key),
        key_json(&scratch_key)
    );

    // 8. Intra-run thread scaling: one multilevel run (restarts play no
    //    part) on the 20k-node Rent circuit at 1/2/4 workers. The
    //    assignment must be bit-identical at every worker count — the
    //    parallel stages only change wall time — so the sweep both
    //    measures the speedup and enforces the determinism contract on
    //    a real workload. Each timing takes the minimum of several
    //    repetitions: a single 20k-node run is a few hundred
    //    milliseconds and scheduler noise would otherwise dominate.
    let mut intra_rows = Vec::new();
    let mut intra_reference: Option<Vec<u32>> = None;
    let mut intra_seconds = [0.0f64; 3];
    for (slot, workers) in [1usize, 2, 4].into_iter().enumerate() {
        let ml = MultilevelConfig { threads: workers, ..MultilevelConfig::default() };
        let reps = 3;
        let mut secs = f64::INFINITY;
        let mut run = None;
        for _ in 0..reps {
            let start = Instant::now();
            let outcome = fpart_core::partition_multilevel(&rent, rent_constraints, &config, &ml)
                .expect("parallel multilevel partitions");
            secs = secs.min(start.elapsed().as_secs_f64());
            run = Some(outcome);
        }
        let run = run.expect("at least one repetition");
        assert_eq!(
            *intra_reference.get_or_insert_with(|| run.assignment.clone()),
            run.assignment,
            "intra-run parallelism diverged at {workers} workers"
        );
        intra_seconds[slot] = secs;
        println!(
            "intra-run workers={workers}: {secs:.3}s ({} devices, cut {})",
            run.device_count, run.cut
        );
        intra_rows.push(format!("    {{\"workers\": {workers}, \"seconds\": {secs:.4}}}"));
    }
    let intra_speedup = intra_seconds[0] / intra_seconds[2].max(1e-9);
    println!(
        "intra-run scaling: 1 -> 4 workers {intra_speedup:.2}x \
         (bit-identical, {cores} cores available)"
    );
    let _ = writeln!(
        json,
        "  \"intra_run\": {{\"circuit\": \"rent20k\", \"nodes\": {}, \
         \"bit_identical\": true, \"speedup_4_workers\": {intra_speedup:.2}, \
         \"runs\": [\n{}\n  ]}},",
        rent.node_count(),
        intra_rows.join(",\n")
    );

    // 9. Large budgeted run: a 200k-node Rent circuit through the full
    //    multilevel flow under a wall-clock cap. The deadline bounds
    //    the bench on any machine — on expiry the engine returns its
    //    best verified solution with completion `deadline_expired`
    //    instead of running away.
    let big = rent_circuit(&RentConfig::new("rent200k", 200_000, 3_000), 42);
    let capped = FpartConfig {
        budget: RunBudget {
            deadline: Some(std::time::Duration::from_secs(300)),
            ..RunBudget::default()
        },
        ..FpartConfig::default()
    };
    let big_ml = MultilevelConfig { threads: cores.min(4), ..MultilevelConfig::default() };
    let start = Instant::now();
    let big_run = fpart_core::partition_multilevel(&big, rent_constraints, &capped, &big_ml)
        .expect("large budgeted run produces a solution");
    let big_secs = start.elapsed().as_secs_f64();
    println!(
        "large run: rent200k ({} nodes) in {big_secs:.3}s => {} devices, cut {}, \
         feasible={}, completion={}",
        big.node_count(),
        big_run.device_count,
        big_run.cut,
        big_run.feasible,
        big_run.completion
    );
    let _ = writeln!(
        json,
        "  \"large_run\": {{\"circuit\": \"rent200k\", \"nodes\": {}, \
         \"deadline_seconds\": 300, \"seconds\": {big_secs:.4}, \"devices\": {}, \
         \"cut\": {}, \"feasible\": {}, \"completion\": \"{}\"}},",
        big.node_count(),
        big_run.device_count,
        big_run.cut,
        big_run.feasible,
        big_run.completion
    );

    // 12. Durability: the checkpointed multilevel restart search vs the
    //     identical search without a writer, on the 20k-node Rent
    //     circuit. The writer runs on its own thread and serializes a
    //     snapshot at most once per interval, so the search-loop cost is
    //     a channel send per completed restart — the estimator is the
    //     same interleaved median-of-pair-ratios as measurement 4. The
    //     final snapshot is then torn to a one-restart prefix (the shape
    //     a mid-run SIGKILL leaves behind) and resumed, asserting the
    //     merged result is bit-identical to the uninterrupted baseline.
    let ckpt_path =
        std::env::temp_dir().join(format!("fpart-smoke-durability-{}.ckpt", std::process::id()));
    let durable_restarts = 3;
    let fp = fpart_core::fingerprint_run(
        &rent,
        rent_constraints,
        &config,
        Some(&ml_config),
        durable_restarts,
    );
    let run_durable = |writer: Option<&fpart_core::CheckpointWriter>,
                       resume: Option<&fpart_core::Checkpoint>| {
        fpart_core::partition_restarts_durable(
            &rent,
            rent_constraints,
            &config,
            Some(&ml_config),
            durable_restarts,
            1,
            fp,
            resume,
            writer,
        )
        .expect("durable search succeeds")
    };
    // The CLI's default throttle (1s): on a single-core machine every
    // serialized write competes with the search for the one CPU, so the
    // interval is part of the claim being measured.
    let spawn_writer = || {
        fpart_core::CheckpointWriter::spawn(
            ckpt_path.clone(),
            std::time::Duration::from_millis(1000),
        )
    };
    // Warm both sides before timing anything.
    let durable_baseline = run_durable(None, None);
    let writer = spawn_writer();
    let warm = run_durable(Some(&writer), None);
    let mut checkpoint_writes = writer.finish().expect("writer flushes");
    assert_eq!(
        warm.outcome.assignment, durable_baseline.outcome.assignment,
        "checkpointing changed the result"
    );

    let durability_reps = 7;
    let mut durable_base_secs = f64::INFINITY;
    let mut durable_ckpt_secs = f64::INFINITY;
    let mut durable_ratios = Vec::with_capacity(durability_reps);
    for _ in 0..durability_reps {
        let start = Instant::now();
        let run = run_durable(None, None);
        let u = start.elapsed().as_secs_f64();
        durable_base_secs = durable_base_secs.min(u);
        assert_eq!(
            run.outcome.assignment, durable_baseline.outcome.assignment,
            "baseline rep diverged"
        );

        let writer = spawn_writer();
        let start = Instant::now();
        let run = run_durable(Some(&writer), None);
        let c = start.elapsed().as_secs_f64();
        checkpoint_writes = checkpoint_writes.max(writer.finish().expect("writer flushes"));
        durable_ckpt_secs = durable_ckpt_secs.min(c);
        assert_eq!(
            run.outcome.assignment, durable_baseline.outcome.assignment,
            "checkpointed rep diverged"
        );
        durable_ratios.push(c / u.max(1e-12));
    }
    durable_ratios.sort_by(f64::total_cmp);
    let durability_overhead_pct = (durable_ratios[durable_ratios.len() / 2] - 1.0) * 100.0;

    // Tear the final snapshot down to a one-restart prefix and resume.
    let full = fpart_core::read_checkpoint(&ckpt_path).expect("final checkpoint parses");
    assert_eq!(full.completed.len(), durable_restarts, "final snapshot covers every restart");
    let torn =
        fpart_core::Checkpoint { completed: full.completed.into_iter().take(1).collect(), ..full };
    fpart_core::write_checkpoint(&ckpt_path, &torn).expect("torn prefix writes");
    let saved = fpart_core::read_checkpoint(&ckpt_path).expect("torn prefix parses");
    let resumed = run_durable(None, Some(&saved));
    let resume_bit_identical = resumed.outcome.assignment == durable_baseline.outcome.assignment
        && resumed.outcome.cut == durable_baseline.outcome.cut
        && resumed.outcome.device_count == durable_baseline.outcome.device_count
        && resumed.totals.get(Counter::RestartsResumed) == 1;
    let _ = std::fs::remove_file(&ckpt_path);
    println!(
        "durability: baseline {durable_base_secs:.3}s, checkpointed {durable_ckpt_secs:.3}s \
         ({checkpoint_writes} snapshot(s)) => overhead {durability_overhead_pct:+.1}%, \
         resume_bit_identical={resume_bit_identical}"
    );
    let _ = writeln!(
        json,
        "  \"durability\": {{\"circuit\": \"rent20k\", \"nodes\": {}, \
         \"restarts\": {durable_restarts}, \"baseline_seconds\": {durable_base_secs:.4}, \
         \"checkpointed_seconds\": {durable_ckpt_secs:.4}, \
         \"overhead_pct\": {durability_overhead_pct:.1}, \
         \"checkpoint_writes\": {checkpoint_writes}, \
         \"resume_bit_identical\": {resume_bit_identical}}},",
        rent.node_count()
    );

    // 13. Partition server: warm-session request latency against a cold
    //     one-shot on the same 20k-node Rent circuit. Both sides run the
    //     identical deadline-bounded flat search, so the
    //     difference is exactly what a loaded session amortizes: process
    //     spawn, netlist parse, and graph construction. Cold is the
    //     sibling `fpart` CLI binary when it sits next to this bench
    //     (the release layout `ci.sh` builds); otherwise an in-process
    //     parse + partition stands in.
    let server_netlist =
        std::env::temp_dir().join(format!("fpart-smoke-server-{}.fhg", std::process::id()));
    {
        let file = std::fs::File::create(&server_netlist).expect("create server netlist");
        fpart_hypergraph::io::write_netlist(file, &rent).expect("write server netlist");
    }
    let netlist_arg = server_netlist.display().to_string();
    // The flat method with a tight deadline: flat FPART checks its
    // budget at move granularity (stops within ~2 ms of expiry, per
    // measurement 5), so the capped search stays small next to the
    // parse and process spawn the warm session amortizes, while both
    // sides still return a verified (degraded) solution.
    let deadline_ms = 10u64;
    let fpart_bin = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("fpart")))
        .filter(|p| p.exists());
    let cold_mode = if fpart_bin.is_some() { "cli" } else { "in_process" };
    let mut cold_secs = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        if let Some(bin) = &fpart_bin {
            let status = std::process::Command::new(bin)
                .args([
                    "partition",
                    &netlist_arg,
                    "--s-max",
                    "400",
                    "--t-max",
                    "120",
                    "--method",
                    "fpart",
                    "--deadline-ms",
                    &deadline_ms.to_string(),
                    "--threads",
                    "1",
                ])
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                .status()
                .expect("spawn the fpart CLI");
            assert!(status.success(), "cold one-shot CLI run failed");
        } else {
            let file = std::fs::File::open(&server_netlist).expect("open server netlist");
            let parsed = fpart_hypergraph::io::read_netlist(std::io::BufReader::new(file))
                .expect("parse server netlist");
            let capped = FpartConfig {
                budget: RunBudget {
                    deadline: Some(std::time::Duration::from_millis(deadline_ms)),
                    ..RunBudget::default()
                },
                ..FpartConfig::default()
            };
            let run = fpart_core::partition(&parsed, rent_constraints, &capped)
                .expect("cold in-process run");
            std::hint::black_box(run.cut);
        }
        cold_secs = cold_secs.min(start.elapsed().as_secs_f64());
    }

    let server = Server::new(ServerConfig::default());
    let mut load_reply = Vec::new();
    server.handle(
        &format!(
            "{{\"id\": \"load\", \"cmd\": \"load\", \"session\": \"bench\", \"path\": {}, \
             \"s_max\": 400, \"t_max\": 120}}",
            protocol::json_string(&netlist_arg)
        ),
        &mut load_reply,
    );
    let load_line = String::from_utf8(load_reply).expect("utf8 load reply");
    assert!(load_line.contains("\"ok\": true"), "session load failed: {load_line}");
    let mut warm_secs = f64::INFINITY;
    for rep in 0..5 {
        let line = format!(
            "{{\"id\": \"w{rep}\", \"cmd\": \"partition\", \"session\": \"bench\", \
             \"method\": \"fpart\", \"deadline_ms\": {deadline_ms}}}"
        );
        let mut reply = Vec::new();
        let start = Instant::now();
        server.handle(&line, &mut reply);
        warm_secs = warm_secs.min(start.elapsed().as_secs_f64());
        let text = String::from_utf8(reply).expect("utf8 warm reply");
        let last = text.lines().last().expect("a warm reply line");
        let doc = Json::parse(last).expect("warm reply parses");
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "warm request failed: {last}");
    }
    let _ = std::fs::remove_file(&server_netlist);
    let warm_over_cold = warm_secs / cold_secs.max(1e-9);
    println!(
        "server: cold one-shot ({cold_mode}) {cold_secs:.3}s, warm session request \
         {warm_secs:.3}s => warm/cold {warm_over_cold:.2}"
    );
    let _ = writeln!(
        json,
        "  \"server\": {{\"circuit\": \"rent20k\", \"nodes\": {}, \
         \"deadline_ms\": {deadline_ms}, \"cold_mode\": \"{cold_mode}\", \
         \"cold_seconds\": {cold_secs:.4}, \"warm_seconds\": {warm_secs:.4}, \
         \"warm_over_cold\": {warm_over_cold:.3}}},",
        rent.node_count()
    );

    // 14. Memoization: the fingerprint-keyed memo store on the 20k-node
    //     multilevel restart search. Three claims stay measurable:
    //     a warm store answers the identical request >= 10x faster and
    //     bit-identically; a fresh (never-hit) store costs <= 1% over no
    //     store at all (median of interleaved pair ratios, as in
    //     measurement 4); and a post-ECO request through the warm store
    //     misses — the edited graph's fingerprint differs — so its
    //     result is bit-identical to the memo-less run on the edited
    //     graph.
    let memo_restarts = 2;
    let run_memo = |graph: &fpart_hypergraph::Hypergraph,
                    store: Option<std::sync::Arc<fpart_core::MemoStore>>| {
        let ml = MultilevelConfig { memo: store, ..MultilevelConfig::default() };
        fpart_core::partition_multilevel_restarts(
            graph,
            rent_constraints,
            &config,
            &ml,
            memo_restarts,
            1,
        )
        .expect("memo bench run succeeds")
    };
    let memo_baseline = run_memo(&rent, None);
    let memo_reps = 7;
    let mut memo_cold_secs = f64::INFINITY;
    let mut memo_fresh_secs = f64::INFINITY;
    let mut memo_ratios = Vec::with_capacity(memo_reps);
    for _ in 0..memo_reps {
        let start = Instant::now();
        let run = run_memo(&rent, None);
        let u = start.elapsed().as_secs_f64();
        memo_cold_secs = memo_cold_secs.min(u);
        assert_eq!(run.assignment, memo_baseline.assignment, "memo-less rep diverged");

        // A fresh store every rep: this times the never-hit cold path
        // (fingerprinting, lookups, insertions), not cache wins.
        let start = Instant::now();
        let run = run_memo(&rent, Some(fpart_core::MemoStore::shared()));
        let c = start.elapsed().as_secs_f64();
        memo_fresh_secs = memo_fresh_secs.min(c);
        assert_eq!(run.assignment, memo_baseline.assignment, "fresh-store rep diverged");
        memo_ratios.push(c / u.max(1e-12));
    }
    memo_ratios.sort_by(f64::total_cmp);
    let memo_cold_overhead_pct = (memo_ratios[memo_ratios.len() / 2] - 1.0) * 100.0;

    let memo_store = fpart_core::MemoStore::shared();
    let populate = run_memo(&rent, Some(memo_store.clone()));
    let mut memo_bit_identical = populate.assignment == memo_baseline.assignment
        && populate.device_count == memo_baseline.device_count
        && populate.cut == memo_baseline.cut;
    let mut memo_cached_secs = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        let run = run_memo(&rent, Some(memo_store.clone()));
        memo_cached_secs = memo_cached_secs.min(start.elapsed().as_secs_f64());
        memo_bit_identical = memo_bit_identical
            && run.assignment == memo_baseline.assignment
            && run.device_count == memo_baseline.device_count
            && run.cut == memo_baseline.cut;
    }
    let memo_speedup = memo_cold_secs / memo_cached_secs.max(1e-9);

    // Post-ECO: the edited graph must miss the warm store and land on
    // the memo-less result for the edited graph.
    let start = Instant::now();
    let post_eco_cold = run_memo(&applied.graph, None);
    let post_eco_cold_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let post_eco_cached = run_memo(&applied.graph, Some(memo_store.clone()));
    let post_eco_cached_secs = start.elapsed().as_secs_f64();
    let post_eco_bit_identical = post_eco_cached.assignment == post_eco_cold.assignment
        && post_eco_cached.device_count == post_eco_cold.device_count
        && post_eco_cached.cut == post_eco_cold.cut;
    let memo_stats = memo_store.stats();
    println!(
        "memo: cold {memo_cold_secs:.3}s, cached {memo_cached_secs:.3}s \
         => {memo_speedup:.1}x (bit_identical={memo_bit_identical}), \
         fresh-store overhead {memo_cold_overhead_pct:+.1}%, post-ECO cached \
         {post_eco_cached_secs:.3}s vs cold {post_eco_cold_secs:.3}s \
         (bit_identical={post_eco_bit_identical}, solution hits {})",
        memo_stats.solution_hits
    );
    let _ = writeln!(
        json,
        "  \"memo\": {{\"circuit\": \"rent20k\", \"nodes\": {}, \
         \"restarts\": {memo_restarts}, \"cold_seconds\": {memo_cold_secs:.4}, \
         \"cached_seconds\": {memo_cached_secs:.4}, \"cached_speedup\": {memo_speedup:.2}, \
         \"bit_identical\": {memo_bit_identical}, \
         \"cold_overhead_pct\": {memo_cold_overhead_pct:.1}, \
         \"post_eco_cold_seconds\": {post_eco_cold_secs:.4}, \
         \"post_eco_cached_seconds\": {post_eco_cached_secs:.4}, \
         \"post_eco_bit_identical\": {post_eco_bit_identical}, \
         \"solution_hits\": {}, \"hierarchy_hits\": {}}},",
        rent.node_count(),
        memo_stats.solution_hits,
        memo_stats.hierarchy_hits
    );

    // 11. Memory: the process peak RSS (high-water mark, so it covers
    //     every measurement above) and bytes per pin of the largest
    //     circuit the bench held. `peak_rss_bytes` is null off Linux
    //     where /proc/self/status does not exist.
    let pins = big.pin_count();
    let peak = peak_rss_bytes();
    #[allow(clippy::cast_precision_loss)]
    let bytes_per_pin = peak.map(|b| b as f64 / pins.max(1) as f64);
    #[allow(clippy::cast_precision_loss)]
    let peak_mib = peak.map(|b| b as f64 / (1024.0 * 1024.0));
    match (peak_mib, bytes_per_pin) {
        (Some(mib), Some(per_pin)) => println!(
            "memory: peak RSS {mib:.1} MiB, {per_pin:.1} bytes/pin over {pins} pins (rent200k)"
        ),
        _ => println!("memory: peak RSS unavailable on this platform"),
    }
    let _ = writeln!(
        json,
        "  \"memory\": {{\"peak_rss_bytes\": {}, \"largest_circuit\": \"rent200k\", \
         \"pins\": {pins}, \"bytes_per_pin\": {}}}",
        peak.map_or_else(|| "null".to_owned(), |b| b.to_string()),
        bytes_per_pin.map_or_else(|| "null".to_owned(), |b| format!("{b:.1}"))
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");
}

/// The cross-run lexicographic quality key of a finished outcome:
/// `(feasible, devices, d_k, T_SUM, d_k^E, cut)`. Unlike
/// `SolutionKey::cmp_key` (which ranks *more* feasible blocks better
/// mid-search), cross-run comparison wants all-feasible first and then
/// *fewer* devices.
fn quality_key(
    graph: &fpart_hypergraph::Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    outcome: &fpart_core::PartitionOutcome,
) -> (bool, usize, f64, usize, f64, usize) {
    let evaluator = CostEvaluator::new(
        constraints,
        config,
        fpart_device::lower_bound(graph, constraints),
        graph.terminal_count(),
    );
    let state = PartitionState::from_assignment(
        graph,
        outcome.assignment.to_vec(),
        outcome.device_count.max(1),
    );
    let key = evaluator.key(&state, None);
    (
        outcome.feasible,
        outcome.device_count,
        key.infeasibility,
        key.terminal_sum,
        key.external_balance,
        key.cut,
    )
}

/// Lexicographic "candidate is at least as good as baseline" over the
/// cross-run quality key (feasible desc, then each component asc).
fn not_worse(
    candidate: &(bool, usize, f64, usize, f64, usize),
    baseline: &(bool, usize, f64, usize, f64, usize),
) -> bool {
    let rank =
        |k: &(bool, usize, f64, usize, f64, usize)| (u8::from(!k.0), k.1, k.2, k.3, k.4, k.5);
    let (c, b) = (rank(candidate), rank(baseline));
    c.partial_cmp(&b).is_none_or(|o| o != std::cmp::Ordering::Greater)
}

/// "Comparable quality" for the ECO gate: feasibility and device count
/// are compared strictly (the repair may not burn an extra device), the
/// scalar components tolerate 5% — an incremental repair is allowed to
/// trade a slightly longer cut for not re-partitioning from scratch.
#[allow(clippy::cast_precision_loss)]
fn comparable(
    candidate: &(bool, usize, f64, usize, f64, usize),
    baseline: &(bool, usize, f64, usize, f64, usize),
) -> bool {
    let slack = |b: f64| b * 1.05 + 1e-9;
    (candidate.0 || !baseline.0)
        && candidate.1 <= baseline.1
        && candidate.2 <= slack(baseline.2)
        && candidate.3 as f64 <= slack(baseline.3 as f64)
        && candidate.4 <= slack(baseline.4)
        && candidate.5 as f64 <= slack(baseline.5 as f64)
}

/// The process peak resident-set size in bytes, from the `VmHWM` line of
/// `/proc/self/status` (kB). `None` where that file does not exist
/// (non-Linux) or cannot be parsed.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn key_json(k: &(bool, usize, f64, usize, f64, usize)) -> String {
    format!(
        "{{\"feasible\": {}, \"devices\": {}, \"infeasibility\": {:.3}, \
         \"terminal_sum\": {}, \"external_balance\": {:.3}, \"cut\": {}}}",
        k.0, k.1, k.2, k.3, k.4, k.5
    )
}
