//! Regenerates paper **Figure 2**: feasible / semi-feasible / infeasible
//! solutions in the (T, S) plane.
//!
//! Figure 2 plots each partition block as a point (I/O count, size)
//! against the device rectangle `T ≤ T_MAX, S ≤ S_MAX`. This binary runs
//! a traced FPART on s9234/XC3020 and renders the end-of-iteration
//! solution snapshots: per iteration, the block occupancy points, which
//! side of the rectangle they fall on, and the resulting classification.

use fpart_bench::runner::Workload;
use fpart_core::{partition_traced, FpartConfig, TraceEvent};
use fpart_device::Device;
use fpart_hypergraph::gen::find_profile;

fn main() {
    let profile = find_profile("s9234").expect("known circuit");
    let workload = Workload::new(profile, Device::XC3020);
    let constraints = workload.constraints;
    let outcome = partition_traced(&workload.graph, constraints, &FpartConfig::default(), true)
        .expect("s9234 partitions");

    println!(
        "Figure 2: solution classification for {} on XC3020 (S_MAX={}, T_MAX={})\n",
        workload.circuit, constraints.s_max, constraints.t_max
    );
    for event in outcome.trace.events() {
        if let TraceEvent::Solution { iteration, class, blocks } = event {
            println!("iteration {iteration}: {class:?}");
            for (i, usage) in blocks.iter().enumerate() {
                let inside = constraints.fits(usage.size, usage.terminals);
                println!(
                    "  block {i}: (T={:3}, S={:3}) {}",
                    usage.terminals,
                    usage.size,
                    if inside { "inside feasible region" } else { "OUTSIDE" }
                );
            }
        }
    }
    println!(
        "\nfinal solution: {} devices, all blocks inside the rectangle = {}",
        outcome.device_count, outcome.feasible
    );
}
