//! Ablation study over the paper's design choices (our extension; the
//! paper motivates each device qualitatively in §3, this quantifies them).
//!
//! For a set of circuits on XC3020, FPART runs with each guidance device
//! disabled in turn:
//!
//! * `-stacks`   — no dual solution stacks (§3.6)
//! * `-cost`     — cut-only solution ranking instead of the
//!   infeasibility-distance key (§3.3–3.4)
//! * `-balance`  — no external-I/O balancing factor `d_k^E` (§3.4)
//! * `-schedule` — only the last-pair improvement pass (§3.1)
//! * `-regions`  — symmetric classical move window instead of the
//!   asymmetric ε regions (§3.5)
//! * `-gain2`    — one-level gains only (§3.7)
//! * `-init`     — random initial peels instead of the constructive
//!   bipartition (§3.2; the paper warns random initials "may lead to
//!   poor results")
//! * `+gain3`    — three-level gains (the higher-level-gain experiment
//!   the paper discusses via \[7\])

use fpart_bench::render_table;
use fpart_bench::runner::Workload;
use fpart_core::{partition, FpartConfig};
use fpart_device::Device;
use fpart_hypergraph::gen::find_profile;

fn main() {
    let circuits = ["c3540", "c5315", "s5378", "s9234", "s13207", "s38584"];
    let variants: Vec<(&str, FpartConfig)> = vec![
        ("full", FpartConfig::default()),
        ("-stacks", FpartConfig { use_solution_stacks: false, ..FpartConfig::default() }),
        ("-cost", FpartConfig { use_infeasibility_cost: false, ..FpartConfig::default() }),
        ("-balance", FpartConfig { use_external_balance: false, ..FpartConfig::default() }),
        ("-schedule", FpartConfig { use_improvement_schedule: false, ..FpartConfig::default() }),
        ("-regions", FpartConfig { use_move_regions: false, ..FpartConfig::default() }),
        ("-gain2", FpartConfig { gain_levels: 1, ..FpartConfig::default() }),
        ("-init", FpartConfig { use_constructive_initial: false, ..FpartConfig::default() }),
        ("+gain3", FpartConfig { gain_levels: 3, ..FpartConfig::default() }),
    ];

    let mut header: Vec<&str> = vec!["circuit", "M"];
    header.extend(variants.iter().map(|(name, _)| *name));
    let mut rows = Vec::new();
    let mut totals = vec![0usize; variants.len()];

    for circuit in circuits {
        let profile = find_profile(circuit).expect("known circuit");
        let workload = Workload::new(profile, Device::XC3020);
        let mut row = vec![circuit.to_owned(), workload.lower_bound.to_string()];
        for (i, (_, config)) in variants.iter().enumerate() {
            let cell = match partition(&workload.graph, workload.constraints, config) {
                Ok(o) => {
                    totals[i] += o.device_count;
                    format!("{}{}", o.device_count, if o.feasible { "" } else { "!" })
                }
                Err(_) => "err".to_owned(),
            };
            row.push(cell);
        }
        rows.push(row);
    }

    let mut totals_row = vec!["Total".to_owned(), String::new()];
    totals_row.extend(totals.iter().map(ToString::to_string));

    println!("Ablation: device count on XC3020 with each FPART device disabled in turn");
    println!("a trailing ! marks an infeasible result\n");
    print!("{}", render_table(&header, &rows, Some(totals_row)));
}
