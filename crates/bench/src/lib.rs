//! Experiment harness for the FPART reproduction.
//!
//! One binary per table/figure of the paper regenerates the corresponding
//! experiment (see `src/bin/`); this library holds the shared machinery:
//! running every implemented method on a workload, the published result
//! columns of Tables 2–5 (quoted for side-by-side comparison, exactly as
//! the paper itself quotes its competitors), and plain-text table
//! rendering.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod published;
pub mod runner;
pub mod table;

pub use experiments::{bench_threads, run_results_table};
pub use runner::{run_methods, MethodResult, Workload};
pub use table::render_table;
