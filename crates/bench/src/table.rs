//! Minimal plain-text table rendering for the experiment binaries.

/// Renders a table with a header row, separator, body rows, and an
/// optional totals row, right-aligning every column to its widest cell.
///
/// # Example
///
/// ```
/// use fpart_bench::render_table;
///
/// let text = render_table(
///     &["circuit", "k"],
///     &[vec!["c3540".into(), "6".into()]],
///     Some(vec!["Total".into(), "6".into()]),
/// );
/// assert!(text.contains("c3540"));
/// assert!(text.contains("Total"));
/// ```
#[must_use]
pub fn render_table(header: &[&str], rows: &[Vec<String>], totals: Option<Vec<String>>) -> String {
    let columns = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    let all_rows: Vec<&Vec<String>> = rows.iter().chain(totals.iter()).collect();
    for row in &all_rows {
        assert_eq!(row.len(), columns, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }

    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    if let Some(totals) = totals {
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns - 1)));
        out.push('\n');
        out.push_str(&fmt_row(&totals, &widths));
        out.push('\n');
    }
    out
}

/// Formats an optional count, printing a dash for `None` (matching the
/// paper's tables).
#[must_use]
pub fn opt(value: Option<usize>) -> String {
    value.map_or_else(|| "-".to_owned(), |v| v.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let t = render_table(
            &["a", "bb"],
            &[vec!["xxx".into(), "1".into()], vec!["y".into(), "22".into()]],
            None,
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // Every line has the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn totals_row_separated() {
        let t = render_table(
            &["c", "k"],
            &[vec!["x".into(), "3".into()]],
            Some(vec!["Total".into(), "3".into()]),
        );
        assert!(t.matches("-----").count() >= 2);
        assert!(t.trim_end().ends_with('3'));
    }

    #[test]
    fn opt_formats_dash() {
        assert_eq!(opt(None), "-");
        assert_eq!(opt(Some(7)), "7");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let _ = render_table(&["a"], &[vec!["x".into(), "y".into()]], None);
    }
}
