//! Shared experiment drivers used by the per-table binaries.

use fpart_core::parallel::run_indexed;
use fpart_device::Device;
use fpart_hypergraph::gen::find_profile;

use crate::published::PublishedRow;
use crate::runner::{run_methods, MethodResult, Workload};
use crate::table::{opt, render_table};

/// Worker-thread count for table generation: `FPART_BENCH_THREADS` when
/// set (0 or unparsable falls back), otherwise the machine's available
/// parallelism. Thread count never changes table contents — each row is
/// an independent deterministic computation and rows are aggregated in
/// table order — only wall-clock time.
#[must_use]
pub fn bench_threads() -> usize {
    std::env::var("FPART_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
}

/// Runs one results table (Tables 2–5): every circuit of `rows` on
/// `device`, printing published columns next to measured ones. Rows are
/// computed in parallel (see [`bench_threads`]).
///
/// Returns the rendered table (also printed to stdout by the binaries).
#[must_use]
pub fn run_results_table(title: &str, device: Device, rows: &[PublishedRow]) -> String {
    let header = [
        "circuit", "kway.x*", "r+p.0*", "PROP*", "SC*", "WCDP*", "FBB-MW*", "FPART*", "M*",
        "FPART", "kway", "flow", "naive", "M", "t_FPART",
    ];
    let mut body = Vec::new();
    let mut totals = [0usize; 5]; // fpart, kway, flow, naive, m
    let mut published_fpart = 0usize;

    let measure = |i: usize| {
        let row = &rows[i];
        let profile = find_profile(row.circuit).expect("published row matches a profile");
        let workload = Workload::new(profile, device);
        let results = run_methods(&workload);
        (workload, results)
    };
    let measured = run_indexed(rows.len(), bench_threads(), &measure);

    for (row, (workload, results)) in rows.iter().zip(measured) {
        let get = |name: &str| -> &MethodResult {
            results.iter().find(|r| r.method == name).expect("method present")
        };
        let fpart = get("FPART");
        let kway = get("kway");
        let flow = get("flow");
        let naive = get("naive");
        totals[0] += fpart.device_count;
        totals[1] += kway.device_count;
        totals[2] += flow.device_count;
        totals[3] += naive.device_count;
        totals[4] += workload.lower_bound;
        published_fpart += row.fpart.unwrap_or(0);

        let mark =
            |r: &MethodResult| format!("{}{}", r.device_count, if r.feasible { "" } else { "!" });
        body.push(vec![
            row.circuit.to_owned(),
            opt(row.kway_x),
            opt(row.rp0),
            opt(row.prop_prop),
            opt(row.sc),
            opt(row.wcdp),
            opt(row.fbb_mw),
            opt(row.fpart),
            row.lower_bound.to_string(),
            mark(fpart),
            mark(kway),
            mark(flow),
            mark(naive),
            workload.lower_bound.to_string(),
            format!("{:.2}s", fpart.elapsed.as_secs_f64()),
        ]);
    }

    let totals_row = vec![
        "Total".to_owned(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        published_fpart.to_string(),
        rows.iter().map(|r| r.lower_bound).sum::<usize>().to_string(),
        totals[0].to_string(),
        totals[1].to_string(),
        totals[2].to_string(),
        totals[3].to_string(),
        totals[4].to_string(),
        String::new(),
    ];

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str("columns marked * are the paper's published values; unmarked are measured here\n");
    out.push_str("a trailing ! marks an infeasible result\n\n");
    out.push_str(&render_table(&header, &body, Some(totals_row)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::published::TABLE5_XC2064;

    #[test]
    fn results_table_renders_with_all_rows() {
        // Table 5 is the smallest (4 circuits) — run it for real.
        let text = run_results_table("test", Device::XC2064, &TABLE5_XC2064[..1]);
        assert!(text.contains("c3540"));
        assert!(text.contains("Total"));
    }
}
