//! Host crate for the workspace-level integration tests in `/tests`.
//!
//! This crate intentionally has no library code: its `[[test]]` targets
//! point at the repository-root `tests/` directory so the cross-crate
//! integration suite lives where the repository layout promises it.
