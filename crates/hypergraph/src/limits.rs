//! Resource limits for untrusted netlist and edit-script input.
//!
//! The ROADMAP's daemon scale tier means the parsers must survive
//! hostile input: a forged hMETIS header like `1 99999999999` would
//! otherwise pre-allocate a hundred gigabytes of nodes before a single
//! record is validated, and an unbounded line or name can balloon the
//! name tables. [`ParseLimits`] bounds everything a reader allocates in
//! proportion to, *before* the allocation happens; every violation is a
//! typed error with exact line/column context
//! ([`crate::ParseNetlistError::LimitExceeded`] /
//! [`crate::edit::ParseEditError::LimitExceeded`]), never a panic or an
//! OOM kill.
//!
//! Each reader has a `*_limited` entry point taking a `&ParseLimits`;
//! the plain entry points delegate with [`ParseLimits::default`], so
//! even code that never heard of limits gets the sane defaults. Trusted
//! callers (in-process generators, tests of the parsers themselves) can
//! opt out with [`ParseLimits::unlimited`].

/// Hard caps applied while parsing netlists (`.fhg`, `.hgr`, BLIF) and
/// edit scripts. All counts are totals per document; lengths are in
/// bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum interior nodes a document may declare (hMETIS headers are
    /// checked *before* the node table is allocated).
    pub max_nodes: usize,
    /// Maximum nets/hyperedges a document may declare.
    pub max_nets: usize,
    /// Maximum total pins (net–node connections) across every net.
    pub max_pins: usize,
    /// Maximum length of one node/net/terminal name, in bytes.
    pub max_name_len: usize,
    /// Maximum length of one input line, in bytes.
    pub max_line_len: usize,
}

impl Default for ParseLimits {
    /// Defaults sized for the ROADMAP's million-cell tier with an order
    /// of magnitude of headroom: 10 M nodes/nets, 200 M pins, 1 KiB
    /// names, 1 MiB lines. A document within these bounds costs at most
    /// a few gigabytes fully built; anything larger must be requested
    /// explicitly (`--max-*` in the CLI).
    fn default() -> Self {
        ParseLimits {
            max_nodes: 10_000_000,
            max_nets: 10_000_000,
            max_pins: 200_000_000,
            max_name_len: 1024,
            max_line_len: 1 << 20,
        }
    }
}

impl ParseLimits {
    /// No limits at all (every cap at `usize::MAX`). For trusted
    /// in-process input only.
    #[must_use]
    pub fn unlimited() -> Self {
        ParseLimits {
            max_nodes: usize::MAX,
            max_nets: usize::MAX,
            max_pins: usize::MAX,
            max_name_len: usize::MAX,
            max_line_len: usize::MAX,
        }
    }

    /// Checks one raw input line against `max_line_len`, reporting the
    /// first over-limit column.
    pub(crate) fn check_line(
        &self,
        line_no: usize,
        line: &str,
    ) -> Result<(), crate::error::ParseNetlistError> {
        if line.len() > self.max_line_len {
            return Err(crate::error::ParseNetlistError::LimitExceeded {
                line: line_no,
                column: self.max_line_len + 1,
                what: "line length",
                limit: self.max_line_len,
            });
        }
        Ok(())
    }

    /// Checks a name token (at 1-based `column`) against `max_name_len`.
    pub(crate) fn check_name(
        &self,
        line_no: usize,
        column: usize,
        name: &str,
    ) -> Result<(), crate::error::ParseNetlistError> {
        if name.len() > self.max_name_len {
            return Err(crate::error::ParseNetlistError::LimitExceeded {
                line: line_no,
                column,
                what: "name length",
                limit: self.max_name_len,
            });
        }
        Ok(())
    }
}

/// Whitespace-separated fields of `line`, each with the 1-based column
/// (counted in characters, matching what an editor displays) where the
/// field starts. Shared by every reader that reports column-exact
/// errors.
pub(crate) fn fields_with_columns(line: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut column = 0usize;
    let mut start: Option<(usize, usize)> = None; // (column, byte offset)
    for (byte, ch) in line.char_indices() {
        column += 1;
        if ch.is_whitespace() {
            if let Some((col, at)) = start.take() {
                out.push((col, &line[at..byte]));
            }
        } else if start.is_none() {
            start = Some((column, byte));
        }
    }
    if let Some((col, at)) = start {
        out.push((col, &line[at..]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ParseNetlistError;

    #[test]
    fn defaults_are_sane_and_unlimited_is_unbounded() {
        let d = ParseLimits::default();
        assert!(d.max_nodes >= 1_000_000);
        assert!(d.max_name_len >= 64);
        let u = ParseLimits::unlimited();
        assert_eq!(u.max_pins, usize::MAX);
    }

    #[test]
    fn line_check_reports_limit_and_column() {
        let limits = ParseLimits { max_line_len: 8, ..ParseLimits::default() };
        assert!(limits.check_line(3, "short").is_ok());
        let err = limits.check_line(3, "123456789").unwrap_err();
        assert_eq!(
            err,
            ParseNetlistError::LimitExceeded { line: 3, column: 9, what: "line length", limit: 8 }
        );
    }

    #[test]
    fn name_check_reports_column_of_the_name() {
        let limits = ParseLimits { max_name_len: 4, ..ParseLimits::default() };
        let err = limits.check_name(2, 6, "toolong").unwrap_err();
        assert!(matches!(
            err,
            ParseNetlistError::LimitExceeded { line: 2, column: 6, what: "name length", .. }
        ));
    }

    #[test]
    fn fields_with_columns_counts_characters() {
        let fields = fields_with_columns("  ab  cd");
        assert_eq!(fields, vec![(3, "ab"), (7, "cd")]);
    }
}
