//! Zobrist-style incremental hypergraph fingerprinting.
//!
//! A [`Fingerprint`] is a 128-bit hash of a named hypergraph built the
//! way transposition tables hash board positions: every structural
//! element — a node with its size, a (net, pin) incidence, a net's
//! presence, a (terminal, net) attachment — contributes one
//! pseudo-random 128-bit *token* derived from its stable **names** via
//! the workspace [`splitmix64`](crate::rng::splitmix64) generator, and
//! the graph fingerprint is the XOR of every token (plus the circuit
//! name's token). XOR composition makes the hash:
//!
//! * **order-insensitive where the graph is** — permuting net insertion
//!   order or pin order inside a net does not change which tokens are
//!   present, so structurally identical netlists hash equal;
//! * **incrementally maintainable in O(edit)** — adding or removing an
//!   element XORs its token in or out, which is how
//!   [`apply_script`](crate::edit::apply_script) produces the
//!   fingerprint of an edited graph without rehashing it
//!   (see [`EditApplied::fingerprint_delta`](crate::edit::EditApplied));
//! * **name-keyed, not id-keyed** — `apply_script` rebuilds the graph
//!   and reassigns dense ids, so tokens derive from names, which are
//!   stable across rebuilds.
//!
//! Where the graph *is* order-sensitive — node/net ids are assigned in
//! insertion order and index every downstream artifact (assignments,
//! coarsening maps) — XOR composition deliberately does not see the
//! difference. Callers that cache id-indexed artifacts validate hits
//! with [`order_checksum`], a cheap O(|X|+|E|) sequence hash over the
//! names in id order, so a permuted twin of a cached graph reads as a
//! miss instead of silently cross-hitting.
//!
//! [`Fingerprint::fold_u64`] / [`fold_bytes`](Fingerprint::fold_bytes)
//! provide *order-sensitive* chaining on top, for composing run keys
//! (graph fingerprint + constraints + config + seed) the way
//! `fpart-core`'s checkpoint and memoization layers need.

use std::fmt;

use crate::rng::splitmix64;
use crate::Hypergraph;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Domain tags keep the token classes disjoint: a node named `"a"`, a
/// net named `"a"`, and a terminal named `"a"` derive unrelated tokens.
const TAG_NAME: u64 = 0x5ca1_ab1e_0000_0001;
const TAG_NODE: u64 = 0x5ca1_ab1e_0000_0002;
const TAG_PIN: u64 = 0x5ca1_ab1e_0000_0003;
const TAG_NET: u64 = 0x5ca1_ab1e_0000_0004;
const TAG_TERMINAL: u64 = 0x5ca1_ab1e_0000_0005;

/// A 128-bit zobrist-style hypergraph fingerprint (see the module
/// docs). The zero fingerprint is the identity of XOR composition — it
/// doubles as the *delta* accumulator of an edit script.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fingerprint {
    /// High 64 bits.
    pub hi: u64,
    /// Low 64 bits.
    pub lo: u64,
}

impl Fingerprint {
    /// The identity element of XOR composition (an empty delta).
    pub const ZERO: Fingerprint = Fingerprint { hi: 0, lo: 0 };

    /// Whether this is the zero fingerprint / empty delta.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.hi == 0 && self.lo == 0
    }

    /// Order-sensitive chaining: folds one `u64` into the fingerprint,
    /// producing a new fingerprint. Unlike XOR composition this is
    /// *not* commutative — `a.fold_u64(x).fold_u64(y)` differs from
    /// `a.fold_u64(y).fold_u64(x)` — which is exactly what run keys
    /// (graph + constraints + config + seed, in a fixed order) need.
    #[must_use]
    pub fn fold_u64(self, value: u64) -> Fingerprint {
        let mut state = self.hi ^ value.wrapping_mul(FNV_PRIME) ^ TAG_NAME.rotate_left(17);
        let hi = splitmix64(&mut state);
        let mut state = self.lo ^ hi ^ value.rotate_left(32);
        let lo = splitmix64(&mut state);
        Fingerprint { hi, lo }
    }

    /// Order-sensitive chaining over a byte string (length-prefixed, so
    /// `"ab" + "c"` and `"a" + "bc"` fold differently).
    #[must_use]
    pub fn fold_bytes(self, bytes: &[u8]) -> Fingerprint {
        let mut h = FNV_OFFSET;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.fold_u64(bytes.len() as u64).fold_u64(h)
    }

    /// Order-sensitive chaining over a string (see
    /// [`Fingerprint::fold_bytes`]).
    #[must_use]
    pub fn fold_str(self, text: &str) -> Fingerprint {
        self.fold_bytes(text.as_bytes())
    }

    /// Collapses the fingerprint to 64 bits (for compact storage such
    /// as the checkpoint header).
    #[must_use]
    pub fn to_u64(self) -> u64 {
        self.hi ^ self.lo.rotate_left(31)
    }
}

impl std::ops::BitXor for Fingerprint {
    type Output = Fingerprint;

    fn bitxor(self, rhs: Fingerprint) -> Fingerprint {
        Fingerprint { hi: self.hi ^ rhs.hi, lo: self.lo ^ rhs.lo }
    }
}

impl std::ops::BitXorAssign for Fingerprint {
    fn bitxor_assign(&mut self, rhs: Fingerprint) {
        self.hi ^= rhs.hi;
        self.lo ^= rhs.lo;
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// FNV-1a over length-prefixed parts, so adjacent parts cannot alias
/// (`("ab", "c")` hashes differently from `("a", "bc")`).
fn hash_parts(parts: &[&[u8]]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for part in parts {
        eat(&(part.len() as u64).to_le_bytes());
        eat(part);
    }
    h
}

/// Expands a domain-tagged name hash into a 128-bit token via the
/// workspace splitmix64 stream — the zobrist "random table", generated
/// lazily from stable identity instead of dense indexes.
fn token(tag: u64, parts: &[&[u8]]) -> Fingerprint {
    let mut state = hash_parts(parts) ^ tag;
    let hi = splitmix64(&mut state);
    let lo = splitmix64(&mut state);
    Fingerprint { hi, lo }
}

/// Token of the circuit name.
pub(crate) fn name_token(name: &str) -> Fingerprint {
    token(TAG_NAME, &[name.as_bytes()])
}

/// Token of an interior node: its name *and* size, so a resize swaps
/// tokens rather than going unseen.
pub(crate) fn node_token(name: &str, size: u32) -> Fingerprint {
    token(TAG_NODE, &[name.as_bytes(), &u64::from(size).to_le_bytes()])
}

/// Token of one (net, pin) incidence.
pub(crate) fn pin_token(net: &str, node: &str) -> Fingerprint {
    token(TAG_PIN, &[net.as_bytes(), node.as_bytes()])
}

/// Token of a net's presence.
pub(crate) fn net_token(name: &str) -> Fingerprint {
    token(TAG_NET, &[name.as_bytes()])
}

/// Token of one (terminal, net) attachment.
pub(crate) fn terminal_token(terminal: &str, net: &str) -> Fingerprint {
    token(TAG_TERMINAL, &[terminal.as_bytes(), net.as_bytes()])
}

/// Computes the fingerprint of a graph from scratch in O(pins):
/// the XOR of every element token (module docs). This is the reference
/// the incremental path is checked against; compute it once at load and
/// maintain it through [`apply_script`](crate::edit::apply_script).
#[must_use]
pub fn fingerprint_graph(graph: &Hypergraph) -> Fingerprint {
    let mut fp = name_token(graph.name());
    for node in graph.node_ids() {
        fp ^= node_token(graph.node_name(node), graph.node_size(node));
    }
    for net in graph.net_ids() {
        let net_name = graph.net_name(net);
        fp ^= net_token(net_name);
        for &pin in graph.pins(net) {
            fp ^= pin_token(net_name, graph.node_name(pin));
        }
        for &terminal in graph.net_terminals(net) {
            fp ^= terminal_token(graph.terminal_name(terminal), net_name);
        }
    }
    fp
}

/// Order validator for fingerprint-keyed caches of **id-indexed**
/// artifacts: a sequence hash of the node and net names in id order.
/// Two graphs with equal [`fingerprint_graph`] but different insertion
/// order (so different id assignment) get different checksums; cache
/// layers compare it on a hit before trusting id-indexed payloads.
/// O(|X| + |E|), cheap relative to anything worth caching.
#[must_use]
pub fn order_checksum(graph: &Hypergraph) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for node in graph.node_ids() {
        let name = graph.node_name(node);
        eat(&(name.len() as u64).to_le_bytes());
        eat(name.as_bytes());
    }
    eat(&u64::MAX.to_le_bytes());
    for net in graph.net_ids() {
        let name = graph.net_name(net);
        eat(&(name.len() as u64).to_le_bytes());
        eat(name.as_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn triangle(name: &str) -> Hypergraph {
        let mut b = HypergraphBuilder::named(name);
        let a = b.add_node("a", 1);
        let c = b.add_node("c", 2);
        let d = b.add_node("d", 3);
        let n0 = b.add_net("n0", [a, c]).unwrap();
        b.add_net("n1", [c, d]).unwrap();
        b.add_terminal("t0", n0).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn fingerprint_is_stable_and_structure_sensitive() {
        let g = triangle("t");
        assert_eq!(fingerprint_graph(&g), fingerprint_graph(&g.clone()));

        // A different circuit name, node size, pin set, or terminal
        // each moves the hash.
        assert_ne!(fingerprint_graph(&g), fingerprint_graph(&triangle("u")));

        let mut b = HypergraphBuilder::named("t");
        let a = b.add_node("a", 1);
        let c = b.add_node("c", 2);
        let d = b.add_node("d", 4); // resized
        let n0 = b.add_net("n0", [a, c]).unwrap();
        b.add_net("n1", [c, d]).unwrap();
        b.add_terminal("t0", n0).unwrap();
        assert_ne!(fingerprint_graph(&g), fingerprint_graph(&b.finish().unwrap()));

        let mut b = HypergraphBuilder::named("t");
        let a = b.add_node("a", 1);
        let c = b.add_node("c", 2);
        let d = b.add_node("d", 3);
        let n0 = b.add_net("n0", [a, c, d]).unwrap(); // extra pin
        b.add_net("n1", [c, d]).unwrap();
        b.add_terminal("t0", n0).unwrap();
        assert_ne!(fingerprint_graph(&g), fingerprint_graph(&b.finish().unwrap()));

        let mut b = HypergraphBuilder::named("t");
        let a = b.add_node("a", 1);
        let c = b.add_node("c", 2);
        let d = b.add_node("d", 3);
        b.add_net("n0", [a, c]).unwrap();
        b.add_net("n1", [c, d]).unwrap();
        // no terminal
        assert_ne!(fingerprint_graph(&g), fingerprint_graph(&b.finish().unwrap()));
    }

    #[test]
    fn net_order_permutation_keeps_fingerprint_but_moves_order_checksum() {
        let g = triangle("t");
        // Same structure, nets inserted in the opposite order: ids
        // differ, element set does not.
        let mut b = HypergraphBuilder::named("t");
        let a = b.add_node("a", 1);
        let c = b.add_node("c", 2);
        let d = b.add_node("d", 3);
        b.add_net("n1", [c, d]).unwrap();
        let n0 = b.add_net("n0", [a, c]).unwrap();
        b.add_terminal("t0", n0).unwrap();
        let permuted = b.finish().unwrap();
        assert_eq!(fingerprint_graph(&g), fingerprint_graph(&permuted));
        assert_ne!(order_checksum(&g), order_checksum(&permuted));
    }

    #[test]
    fn pin_order_inside_a_net_is_irrelevant_everywhere() {
        let mut b = HypergraphBuilder::named("t");
        let a = b.add_node("a", 1);
        let c = b.add_node("c", 2);
        let d = b.add_node("d", 3);
        let n0 = b.add_net("n0", [c, a]).unwrap();
        b.add_net("n1", [d, c]).unwrap();
        b.add_terminal("t0", n0).unwrap();
        let swapped = b.finish().unwrap();
        let g = triangle("t");
        assert_eq!(fingerprint_graph(&g), fingerprint_graph(&swapped));
        assert_eq!(order_checksum(&g), order_checksum(&swapped));
    }

    #[test]
    fn fold_is_order_sensitive_and_deterministic() {
        let base = fingerprint_graph(&triangle("t"));
        assert_eq!(base.fold_u64(1).fold_u64(2), base.fold_u64(1).fold_u64(2));
        assert_ne!(base.fold_u64(1).fold_u64(2), base.fold_u64(2).fold_u64(1));
        assert_ne!(base.fold_str("ab").fold_str("c"), base.fold_str("a").fold_str("bc"));
        assert_ne!(base.fold_u64(0), base);
        assert_ne!(Fingerprint::ZERO.fold_u64(0), Fingerprint::ZERO);
    }

    #[test]
    fn token_classes_are_domain_separated() {
        assert_ne!(net_token("a"), name_token("a"));
        assert_ne!(pin_token("a", "b"), terminal_token("a", "b"));
        assert_ne!(pin_token("a", "b"), pin_token("b", "a"));
        assert_ne!(node_token("a", 1), node_token("a", 2));
        // Length-prefixing: ("ab", "c") vs ("a", "bc").
        assert_ne!(pin_token("ab", "c"), pin_token("a", "bc"));
    }

    #[test]
    fn display_is_fixed_width_hex() {
        let text = format!("{}", Fingerprint { hi: 0xA, lo: 0xB });
        assert_eq!(text.len(), 32);
        assert_eq!(text, "000000000000000a000000000000000b");
        assert!(Fingerprint::ZERO.is_zero());
        assert!(!node_token("x", 1).is_zero());
    }
}
