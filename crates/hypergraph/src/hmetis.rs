//! hMETIS `.hgr` hypergraph format support.
//!
//! The hMETIS format is the de-facto interchange format of the
//! partitioning literature:
//!
//! ```text
//! % optional comments
//! <#hyperedges> <#vertices> [fmt]
//! <hyperedge lines: 1-based vertex indices, weight first when fmt ∈ {1, 11}>
//! <vertex weight lines when fmt ∈ {10, 11}>
//! ```
//!
//! Mapping to [`Hypergraph`]: vertices become interior nodes `v1…vn`
//! (vertex weights become node sizes; unweighted vertices get size 1),
//! hyperedges become nets `e0…`. Hyperedge weights are parsed and
//! discarded — the FPGA partitioning model of this crate has no weighted
//! nets — and the format carries no primary-terminal information, so
//! read circuits have no terminals (attach them afterwards with a
//! builder if needed).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};

use crate::builder::HypergraphBuilder;
use crate::error::ParseNetlistError;
use crate::graph::Hypergraph;
use crate::ids::NodeId;
use crate::limits::{fields_with_columns, ParseLimits};

/// Parses the field at `(column, text)` as a number, reporting the exact
/// location on failure.
fn parse_field<T: std::str::FromStr>(
    line: usize,
    field: (usize, &str),
    expected: &'static str,
) -> Result<T, ParseNetlistError> {
    let (column, text) = field;
    text.parse().map_err(|_| ParseNetlistError::InvalidToken {
        line,
        column,
        expected,
        found: text.to_owned(),
    })
}

/// Parses an hMETIS `.hgr` hypergraph from any reader.
///
/// Every rejection names the exact source location: bad tokens carry
/// line *and* column, truncated files point past the last line read
/// (not back at the header), and non-UTF-8 bytes are a typed error
/// instead of silently dropped lines.
///
/// # Errors
///
/// Returns [`ParseNetlistError`] on malformed headers, vertex indices out
/// of range, truncated or trailing content, non-UTF-8 bytes, or
/// structural validation failure.
pub fn read_hmetis<R: Read>(reader: R) -> Result<Hypergraph, ParseNetlistError> {
    read_hmetis_limited(reader, &ParseLimits::default())
}

/// Parses an hMETIS `.hgr` hypergraph with explicit resource limits.
///
/// The header's edge/vertex counts are validated against `limits`
/// *before* any table is allocated: a forged `1 99999999999` header is a
/// typed [`ParseNetlistError::LimitExceeded`] pointing at the header
/// token, not a multi-gigabyte allocation.
///
/// # Errors
///
/// See [`read_hmetis`].
pub fn read_hmetis_limited<R: Read>(
    reader: R,
    limits: &ParseLimits,
) -> Result<Hypergraph, ParseNetlistError> {
    // Collect the trimmed, non-comment data lines up front, remembering
    // each one's source line and where the file ends, so later errors
    // can always point at a real location.
    let mut data: Vec<(usize, String)> = Vec::new();
    let mut end_line = 1usize;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let no = idx + 1;
        end_line = no;
        let line = line.map_err(|_| ParseNetlistError::NotUtf8 { line: no })?;
        limits.check_line(no, &line)?;
        let trimmed = line.trim();
        if !trimmed.is_empty() && !trimmed.starts_with('%') {
            // Keep the untrimmed text: columns in errors must match the
            // original file, leading whitespace included.
            data.push((no, line));
        }
    }
    let mut records = data.iter().map(|(no, line)| (*no, line.as_str()));

    let (header_line_no, header) = records.next().ok_or(ParseNetlistError::UnexpectedEnd {
        line: end_line,
        expected: "hMETIS header `<edges> <vertices> [fmt]`",
    })?;
    let header_fields = fields_with_columns(header);
    let count_field = |at: usize, expected: &'static str| {
        header_fields
            .get(at)
            .copied()
            .ok_or(ParseNetlistError::MalformedRecord { line: header_line_no, expected })
    };
    let edge_field = count_field(0, "hyperedge count")?;
    let edges: usize = parse_field(header_line_no, edge_field, "hyperedge count")?;
    let vertex_field = count_field(1, "vertex count")?;
    let vertices: usize = parse_field(header_line_no, vertex_field, "vertex count")?;
    // Validate the declared sizes before the node/net tables are
    // allocated — the header is the one place a few bytes of hostile
    // input can demand gigabytes.
    if edges > limits.max_nets {
        return Err(ParseNetlistError::LimitExceeded {
            line: header_line_no,
            column: edge_field.0,
            what: "net count",
            limit: limits.max_nets,
        });
    }
    if vertices > limits.max_nodes {
        return Err(ParseNetlistError::LimitExceeded {
            line: header_line_no,
            column: vertex_field.0,
            what: "node count",
            limit: limits.max_nodes,
        });
    }
    let fmt: u32 = match header_fields.get(2).copied() {
        None => 0,
        Some(field) => {
            let fmt = parse_field(header_line_no, field, "fmt of 0, 1, 10, or 11")?;
            if ![0, 1, 10, 11].contains(&fmt) {
                return Err(ParseNetlistError::InvalidToken {
                    line: header_line_no,
                    column: field.0,
                    expected: "fmt of 0, 1, 10, or 11",
                    found: field.1.to_owned(),
                });
            }
            fmt
        }
    };
    if let Some(&(column, extra)) = header_fields.get(3) {
        return Err(ParseNetlistError::InvalidToken {
            line: header_line_no,
            column,
            expected: "end of header after `<edges> <vertices> [fmt]`",
            found: extra.to_owned(),
        });
    }
    let edge_weights = fmt == 1 || fmt == 11;
    let vertex_weights = fmt == 10 || fmt == 11;

    let mut builder = HypergraphBuilder::new();
    let nodes: Vec<NodeId> = (1..=vertices).map(|i| builder.add_node(format!("v{i}"), 1)).collect();
    let mut pin_total = 0usize;

    for e in 0..edges {
        let (no, line) = records.next().ok_or(ParseNetlistError::UnexpectedEnd {
            line: end_line,
            expected: "one line per hyperedge",
        })?;
        let fields = fields_with_columns(line);
        let pin_fields = if edge_weights {
            // Weight parsed and discarded (unweighted partitioning model).
            let weight = fields.first().copied().ok_or(ParseNetlistError::MalformedRecord {
                line: no,
                expected: "hyperedge weight",
            })?;
            let _: u64 = parse_field(no, weight, "hyperedge weight")?;
            &fields[1..]
        } else {
            &fields[..]
        };
        let mut pins = Vec::new();
        for &field in pin_fields {
            if pin_total >= limits.max_pins {
                return Err(ParseNetlistError::LimitExceeded {
                    line: no,
                    column: field.0,
                    what: "pin count",
                    limit: limits.max_pins,
                });
            }
            pin_total += 1;
            let idx: usize = parse_field(no, field, "1-based vertex index")?;
            if idx == 0 || idx > vertices {
                return Err(ParseNetlistError::UnknownName { line: no, name: field.1.to_owned() });
            }
            let node = nodes[idx - 1];
            if !pins.contains(&node) {
                pins.push(node);
            }
        }
        builder.add_net(format!("e{e}"), pins)?;
    }

    if vertex_weights {
        for &node in &nodes {
            let (no, line) = records.next().ok_or(ParseNetlistError::UnexpectedEnd {
                line: end_line,
                expected: "one weight line per vertex",
            })?;
            let fields = fields_with_columns(line);
            let field = fields.first().copied().ok_or(ParseNetlistError::MalformedRecord {
                line: no,
                expected: "vertex weight",
            })?;
            let weight: u32 = parse_field(no, field, "vertex weight")?;
            if let Some(&(column, extra)) = fields.get(1) {
                return Err(ParseNetlistError::InvalidToken {
                    line: no,
                    column,
                    expected: "a single vertex weight per line",
                    found: extra.to_owned(),
                });
            }
            builder.set_node_size(node, weight);
        }
    }

    if let Some((no, _)) = records.next() {
        return Err(ParseNetlistError::MalformedRecord {
            line: no,
            expected: "end of file after the last record",
        });
    }

    Ok(builder.finish()?)
}

/// Parses an hMETIS `.hgr` hypergraph from a string slice.
///
/// # Errors
///
/// See [`read_hmetis`].
pub fn parse_hmetis(text: &str) -> Result<Hypergraph, ParseNetlistError> {
    read_hmetis(text.as_bytes())
}

/// Parses an hMETIS `.hgr` hypergraph from a string slice with explicit
/// resource limits.
///
/// # Errors
///
/// See [`read_hmetis_limited`].
pub fn parse_hmetis_limited(
    text: &str,
    limits: &ParseLimits,
) -> Result<Hypergraph, ParseNetlistError> {
    read_hmetis_limited(text.as_bytes(), limits)
}

/// Writes a hypergraph in hMETIS `.hgr` format (pass `&mut writer` to
/// keep the writer).
///
/// Vertex weights are emitted (fmt 10) when any node size differs
/// from 1; terminals are not representable in the format and a comment
/// records how many were dropped.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_hmetis<W: Write>(mut writer: W, graph: &Hypergraph) -> std::io::Result<()> {
    let weighted = graph.node_ids().any(|v| graph.node_size(v) != 1);
    if graph.terminal_count() > 0 {
        writeln!(
            writer,
            "% {} primary terminals not representable in hMETIS format",
            graph.terminal_count()
        )?;
    }
    writeln!(
        writer,
        "{} {}{}",
        graph.net_count(),
        graph.node_count(),
        if weighted { " 10" } else { "" }
    )?;
    for net in graph.net_ids() {
        let pins: Vec<String> =
            graph.pins(net).iter().map(|p| (p.index() + 1).to_string()).collect();
        writeln!(writer, "{}", pins.join(" "))?;
    }
    if weighted {
        for node in graph.node_ids() {
            writeln!(writer, "{}", graph.node_size(node))?;
        }
    }
    Ok(())
}

/// Serializes a hypergraph to an hMETIS `.hgr` string.
#[must_use]
pub fn hmetis_to_string(graph: &Hypergraph) -> String {
    let mut out = Vec::new();
    write_hmetis(&mut out, graph).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect(".hgr output is always UTF-8")
}

/// Indexes node names of the `v<i>` convention back to 1-based vertex
/// numbers (useful when correlating with external hMETIS tools).
#[must_use]
pub fn vertex_numbers(graph: &Hypergraph) -> HashMap<NodeId, usize> {
    graph.node_ids().map(|v| (v, v.index() + 1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIMPLE: &str = "\
% a 4-vertex, 3-edge example
3 4
1 2
2 3 4
1 4
";

    #[test]
    fn parse_unweighted() {
        let g = parse_hmetis(SIMPLE).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.net_count(), 3);
        assert_eq!(g.total_size(), 4);
        assert_eq!(g.node_name(NodeId::from_index(0)), "v1");
        assert_eq!(g.pins(crate::NetId::from_index(1)).len(), 3);
    }

    #[test]
    fn parse_edge_weights_discarded() {
        let text = "2 3 1\n7 1 2\n9 2 3\n";
        let g = parse_hmetis(text).unwrap();
        assert_eq!(g.net_count(), 2);
        assert_eq!(g.pins(crate::NetId::from_index(0)).len(), 2);
    }

    #[test]
    fn parse_vertex_weights() {
        let text = "1 3 10\n1 2 3\n5\n6\n7\n";
        let g = parse_hmetis(text).unwrap();
        assert_eq!(g.total_size(), 18);
        assert_eq!(g.node_size(NodeId::from_index(2)), 7);
    }

    #[test]
    fn parse_both_weights() {
        let text = "1 2 11\n4 1 2\n3\n9\n";
        let g = parse_hmetis(text).unwrap();
        assert_eq!(g.total_size(), 12);
        assert_eq!(g.net_count(), 1);
    }

    #[test]
    fn rejects_bad_fmt() {
        let err = parse_hmetis("1 2 7\n1 2\n").unwrap_err();
        assert_eq!(
            err,
            ParseNetlistError::InvalidToken {
                line: 1,
                column: 5,
                expected: "fmt of 0, 1, 10, or 11",
                found: "7".into(),
            }
        );
    }

    #[test]
    fn rejects_out_of_range_vertex() {
        let err = parse_hmetis("1 2\n1 5\n").unwrap_err();
        assert_eq!(err, ParseNetlistError::UnknownName { line: 2, name: "5".into() });
    }

    #[test]
    fn rejects_missing_edge_lines_at_end_of_file() {
        // A truncated file is reported where it ends, not back at the
        // header.
        let err = parse_hmetis("3 4\n1 2\n").unwrap_err();
        assert_eq!(
            err,
            ParseNetlistError::UnexpectedEnd { line: 2, expected: "one line per hyperedge" }
        );
    }

    #[test]
    fn rejects_non_numeric_vertex_with_column() {
        let err = parse_hmetis("1 4\n1 2 x4\n").unwrap_err();
        assert_eq!(
            err,
            ParseNetlistError::InvalidToken {
                line: 2,
                column: 5,
                expected: "1-based vertex index",
                found: "x4".into(),
            }
        );
    }

    #[test]
    fn column_accounts_for_leading_and_repeated_whitespace() {
        // Columns are counted on the original line, tabs and runs of
        // spaces included.
        let err = parse_hmetis("1 2\n  1\t \tbad\n").unwrap_err();
        assert_eq!(
            err,
            ParseNetlistError::InvalidToken {
                line: 2,
                column: 7,
                expected: "1-based vertex index",
                found: "bad".into(),
            }
        );
    }

    #[test]
    fn rejects_trailing_data_lines() {
        let err = parse_hmetis("1 2\n1 2\n1 2\n").unwrap_err();
        assert_eq!(
            err,
            ParseNetlistError::MalformedRecord {
                line: 3,
                expected: "end of file after the last record",
            }
        );
    }

    #[test]
    fn rejects_non_utf8_bytes() {
        let err = read_hmetis(&b"1 2\n1 \xff2\n"[..]).unwrap_err();
        assert_eq!(err, ParseNetlistError::NotUtf8 { line: 2 });
    }

    #[test]
    fn rejects_empty_input_at_line_one() {
        let err = parse_hmetis("").unwrap_err();
        assert!(matches!(err, ParseNetlistError::UnexpectedEnd { line: 1, .. }));
    }

    #[test]
    fn duplicate_pins_are_collapsed() {
        // Some emitters list a vertex twice on one edge.
        let g = parse_hmetis("1 3\n1 2 2 3\n").unwrap();
        assert_eq!(g.pins(crate::NetId::from_index(0)).len(), 3);
    }

    #[test]
    fn roundtrip_unweighted() {
        let g = parse_hmetis(SIMPLE).unwrap();
        let text = hmetis_to_string(&g);
        let g2 = parse_hmetis(&text).unwrap();
        assert_eq!(g.node_count(), g2.node_count());
        assert_eq!(g.net_count(), g2.net_count());
        for (a, b) in g.net_ids().zip(g2.net_ids()) {
            assert_eq!(g.pins(a), g2.pins(b));
        }
    }

    #[test]
    fn roundtrip_weighted() {
        let text = "1 3 10\n1 2 3\n5\n6\n7\n";
        let g = parse_hmetis(text).unwrap();
        let g2 = parse_hmetis(&hmetis_to_string(&g)).unwrap();
        assert_eq!(g2.total_size(), 18);
    }

    #[test]
    fn generated_circuit_exports_and_reimports() {
        use crate::gen::{window_circuit, WindowConfig};
        let g = window_circuit(&WindowConfig::new("w", 80, 8), 3);
        let text = hmetis_to_string(&g);
        assert!(text.starts_with("% 8 primary terminals"));
        let g2 = parse_hmetis(&text).unwrap();
        assert_eq!(g2.node_count(), 80);
        assert_eq!(g2.net_count(), g.net_count());
        assert_eq!(g2.terminal_count(), 0); // dropped, by format
    }

    #[test]
    fn vertex_number_map() {
        let g = parse_hmetis(SIMPLE).unwrap();
        let map = vertex_numbers(&g);
        assert_eq!(map[&NodeId::from_index(3)], 4);
    }

    #[test]
    fn hostile_header_rejected_before_allocation() {
        // A forged vertex count must fail fast with a typed error, not
        // pre-allocate a table sized by the attacker.
        let err = parse_hmetis("1 99999999999\n1\n").unwrap_err();
        assert_eq!(
            err,
            ParseNetlistError::LimitExceeded {
                line: 1,
                column: 3,
                what: "node count",
                limit: ParseLimits::default().max_nodes,
            }
        );
        let limits = ParseLimits { max_nets: 4, ..ParseLimits::unlimited() };
        let err = parse_hmetis_limited("50 2\n1 2\n", &limits).unwrap_err();
        assert_eq!(
            err,
            ParseNetlistError::LimitExceeded { line: 1, column: 1, what: "net count", limit: 4 }
        );
    }

    #[test]
    fn pin_limit_points_at_the_first_excess_pin() {
        let limits = ParseLimits { max_pins: 3, ..ParseLimits::unlimited() };
        let err = parse_hmetis_limited("2 4\n1 2\n3 4\n", &limits).unwrap_err();
        assert_eq!(
            err,
            ParseNetlistError::LimitExceeded { line: 3, column: 3, what: "pin count", limit: 3 }
        );
    }
}
