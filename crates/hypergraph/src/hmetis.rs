//! hMETIS `.hgr` hypergraph format support.
//!
//! The hMETIS format is the de-facto interchange format of the
//! partitioning literature:
//!
//! ```text
//! % optional comments
//! <#hyperedges> <#vertices> [fmt]
//! <hyperedge lines: 1-based vertex indices, weight first when fmt ∈ {1, 11}>
//! <vertex weight lines when fmt ∈ {10, 11}>
//! ```
//!
//! Mapping to [`Hypergraph`]: vertices become interior nodes `v1…vn`
//! (vertex weights become node sizes; unweighted vertices get size 1),
//! hyperedges become nets `e0…`. Hyperedge weights are parsed and
//! discarded — the FPGA partitioning model of this crate has no weighted
//! nets — and the format carries no primary-terminal information, so
//! read circuits have no terminals (attach them afterwards with a
//! builder if needed).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};

use crate::builder::HypergraphBuilder;
use crate::error::ParseNetlistError;
use crate::graph::Hypergraph;
use crate::ids::NodeId;

/// Parses an hMETIS `.hgr` hypergraph from any reader.
///
/// # Errors
///
/// Returns [`ParseNetlistError`] on malformed headers, vertex indices out
/// of range, or structural validation failure.
pub fn read_hmetis<R: Read>(reader: R) -> Result<Hypergraph, ParseNetlistError> {
    let mut lines = BufReader::new(reader).lines().enumerate().map(|(i, l)| (i + 1, l));

    // Header: first non-comment line.
    let (header_line_no, header) = loop {
        match lines.next() {
            Some((no, Ok(line))) => {
                let trimmed = line.trim().to_owned();
                if trimmed.is_empty() || trimmed.starts_with('%') {
                    continue;
                }
                break (no, trimmed);
            }
            Some((no, Err(_))) => {
                return Err(ParseNetlistError::MalformedRecord {
                    line: no,
                    expected: "valid UTF-8 text",
                });
            }
            None => {
                return Err(ParseNetlistError::MalformedRecord {
                    line: 1,
                    expected: "hMETIS header `<edges> <vertices> [fmt]`",
                });
            }
        }
    };
    let mut fields = header.split_whitespace();
    let edges: usize =
        fields.next().and_then(|f| f.parse().ok()).ok_or(ParseNetlistError::MalformedRecord {
            line: header_line_no,
            expected: "hyperedge count",
        })?;
    let vertices: usize =
        fields.next().and_then(|f| f.parse().ok()).ok_or(ParseNetlistError::MalformedRecord {
            line: header_line_no,
            expected: "vertex count",
        })?;
    let fmt: u32 = match fields.next() {
        None => 0,
        Some(f) => f.parse().map_err(|_| ParseNetlistError::MalformedRecord {
            line: header_line_no,
            expected: "fmt of 0, 1, 10, or 11",
        })?,
    };
    if ![0, 1, 10, 11].contains(&fmt) {
        return Err(ParseNetlistError::MalformedRecord {
            line: header_line_no,
            expected: "fmt of 0, 1, 10, or 11",
        });
    }
    let edge_weights = fmt == 1 || fmt == 11;
    let vertex_weights = fmt == 10 || fmt == 11;

    let mut builder = HypergraphBuilder::new();
    let nodes: Vec<NodeId> = (1..=vertices).map(|i| builder.add_node(format!("v{i}"), 1)).collect();

    let mut data_lines = lines.filter_map(|(no, l)| match l {
        Ok(line) => {
            let t = line.trim().to_owned();
            (!t.is_empty() && !t.starts_with('%')).then_some((no, t))
        }
        Err(_) => None,
    });

    for e in 0..edges {
        let (no, line) = data_lines.next().ok_or(ParseNetlistError::MalformedRecord {
            line: header_line_no,
            expected: "one line per hyperedge",
        })?;
        let mut fields = line.split_whitespace();
        if edge_weights {
            // Weight parsed and discarded (unweighted partitioning model).
            let _ = fields.next().and_then(|f| f.parse::<u64>().ok()).ok_or(
                ParseNetlistError::MalformedRecord { line: no, expected: "hyperedge weight" },
            )?;
        }
        let mut pins = Vec::new();
        for f in fields {
            let idx: usize = f.parse().map_err(|_| ParseNetlistError::MalformedRecord {
                line: no,
                expected: "1-based vertex index",
            })?;
            if idx == 0 || idx > vertices {
                return Err(ParseNetlistError::UnknownName { line: no, name: f.to_owned() });
            }
            let node = nodes[idx - 1];
            if !pins.contains(&node) {
                pins.push(node);
            }
        }
        builder.add_net(format!("e{e}"), pins)?;
    }

    if vertex_weights {
        for (i, &node) in nodes.iter().enumerate() {
            let (no, line) = data_lines.next().ok_or(ParseNetlistError::MalformedRecord {
                line: header_line_no,
                expected: "one weight line per vertex",
            })?;
            let weight: u32 = line.trim().parse().map_err(|_| {
                ParseNetlistError::MalformedRecord { line: no, expected: "vertex weight" }
            })?;
            let _ = i;
            builder.set_node_size(node, weight);
        }
    }

    Ok(builder.finish()?)
}

/// Parses an hMETIS `.hgr` hypergraph from a string slice.
///
/// # Errors
///
/// See [`read_hmetis`].
pub fn parse_hmetis(text: &str) -> Result<Hypergraph, ParseNetlistError> {
    read_hmetis(text.as_bytes())
}

/// Writes a hypergraph in hMETIS `.hgr` format (pass `&mut writer` to
/// keep the writer).
///
/// Vertex weights are emitted (fmt 10) when any node size differs
/// from 1; terminals are not representable in the format and a comment
/// records how many were dropped.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_hmetis<W: Write>(mut writer: W, graph: &Hypergraph) -> std::io::Result<()> {
    let weighted = graph.node_ids().any(|v| graph.node_size(v) != 1);
    if graph.terminal_count() > 0 {
        writeln!(
            writer,
            "% {} primary terminals not representable in hMETIS format",
            graph.terminal_count()
        )?;
    }
    writeln!(
        writer,
        "{} {}{}",
        graph.net_count(),
        graph.node_count(),
        if weighted { " 10" } else { "" }
    )?;
    for net in graph.net_ids() {
        let pins: Vec<String> =
            graph.pins(net).iter().map(|p| (p.index() + 1).to_string()).collect();
        writeln!(writer, "{}", pins.join(" "))?;
    }
    if weighted {
        for node in graph.node_ids() {
            writeln!(writer, "{}", graph.node_size(node))?;
        }
    }
    Ok(())
}

/// Serializes a hypergraph to an hMETIS `.hgr` string.
#[must_use]
pub fn hmetis_to_string(graph: &Hypergraph) -> String {
    let mut out = Vec::new();
    write_hmetis(&mut out, graph).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect(".hgr output is always UTF-8")
}

/// Indexes node names of the `v<i>` convention back to 1-based vertex
/// numbers (useful when correlating with external hMETIS tools).
#[must_use]
pub fn vertex_numbers(graph: &Hypergraph) -> HashMap<NodeId, usize> {
    graph.node_ids().map(|v| (v, v.index() + 1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIMPLE: &str = "\
% a 4-vertex, 3-edge example
3 4
1 2
2 3 4
1 4
";

    #[test]
    fn parse_unweighted() {
        let g = parse_hmetis(SIMPLE).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.net_count(), 3);
        assert_eq!(g.total_size(), 4);
        assert_eq!(g.node_name(NodeId::from_index(0)), "v1");
        assert_eq!(g.pins(crate::NetId::from_index(1)).len(), 3);
    }

    #[test]
    fn parse_edge_weights_discarded() {
        let text = "2 3 1\n7 1 2\n9 2 3\n";
        let g = parse_hmetis(text).unwrap();
        assert_eq!(g.net_count(), 2);
        assert_eq!(g.pins(crate::NetId::from_index(0)).len(), 2);
    }

    #[test]
    fn parse_vertex_weights() {
        let text = "1 3 10\n1 2 3\n5\n6\n7\n";
        let g = parse_hmetis(text).unwrap();
        assert_eq!(g.total_size(), 18);
        assert_eq!(g.node_size(NodeId::from_index(2)), 7);
    }

    #[test]
    fn parse_both_weights() {
        let text = "1 2 11\n4 1 2\n3\n9\n";
        let g = parse_hmetis(text).unwrap();
        assert_eq!(g.total_size(), 12);
        assert_eq!(g.net_count(), 1);
    }

    #[test]
    fn rejects_bad_fmt() {
        let err = parse_hmetis("1 2 7\n1 2\n").unwrap_err();
        assert!(matches!(err, ParseNetlistError::MalformedRecord { .. }));
    }

    #[test]
    fn rejects_out_of_range_vertex() {
        let err = parse_hmetis("1 2\n1 5\n").unwrap_err();
        assert!(matches!(err, ParseNetlistError::UnknownName { .. }));
    }

    #[test]
    fn rejects_missing_edge_lines() {
        let err = parse_hmetis("3 4\n1 2\n").unwrap_err();
        assert!(matches!(err, ParseNetlistError::MalformedRecord { .. }));
    }

    #[test]
    fn duplicate_pins_are_collapsed() {
        // Some emitters list a vertex twice on one edge.
        let g = parse_hmetis("1 3\n1 2 2 3\n").unwrap();
        assert_eq!(g.pins(crate::NetId::from_index(0)).len(), 3);
    }

    #[test]
    fn roundtrip_unweighted() {
        let g = parse_hmetis(SIMPLE).unwrap();
        let text = hmetis_to_string(&g);
        let g2 = parse_hmetis(&text).unwrap();
        assert_eq!(g.node_count(), g2.node_count());
        assert_eq!(g.net_count(), g2.net_count());
        for (a, b) in g.net_ids().zip(g2.net_ids()) {
            assert_eq!(g.pins(a), g2.pins(b));
        }
    }

    #[test]
    fn roundtrip_weighted() {
        let text = "1 3 10\n1 2 3\n5\n6\n7\n";
        let g = parse_hmetis(text).unwrap();
        let g2 = parse_hmetis(&hmetis_to_string(&g)).unwrap();
        assert_eq!(g2.total_size(), 18);
    }

    #[test]
    fn generated_circuit_exports_and_reimports() {
        use crate::gen::{window_circuit, WindowConfig};
        let g = window_circuit(&WindowConfig::new("w", 80, 8), 3);
        let text = hmetis_to_string(&g);
        assert!(text.starts_with("% 8 primary terminals"));
        let g2 = parse_hmetis(&text).unwrap();
        assert_eq!(g2.node_count(), 80);
        assert_eq!(g2.net_count(), g.net_count());
        assert_eq!(g2.terminal_count(), 0); // dropped, by format
    }

    #[test]
    fn vertex_number_map() {
        let g = parse_hmetis(SIMPLE).unwrap();
        let map = vertex_numbers(&g);
        assert_eq!(map[&NodeId::from_index(3)], 4);
    }
}
