//! Index newtypes for nodes, nets, and terminals.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw index.
            ///
            /// Ids are only meaningful relative to the [`crate::Hypergraph`]
            /// they were obtained from; constructing one by hand is mainly
            /// useful in tests and when deserializing external data.
            #[inline]
            #[must_use]
            pub const fn from_index(index: usize) -> Self {
                Self(index as u32)
            }

            /// Returns the raw index backing this id.
            #[inline]
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifier of an interior node (a logic cell / cluster) of a
    /// [`crate::Hypergraph`].
    NodeId,
    "x"
);

id_type!(
    /// Identifier of a net (hyperedge) of a [`crate::Hypergraph`].
    NetId,
    "e"
);

id_type!(
    /// Identifier of a primary terminal (external I/O) of a
    /// [`crate::Hypergraph`].
    TerminalId,
    "y"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let n = NodeId::from_index(17);
        assert_eq!(n.index(), 17);
        assert_eq!(usize::from(n), 17);
    }

    #[test]
    fn debug_and_display_tags() {
        assert_eq!(format!("{:?}", NodeId::from_index(3)), "x3");
        assert_eq!(format!("{}", NetId::from_index(4)), "e4");
        assert_eq!(format!("{}", TerminalId::from_index(5)), "y5");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert_eq!(NetId::from_index(9), NetId::from_index(9));
    }
}
