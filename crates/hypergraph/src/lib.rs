//! Hypergraph netlist model for FPGA partitioning.
//!
//! This crate provides the circuit substrate used by the FPART partitioner
//! (Krupnova & Saucier, DATE 1999) and its baselines:
//!
//! * [`Hypergraph`] — an immutable hypergraph `H = ({X, Y}, E)` with weighted
//!   interior nodes `X`, primary terminals `Y`, and nets `E`, stored in
//!   flat index-based adjacency for cache-friendly gain updates;
//! * [`HypergraphBuilder`] — the only way to construct a [`Hypergraph`],
//!   validating pin references and net arity;
//! * [`edit`] — netlist edit scripts (JSON Lines) and [`apply_script`],
//!   the substrate of incremental (ECO) repartitioning;
//! * [`fingerprint`] — zobrist-style 128-bit hypergraph fingerprints,
//!   computed in O(pins) and maintained through [`apply_script`] in
//!   O(edit); the key of every memoization layer upstream;
//! * [`io`] — a small line-oriented text format (`.fhg`) reader/writer so
//!   netlists can be stored and replayed;
//! * [`hmetis`] — reader/writer for the hMETIS `.hgr` format, the
//!   de-facto interchange format of the partitioning literature;
//! * [`gen`] — deterministic synthetic circuit generators (Rent's-rule
//!   window generator, layered DAG, clustered), including profiles of the
//!   MCNC Partitioning93 benchmarks used in the paper's evaluation;
//! * [`stats`] — structural statistics (degree histograms, pin counts,
//!   Rent-exponent estimation) used to sanity-check generated workloads;
//! * [`traverse`] — BFS/DFS utilities (connected components, eccentricity)
//!   needed by the constructive initial-partition heuristics.
//!
//! # Example
//!
//! ```
//! use fpart_hypergraph::HypergraphBuilder;
//!
//! # fn main() -> Result<(), fpart_hypergraph::BuildError> {
//! let mut b = HypergraphBuilder::new();
//! let a = b.add_node("a", 2);
//! let c = b.add_node("c", 1);
//! let n = b.add_net("n1", [a, c])?;
//! b.add_terminal("in0", n)?;
//! let h = b.finish()?;
//! assert_eq!(h.node_count(), 2);
//! assert_eq!(h.total_size(), 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod builder;
mod error;
mod graph;
mod ids;

pub mod blif;
pub mod coarsen;
pub mod edit;
pub mod fingerprint;
pub mod gen;
pub mod hmetis;
pub mod io;
pub mod limits;
pub mod rng;
pub mod stats;
pub mod subgraph;
pub mod traverse;

pub use builder::HypergraphBuilder;
pub use edit::{apply_script, ApplyEditError, EditApplied, EditOp, EditScript, ParseEditError};
pub use error::{BuildError, ParseNetlistError};
pub use fingerprint::{fingerprint_graph, order_checksum, Fingerprint};
pub use graph::Hypergraph;
pub use ids::{NetId, NodeId, TerminalId};
pub use limits::ParseLimits;
