//! Breadth-first traversal utilities over the net-induced node adjacency.
//!
//! The constructive initial-partition heuristic of the paper (§3.2) needs a
//! node "at maximal distance from the first seed, found by breadth-first
//! search"; these helpers provide that, plus connected-component analysis
//! used to sanity-check generated circuits.

use std::collections::VecDeque;

use crate::graph::Hypergraph;
use crate::ids::NodeId;

/// Distance (in hops through nets) of every node from a set of sources.
///
/// `u32::MAX` marks unreachable nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsDistances {
    distances: Vec<u32>,
}

impl BfsDistances {
    /// Returns the hop distance of `node`, or `None` if unreachable.
    #[must_use]
    pub fn distance(&self, node: NodeId) -> Option<u32> {
        let d = self.distances[node.index()];
        (d != u32::MAX).then_some(d)
    }

    /// Returns the reachable node at maximum distance, breaking ties toward
    /// the smallest id. Returns `None` when no node is reachable.
    #[must_use]
    pub fn farthest(&self) -> Option<(NodeId, u32)> {
        let mut best: Option<(NodeId, u32)> = None;
        for (i, &d) in self.distances.iter().enumerate() {
            if d == u32::MAX {
                continue;
            }
            match best {
                Some((_, bd)) if bd >= d => {}
                _ => best = Some((NodeId::from_index(i), d)),
            }
        }
        best
    }

    /// Returns the raw distance vector (`u32::MAX` = unreachable).
    #[must_use]
    pub fn as_slice(&self) -> &[u32] {
        &self.distances
    }
}

/// Runs a multi-source BFS from `sources` over the node adjacency induced
/// by nets (two nodes are adjacent when they share a net).
///
/// # Panics
///
/// Panics if any source id is out of range for `graph`.
#[must_use]
pub fn bfs(graph: &Hypergraph, sources: &[NodeId]) -> BfsDistances {
    let mut distances = vec![u32::MAX; graph.node_count()];
    let mut net_seen = vec![false; graph.net_count()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if distances[s.index()] == u32::MAX {
            distances[s.index()] = 0;
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        let dv = distances[v.index()];
        for &net in graph.nets(v) {
            if net_seen[net.index()] {
                continue;
            }
            net_seen[net.index()] = true;
            for &u in graph.pins(net) {
                if distances[u.index()] == u32::MAX {
                    distances[u.index()] = dv + 1;
                    queue.push_back(u);
                }
            }
        }
    }
    BfsDistances { distances }
}

/// Returns the node with the largest size, breaking ties toward the node
/// with most incident nets and then the smallest id. Returns `None` on an
/// empty graph.
///
/// This is the first-seed rule of the constructive initial partition (§3.2).
#[must_use]
pub fn biggest_node(graph: &Hypergraph) -> Option<NodeId> {
    graph.node_ids().max_by(|&a, &b| {
        graph
            .node_size(a)
            .cmp(&graph.node_size(b))
            .then_with(|| graph.nets(a).len().cmp(&graph.nets(b).len()))
            .then_with(|| b.index().cmp(&a.index()))
    })
}

/// Returns the node at maximal BFS distance from `seed` (the second-seed
/// rule of §3.2). Unreachable components are ignored; if `seed` is isolated
/// the seed itself is returned.
///
/// # Panics
///
/// Panics if `seed` is out of range for `graph`.
#[must_use]
pub fn farthest_from(graph: &Hypergraph, seed: NodeId) -> NodeId {
    bfs(graph, &[seed]).farthest().map_or(seed, |(n, _)| n)
}

/// Assigns each node a connected-component index and returns
/// `(component_of_node, component_count)`.
#[must_use]
pub fn connected_components(graph: &Hypergraph) -> (Vec<u32>, usize) {
    let mut component = vec![u32::MAX; graph.node_count()];
    let mut count = 0usize;
    for start in graph.node_ids() {
        if component[start.index()] != u32::MAX {
            continue;
        }
        let label = count as u32;
        count += 1;
        let mut stack = vec![start];
        component[start.index()] = label;
        while let Some(v) = stack.pop() {
            for &net in graph.nets(v) {
                for &u in graph.pins(net) {
                    if component[u.index()] == u32::MAX {
                        component[u.index()] = label;
                        stack.push(u);
                    }
                }
            }
        }
    }
    (component, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    /// A path a - b - c - d (three 2-pin nets) plus isolated node e.
    fn path_graph() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let ids: Vec<NodeId> = (0..4).map(|i| b.add_node(format!("n{i}"), 1)).collect();
        for w in ids.windows(2) {
            b.add_net(format!("e{}", w[0]), [w[0], w[1]]).unwrap();
        }
        let _e = b.add_node("iso", 1);
        b.finish().unwrap()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph();
        let d = bfs(&g, &[NodeId::from_index(0)]);
        assert_eq!(d.distance(NodeId::from_index(0)), Some(0));
        assert_eq!(d.distance(NodeId::from_index(3)), Some(3));
        assert_eq!(d.distance(NodeId::from_index(4)), None);
    }

    #[test]
    fn farthest_picks_path_end() {
        let g = path_graph();
        assert_eq!(farthest_from(&g, NodeId::from_index(0)), NodeId::from_index(3));
    }

    #[test]
    fn farthest_of_isolated_seed_is_seed() {
        let g = path_graph();
        let iso = NodeId::from_index(4);
        assert_eq!(farthest_from(&g, iso), iso);
    }

    #[test]
    fn multi_source_bfs() {
        let g = path_graph();
        let d = bfs(&g, &[NodeId::from_index(0), NodeId::from_index(3)]);
        assert_eq!(d.distance(NodeId::from_index(1)), Some(1));
        assert_eq!(d.distance(NodeId::from_index(2)), Some(1));
    }

    #[test]
    fn biggest_node_prefers_size_then_degree() {
        let mut b = HypergraphBuilder::new();
        let a = b.add_node("a", 2);
        let c = b.add_node("c", 5);
        let d = b.add_node("d", 5);
        // d has more nets than c
        b.add_net("n0", [a, d]).unwrap();
        b.add_net("n1", [c, d]).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(biggest_node(&g), Some(d));
    }

    #[test]
    fn biggest_node_empty_graph() {
        let g = HypergraphBuilder::new().finish().unwrap();
        assert_eq!(biggest_node(&g), None);
    }

    #[test]
    fn components_counted() {
        let g = path_graph();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[3]);
        assert_ne!(labels[0], labels[4]);
    }

    #[test]
    fn hyperedge_counts_as_single_hop() {
        let mut b = HypergraphBuilder::new();
        let ids: Vec<NodeId> = (0..5).map(|i| b.add_node(format!("n{i}"), 1)).collect();
        b.add_net("big", ids.clone()).unwrap();
        let g = b.finish().unwrap();
        let d = bfs(&g, &[ids[0]]);
        for &n in &ids[1..] {
            assert_eq!(d.distance(n), Some(1));
        }
    }
}
