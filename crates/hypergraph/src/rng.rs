//! Small, dependency-free deterministic PRNG: SplitMix64 seeding feeding
//! a xoshiro256** generator.
//!
//! The workspace deliberately carries no external crates, so the
//! generators, the partitioner's randomized tie-breaks, and the benches
//! all draw from this module. Streams are fully determined by the seed:
//! the same seed always produces the same sequence, on every platform
//! (the golden-workload fingerprints in `tests/golden_workloads.rs` pin
//! this).
//!
//! The API mirrors the subset of `rand` the workspace used to consume:
//! [`StdRng::seed_from_u64`], [`StdRng::gen_range`], [`StdRng::gen_bool`],
//! [`StdRng::shuffle`], and [`StdRng::sample_indices`].

/// SplitMix64 step: expands a 64-bit seed into well-mixed words; used to
/// initialize the xoshiro state (the construction recommended by the
/// xoshiro authors).
#[inline]
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256** generator.
///
/// Named `StdRng` so call sites read the same as they did under the
/// `rand` crate; the algorithm is fixed forever (changing it would
/// invalidate every pinned workload fingerprint).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // An all-zero state would be a fixed point; splitmix64 cannot
        // produce four zero words from any seed, but keep the guard
        // explicit.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }

    /// Next raw 64-bit output (xoshiro256**).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of the 64-bit stream).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform value in a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform `u64` in `[0, bound)` via Lemire's unbiased multiply-shift
    /// rejection.
    #[inline]
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range");
        if bound == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64();
            let hi = ((u128::from(x) * u128::from(bound)) >> 64) as u64;
            let lo = x.wrapping_mul(bound);
            // Accept unless `lo` falls in the biased low zone.
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// `amount` distinct indices drawn uniformly from `0..len`, in random
    /// order (partial Fisher–Yates).
    ///
    /// # Panics
    ///
    /// Panics if `amount > len`.
    #[must_use]
    pub fn sample_indices(&mut self, len: usize, amount: usize) -> Vec<usize> {
        assert!(amount <= len, "cannot sample {amount} of {len}");
        // Partial shuffle over a dense index vector: O(len) setup, exact
        // uniformity. The generators sample small `amount`s from small
        // windows, so the dense vector stays cheap.
        let mut indices: Vec<usize> = (0..len).collect();
        for i in 0..amount {
            let j = i + self.bounded_u64((len - i) as u64) as usize;
            indices.swap(i, j);
        }
        indices.truncate(amount);
        indices
    }
}

/// Ranges accepted by [`StdRng::gen_range`].
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.bounded_u64(span) as $t
            }
        }
        impl UniformRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo + rng.bounded_u64(span) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32);

impl UniformRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn known_answer_is_pinned() {
        // Guards against accidental algorithm changes: these values were
        // produced by this implementation and must never change (the
        // golden workload fingerprints depend on the stream).
        let mut r = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                11_091_344_671_253_066_420,
                13_793_997_310_169_335_082,
                1_900_383_378_846_508_768,
                7_684_712_102_626_143_532,
            ]
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(2usize..=4);
            assert!((2..=4).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut r = StdRng::seed_from_u64(13);
        for _ in 0..100 {
            let picks = r.sample_indices(20, 6);
            assert_eq!(picks.len(), 6);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 6, "duplicates in {picks:?}");
            assert!(picks.iter().all(|&i| i < 20));
        }
        assert!(r.sample_indices(5, 0).is_empty());
        assert_eq!(r.sample_indices(1, 1), vec![0]);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        let mut r = StdRng::seed_from_u64(1);
        let _ = r.sample_indices(3, 4);
    }
}
