//! Sub-netlist extraction.
//!
//! Given a subset of interior nodes (one partition block, typically),
//! extract the induced sub-netlist: the chosen nodes, every net restricted
//! to its pins among them, and the net's original terminals. Cut nets —
//! those that also had pins outside the subset — can optionally receive a
//! fresh boundary terminal, so the extracted block is a standalone
//! circuit whose external pins match the IOBs the block would consume.

use crate::builder::HypergraphBuilder;
use crate::graph::Hypergraph;
use crate::ids::NodeId;

/// How cut nets are represented in the extracted sub-netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundaryHandling {
    /// Keep the restricted net as an ordinary internal net (terminals of
    /// the original net are preserved either way).
    #[default]
    Plain,
    /// Attach a synthetic terminal named `cut_<net>` to every restricted
    /// net that had pins outside the subset, making the sub-netlist's
    /// terminal count equal the block's IOB consumption.
    MarkTerminals,
}

/// A sub-netlist plus the mapping back to the original graph.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The extracted netlist.
    pub graph: Hypergraph,
    /// `original_of[sub_node] = original node`.
    pub original_of: Vec<NodeId>,
}

/// Extracts the sub-netlist induced by `nodes`.
///
/// Node and net names are preserved; single-pin restrictions of cut nets
/// are kept (they carry boundary/terminal information). Nets with no pins
/// in the subset are dropped along with their terminals.
///
/// # Panics
///
/// Panics if `nodes` contains duplicates or out-of-range ids.
///
/// # Example
///
/// ```
/// use fpart_hypergraph::subgraph::{subgraph, BoundaryHandling};
/// use fpart_hypergraph::HypergraphBuilder;
///
/// # fn main() -> Result<(), fpart_hypergraph::BuildError> {
/// let mut b = HypergraphBuilder::new();
/// let x = b.add_node("x", 1);
/// let y = b.add_node("y", 1);
/// let z = b.add_node("z", 1);
/// b.add_net("xy", [x, y])?;
/// b.add_net("yz", [y, z])?;
/// let g = b.finish()?;
/// let sub = subgraph(&g, &[x, y], BoundaryHandling::MarkTerminals);
/// assert_eq!(sub.graph.node_count(), 2);
/// assert_eq!(sub.graph.terminal_count(), 1); // the cut net `yz`
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn subgraph(graph: &Hypergraph, nodes: &[NodeId], boundary: BoundaryHandling) -> Subgraph {
    let mut map = vec![u32::MAX; graph.node_count()];
    let mut builder = HypergraphBuilder::named(format!("{}_sub", graph.name()));
    for (i, &v) in nodes.iter().enumerate() {
        assert!(v.index() < graph.node_count(), "node {v:?} out of range");
        assert_eq!(map[v.index()], u32::MAX, "node {v:?} listed twice");
        let id = builder.add_node(graph.node_name(v), graph.node_size(v));
        debug_assert_eq!(id.index(), i);
        map[v.index()] = i as u32;
    }

    for net in graph.net_ids() {
        let pins: Vec<NodeId> = graph
            .pins(net)
            .iter()
            .filter(|p| map[p.index()] != u32::MAX)
            .map(|p| NodeId::from_index(map[p.index()] as usize))
            .collect();
        if pins.is_empty() {
            continue;
        }
        let is_cut = pins.len() < graph.pins(net).len();
        let id = builder
            .add_net(graph.net_name(net), pins)
            .expect("mapped pins are valid distinct sub-nodes");
        for &t in graph.net_terminals(net) {
            builder.add_terminal(graph.terminal_name(t), id).expect("net id from this builder");
        }
        if is_cut && boundary == BoundaryHandling::MarkTerminals {
            builder
                .add_terminal(format!("cut_{}", graph.net_name(net)), id)
                .expect("net id from this builder");
        }
    }

    Subgraph {
        graph: builder.finish().expect("extracted netlist is structurally valid"),
        original_of: nodes.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let n: Vec<NodeId> = (0..4).map(|i| b.add_node(format!("n{i}"), i as u32 + 1)).collect();
        b.add_net("inner", [n[0], n[1]]).unwrap();
        b.add_net("cut", [n[1], n[2]]).unwrap();
        let t = b.add_net("term", [n[0]]).unwrap();
        b.add_terminal("pad", t).unwrap();
        b.add_net("outside", [n[2], n[3]]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn extracts_induced_structure() {
        let g = sample();
        let sub =
            subgraph(&g, &[NodeId::from_index(0), NodeId::from_index(1)], BoundaryHandling::Plain);
        assert_eq!(sub.graph.node_count(), 2);
        // nets: inner (both pins), cut (restricted to n1), term (n0)
        assert_eq!(sub.graph.net_count(), 3);
        assert_eq!(sub.graph.terminal_count(), 1); // the original pad
        assert_eq!(sub.graph.total_size(), 1 + 2);
        assert_eq!(sub.original_of, vec![NodeId::from_index(0), NodeId::from_index(1)]);
        // names preserved
        assert_eq!(sub.graph.node_name(NodeId::from_index(1)), "n1");
    }

    #[test]
    fn boundary_terminals_count_block_iobs() {
        let g = sample();
        let sub = subgraph(
            &g,
            &[NodeId::from_index(0), NodeId::from_index(1)],
            BoundaryHandling::MarkTerminals,
        );
        // `cut` gains a boundary terminal; `term` keeps its pad; `inner`
        // stays internal.
        assert_eq!(sub.graph.terminal_count(), 2);
        let cut_net = sub.graph.find_net("cut").unwrap();
        assert_eq!(sub.graph.net_terminal_count(cut_net), 1);
    }

    #[test]
    fn matches_partition_block_terminals() {
        use crate::gen::{window_circuit, WindowConfig};
        let g = window_circuit(&WindowConfig::new("w", 60, 6), 5);
        // Split in half; the extracted half with boundary marking must
        // have exactly the block's terminal count.
        let half: Vec<NodeId> = g.node_ids().take(30).collect();
        let assignment: Vec<u32> = (0..60u32).map(|i| u32::from(i >= 30)).collect();
        let verification = {
            // terminals of block 0 per the independent model
            let mut t = 0usize;
            for net in g.net_ids() {
                let inside = g.pins(net).iter().any(|p| p.index() < 30);
                let outside = g.pins(net).iter().any(|p| p.index() >= 30);
                if inside && (outside || g.net_has_terminal(net)) {
                    t += 1;
                }
            }
            let _ = assignment;
            t
        };
        let sub = subgraph(&g, &half, BoundaryHandling::MarkTerminals);
        // Terminal-net count of the subgraph = block IOB count. A net may
        // carry several original pads but still consumes one IOB, so
        // compare *nets with terminals*, not terminal count.
        let terminal_nets = sub.graph.net_ids().filter(|&e| sub.graph.net_has_terminal(e)).count();
        assert_eq!(terminal_nets, verification);
    }

    #[test]
    fn empty_subset_yields_empty_graph() {
        let g = sample();
        let sub = subgraph(&g, &[], BoundaryHandling::Plain);
        assert_eq!(sub.graph.node_count(), 0);
        assert_eq!(sub.graph.net_count(), 0);
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn duplicate_node_panics() {
        let g = sample();
        let n0 = NodeId::from_index(0);
        let _ = subgraph(&g, &[n0, n0], BoundaryHandling::Plain);
    }
}
