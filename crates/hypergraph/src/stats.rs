//! Structural statistics of circuit hypergraphs.
//!
//! Used to report Table 1 of the paper (benchmark characteristics) and to
//! sanity-check the synthetic generators: a generated circuit should have
//! realistic net-degree distribution and a Rent exponent in the range of
//! real netlists (~0.5–0.75), otherwise min-cut behaviour is unrealistic.

use std::collections::VecDeque;

use crate::graph::Hypergraph;
use crate::ids::NodeId;

/// Summary statistics of a hypergraph.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitStats {
    /// Number of interior nodes.
    pub nodes: usize,
    /// Number of nets.
    pub nets: usize,
    /// Number of primary terminals.
    pub terminals: usize,
    /// Total size `S₀` in technology cells.
    pub total_size: u64,
    /// Total interior pin count.
    pub pins: usize,
    /// Mean interior pins per net.
    pub mean_net_degree: f64,
    /// Largest net (interior pins).
    pub max_net_degree: usize,
    /// Mean nets per node.
    pub mean_node_degree: f64,
    /// Largest node degree.
    pub max_node_degree: usize,
    /// Fraction of nets attached to at least one terminal.
    pub terminal_net_fraction: f64,
}

impl CircuitStats {
    /// Computes summary statistics for `graph`.
    #[must_use]
    pub fn of(graph: &Hypergraph) -> Self {
        let nets = graph.net_count();
        let nodes = graph.node_count();
        let pins = graph.pin_count();
        let terminal_nets = graph.net_ids().filter(|&e| graph.net_has_terminal(e)).count();
        CircuitStats {
            nodes,
            nets,
            terminals: graph.terminal_count(),
            total_size: graph.total_size(),
            pins,
            mean_net_degree: if nets == 0 { 0.0 } else { pins as f64 / nets as f64 },
            max_net_degree: graph.max_net_degree(),
            mean_node_degree: if nodes == 0 { 0.0 } else { pins as f64 / nodes as f64 },
            max_node_degree: graph.max_node_degree(),
            terminal_net_fraction: if nets == 0 { 0.0 } else { terminal_nets as f64 / nets as f64 },
        }
    }
}

/// Histogram of net degrees (index = interior pin count).
#[must_use]
pub fn net_degree_histogram(graph: &Hypergraph) -> Vec<usize> {
    let mut hist = vec![0usize; graph.max_net_degree() + 1];
    for net in graph.net_ids() {
        hist[graph.pins(net).len()] += 1;
    }
    hist
}

/// Estimates the Rent exponent `p` of the circuit by growing BFS clusters
/// from evenly spread seeds and fitting `log T = log t + p·log g` by least
/// squares, where `g` is cluster size (in nodes) and `T` the number of nets
/// crossing the cluster boundary.
///
/// Returns `None` when the graph is too small (fewer than 32 nodes) to fit
/// a meaningful slope.
#[must_use]
pub fn rent_exponent(graph: &Hypergraph) -> Option<f64> {
    let n = graph.node_count();
    if n < 32 {
        return None;
    }
    let mut samples: Vec<(f64, f64)> = Vec::new();
    let seed_stride = (n / 8).max(1);
    let targets: Vec<usize> =
        [8usize, 16, 32, 64, 128, 256, 512].iter().copied().filter(|&t| t <= n / 2).collect();
    if targets.len() < 2 {
        return None;
    }
    for seed_idx in (0..n).step_by(seed_stride) {
        for &target in &targets {
            let cluster = bfs_cluster(graph, NodeId::from_index(seed_idx), target);
            let boundary = boundary_nets(graph, &cluster);
            if boundary > 0 && cluster.len() >= 2 {
                samples.push(((cluster.len() as f64).ln(), (boundary as f64).ln()));
            }
        }
    }
    fit_slope(&samples)
}

/// Collects a BFS ball of approximately `target` nodes around `seed`.
fn bfs_cluster(graph: &Hypergraph, seed: NodeId, target: usize) -> Vec<NodeId> {
    let mut in_cluster = vec![false; graph.node_count()];
    let mut cluster = Vec::with_capacity(target);
    let mut queue = VecDeque::new();
    queue.push_back(seed);
    in_cluster[seed.index()] = true;
    while let Some(v) = queue.pop_front() {
        cluster.push(v);
        if cluster.len() >= target {
            break;
        }
        for &net in graph.nets(v) {
            for &u in graph.pins(net) {
                if !in_cluster[u.index()] {
                    in_cluster[u.index()] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    cluster
}

/// Counts nets with at least one pin inside and one pin outside `cluster`,
/// or attached to a terminal (external by definition).
fn boundary_nets(graph: &Hypergraph, cluster: &[NodeId]) -> usize {
    let mut inside = vec![false; graph.node_count()];
    for &v in cluster {
        inside[v.index()] = true;
    }
    let mut count = 0usize;
    let mut seen = vec![false; graph.net_count()];
    for &v in cluster {
        for &net in graph.nets(v) {
            if seen[net.index()] {
                continue;
            }
            seen[net.index()] = true;
            let crosses =
                graph.pins(net).iter().any(|&u| !inside[u.index()]) || graph.net_has_terminal(net);
            if crosses {
                count += 1;
            }
        }
    }
    count
}

fn fit_slope(samples: &[(f64, f64)]) -> Option<f64> {
    if samples.len() < 4 {
        return None;
    }
    let n = samples.len() as f64;
    let sx: f64 = samples.iter().map(|s| s.0).sum();
    let sy: f64 = samples.iter().map(|s| s.1).sum();
    let sxx: f64 = samples.iter().map(|s| s.0 * s.0).sum();
    let sxy: f64 = samples.iter().map(|s| s.0 * s.1).sum();
    let denom = n * sxx - sx * sx;
    (denom.abs() > 1e-12).then(|| (n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn chain(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let ids: Vec<NodeId> = (0..n).map(|i| b.add_node(format!("n{i}"), 1)).collect();
        for w in ids.windows(2) {
            b.add_net(format!("e{}", w[0]), [w[0], w[1]]).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn stats_of_chain() {
        let g = chain(10);
        let s = CircuitStats::of(&g);
        assert_eq!(s.nodes, 10);
        assert_eq!(s.nets, 9);
        assert_eq!(s.pins, 18);
        assert!((s.mean_net_degree - 2.0).abs() < 1e-9);
        assert_eq!(s.max_net_degree, 2);
        assert_eq!(s.max_node_degree, 2);
        assert_eq!(s.terminal_net_fraction, 0.0);
    }

    #[test]
    fn stats_of_empty_graph() {
        let g = HypergraphBuilder::new().finish().unwrap();
        let s = CircuitStats::of(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.mean_net_degree, 0.0);
    }

    #[test]
    fn histogram_counts_degrees() {
        let g = chain(5);
        let h = net_degree_histogram(&g);
        assert_eq!(h[2], 4);
        assert_eq!(h.iter().sum::<usize>(), 4);
    }

    #[test]
    fn rent_exponent_of_chain_is_near_zero() {
        // A 1-D chain has constant boundary (≤2 nets) regardless of cluster
        // size, so the fitted exponent must be close to 0.
        let g = chain(256);
        let p = rent_exponent(&g).unwrap();
        assert!(p < 0.25, "chain rent exponent was {p}");
    }

    #[test]
    fn rent_exponent_small_graph_is_none() {
        let g = chain(8);
        assert_eq!(rent_exponent(&g), None);
    }

    #[test]
    fn fit_slope_recovers_line() {
        let pts: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, 3.0 + 0.5 * i as f64)).collect();
        let s = fit_slope(&pts).unwrap();
        assert!((s - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fit_slope_degenerate_is_none() {
        let pts = vec![(1.0, 2.0); 10];
        assert_eq!(fit_slope(&pts), None);
    }
}
