//! Rent's-rule "window" circuit generator.
//!
//! Nodes are laid out on a line whose order encodes the implicit design
//! hierarchy. Each net draws a *span* from a truncated Pareto distribution
//! with tail index `1 − p` (where `p` is the target Rent exponent), places
//! a window of that span uniformly on the line, and picks its pins inside
//! the window. Small spans dominate, so most nets are local; the heavy tail
//! reproduces the `T ∝ g^p` boundary-pin scaling of real netlists, which is
//! what makes min-cut partitioning behave realistically.

use crate::builder::HypergraphBuilder;
use crate::graph::Hypergraph;
use crate::ids::NodeId;
use crate::rng::StdRng;

/// Parameters of the window generator.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowConfig {
    /// Circuit name recorded on the generated hypergraph.
    pub name: String,
    /// Number of interior nodes.
    pub nodes: usize,
    /// Number of primary terminals.
    pub terminals: usize,
    /// Nets per node (real netlists: ≈ 1.0–1.4).
    pub net_ratio: f64,
    /// Target Rent exponent in `(0, 1)`; ~0.65 matches MCNC-class logic.
    pub rent_exponent: f64,
    /// Maximum interior pins on a net.
    pub max_net_degree: usize,
    /// Probability that a net has exactly two pins (the rest of the degree
    /// distribution is geometric above two).
    pub two_pin_fraction: f64,
    /// Node size distribution: every node has size 1 unless this is > 0, in
    /// which case sizes are `1 + Geometric(extra_size_prob)` capped at 8.
    pub extra_size_prob: f64,
}

impl WindowConfig {
    /// A configuration producing a realistic logic-netlist shape with the
    /// given node and terminal counts.
    #[must_use]
    pub fn new(name: impl Into<String>, nodes: usize, terminals: usize) -> Self {
        WindowConfig {
            name: name.into(),
            nodes,
            terminals,
            net_ratio: 1.2,
            rent_exponent: 0.65,
            max_net_degree: 16,
            two_pin_fraction: 0.6,
            extra_size_prob: 0.0,
        }
    }
}

/// Generates a circuit from `config`, deterministically from `seed`.
///
/// # Panics
///
/// Panics if `config.nodes == 0`, if `rent_exponent` is outside `(0, 1)`,
/// or if `max_net_degree < 2`.
#[must_use]
pub fn window_circuit(config: &WindowConfig, seed: u64) -> Hypergraph {
    assert!(config.nodes > 0, "window generator needs at least one node");
    assert!(
        config.rent_exponent > 0.0 && config.rent_exponent < 1.0,
        "rent exponent must be in (0, 1)"
    );
    assert!(config.max_net_degree >= 2, "nets need at least two pins");

    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = HypergraphBuilder::named(config.name.clone());

    for i in 0..config.nodes {
        let size = if config.extra_size_prob > 0.0 {
            1 + sample_geometric(&mut rng, config.extra_size_prob).min(7) as u32
        } else {
            1
        };
        builder.add_node(format!("x{i}"), size);
    }

    let n = config.nodes;
    let net_count = ((n as f64 * config.net_ratio).round() as usize).max(1);
    let mut net_ids = Vec::with_capacity(net_count);
    for e in 0..net_count {
        let degree = sample_degree(&mut rng, config).min(n);
        let span = sample_span(&mut rng, config.rent_exponent, degree, n);
        let start = if n > span { rng.gen_range(0..=n - span) } else { 0 };
        let pins = pick_pins_in_window(&mut rng, start, span, degree);
        let id =
            builder.add_net(format!("e{e}"), pins).expect("window pins are valid distinct nodes");
        net_ids.push(id);
    }

    // Attach terminals to distinct nets spread across the order, so the
    // external I/Os are not concentrated in one region (real pads connect
    // all over the floorplan).
    let t = config.terminals.min(net_ids.len());
    let mut chosen = rng.sample_indices(net_ids.len(), t);
    chosen.sort_unstable();
    for (i, net_idx) in chosen.into_iter().enumerate() {
        builder
            .add_terminal(format!("io{i}"), net_ids[net_idx])
            .expect("net id came from this builder");
    }

    builder.finish().expect("generated netlist is structurally valid")
}

/// Samples a net degree: two pins with probability `two_pin_fraction`,
/// otherwise `3 + Geometric(0.5)` capped at `max_net_degree`.
fn sample_degree(rng: &mut StdRng, config: &WindowConfig) -> usize {
    if rng.gen_bool(config.two_pin_fraction.clamp(0.0, 1.0)) {
        2
    } else {
        (3 + sample_geometric(rng, 0.5)).min(config.max_net_degree)
    }
}

/// Samples from Geometric(p) starting at 0 (number of failures).
fn sample_geometric(rng: &mut StdRng, p: f64) -> usize {
    let mut k = 0usize;
    while k < 32 && !rng.gen_bool(p.clamp(1e-6, 1.0)) {
        k += 1;
    }
    k
}

/// Samples a net span from a truncated Pareto with
/// `P(span > L) ∝ L^(p − 1)`, at least `degree` and at most `n`.
fn sample_span(rng: &mut StdRng, p: f64, degree: usize, n: usize) -> usize {
    let min_span = degree.max(2) as f64;
    let u: f64 = rng.gen_range(1e-9..1.0);
    // Inverse CDF of Pareto with tail exponent (1 − p).
    let span = min_span * u.powf(-1.0 / (1.0 - p));
    (span.round() as usize).clamp(degree.max(2), n)
}

/// Picks `degree` distinct node indices in `[start, start + span)`.
fn pick_pins_in_window(rng: &mut StdRng, start: usize, span: usize, degree: usize) -> Vec<NodeId> {
    let window = span.max(degree);
    let picks = rng.sample_indices(window, degree);
    picks.into_iter().map(|offset| NodeId::from_index(start + offset)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{rent_exponent, CircuitStats};

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = WindowConfig::new("t", 200, 16);
        let a = window_circuit(&cfg, 42);
        let b = window_circuit(&cfg, 42);
        assert_eq!(a.net_count(), b.net_count());
        for (na, nb) in a.net_ids().zip(b.net_ids()) {
            assert_eq!(a.pins(na), b.pins(nb));
        }
        for (ta, tb) in a.terminal_ids().zip(b.terminal_ids()) {
            assert_eq!(a.terminal_net(ta), b.terminal_net(tb));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = WindowConfig::new("t", 200, 16);
        let a = window_circuit(&cfg, 1);
        let b = window_circuit(&cfg, 2);
        let differs = a.net_ids().zip(b.net_ids()).any(|(na, nb)| a.pins(na) != b.pins(nb));
        assert!(differs);
    }

    #[test]
    fn respects_requested_counts() {
        let cfg = WindowConfig::new("t", 500, 40);
        let g = window_circuit(&cfg, 7);
        assert_eq!(g.node_count(), 500);
        assert_eq!(g.terminal_count(), 40);
        assert_eq!(g.total_size(), 500); // unit sizes by default
        assert_eq!(g.net_count(), 600); // 1.2 × 500
    }

    #[test]
    fn net_degrees_within_bounds() {
        let cfg = WindowConfig::new("t", 300, 10);
        let g = window_circuit(&cfg, 3);
        for net in g.net_ids() {
            let d = g.pins(net).len();
            assert!((2..=cfg.max_net_degree).contains(&d));
        }
    }

    #[test]
    fn two_pin_nets_dominate() {
        let cfg = WindowConfig::new("t", 1000, 10);
        let g = window_circuit(&cfg, 11);
        let two = g.net_ids().filter(|&e| g.pins(e).len() == 2).count();
        let frac = two as f64 / g.net_count() as f64;
        assert!(frac > 0.45 && frac < 0.75, "two-pin fraction {frac}");
    }

    #[test]
    fn rent_exponent_is_realistic() {
        let cfg = WindowConfig::new("t", 2000, 64);
        let g = window_circuit(&cfg, 5);
        let p = rent_exponent(&g).expect("graph large enough");
        assert!((0.35..0.95).contains(&p), "estimated rent exponent {p} out of realistic band");
    }

    #[test]
    fn terminals_attach_to_distinct_nets() {
        let cfg = WindowConfig::new("t", 100, 30);
        let g = window_circuit(&cfg, 9);
        let mut nets: Vec<_> = g.terminal_ids().map(|t| g.terminal_net(t)).collect();
        nets.sort_unstable();
        nets.dedup();
        assert_eq!(nets.len(), 30);
    }

    #[test]
    fn extra_size_prob_produces_varied_sizes() {
        let mut cfg = WindowConfig::new("t", 300, 8);
        cfg.extra_size_prob = 0.5;
        let g = window_circuit(&cfg, 13);
        assert!(g.total_size() > 300);
        assert!(g.node_ids().all(|n| (1..=8).contains(&g.node_size(n))));
    }

    #[test]
    fn stats_smoke() {
        let cfg = WindowConfig::new("t", 400, 24);
        let g = window_circuit(&cfg, 17);
        let s = CircuitStats::of(&g);
        assert!(s.mean_net_degree >= 2.0);
        assert!(s.terminal_net_fraction > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let cfg = WindowConfig::new("t", 0, 0);
        let _ = window_circuit(&cfg, 0);
    }
}
