//! Clustered circuit generator with a planted partition.
//!
//! Produces `clusters` dense groups connected by a configurable number of
//! sparse inter-cluster nets. Because the optimal partition is (close to)
//! the planted clustering, these circuits make excellent ground-truth tests
//! for partitioners: a competent algorithm should recover cuts close to
//! the planted inter-cluster net count.

use crate::builder::HypergraphBuilder;
use crate::graph::Hypergraph;
use crate::ids::NodeId;
use crate::rng::StdRng;

/// Parameters of the clustered generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteredConfig {
    /// Circuit name recorded on the generated hypergraph.
    pub name: String,
    /// Number of planted clusters (≥ 1).
    pub clusters: usize,
    /// Nodes per cluster (≥ 2).
    pub cluster_size: usize,
    /// Intra-cluster nets per cluster.
    pub intra_nets: usize,
    /// Total inter-cluster nets (each touches 2–3 clusters).
    pub inter_nets: usize,
    /// Number of primary terminals, attached round-robin across clusters.
    pub terminals: usize,
}

impl ClusteredConfig {
    /// A configuration with dense clusters (`2·cluster_size` intra nets)
    /// and a thin crossing cut.
    #[must_use]
    pub fn new(name: impl Into<String>, clusters: usize, cluster_size: usize) -> Self {
        ClusteredConfig {
            name: name.into(),
            clusters,
            cluster_size,
            intra_nets: cluster_size * 2,
            inter_nets: clusters.saturating_sub(1) * 3,
            terminals: clusters * 2,
        }
    }
}

/// Generates a clustered circuit, deterministically from `seed`.
///
/// Returns the hypergraph and the planted cluster index of every node.
///
/// # Panics
///
/// Panics if `clusters == 0` or `cluster_size < 2`.
#[must_use]
pub fn clustered_circuit(config: &ClusteredConfig, seed: u64) -> (Hypergraph, Vec<u32>) {
    assert!(config.clusters > 0, "need at least one cluster");
    assert!(config.cluster_size >= 2, "clusters need at least two nodes");

    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = HypergraphBuilder::named(config.name.clone());
    let mut planted = Vec::with_capacity(config.clusters * config.cluster_size);

    let mut cluster_nodes: Vec<Vec<NodeId>> = Vec::with_capacity(config.clusters);
    for c in 0..config.clusters {
        let mut nodes = Vec::with_capacity(config.cluster_size);
        for i in 0..config.cluster_size {
            nodes.push(builder.add_node(format!("c{c}n{i}"), 1));
            planted.push(c as u32);
        }
        cluster_nodes.push(nodes);
    }

    let mut net_ids = Vec::new();
    // Intra-cluster nets: a spanning chain first (so each cluster is
    // connected), then random 2–4 pin nets.
    for (c, nodes) in cluster_nodes.iter().enumerate() {
        for (i, w) in nodes.windows(2).enumerate() {
            let id =
                builder.add_net(format!("c{c}chain{i}"), [w[0], w[1]]).expect("chain pins valid");
            net_ids.push(id);
        }
        let extra = config.intra_nets.saturating_sub(nodes.len().saturating_sub(1));
        for e in 0..extra {
            let deg = rng.gen_range(2..=4usize.min(nodes.len()));
            let picks = rng.sample_indices(nodes.len(), deg);
            let pins: Vec<NodeId> = picks.into_iter().map(|k| nodes[k]).collect();
            let id = builder.add_net(format!("c{c}intra{e}"), pins).expect("intra pins valid");
            net_ids.push(id);
        }
    }

    // Inter-cluster nets: pick 2–3 distinct clusters, one node from each.
    for e in 0..config.inter_nets {
        if config.clusters < 2 {
            break;
        }
        let k = rng.gen_range(2..=3usize.min(config.clusters));
        let picks = rng.sample_indices(config.clusters, k);
        let pins: Vec<NodeId> = picks
            .into_iter()
            .map(|c| cluster_nodes[c][rng.gen_range(0..config.cluster_size)])
            .collect();
        let id = builder.add_net(format!("inter{e}"), pins).expect("inter pins valid");
        net_ids.push(id);
    }

    for t in 0..config.terminals.min(net_ids.len()) {
        builder
            .add_terminal(format!("io{t}"), net_ids[t * net_ids.len() / config.terminals.max(1)])
            .expect("net id valid");
    }

    let graph = builder.finish().expect("generated netlist is structurally valid");
    (graph, planted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traverse::connected_components;

    #[test]
    fn deterministic() {
        let cfg = ClusteredConfig::new("cl", 4, 20);
        let (a, pa) = clustered_circuit(&cfg, 8);
        let (b, pb) = clustered_circuit(&cfg, 8);
        assert_eq!(pa, pb);
        assert_eq!(a.net_count(), b.net_count());
    }

    #[test]
    fn planted_labels_match_layout() {
        let cfg = ClusteredConfig::new("cl", 3, 10);
        let (g, planted) = clustered_circuit(&cfg, 1);
        assert_eq!(g.node_count(), 30);
        assert_eq!(planted.len(), 30);
        assert_eq!(planted[0], 0);
        assert_eq!(planted[29], 2);
    }

    #[test]
    fn whole_circuit_is_connected_when_inter_nets_exist() {
        let cfg = ClusteredConfig::new("cl", 4, 12);
        let (g, _) = clustered_circuit(&cfg, 3);
        let (_, count) = connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn inter_cluster_cut_is_thin() {
        let cfg = ClusteredConfig::new("cl", 2, 40);
        let (g, planted) = clustered_circuit(&cfg, 5);
        // Count nets crossing the planted bipartition.
        let crossing = g
            .net_ids()
            .filter(|&e| {
                let mut any0 = false;
                let mut any1 = false;
                for &p in g.pins(e) {
                    match planted[p.index()] {
                        0 => any0 = true,
                        _ => any1 = true,
                    }
                }
                any0 && any1
            })
            .count();
        assert_eq!(crossing, cfg.inter_nets);
        // And the planted cut is much thinner than the intra-net mass.
        assert!(crossing * 10 < g.net_count());
    }

    #[test]
    fn terminal_count_respected() {
        let cfg = ClusteredConfig::new("cl", 4, 10);
        let (g, _) = clustered_circuit(&cfg, 2);
        assert_eq!(g.terminal_count(), cfg.terminals);
    }

    #[test]
    fn single_cluster_has_no_inter_nets() {
        let mut cfg = ClusteredConfig::new("cl", 1, 10);
        cfg.inter_nets = 5; // requested but impossible
        let (g, _) = clustered_circuit(&cfg, 1);
        // chain (9) + extra intra (20 - 9 = 11) = 20 nets, no inter
        assert_eq!(g.net_count(), cfg.intra_nets);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn tiny_cluster_panics() {
        let cfg = ClusteredConfig::new("cl", 2, 1);
        let _ = clustered_circuit(&cfg, 0);
    }
}
