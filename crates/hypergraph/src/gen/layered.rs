//! Layered combinational-circuit (DAG) generator.
//!
//! Models a mapped combinational netlist: nodes are LUT-like cells arranged
//! in topological levels; each cell draws 2–`max_fanin` inputs from earlier
//! levels with a recency bias, and each cell's output becomes one net
//! driving its consumers. Primary inputs feed level 0 through terminal
//! nets; cells whose output is never consumed become primary outputs.
//!
//! Compared to [`super::window_circuit`] this generator produces true
//! driver/sink structure and is used by tests that need DAG-shaped
//! circuits (e.g. the c6288-multiplier-like stress cases).

use crate::builder::HypergraphBuilder;
use crate::graph::Hypergraph;
use crate::ids::NodeId;
use crate::rng::StdRng;

/// Parameters of the layered DAG generator.
#[derive(Debug, Clone, PartialEq)]
pub struct LayeredConfig {
    /// Circuit name recorded on the generated hypergraph.
    pub name: String,
    /// Number of topological levels (≥ 1).
    pub levels: usize,
    /// Cells per level (≥ 1).
    pub width: usize,
    /// Number of primary inputs (terminals feeding level 0).
    pub primary_inputs: usize,
    /// Maximum fanin per cell (≥ 2).
    pub max_fanin: usize,
    /// Recency bias: probability that each fanin comes from the previous
    /// level rather than a uniformly random earlier level.
    pub locality: f64,
}

impl LayeredConfig {
    /// A multiplier-array-like configuration (deep, narrow, very local).
    #[must_use]
    pub fn new(name: impl Into<String>, levels: usize, width: usize) -> Self {
        LayeredConfig {
            name: name.into(),
            levels,
            width,
            primary_inputs: width.max(2),
            max_fanin: 4,
            locality: 0.85,
        }
    }
}

/// Generates a layered DAG circuit, deterministically from `seed`.
///
/// # Panics
///
/// Panics if `levels == 0`, `width == 0`, or `max_fanin < 2`.
#[must_use]
pub fn layered_circuit(config: &LayeredConfig, seed: u64) -> Hypergraph {
    assert!(config.levels > 0, "need at least one level");
    assert!(config.width > 0, "need at least one cell per level");
    assert!(config.max_fanin >= 2, "cells need fanin of at least two");

    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = HypergraphBuilder::named(config.name.clone());

    let mut level_nodes: Vec<Vec<NodeId>> = Vec::with_capacity(config.levels);
    for level in 0..config.levels {
        let mut nodes = Vec::with_capacity(config.width);
        for i in 0..config.width {
            nodes.push(builder.add_node(format!("l{level}c{i}"), 1));
        }
        level_nodes.push(nodes);
    }

    // consumers[cell] = cells that read this cell's output.
    let total = config.levels * config.width;
    let mut consumers: Vec<Vec<NodeId>> = vec![Vec::new(); total];

    for level in 1..config.levels {
        for &cell in &level_nodes[level] {
            let fanin = rng.gen_range(2..=config.max_fanin);
            for _ in 0..fanin {
                let src_level = if rng.gen_bool(config.locality.clamp(0.0, 1.0)) {
                    level - 1
                } else {
                    rng.gen_range(0..level)
                };
                let src = level_nodes[src_level][rng.gen_range(0..config.width)];
                if !consumers[src.index()].contains(&cell) {
                    consumers[src.index()].push(cell);
                }
            }
        }
    }

    // One net per driving cell: driver + its consumers.
    let mut output_candidates = Vec::new();
    for (idx, sinks) in consumers.iter().enumerate() {
        let driver = NodeId::from_index(idx);
        if sinks.is_empty() {
            output_candidates.push(driver);
            continue;
        }
        let mut pins = Vec::with_capacity(sinks.len() + 1);
        pins.push(driver);
        pins.extend_from_slice(sinks);
        builder
            .add_net(format!("w{idx}"), pins)
            .expect("driver and sinks are distinct valid nodes");
    }

    // Primary inputs: terminal-attached nets into level 0 (each drives a
    // couple of level-0 cells).
    for i in 0..config.primary_inputs {
        let fanout = rng.gen_range(1..=2.min(config.width));
        let picks = rng.sample_indices(config.width, fanout);
        let pins: Vec<NodeId> = picks.into_iter().map(|k| level_nodes[0][k]).collect();
        let net = builder.add_net(format!("pi_net{i}"), pins).expect("level-0 picks are valid");
        builder.add_terminal(format!("pi{i}"), net).expect("net id is valid");
    }

    // Primary outputs: every unconsumed cell gets a terminal net.
    for (i, driver) in output_candidates.into_iter().enumerate() {
        let net = builder.add_net(format!("po_net{i}"), [driver]).expect("driver is a valid node");
        builder.add_terminal(format!("po{i}"), net).expect("net id is valid");
    }

    builder.finish().expect("generated netlist is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = LayeredConfig::new("dag", 8, 16);
        let a = layered_circuit(&cfg, 3);
        let b = layered_circuit(&cfg, 3);
        assert_eq!(a.net_count(), b.net_count());
        assert_eq!(a.terminal_count(), b.terminal_count());
    }

    #[test]
    fn node_count_is_levels_times_width() {
        let cfg = LayeredConfig::new("dag", 5, 7);
        let g = layered_circuit(&cfg, 1);
        assert_eq!(g.node_count(), 35);
    }

    #[test]
    fn has_primary_inputs_and_outputs() {
        let cfg = LayeredConfig::new("dag", 6, 8);
        let g = layered_circuit(&cfg, 5);
        // all terminals exist and include the requested PIs
        assert!(g.terminal_count() >= cfg.primary_inputs);
        // last level cells are never consumed → all are outputs
        let po_count = g.terminal_count() - cfg.primary_inputs;
        assert!(po_count >= cfg.width);
    }

    #[test]
    fn every_net_has_pins_and_each_nonlevel0_cell_is_connected() {
        let cfg = LayeredConfig::new("dag", 4, 6);
        let g = layered_circuit(&cfg, 9);
        for net in g.net_ids() {
            assert!(!g.pins(net).is_empty());
        }
        // Cells above level 0 requested fanin ≥ 2, so they appear in nets.
        for idx in cfg.width..g.node_count() {
            assert!(!g.nets(NodeId::from_index(idx)).is_empty(), "cell {idx} is disconnected");
        }
    }

    #[test]
    fn locality_one_keeps_fanin_in_previous_level() {
        let mut cfg = LayeredConfig::new("dag", 3, 4);
        cfg.locality = 1.0;
        // With locality 1.0, nets only ever connect adjacent levels, so no
        // net spans more than 2·width pins and the circuit is still valid.
        let g = layered_circuit(&cfg, 2);
        assert!(g.net_count() > 0);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_panics() {
        let cfg = LayeredConfig::new("dag", 0, 4);
        let _ = layered_circuit(&cfg, 0);
    }
}
