//! Deterministic synthetic circuit generators.
//!
//! The MCNC Partitioning93 netlists used by the paper are no longer
//! distributed, so the evaluation harness synthesizes circuits that match
//! the published per-benchmark #IOB and #CLB figures (Table 1) exactly and
//! mimic real-netlist structure via a Rent's-rule net-span distribution.
//!
//! All generators are deterministic functions of their seed: the same
//! `(parameters, seed)` pair always yields the identical netlist, so every
//! experiment in the repository is replayable.

mod clustered;
mod layered;
mod mcnc;
mod rent;
mod window;

pub use clustered::{clustered_circuit, ClusteredConfig};
pub use layered::{layered_circuit, LayeredConfig};
pub use mcnc::{
    find_profile, mcnc_profiles, synthesize_mcnc, synthesize_mcnc_with_salt, McncProfile,
    Technology,
};
pub use rent::{rent_circuit, RentConfig};
pub use window::{window_circuit, WindowConfig};
