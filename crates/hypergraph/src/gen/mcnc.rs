//! MCNC Partitioning93 benchmark profiles and synthesis.
//!
//! Table 1 of the FPART paper lists, for each of the ten benchmark
//! circuits, the number of primary I/O pads (#IOBs) and the post-mapping
//! CLB count for the Xilinx XC2000 and XC3000 families. The mapped
//! netlists themselves were distributed from `cbl.ncsu.edu` and are no
//! longer available, so [`synthesize_mcnc`] generates a synthetic circuit
//! that matches the published IOB/CLB figures *exactly* and mimics real
//! net structure via the Rent-hierarchy generator
//! ([`super::rent_circuit`]) with per-circuit calibrated parameters.
//!
//! The c-prefixed circuits (ISCAS-85) are combinational; the s-prefixed
//! circuits (ISCAS-89) are sequential. For partitioning purposes only the
//! hypergraph structure matters, and both are synthesized the same way
//! with per-circuit deterministic seeds.

use crate::gen::rent::{rent_circuit, RentConfig};
use crate::graph::Hypergraph;

/// Which Xilinx technology mapping of Table 1 to use for node counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technology {
    /// XC2000-family mapping (used for the XC2064 experiments, Table 5).
    Xc2000,
    /// XC3000-family mapping (used for XC3020/XC3042/XC3090, Tables 2–4).
    Xc3000,
}

impl std::fmt::Display for Technology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Technology::Xc2000 => f.write_str("XC2000"),
            Technology::Xc3000 => f.write_str("XC3000"),
        }
    }
}

/// Published characteristics of one MCNC Partitioning93 benchmark
/// (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McncProfile {
    /// Circuit name (e.g. `"s13207"`).
    pub name: &'static str,
    /// Number of primary I/O pads.
    pub iobs: usize,
    /// CLB count when mapped to the XC2000 family.
    pub clbs_xc2000: usize,
    /// CLB count when mapped to the XC3000 family.
    pub clbs_xc3000: usize,
}

impl McncProfile {
    /// Returns the CLB count for the given technology mapping.
    #[must_use]
    pub fn clbs(&self, tech: Technology) -> usize {
        match tech {
            Technology::Xc2000 => self.clbs_xc2000,
            Technology::Xc3000 => self.clbs_xc3000,
        }
    }
}

/// Paper Table 1, verbatim.
const PROFILES: [McncProfile; 10] = [
    McncProfile { name: "c3540", iobs: 72, clbs_xc2000: 373, clbs_xc3000: 283 },
    McncProfile { name: "c5315", iobs: 301, clbs_xc2000: 535, clbs_xc3000: 377 },
    McncProfile { name: "c6288", iobs: 64, clbs_xc2000: 833, clbs_xc3000: 833 },
    McncProfile { name: "c7552", iobs: 313, clbs_xc2000: 611, clbs_xc3000: 489 },
    McncProfile { name: "s5378", iobs: 86, clbs_xc2000: 500, clbs_xc3000: 381 },
    McncProfile { name: "s9234", iobs: 43, clbs_xc2000: 565, clbs_xc3000: 454 },
    McncProfile { name: "s13207", iobs: 154, clbs_xc2000: 1038, clbs_xc3000: 915 },
    McncProfile { name: "s15850", iobs: 102, clbs_xc2000: 1013, clbs_xc3000: 842 },
    McncProfile { name: "s38417", iobs: 136, clbs_xc2000: 2763, clbs_xc3000: 2221 },
    McncProfile { name: "s38584", iobs: 292, clbs_xc2000: 3956, clbs_xc3000: 2904 },
];

/// Returns the ten benchmark profiles of paper Table 1, in table order.
#[must_use]
pub fn mcnc_profiles() -> &'static [McncProfile] {
    &PROFILES
}

/// Looks up a profile by circuit name.
#[must_use]
pub fn find_profile(name: &str) -> Option<&'static McncProfile> {
    PROFILES.iter().find(|p| p.name == name)
}

/// Synthesizes a circuit matching `profile` under the given technology
/// mapping: exactly `profile.clbs(tech)` unit-size nodes and
/// `profile.iobs` terminals, with Rent's-rule net structure.
///
/// The generator seed is derived from the circuit name and technology so
/// every run of the benchmark harness sees the identical netlist.
#[must_use]
pub fn synthesize_mcnc(profile: &McncProfile, tech: Technology) -> Hypergraph {
    synthesize_mcnc_with_salt(profile, tech, 0)
}

/// Like [`synthesize_mcnc`] with an extra seed salt, producing an
/// alternative netlist sample with the same published characteristics and
/// Rent parameters. Salt 0 is the canonical workload used by all tables;
/// other salts drive the stability study (how sensitive results are to
/// the particular synthetic sample).
#[must_use]
pub fn synthesize_mcnc_with_salt(profile: &McncProfile, tech: Technology, salt: u64) -> Hypergraph {
    let mut config =
        RentConfig::new(format!("{}-{}", profile.name, tech), profile.clbs(tech), profile.iobs);
    let (p, t_xc3000) = rent_parameters(profile.name);
    config.rent_exponent = p;
    // The internal Rent coefficient is calibrated per circuit on the
    // XC3000 mapping; the XC2000 mapping of the *same* circuit has finer
    // cells (more of them), so the coefficient rescales by the mapping
    // ratio to keep T at equivalent logic fractions identical:
    // t₂₀₀₀·(g·r)^p = t₃₀₀₀·g^p  ⇒  t₂₀₀₀ = t₃₀₀₀ / r^p,
    // r = clbs₂₀₀₀/clbs₃₀₀₀.
    let t = match tech {
        Technology::Xc3000 => t_xc3000,
        Technology::Xc2000 => {
            let r = profile.clbs_xc2000 as f64 / profile.clbs_xc3000 as f64;
            t_xc3000 / r.powf(p)
        }
    };
    config.rent_coefficient = Some(t);
    rent_circuit(&config, seed_for(profile.name, tech) ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Per-circuit Rent parameters `(p, t)` of the synthetic MCNC workloads.
///
/// The exponent is 0.62 for ordinary combinational logic, 0.58–0.60 for
/// the large flip-flop-rich sequential circuits (registers give strong
/// locality at scale), and 0.45 for the famously regular c6288
/// multiplier array. The internal coefficient `t` is calibrated so each
/// circuit's I/O-pressure-vs-size trade-off matches the behaviour evident
/// from the *previously published* result columns (k-way.x, PROP, FBB-MW
/// in Tables 2–5): pad-limited c5315/c7552/s5378 are leaky (high `t`,
/// blocks saturate IOBs before CLBs), the large sequential circuits are
/// size-bound (moderate `t`).
fn rent_parameters(name: &str) -> (f64, f64) {
    match name {
        "c3540" => (0.62, 4.2),
        "c5315" => (0.62, 5.4),
        "c6288" => (0.45, 4.0),
        "c7552" => (0.62, 4.3),
        "s5378" => (0.62, 5.2),
        "s9234" => (0.62, 4.0),
        "s13207" => (0.60, 4.3),
        "s15850" => (0.60, 4.2),
        "s38417" => (0.58, 3.95),
        "s38584" => (0.58, 4.05),
        _ => (0.62, 4.2),
    }
}

/// Derives a stable per-circuit seed (FNV-1a over name and technology).
fn seed_for(name: &str, tech: Technology) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes().chain(tech.to_string().bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row_count_and_totals() {
        assert_eq!(mcnc_profiles().len(), 10);
        let total_xc3000: usize = mcnc_profiles().iter().map(|p| p.clbs_xc3000).sum();
        // Sum of the XC3000 column of Table 1.
        assert_eq!(total_xc3000, 283 + 377 + 833 + 489 + 381 + 454 + 915 + 842 + 2221 + 2904);
    }

    #[test]
    fn find_profile_by_name() {
        let p = find_profile("s13207").unwrap();
        assert_eq!(p.iobs, 154);
        assert_eq!(p.clbs(Technology::Xc2000), 1038);
        assert_eq!(p.clbs(Technology::Xc3000), 915);
        assert!(find_profile("nope").is_none());
    }

    #[test]
    fn synthesis_matches_published_counts() {
        for p in mcnc_profiles() {
            for tech in [Technology::Xc2000, Technology::Xc3000] {
                // Skip the two biggest in the loop to keep tests quick, but
                // always check the smallest and c6288 (equal mappings).
                if p.clbs(tech) > 1100 {
                    continue;
                }
                let g = synthesize_mcnc(p, tech);
                assert_eq!(g.node_count(), p.clbs(tech), "{} {}", p.name, tech);
                assert_eq!(g.terminal_count(), p.iobs, "{} {}", p.name, tech);
                assert_eq!(g.total_size(), p.clbs(tech) as u64);
            }
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let p = find_profile("c3540").unwrap();
        let a = synthesize_mcnc(p, Technology::Xc3000);
        let b = synthesize_mcnc(p, Technology::Xc3000);
        assert_eq!(a.net_count(), b.net_count());
        for (na, nb) in a.net_ids().zip(b.net_ids()) {
            assert_eq!(a.pins(na), b.pins(nb));
        }
    }

    #[test]
    fn technologies_get_different_seeds() {
        assert_ne!(seed_for("c3540", Technology::Xc2000), seed_for("c3540", Technology::Xc3000));
        assert_ne!(seed_for("c3540", Technology::Xc3000), seed_for("c5315", Technology::Xc3000));
    }

    #[test]
    fn c6288_maps_identically_in_both_families() {
        let p = find_profile("c6288").unwrap();
        assert_eq!(p.clbs_xc2000, p.clbs_xc3000);
    }
}
