//! Top-down Rent-hierarchy circuit generator.
//!
//! Builds a netlist whose every aligned sub-block of size `g` exposes
//! `T(g) ≈ t · g^p` boundary nets — Rent's rule by construction, not by
//! sampling. This matches how real mapped netlists behave under min-cut
//! partitioning far better than flat span-distribution generators, and is
//! the generator behind the synthetic MCNC workloads.
//!
//! The construction recursively bisects the cell range. A region receives
//! a list of *stubs* — nets that must have at least one pin inside it.
//! At each bisection the two halves receive Rent-rule external-net targets
//! `t·(g/2)^p`; parent stubs are dealt to the halves, and the deficit is
//! made up with fresh nets crossing the bisection (which is exactly what
//! makes the cut of an aligned block `≈ t·g^p`). Leaves resolve stubs to
//! concrete pins and add local two/three-pin nets for internal structure.

use crate::builder::HypergraphBuilder;
use crate::graph::Hypergraph;
use crate::ids::NodeId;
use crate::rng::StdRng;

/// Parameters of the Rent-hierarchy generator.
#[derive(Debug, Clone, PartialEq)]
pub struct RentConfig {
    /// Circuit name recorded on the generated hypergraph.
    pub name: String,
    /// Number of interior nodes.
    pub nodes: usize,
    /// Number of primary terminals; also sets the Rent coefficient via
    /// `t = terminals / nodes^p` (Rent's law applied at chip level).
    pub terminals: usize,
    /// Rent exponent `p ∈ (0, 1)`.
    pub rent_exponent: f64,
    /// Internal Rent coefficient `t`. When `None`, derived from the chip
    /// pin count as `t = terminals / nodes^p`. Pad-limited circuits (many
    /// I/Os relative to logic) sit in Rent "Region II": their chip pin
    /// count over-estimates internal leakiness, so callers modelling such
    /// circuits should set the internal coefficient explicitly.
    pub rent_coefficient: Option<f64>,
    /// Leaf region size at which recursion stops (≥ 2).
    pub leaf_size: usize,
    /// Local (intra-leaf) nets per leaf cell.
    pub local_net_ratio: f64,
}

impl RentConfig {
    /// A realistic logic-netlist configuration for the given node and
    /// terminal counts (`p = 0.65`).
    #[must_use]
    pub fn new(name: impl Into<String>, nodes: usize, terminals: usize) -> Self {
        RentConfig {
            name: name.into(),
            nodes,
            terminals,
            rent_exponent: 0.65,
            rent_coefficient: None,
            leaf_size: 8,
            local_net_ratio: 0.9,
        }
    }
}

/// In-progress net: the pins accumulated so far.
#[derive(Debug, Default)]
struct NetDraft {
    pins: Vec<NodeId>,
}

struct Generator<'c> {
    config: &'c RentConfig,
    rng: StdRng,
    nets: Vec<NetDraft>,
    /// Rent coefficient `t`.
    t: f64,
}

impl Generator<'_> {
    /// Rent target for a region of `g` cells.
    fn target(&self, g: usize) -> usize {
        (self.t * (g as f64).powf(self.config.rent_exponent)).round() as usize
    }

    fn fresh_net(&mut self) -> usize {
        self.nets.push(NetDraft::default());
        self.nets.len() - 1
    }

    /// Recursively wires the region `[lo, hi)` given the nets that must
    /// reach into it.
    fn build(&mut self, lo: usize, hi: usize, stubs: Vec<usize>) {
        let g = hi - lo;
        if g <= self.config.leaf_size.max(2) {
            self.build_leaf(lo, hi, stubs);
            return;
        }
        // Randomized bisection point. The wide band matters: it makes
        // coherent low-boundary regions exist at *many* sizes, as in real
        // designs, rather than only at the power-of-two-ish sizes a
        // balanced bisection would produce.
        let mid = lo + (g as f64 * self.rng.gen_range(0.38..0.62)) as usize;
        let mid = mid.clamp(lo + 1, hi - 1);
        let (gl, gr) = (mid - lo, hi - mid);

        // Deal parent stubs to the halves proportionally to size.
        let mut stubs_l = Vec::new();
        let mut stubs_r = Vec::new();
        let p_left = gl as f64 / g as f64;
        for stub in stubs {
            if self.rng.gen_bool(p_left) {
                stubs_l.push(stub);
            } else {
                stubs_r.push(stub);
            }
        }

        // Fresh nets crossing the bisection. The balanced count
        // C = (T(g_l) + T(g_r) − E) / 2 keeps each child's expected
        // external count exactly on its Rent target: with
        // E = t·g^p dealt proportionally, E_child = E/2 + C = t·(g/2)^p.
        let dealt = stubs_l.len() + stubs_r.len();
        let want = self.target(gl) + self.target(gr);
        let crossings = (want.saturating_sub(dealt) / 2).max(1);
        for _ in 0..crossings {
            let net = self.fresh_net();
            stubs_l.push(net);
            stubs_r.push(net);
        }

        self.build(lo, mid, stubs_l);
        self.build(mid, hi, stubs_r);
    }

    /// Resolves stubs to pins and adds local structure inside a leaf.
    fn build_leaf(&mut self, lo: usize, hi: usize, stubs: Vec<usize>) {
        let g = hi - lo;
        for stub in stubs {
            // 1–2 pins per stub inside this leaf.
            let pins = 1 + usize::from(self.rng.gen_bool(0.3) && g > 1);
            let picks = self.rng.sample_indices(g, pins.min(g));
            for k in picks {
                let node = NodeId::from_index(lo + k);
                if !self.nets[stub].pins.contains(&node) {
                    self.nets[stub].pins.push(node);
                }
            }
        }
        // Local nets: short chains keep the leaf connected, plus random
        // 2–3 pin nets up to the configured ratio.
        if g >= 2 {
            for i in lo..hi - 1 {
                let net = self.fresh_net();
                self.nets[net].pins.push(NodeId::from_index(i));
                self.nets[net].pins.push(NodeId::from_index(i + 1));
            }
            let extra = ((g as f64 * self.config.local_net_ratio) as usize).saturating_sub(g - 1);
            for _ in 0..extra {
                let deg = 2 + usize::from(self.rng.gen_bool(0.4) && g > 2);
                let picks = self.rng.sample_indices(g, deg);
                let net = self.fresh_net();
                for k in picks {
                    self.nets[net].pins.push(NodeId::from_index(lo + k));
                }
            }
        }
    }
}

/// Generates a Rent-hierarchy circuit, deterministically from `seed`.
///
/// The result has exactly `config.nodes` unit-size nodes and
/// `config.terminals` terminals; aligned sub-blocks of size `g` expose
/// `≈ t·g^p` nets where `t = terminals / nodes^p`.
///
/// # Panics
///
/// Panics if `nodes == 0`, `terminals == 0`, or `rent_exponent` is outside
/// `(0, 1)`.
#[must_use]
pub fn rent_circuit(config: &RentConfig, seed: u64) -> Hypergraph {
    assert!(config.nodes > 0, "rent generator needs at least one node");
    assert!(config.terminals > 0, "rent generator needs at least one terminal");
    assert!(
        config.rent_exponent > 0.0 && config.rent_exponent < 1.0,
        "rent exponent must be in (0, 1)"
    );

    let t = config.rent_coefficient.unwrap_or_else(|| {
        config.terminals as f64 / (config.nodes as f64).powf(config.rent_exponent)
    });
    let mut generator = Generator {
        config,
        rng: StdRng::seed_from_u64(seed),
        nets: Vec::with_capacity(config.nodes * 2),
        t,
    };

    // Root stubs: exactly one net per primary terminal.
    let root_stubs: Vec<usize> = (0..config.terminals).map(|_| generator.fresh_net()).collect();
    generator.build(0, config.nodes, root_stubs.clone());

    let mut builder = HypergraphBuilder::named(config.name.clone());
    for i in 0..config.nodes {
        builder.add_node(format!("x{i}"), 1);
    }
    // Map draft index → final NetId (drafts that ended with < 1 pin are
    // dropped; single-pin nets are kept only when terminal-attached).
    let mut final_ids = vec![None; generator.nets.len()];
    let is_root: Vec<bool> = {
        let mut v = vec![false; generator.nets.len()];
        for &s in &root_stubs {
            v[s] = true;
        }
        v
    };
    for (i, draft) in generator.nets.iter().enumerate() {
        let keep = if is_root[i] { !draft.pins.is_empty() } else { draft.pins.len() >= 2 };
        if keep {
            let id = builder
                .add_net(format!("e{i}"), draft.pins.iter().copied())
                .expect("draft pins are distinct valid nodes");
            final_ids[i] = Some(id);
        }
    }
    for (k, &stub) in root_stubs.iter().enumerate() {
        if let Some(net) = final_ids[stub] {
            builder.add_terminal(format!("io{k}"), net).expect("net id from this builder");
        }
    }
    builder.finish().expect("generated netlist is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::rent_exponent;

    #[test]
    fn deterministic() {
        let cfg = RentConfig::new("r", 500, 50);
        let a = rent_circuit(&cfg, 9);
        let b = rent_circuit(&cfg, 9);
        assert_eq!(a.net_count(), b.net_count());
        for (na, nb) in a.net_ids().zip(b.net_ids()) {
            assert_eq!(a.pins(na), b.pins(nb));
        }
    }

    #[test]
    fn respects_counts() {
        let cfg = RentConfig::new("r", 700, 80);
        let g = rent_circuit(&cfg, 4);
        assert_eq!(g.node_count(), 700);
        // Every root stub is dealt into at least one half at every level,
        // so every terminal net reaches a leaf and gets a pin: exact.
        assert_eq!(g.terminal_count(), 80);
    }

    #[test]
    fn aligned_block_cut_follows_rent_target() {
        // For an aligned block of size g, the number of exposed nets
        // should be close to t·g^p.
        let cfg = RentConfig::new("r", 1024, 100);
        let g = rent_circuit(&cfg, 7);
        let t = 100.0 / 1024f64.powf(0.65);
        let block = 128usize;
        let target = t * (block as f64).powf(0.65);
        // Count nets exposed to the aligned block [0, 128).
        let exposed = g
            .net_ids()
            .filter(|&e| {
                let inside = g.pins(e).iter().any(|p| p.index() < block);
                let outside = g.pins(e).iter().any(|p| p.index() >= block) || g.net_has_terminal(e);
                inside && outside
            })
            .count();
        let ratio = exposed as f64 / target;
        assert!((0.5..2.5).contains(&ratio), "exposed {exposed} vs rent target {target:.1}");
    }

    #[test]
    fn estimated_rent_exponent_is_near_configured() {
        let mut cfg = RentConfig::new("r", 2048, 150);
        cfg.rent_exponent = 0.6;
        let g = rent_circuit(&cfg, 3);
        let p = rent_exponent(&g).expect("large enough");
        assert!((0.3..0.9).contains(&p), "estimated {p}");
    }

    #[test]
    fn all_nets_have_valid_arity() {
        let cfg = RentConfig::new("r", 300, 40);
        let g = rent_circuit(&cfg, 11);
        for e in g.net_ids() {
            let pins = g.pins(e).len();
            assert!(pins >= 1);
            if pins == 1 {
                assert!(g.net_has_terminal(e), "floating single-pin net");
            }
        }
    }

    #[test]
    fn leaf_chains_keep_leaves_connected() {
        let cfg = RentConfig::new("r", 64, 8);
        let g = rent_circuit(&cfg, 2);
        let (_, components) = crate::traverse::connected_components(&g);
        // chains within leaves + crossing nets keep everything connected
        assert_eq!(components, 1);
    }

    #[test]
    #[should_panic(expected = "at least one terminal")]
    fn zero_terminals_panics() {
        let cfg = RentConfig::new("r", 10, 0);
        let _ = rent_circuit(&cfg, 0);
    }
}
