//! The immutable hypergraph netlist.

use std::collections::HashMap;
use std::fmt;

use crate::ids::{NetId, NodeId, TerminalId};

/// An immutable circuit hypergraph `H = ({X, Y}, E)`.
///
/// * `X` — interior nodes (logic cells or clusters), each with a positive
///   size in target-technology cells;
/// * `Y` — primary terminals (the circuit's external I/Os), each attached to
///   exactly one net;
/// * `E` — nets (hyperedges) over interior nodes.
///
/// The structure is stored in flat compressed adjacency (net → pins and
/// node → incident nets), which is what the FM/Sanchis gain-update inner
/// loops iterate over. Construct instances with
/// [`HypergraphBuilder`](crate::HypergraphBuilder); the graph itself is
/// immutable so partitioners can share it freely.
///
/// # Example
///
/// ```
/// use fpart_hypergraph::HypergraphBuilder;
///
/// # fn main() -> Result<(), fpart_hypergraph::BuildError> {
/// let mut b = HypergraphBuilder::new();
/// let a = b.add_node("a", 1);
/// let c = b.add_node("c", 3);
/// let n = b.add_net("n", [a, c])?;
/// let h = b.finish()?;
/// assert_eq!(h.pins(n), [a, c]);
/// assert_eq!(h.nets(c), [n]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Hypergraph {
    pub(crate) node_names: Vec<String>,
    pub(crate) node_sizes: Vec<u32>,
    pub(crate) net_names: Vec<String>,
    /// CSR offsets into `net_pins`; length `net_count() + 1`.
    pub(crate) net_pin_offsets: Vec<u32>,
    pub(crate) net_pins: Vec<NodeId>,
    /// CSR offsets into `node_nets`; length `node_count() + 1`.
    pub(crate) node_net_offsets: Vec<u32>,
    pub(crate) node_nets: Vec<NetId>,
    pub(crate) terminal_names: Vec<String>,
    pub(crate) terminal_nets: Vec<NetId>,
    /// CSR offsets into `net_terminals`; length `net_count() + 1`.
    pub(crate) net_terminal_offsets: Vec<u32>,
    pub(crate) net_terminals: Vec<TerminalId>,
    pub(crate) total_size: u64,
    pub(crate) name: String,
}

impl Hypergraph {
    /// Returns the circuit name (empty if none was set).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the number of interior nodes `|X|`.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_sizes.len()
    }

    /// Returns the number of nets `|E|`.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Returns the number of primary terminals `|Y|`.
    #[must_use]
    pub fn terminal_count(&self) -> usize {
        self.terminal_nets.len()
    }

    /// Returns the total circuit size `S₀ = Σ S(xᵢ)`.
    #[must_use]
    pub fn total_size(&self) -> u64 {
        self.total_size
    }

    /// Estimated heap footprint of this graph in bytes: the flat
    /// adjacency arrays plus name storage (`String` buffers counted at
    /// their length plus the struct header). Used by memory budgets to
    /// bound hierarchy construction; an estimate, not an allocator
    /// measurement.
    #[must_use]
    pub fn approx_bytes(&self) -> u64 {
        fn strings(v: &[String]) -> u64 {
            v.iter().map(|s| s.len() as u64 + std::mem::size_of::<String>() as u64).sum()
        }
        fn slice<T>(v: &[T]) -> u64 {
            std::mem::size_of_val(v) as u64
        }
        strings(&self.node_names)
            + strings(&self.net_names)
            + strings(&self.terminal_names)
            + self.name.len() as u64
            + slice(&self.node_sizes)
            + slice(&self.net_pin_offsets)
            + slice(&self.net_pins)
            + slice(&self.node_net_offsets)
            + slice(&self.node_nets)
            + slice(&self.terminal_nets)
            + slice(&self.net_terminal_offsets)
            + slice(&self.net_terminals)
    }

    /// Returns the size `S(x)` of an interior node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for this graph.
    #[inline]
    #[must_use]
    pub fn node_size(&self, node: NodeId) -> u32 {
        self.node_sizes[node.index()]
    }

    /// Returns the name of an interior node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for this graph.
    #[must_use]
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.index()]
    }

    /// Returns the name of a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range for this graph.
    #[must_use]
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.index()]
    }

    /// Returns the name of a terminal.
    ///
    /// # Panics
    ///
    /// Panics if `terminal` is out of range for this graph.
    #[must_use]
    pub fn terminal_name(&self, terminal: TerminalId) -> &str {
        &self.terminal_names[terminal.index()]
    }

    /// Returns the interior-node pins of a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range for this graph.
    #[inline]
    #[must_use]
    pub fn pins(&self, net: NetId) -> &[NodeId] {
        let i = net.index();
        let lo = self.net_pin_offsets[i] as usize;
        let hi = self.net_pin_offsets[i + 1] as usize;
        &self.net_pins[lo..hi]
    }

    /// Returns the nets incident to an interior node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for this graph.
    #[inline]
    #[must_use]
    pub fn nets(&self, node: NodeId) -> &[NetId] {
        let i = node.index();
        let lo = self.node_net_offsets[i] as usize;
        let hi = self.node_net_offsets[i + 1] as usize;
        &self.node_nets[lo..hi]
    }

    /// Returns the terminals attached to a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range for this graph.
    #[inline]
    #[must_use]
    pub fn net_terminals(&self, net: NetId) -> &[TerminalId] {
        let i = net.index();
        let lo = self.net_terminal_offsets[i] as usize;
        let hi = self.net_terminal_offsets[i + 1] as usize;
        &self.net_terminals[lo..hi]
    }

    /// Returns the number of terminals attached to a net without
    /// materializing the slice.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range for this graph.
    #[inline]
    #[must_use]
    pub fn net_terminal_count(&self, net: NetId) -> usize {
        self.net_terminals(net).len()
    }

    /// Returns `true` if the net is attached to at least one primary
    /// terminal. Such nets always require an I/O block on every device they
    /// touch, regardless of how the interior nodes are partitioned.
    #[inline]
    #[must_use]
    pub fn net_has_terminal(&self, net: NetId) -> bool {
        self.net_terminal_count(net) > 0
    }

    /// Returns the net a terminal is attached to.
    ///
    /// # Panics
    ///
    /// Panics if `terminal` is out of range for this graph.
    #[inline]
    #[must_use]
    pub fn terminal_net(&self, terminal: TerminalId) -> NetId {
        self.terminal_nets[terminal.index()]
    }

    /// Iterates over all interior node ids.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (0..self.node_count()).map(NodeId::from_index)
    }

    /// Iterates over all net ids.
    pub fn net_ids(&self) -> impl ExactSizeIterator<Item = NetId> + Clone {
        (0..self.net_count()).map(NetId::from_index)
    }

    /// Iterates over all terminal ids.
    pub fn terminal_ids(&self) -> impl ExactSizeIterator<Item = TerminalId> + Clone {
        (0..self.terminal_count()).map(TerminalId::from_index)
    }

    /// Returns the maximum number of nets incident to any single node.
    ///
    /// FM gain values are bounded by this quantity, so gain-bucket arrays
    /// are dimensioned from it.
    #[must_use]
    pub fn max_node_degree(&self) -> usize {
        (0..self.node_count())
            .map(|i| self.node_net_offsets[i + 1] as usize - self.node_net_offsets[i] as usize)
            .max()
            .unwrap_or(0)
    }

    /// Returns the maximum number of interior pins on any single net.
    #[must_use]
    pub fn max_net_degree(&self) -> usize {
        (0..self.net_count())
            .map(|i| self.net_pin_offsets[i + 1] as usize - self.net_pin_offsets[i] as usize)
            .max()
            .unwrap_or(0)
    }

    /// Returns the total number of (net, node) pin pairs.
    #[must_use]
    pub fn pin_count(&self) -> usize {
        self.net_pins.len()
    }

    /// Looks up an interior node by name.
    ///
    /// This is a linear scan intended for tests and small examples; index
    /// the names yourself if you need repeated lookups.
    #[must_use]
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_names.iter().position(|n| n == name).map(NodeId::from_index)
    }

    /// Looks up a net by name (linear scan; see [`Self::find_node`]).
    #[must_use]
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_names.iter().position(|n| n == name).map(NetId::from_index)
    }

    /// Builds a name → node index for repeated lookups.
    #[must_use]
    pub fn node_index_by_name(&self) -> HashMap<&str, NodeId> {
        self.node_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), NodeId::from_index(i)))
            .collect()
    }
}

impl fmt::Debug for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hypergraph")
            .field("name", &self.name)
            .field("nodes", &self.node_count())
            .field("nets", &self.net_count())
            .field("terminals", &self.terminal_count())
            .field("pins", &self.pin_count())
            .field("total_size", &self.total_size)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::HypergraphBuilder;

    fn tiny() -> crate::Hypergraph {
        let mut b = HypergraphBuilder::named("tiny");
        let a = b.add_node("a", 1);
        let c = b.add_node("c", 2);
        let d = b.add_node("d", 3);
        let n0 = b.add_net("n0", [a, c]).unwrap();
        let _n1 = b.add_net("n1", [a, c, d]).unwrap();
        b.add_terminal("t0", n0).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn counts_and_sizes() {
        let h = tiny();
        assert_eq!(h.node_count(), 3);
        assert_eq!(h.net_count(), 2);
        assert_eq!(h.terminal_count(), 1);
        assert_eq!(h.total_size(), 6);
        assert_eq!(h.pin_count(), 5);
        assert_eq!(h.name(), "tiny");
    }

    #[test]
    fn adjacency_is_consistent_both_ways() {
        let h = tiny();
        for net in h.net_ids() {
            for &pin in h.pins(net) {
                assert!(h.nets(pin).contains(&net));
            }
        }
        for node in h.node_ids() {
            for &net in h.nets(node) {
                assert!(h.pins(net).contains(&node));
            }
        }
    }

    #[test]
    fn terminals_attach_to_their_net() {
        let h = tiny();
        let t = h.terminal_ids().next().unwrap();
        let net = h.terminal_net(t);
        assert!(h.net_has_terminal(net));
        assert_eq!(h.net_terminals(net), [t]);
        assert_eq!(h.terminal_name(t), "t0");
    }

    #[test]
    fn degrees() {
        let h = tiny();
        assert_eq!(h.max_node_degree(), 2); // a and c are on two nets
        assert_eq!(h.max_net_degree(), 3); // n1 has three pins
    }

    #[test]
    fn name_lookups() {
        let h = tiny();
        assert_eq!(h.find_node("d").map(|n| n.index()), Some(2));
        assert_eq!(h.find_node("zz"), None);
        assert!(h.find_net("n1").is_some());
        let idx = h.node_index_by_name();
        assert_eq!(idx["a"].index(), 0);
    }

    #[test]
    fn debug_is_nonempty() {
        let h = tiny();
        let s = format!("{h:?}");
        assert!(s.contains("Hypergraph"));
        assert!(s.contains("tiny"));
    }

    #[test]
    fn graph_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::Hypergraph>();
    }
}
