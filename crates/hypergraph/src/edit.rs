//! Netlist edit scripts: typed edit operations, a JSON-Lines
//! serialization, and [`apply_script`] — the substrate of incremental
//! (ECO) repartitioning.
//!
//! Real FPGA flows repartition near-identical designs on every design
//! spin; shipping the *difference* as a script of [`EditOp`]s lets the
//! partitioner repair an existing solution instead of rebuilding it.
//! A script is a sequence of operations applied in order:
//!
//! ```text
//! {"op": "add_node", "name": "u901", "size": 2}
//! {"op": "add_net", "name": "n_eco", "pins": ["u901", "u17"]}
//! {"op": "remove_node", "name": "u44"}
//! {"op": "resize_node", "name": "u12", "size": 3}
//! {"op": "connect_pin", "net": "n3", "node": "u901"}
//! {"op": "disconnect_pin", "net": "n3", "name_does_not_matter": ...}
//! ```
//!
//! One JSON object per line, parsed by a dependency-free scanner that
//! reports **typed errors with exact line and column** — the same
//! contract as the `.fhg`/`.hgr`/BLIF parsers ([`ParseNetlistError`]):
//! the CLI prints these verbatim, so locations are part of the format.
//!
//! [`apply_script`] produces the edited [`Hypergraph`] plus the
//! old→new [`NodeId`] mapping an ECO driver needs to carry surviving
//! block assignments over. Semantics worth knowing:
//!
//! * removing a node disconnects it everywhere; a net left with **no
//!   pins** is removed too (with its terminals) — an empty net has no
//!   meaning to any algorithm;
//! * surviving nodes keep their relative order (new nodes append), so
//!   the mapping is monotonic on survivors;
//! * every reference is validated against the *current* state of the
//!   edited netlist, and a dangling or duplicate reference is a typed
//!   [`ApplyEditError`] carrying the script line of the offending op.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::io::{Read, Write};

use crate::builder::HypergraphBuilder;
use crate::error::BuildError;
use crate::fingerprint;
use crate::graph::Hypergraph;
use crate::ids::NodeId;

/// One netlist edit operation. All references are by name, the stable
/// identity across netlist revisions (ids are dense and shift on every
/// edit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditOp {
    /// Adds an interior node. The size must be positive.
    AddNode {
        /// Name of the new node (must not clash with a live node).
        name: String,
        /// Its size in logic cells.
        size: u32,
    },
    /// Removes a node and disconnects it from every net; nets left
    /// without pins are removed too (with their terminals).
    RemoveNode {
        /// Name of the node to remove.
        name: String,
    },
    /// Changes a node's size. The new size must be positive.
    ResizeNode {
        /// Name of the node to resize.
        name: String,
        /// The new size.
        size: u32,
    },
    /// Adds a net over the named pins (at least one, no duplicates).
    AddNet {
        /// Name of the new net (must not clash with a live net).
        name: String,
        /// Names of the interior nodes it connects.
        pins: Vec<String>,
    },
    /// Removes a net and its terminals.
    RemoveNet {
        /// Name of the net to remove.
        name: String,
    },
    /// Adds an existing node as a pin of an existing net.
    ConnectPin {
        /// Name of the net.
        net: String,
        /// Name of the node to connect.
        node: String,
    },
    /// Removes a pin from a net; a net left without pins is removed
    /// (with its terminals).
    DisconnectPin {
        /// Name of the net.
        net: String,
        /// Name of the node to disconnect.
        node: String,
    },
}

impl EditOp {
    /// The stable `snake_case` name of this operation in the JSON-Lines
    /// form.
    #[must_use]
    pub fn op_name(&self) -> &'static str {
        match self {
            EditOp::AddNode { .. } => "add_node",
            EditOp::RemoveNode { .. } => "remove_node",
            EditOp::ResizeNode { .. } => "resize_node",
            EditOp::AddNet { .. } => "add_net",
            EditOp::RemoveNet { .. } => "remove_net",
            EditOp::ConnectPin { .. } => "connect_pin",
            EditOp::DisconnectPin { .. } => "disconnect_pin",
        }
    }
}

/// One parsed operation with the script line it came from, so
/// application errors can point back at the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptedOp {
    /// 1-based line number in the script file.
    pub line: usize,
    /// The operation.
    pub op: EditOp,
}

/// An ordered netlist edit script — the unit [`apply_script`] consumes
/// and the JSON-Lines reader/writer round-trips.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EditScript {
    /// The operations, in application order.
    pub ops: Vec<ScriptedOp>,
}

/// An error while parsing the JSON-Lines edit-script format. Every
/// variant carries the 1-based line; token-level variants also carry
/// the 1-based column (in characters) where the offending token starts.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseEditError {
    /// A token was present but not what the grammar requires there.
    InvalidToken {
        /// 1-based line number.
        line: usize,
        /// 1-based column (in characters) where the token starts.
        column: usize,
        /// Description of what was expected.
        expected: &'static str,
        /// The offending token text.
        found: String,
    },
    /// The line ended while the object was still open (truncated).
    UnexpectedEnd {
        /// 1-based line number.
        line: usize,
        /// Description of what was still expected.
        expected: &'static str,
    },
    /// The `op` field named no known operation.
    UnknownOp {
        /// 1-based line number.
        line: usize,
        /// 1-based column of the op value.
        column: usize,
        /// The unrecognized operation name.
        op: String,
    },
    /// A field does not belong to the line's operation (or appeared
    /// twice).
    UnknownField {
        /// 1-based line number.
        line: usize,
        /// 1-based column of the field name.
        column: usize,
        /// The offending field name.
        field: String,
    },
    /// A required field of the operation is absent.
    MissingField {
        /// 1-based line number.
        line: usize,
        /// The operation missing it.
        op: String,
        /// The absent field.
        field: &'static str,
    },
    /// A line contained bytes that are not valid UTF-8.
    NotUtf8 {
        /// 1-based line number.
        line: usize,
    },
    /// The reader failed before the line could be inspected.
    Io {
        /// 1-based line number where reading failed.
        line: usize,
    },
    /// The script asked for more resources than the configured
    /// [`crate::ParseLimits`] allow.
    LimitExceeded {
        /// 1-based line number.
        line: usize,
        /// 1-based column (in characters) of the offending token.
        column: usize,
        /// Which limit was exceeded (e.g. `"name length"`).
        what: &'static str,
        /// The configured maximum.
        limit: usize,
    },
}

impl fmt::Display for ParseEditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseEditError::InvalidToken { line, column, expected, found } => {
                write!(f, "line {line}, column {column}: expected {expected}, found `{found}`")
            }
            ParseEditError::UnexpectedEnd { line, expected } => {
                write!(f, "line {line}: line ended but {expected} was still expected")
            }
            ParseEditError::UnknownOp { line, column, op } => {
                write!(f, "line {line}, column {column}: unknown edit operation `{op}`")
            }
            ParseEditError::UnknownField { line, column, field } => {
                write!(f, "line {line}, column {column}: unexpected field `{field}`")
            }
            ParseEditError::MissingField { line, op, field } => {
                write!(f, "line {line}: operation `{op}` is missing field `{field}`")
            }
            ParseEditError::NotUtf8 { line } => write!(f, "line {line}: not valid UTF-8"),
            ParseEditError::Io { line } => write!(f, "line {line}: read failed"),
            ParseEditError::LimitExceeded { line, column, what, limit } => {
                write!(f, "line {line}, column {column}: {what} exceeds limit of {limit}")
            }
        }
    }
}

impl Error for ParseEditError {}

/// An error while applying an [`EditScript`] to a [`Hypergraph`].
/// Every reference is validated against the current state of the
/// edited netlist; the `line` is the script line of the offending op.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ApplyEditError {
    /// An op referenced a node that does not exist (never did, or was
    /// removed earlier in the script).
    UnknownNode {
        /// Script line of the offending op.
        line: usize,
        /// The dangling node name.
        name: String,
    },
    /// An op referenced a net that does not exist.
    UnknownNet {
        /// Script line of the offending op.
        line: usize,
        /// The dangling net name.
        name: String,
    },
    /// `add_node` would duplicate a live node name.
    DuplicateNode {
        /// Script line of the offending op.
        line: usize,
        /// The clashing name.
        name: String,
    },
    /// `add_net` would duplicate a live net name.
    DuplicateNet {
        /// Script line of the offending op.
        line: usize,
        /// The clashing name.
        name: String,
    },
    /// `connect_pin` (or an `add_net` pin list) names a node that is
    /// already a pin of the net.
    DuplicatePin {
        /// Script line of the offending op.
        line: usize,
        /// The net.
        net: String,
        /// The node listed twice.
        node: String,
    },
    /// `disconnect_pin` names a node that is not a pin of the net.
    MissingPin {
        /// Script line of the offending op.
        line: usize,
        /// The net.
        net: String,
        /// The node that is not connected.
        node: String,
    },
    /// `add_net` listed no pins.
    EmptyNet {
        /// Script line of the offending op.
        line: usize,
        /// Name of the net.
        net: String,
    },
    /// `add_node`/`resize_node` gave a zero size.
    ZeroSize {
        /// Script line of the offending op.
        line: usize,
        /// Name of the node.
        name: String,
    },
    /// The edited netlist failed final structural validation.
    Build(BuildError),
}

impl fmt::Display for ApplyEditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyEditError::UnknownNode { line, name } => {
                write!(f, "line {line}: reference to unknown node `{name}`")
            }
            ApplyEditError::UnknownNet { line, name } => {
                write!(f, "line {line}: reference to unknown net `{name}`")
            }
            ApplyEditError::DuplicateNode { line, name } => {
                write!(f, "line {line}: node `{name}` already exists")
            }
            ApplyEditError::DuplicateNet { line, name } => {
                write!(f, "line {line}: net `{name}` already exists")
            }
            ApplyEditError::DuplicatePin { line, net, node } => {
                write!(f, "line {line}: net `{net}` already has pin `{node}`")
            }
            ApplyEditError::MissingPin { line, net, node } => {
                write!(f, "line {line}: net `{net}` has no pin `{node}`")
            }
            ApplyEditError::EmptyNet { line, net } => {
                write!(f, "line {line}: net `{net}` has no pins")
            }
            ApplyEditError::ZeroSize { line, name } => {
                write!(f, "line {line}: node `{name}` would have size zero")
            }
            ApplyEditError::Build(e) => write!(f, "edited netlist validation failed: {e}"),
        }
    }
}

impl Error for ApplyEditError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ApplyEditError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildError> for ApplyEditError {
    fn from(e: BuildError) -> Self {
        ApplyEditError::Build(e)
    }
}

/// Result of [`apply_script`]: the edited graph plus the old→new node
/// mapping.
#[derive(Debug, Clone)]
pub struct EditApplied {
    /// The edited hypergraph.
    pub graph: Hypergraph,
    /// `node_map[old.index()]` is the node's id in the edited graph, or
    /// `None` when the script removed it. Monotonic on survivors (the
    /// relative order of surviving nodes is preserved; new nodes get
    /// the ids after the last survivor).
    pub node_map: Vec<Option<NodeId>>,
    /// Nodes the script added.
    pub added_nodes: usize,
    /// Nodes the script removed.
    pub removed_nodes: usize,
    /// XOR-delta of the graph [`Fingerprint`](crate::Fingerprint):
    /// `fingerprint_graph(old) ^ fingerprint_delta ==
    /// fingerprint_graph(new)`. Maintained in O(edit) by
    /// [`apply_script`], so callers tracking an incremental fingerprint
    /// advance it without rehashing the edited graph; a debug assertion
    /// checks the identity against the from-scratch recompute.
    pub fingerprint_delta: crate::Fingerprint,
}

impl EditScript {
    /// Wraps plain operations, numbering them as lines `1..` (the shape
    /// a programmatically built script has after a JSONL round-trip).
    #[must_use]
    pub fn new(ops: Vec<EditOp>) -> Self {
        EditScript {
            ops: ops
                .into_iter()
                .enumerate()
                .map(|(i, op)| ScriptedOp { line: i + 1, op })
                .collect(),
        }
    }

    /// Number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the script has no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Parses the JSON-Lines form. Blank lines and lines starting with
    /// `#` are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`ParseEditError`] with exact line/column context.
    pub fn parse(text: &str) -> Result<Self, ParseEditError> {
        Self::parse_limited(text, &crate::ParseLimits::default())
    }

    /// Parses the JSON-Lines form with explicit resource limits: line
    /// length, name length (with the column of the offending token),
    /// and total op count (capped at `max_nodes + max_nets`).
    ///
    /// # Errors
    ///
    /// See [`EditScript::parse`]; limit violations are
    /// [`ParseEditError::LimitExceeded`].
    pub fn parse_limited(text: &str, limits: &crate::ParseLimits) -> Result<Self, ParseEditError> {
        let max_ops = limits.max_nodes.saturating_add(limits.max_nets);
        let mut ops = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            if raw.len() > limits.max_line_len {
                return Err(ParseEditError::LimitExceeded {
                    line: line_no,
                    column: limits.max_line_len + 1,
                    what: "line length",
                    limit: limits.max_line_len,
                });
            }
            if let Some(op) = parse_line_limited(raw, line_no, limits)? {
                if ops.len() >= max_ops {
                    return Err(ParseEditError::LimitExceeded {
                        line: line_no,
                        column: 1,
                        what: "edit op count",
                        limit: max_ops,
                    });
                }
                ops.push(ScriptedOp { line: line_no, op });
            }
        }
        Ok(EditScript { ops })
    }

    /// Reads the JSON-Lines form from any reader, reporting non-UTF-8
    /// bytes as a typed error with the line they occur on.
    ///
    /// # Errors
    ///
    /// Returns [`ParseEditError`]; I/O failures map to
    /// [`ParseEditError::Io`] with the line where reading stopped.
    pub fn read<R: Read>(reader: R) -> Result<Self, ParseEditError> {
        Self::read_limited(reader, &crate::ParseLimits::default())
    }

    /// Reads the JSON-Lines form from any reader with explicit resource
    /// limits.
    ///
    /// # Errors
    ///
    /// See [`EditScript::read`] and [`EditScript::parse_limited`].
    pub fn read_limited<R: Read>(
        mut reader: R,
        limits: &crate::ParseLimits,
    ) -> Result<Self, ParseEditError> {
        let max_ops = limits.max_nodes.saturating_add(limits.max_nets);
        let mut bytes = Vec::new();
        let mut read_so_far = 0usize;
        if reader.read_to_end(&mut bytes).is_err() {
            // Count the lines that did arrive so the location is honest.
            read_so_far = bytes.iter().filter(|&&b| b == b'\n').count();
            return Err(ParseEditError::Io { line: read_so_far + 1 });
        }
        let _ = read_so_far;
        let mut ops = Vec::new();
        for (idx, raw) in bytes.split(|&b| b == b'\n').enumerate() {
            let line_no = idx + 1;
            let raw = raw.strip_suffix(b"\r").unwrap_or(raw);
            if raw.len() > limits.max_line_len {
                return Err(ParseEditError::LimitExceeded {
                    line: line_no,
                    column: limits.max_line_len + 1,
                    what: "line length",
                    limit: limits.max_line_len,
                });
            }
            let text =
                std::str::from_utf8(raw).map_err(|_| ParseEditError::NotUtf8 { line: line_no })?;
            if let Some(op) = parse_line_limited(text, line_no, limits)? {
                if ops.len() >= max_ops {
                    return Err(ParseEditError::LimitExceeded {
                        line: line_no,
                        column: 1,
                        what: "edit op count",
                        limit: max_ops,
                    });
                }
                ops.push(ScriptedOp { line: line_no, op });
            }
        }
        Ok(EditScript { ops })
    }

    /// Serializes as JSON Lines, one op per line (the exact form
    /// [`EditScript::parse`] reads back).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for scripted in &self.ops {
            write_op(&mut out, &scripted.op);
            out.push('\n');
        }
        out
    }

    /// Writes the JSON-Lines form (pass `&mut writer` to keep the
    /// writer).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        writer.write_all(self.to_jsonl().as_bytes())
    }
}

// ---------------------------------------------------------------------------
// JSON-Lines writer

fn write_json_str(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_op(out: &mut String, op: &EditOp) {
    use std::fmt::Write as _;
    let _ = write!(out, "{{\"op\": \"{}\"", op.op_name());
    match op {
        EditOp::AddNode { name, size } | EditOp::ResizeNode { name, size } => {
            out.push_str(", \"name\": ");
            write_json_str(out, name);
            let _ = write!(out, ", \"size\": {size}");
        }
        EditOp::RemoveNode { name } | EditOp::RemoveNet { name } => {
            out.push_str(", \"name\": ");
            write_json_str(out, name);
        }
        EditOp::AddNet { name, pins } => {
            out.push_str(", \"name\": ");
            write_json_str(out, name);
            out.push_str(", \"pins\": [");
            for (i, pin) in pins.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_json_str(out, pin);
            }
            out.push(']');
        }
        EditOp::ConnectPin { net, node } | EditOp::DisconnectPin { net, node } => {
            out.push_str(", \"net\": ");
            write_json_str(out, net);
            out.push_str(", \"node\": ");
            write_json_str(out, node);
        }
    }
    out.push('}');
}

// ---------------------------------------------------------------------------
// JSON-Lines parser

/// One collected field of a line object: its starting column and value.
enum FieldValue {
    Str(String),
    Num(u32),
    Arr(Vec<String>),
}

struct Scanner {
    chars: Vec<char>,
    pos: usize,
    line: usize,
}

impl Scanner {
    fn new(text: &str, line: usize) -> Self {
        Scanner { chars: text.chars().collect(), pos: 0, line }
    }

    /// 1-based column of the next character.
    fn column(&self) -> usize {
        self.pos + 1
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t')) {
            self.pos += 1;
        }
    }

    /// The run of characters a human would read as "the token here" —
    /// for error messages only.
    fn token_text(&self) -> String {
        let stop = |c: char| c.is_whitespace() || matches!(c, ',' | ':' | '}' | ']' | '{' | '[');
        self.chars[self.pos..].iter().take_while(|&&c| !stop(c)).take(32).collect()
    }

    fn expect_char(&mut self, want: char, expected: &'static str) -> Result<(), ParseEditError> {
        self.skip_ws();
        match self.peek() {
            Some(c) if c == want => {
                self.pos += 1;
                Ok(())
            }
            Some(c) => Err(ParseEditError::InvalidToken {
                line: self.line,
                column: self.column(),
                expected,
                found: if self.token_text().is_empty() { c.to_string() } else { self.token_text() },
            }),
            None => Err(ParseEditError::UnexpectedEnd { line: self.line, expected }),
        }
    }

    /// Parses a JSON string literal; returns (value, start column).
    fn parse_string(&mut self, expected: &'static str) -> Result<(String, usize), ParseEditError> {
        self.skip_ws();
        let start = self.column();
        match self.peek() {
            Some('"') => {}
            Some(_) => {
                return Err(ParseEditError::InvalidToken {
                    line: self.line,
                    column: start,
                    expected,
                    found: self.token_text(),
                })
            }
            None => return Err(ParseEditError::UnexpectedEnd { line: self.line, expected }),
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => {
                    return Err(ParseEditError::UnexpectedEnd {
                        line: self.line,
                        expected: "closing `\"`",
                    })
                }
                Some('"') => return Ok((out, start)),
                Some('\\') => {
                    let esc_col = self.column() - 1;
                    match self.bump() {
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some('/') => out.push('/'),
                        Some('n') => out.push('\n'),
                        Some('r') => out.push('\r'),
                        Some('t') => out.push('\t'),
                        Some('u') => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let Some(d) = self.bump().and_then(|c| c.to_digit(16)) else {
                                    return Err(ParseEditError::InvalidToken {
                                        line: self.line,
                                        column: esc_col,
                                        expected: "four hex digits after \\u",
                                        found: "\\u".into(),
                                    });
                                };
                                code = code * 16 + d;
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        Some(c) => {
                            return Err(ParseEditError::InvalidToken {
                                line: self.line,
                                column: esc_col,
                                expected: "string escape",
                                found: format!("\\{c}"),
                            })
                        }
                        None => {
                            return Err(ParseEditError::UnexpectedEnd {
                                line: self.line,
                                expected: "string escape",
                            })
                        }
                    }
                }
                Some(c) => out.push(c),
            }
        }
    }

    /// Parses an unsigned integer token.
    fn parse_u32(&mut self, expected: &'static str) -> Result<u32, ParseEditError> {
        self.skip_ws();
        let start = self.column();
        if self.peek().is_none() {
            return Err(ParseEditError::UnexpectedEnd { line: self.line, expected });
        }
        let token = self.token_text();
        if token.is_empty() || !token.chars().all(|c| c.is_ascii_digit()) {
            return Err(ParseEditError::InvalidToken {
                line: self.line,
                column: start,
                expected,
                found: if token.is_empty() {
                    self.peek().map(|c| c.to_string()).unwrap_or_default()
                } else {
                    token
                },
            });
        }
        let value: u32 = token.parse().map_err(|_| ParseEditError::InvalidToken {
            line: self.line,
            column: start,
            expected,
            found: token.clone(),
        })?;
        self.pos += token.chars().count();
        Ok(value)
    }

    fn parse_string_array(&mut self) -> Result<Vec<String>, ParseEditError> {
        self.expect_char('[', "`[` opening the pin list")?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            let (s, _) = self.parse_string("a quoted pin name")?;
            out.push(s);
            self.skip_ws();
            match self.bump() {
                Some(',') => {}
                Some(']') => return Ok(out),
                Some(_) => {
                    return Err(ParseEditError::InvalidToken {
                        line: self.line,
                        column: self.column() - 1,
                        expected: "`,` or `]` in the pin list",
                        found: self.chars[self.pos - 1].to_string(),
                    })
                }
                None => {
                    return Err(ParseEditError::UnexpectedEnd {
                        line: self.line,
                        expected: "`]` closing the pin list",
                    })
                }
            }
        }
    }
}

/// Parses one script line into an op; `Ok(None)` for blank and `#`
/// comment lines.
fn parse_line_limited(
    raw: &str,
    line: usize,
    limits: &crate::ParseLimits,
) -> Result<Option<EditOp>, ParseEditError> {
    let trimmed = raw.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let mut s = Scanner::new(raw, line);
    s.expect_char('{', "`{` opening the operation object")?;

    let mut fields: Vec<(String, usize, FieldValue)> = Vec::new();
    loop {
        let (key, key_col) = s.parse_string("a quoted field name")?;
        s.expect_char(':', "`:` after the field name")?;
        let value = match key.as_str() {
            "op" | "name" | "net" | "node" => {
                let (v, col) = s.parse_string("a quoted string value")?;
                if v.len() > limits.max_name_len {
                    return Err(ParseEditError::LimitExceeded {
                        line,
                        column: col,
                        what: "name length",
                        limit: limits.max_name_len,
                    });
                }
                FieldValue::Str(v)
            }
            "size" => FieldValue::Num(s.parse_u32("an unsigned size")?),
            "pins" => {
                let pins = s.parse_string_array()?;
                for pin in &pins {
                    if pin.len() > limits.max_name_len {
                        return Err(ParseEditError::LimitExceeded {
                            line,
                            column: key_col,
                            what: "name length",
                            limit: limits.max_name_len,
                        });
                    }
                }
                FieldValue::Arr(pins)
            }
            _ => {
                return Err(ParseEditError::UnknownField { line, column: key_col, field: key });
            }
        };
        if fields.iter().any(|(k, _, _)| *k == key) {
            return Err(ParseEditError::UnknownField { line, column: key_col, field: key });
        }
        fields.push((key, key_col, value));
        s.skip_ws();
        match s.bump() {
            Some(',') => {}
            Some('}') => break,
            Some(c) => {
                return Err(ParseEditError::InvalidToken {
                    line,
                    column: s.column() - 1,
                    expected: "`,` or `}` in the operation object",
                    found: c.to_string(),
                })
            }
            None => {
                return Err(ParseEditError::UnexpectedEnd {
                    line,
                    expected: "`}` closing the operation object",
                })
            }
        }
    }
    s.skip_ws();
    if let Some(c) = s.peek() {
        return Err(ParseEditError::InvalidToken {
            line,
            column: s.column(),
            expected: "end of line after the operation object",
            found: c.to_string(),
        });
    }

    assemble_op(line, fields)
}

/// Validates the collected fields against the named op's shape.
#[allow(clippy::too_many_lines)]
fn assemble_op(
    line: usize,
    fields: Vec<(String, usize, FieldValue)>,
) -> Result<Option<EditOp>, ParseEditError> {
    let mut op: Option<(String, usize)> = None;
    let mut name: Option<String> = None;
    let mut size: Option<u32> = None;
    let mut pins: Option<Vec<String>> = None;
    let mut net: Option<String> = None;
    let mut node: Option<String> = None;
    let mut columns: HashMap<&'static str, usize> = HashMap::new();
    for (key, col, value) in fields {
        match (key.as_str(), value) {
            ("op", FieldValue::Str(v)) => {
                // parse_string returned the key's column; the value sits
                // after `": "`, but the key column is the stable anchor
                // users see, so record the value's approximate start.
                op = Some((v, col));
            }
            ("name", FieldValue::Str(v)) => {
                columns.insert("name", col);
                name = Some(v);
            }
            ("size", FieldValue::Num(v)) => {
                columns.insert("size", col);
                size = Some(v);
            }
            ("pins", FieldValue::Arr(v)) => {
                columns.insert("pins", col);
                pins = Some(v);
            }
            ("net", FieldValue::Str(v)) => {
                columns.insert("net", col);
                net = Some(v);
            }
            ("node", FieldValue::Str(v)) => {
                columns.insert("node", col);
                node = Some(v);
            }
            _ => unreachable!("field values are typed at parse time"),
        }
    }
    let Some((op_name, op_col)) = op else {
        return Err(ParseEditError::MissingField { line, op: "?".into(), field: "op" });
    };

    // Which fields each op allows; anything else present is an error.
    let allowed: &[&str] = match op_name.as_str() {
        "add_node" | "resize_node" => &["name", "size"],
        "remove_node" | "remove_net" => &["name"],
        "add_net" => &["name", "pins"],
        "connect_pin" | "disconnect_pin" => &["net", "node"],
        _ => return Err(ParseEditError::UnknownOp { line, column: op_col, op: op_name }),
    };
    for (field, col) in [
        ("name", columns.get("name")),
        ("size", columns.get("size")),
        ("pins", columns.get("pins")),
        ("net", columns.get("net")),
        ("node", columns.get("node")),
    ] {
        if let Some(&col) = col {
            if !allowed.contains(&field) {
                return Err(ParseEditError::UnknownField {
                    line,
                    column: col,
                    field: field.to_owned(),
                });
            }
        }
    }
    let require_name = |name: Option<String>| {
        name.ok_or(ParseEditError::MissingField { line, op: op_name.clone(), field: "name" })
    };
    let result = match op_name.as_str() {
        "add_node" => EditOp::AddNode {
            name: require_name(name)?,
            size: size.ok_or(ParseEditError::MissingField {
                line,
                op: op_name.clone(),
                field: "size",
            })?,
        },
        "remove_node" => EditOp::RemoveNode { name: require_name(name)? },
        "resize_node" => EditOp::ResizeNode {
            name: require_name(name)?,
            size: size.ok_or(ParseEditError::MissingField {
                line,
                op: op_name.clone(),
                field: "size",
            })?,
        },
        "add_net" => EditOp::AddNet {
            name: require_name(name)?,
            pins: pins.ok_or(ParseEditError::MissingField {
                line,
                op: op_name.clone(),
                field: "pins",
            })?,
        },
        "remove_net" => EditOp::RemoveNet { name: require_name(name)? },
        "connect_pin" | "disconnect_pin" => {
            let net = net.ok_or(ParseEditError::MissingField {
                line,
                op: op_name.clone(),
                field: "net",
            })?;
            let node = node.ok_or(ParseEditError::MissingField {
                line,
                op: op_name.clone(),
                field: "node",
            })?;
            if op_name == "connect_pin" {
                EditOp::ConnectPin { net, node }
            } else {
                EditOp::DisconnectPin { net, node }
            }
        }
        _ => unreachable!("unknown ops rejected above"),
    };
    Ok(Some(result))
}

// ---------------------------------------------------------------------------
// Application

struct NodeSlot {
    name: String,
    size: u32,
    alive: bool,
    /// Live net slots this node pins (kept in sync by every op).
    nets: Vec<usize>,
}

struct NetSlot {
    name: String,
    pins: Vec<usize>,
    terminals: Vec<String>,
    alive: bool,
}

/// Applies a script to a graph, producing the edited graph and the
/// old→new node mapping.
///
/// Removing a node disconnects it from every net; nets left with no
/// pins are removed too, together with their terminals (an empty net
/// has no meaning to any algorithm). Surviving nodes keep their
/// relative order and new nodes append after them, so the mapping is
/// monotonic on survivors.
///
/// # Errors
///
/// Returns [`ApplyEditError`] with the script line of the first
/// offending op; the input graph is never modified (it is immutable).
#[allow(clippy::too_many_lines)]
pub fn apply_script(
    graph: &Hypergraph,
    script: &EditScript,
) -> Result<EditApplied, ApplyEditError> {
    let mut nodes: Vec<NodeSlot> = graph
        .node_ids()
        .map(|v| NodeSlot {
            name: graph.node_name(v).to_owned(),
            size: graph.node_size(v),
            alive: true,
            nets: graph.nets(v).iter().map(|e| e.index()).collect(),
        })
        .collect();
    let mut nets: Vec<NetSlot> = graph
        .net_ids()
        .map(|e| NetSlot {
            name: graph.net_name(e).to_owned(),
            pins: graph.pins(e).iter().map(|v| v.index()).collect(),
            terminals: graph
                .net_terminals(e)
                .iter()
                .map(|&t| graph.terminal_name(t).to_owned())
                .collect(),
            alive: true,
        })
        .collect();
    let mut node_index: HashMap<String, usize> =
        nodes.iter().enumerate().map(|(i, n)| (n.name.clone(), i)).collect();
    let mut net_index: HashMap<String, usize> =
        nets.iter().enumerate().map(|(i, n)| (n.name.clone(), i)).collect();
    let original_nodes = nodes.len();
    let mut added_nodes = 0usize;
    let mut removed_nodes = 0usize;
    // Incremental fingerprint bookkeeping: every element the script
    // adds or removes XORs its token into the delta, so the edited
    // graph's fingerprint is `old ^ delta` without an O(pins) rehash.
    let mut delta = fingerprint::Fingerprint::ZERO;

    // Removes a pin from a net, cascading net removal when the net is
    // left pinless.
    fn drop_pin(
        nets: &mut [NetSlot],
        nodes: &mut [NodeSlot],
        net_index: &mut HashMap<String, usize>,
        delta: &mut fingerprint::Fingerprint,
        e: usize,
        v: usize,
    ) {
        *delta ^= fingerprint::pin_token(&nets[e].name, &nodes[v].name);
        nets[e].pins.retain(|&p| p != v);
        nodes[v].nets.retain(|&x| x != e);
        if nets[e].pins.is_empty() {
            *delta ^= fingerprint::net_token(&nets[e].name);
            for t in &nets[e].terminals {
                *delta ^= fingerprint::terminal_token(t, &nets[e].name);
            }
            nets[e].alive = false;
            nets[e].terminals.clear();
            net_index.remove(&nets[e].name);
        }
    }

    for scripted in &script.ops {
        let line = scripted.line;
        match &scripted.op {
            EditOp::AddNode { name, size } => {
                if node_index.contains_key(name) {
                    return Err(ApplyEditError::DuplicateNode { line, name: name.clone() });
                }
                if *size == 0 {
                    return Err(ApplyEditError::ZeroSize { line, name: name.clone() });
                }
                node_index.insert(name.clone(), nodes.len());
                nodes.push(NodeSlot { name: name.clone(), size: *size, alive: true, nets: vec![] });
                delta ^= fingerprint::node_token(name, *size);
                added_nodes += 1;
            }
            EditOp::RemoveNode { name } => {
                let &v = node_index
                    .get(name)
                    .ok_or_else(|| ApplyEditError::UnknownNode { line, name: name.clone() })?;
                for e in nodes[v].nets.clone() {
                    drop_pin(&mut nets, &mut nodes, &mut net_index, &mut delta, e, v);
                }
                delta ^= fingerprint::node_token(name, nodes[v].size);
                nodes[v].alive = false;
                node_index.remove(name);
                if v < original_nodes {
                    removed_nodes += 1;
                } else {
                    added_nodes -= 1;
                }
            }
            EditOp::ResizeNode { name, size } => {
                let &v = node_index
                    .get(name)
                    .ok_or_else(|| ApplyEditError::UnknownNode { line, name: name.clone() })?;
                if *size == 0 {
                    return Err(ApplyEditError::ZeroSize { line, name: name.clone() });
                }
                // Swap tokens: old size out, new size in (a same-size
                // resize cancels to a no-op, as it should).
                delta ^= fingerprint::node_token(name, nodes[v].size);
                delta ^= fingerprint::node_token(name, *size);
                nodes[v].size = *size;
            }
            EditOp::AddNet { name, pins } => {
                if net_index.contains_key(name) {
                    return Err(ApplyEditError::DuplicateNet { line, name: name.clone() });
                }
                if pins.is_empty() {
                    return Err(ApplyEditError::EmptyNet { line, net: name.clone() });
                }
                let mut resolved = Vec::with_capacity(pins.len());
                for pin in pins {
                    let &v = node_index
                        .get(pin)
                        .ok_or_else(|| ApplyEditError::UnknownNode { line, name: pin.clone() })?;
                    if resolved.contains(&v) {
                        return Err(ApplyEditError::DuplicatePin {
                            line,
                            net: name.clone(),
                            node: pin.clone(),
                        });
                    }
                    resolved.push(v);
                }
                let e = nets.len();
                delta ^= fingerprint::net_token(name);
                for &v in &resolved {
                    nodes[v].nets.push(e);
                    delta ^= fingerprint::pin_token(name, &nodes[v].name);
                }
                net_index.insert(name.clone(), e);
                nets.push(NetSlot {
                    name: name.clone(),
                    pins: resolved,
                    terminals: vec![],
                    alive: true,
                });
            }
            EditOp::RemoveNet { name } => {
                let &e = net_index
                    .get(name)
                    .ok_or_else(|| ApplyEditError::UnknownNet { line, name: name.clone() })?;
                delta ^= fingerprint::net_token(name);
                for v in nets[e].pins.clone() {
                    nodes[v].nets.retain(|&x| x != e);
                    delta ^= fingerprint::pin_token(name, &nodes[v].name);
                }
                for t in &nets[e].terminals {
                    delta ^= fingerprint::terminal_token(t, name);
                }
                nets[e].alive = false;
                nets[e].pins.clear();
                nets[e].terminals.clear();
                net_index.remove(name);
            }
            EditOp::ConnectPin { net, node } => {
                let &e = net_index
                    .get(net)
                    .ok_or_else(|| ApplyEditError::UnknownNet { line, name: net.clone() })?;
                let &v = node_index
                    .get(node)
                    .ok_or_else(|| ApplyEditError::UnknownNode { line, name: node.clone() })?;
                if nets[e].pins.contains(&v) {
                    return Err(ApplyEditError::DuplicatePin {
                        line,
                        net: net.clone(),
                        node: node.clone(),
                    });
                }
                nets[e].pins.push(v);
                nodes[v].nets.push(e);
                delta ^= fingerprint::pin_token(net, node);
            }
            EditOp::DisconnectPin { net, node } => {
                let &e = net_index
                    .get(net)
                    .ok_or_else(|| ApplyEditError::UnknownNet { line, name: net.clone() })?;
                let &v = node_index
                    .get(node)
                    .ok_or_else(|| ApplyEditError::UnknownNode { line, name: node.clone() })?;
                if !nets[e].pins.contains(&v) {
                    return Err(ApplyEditError::MissingPin {
                        line,
                        net: net.clone(),
                        node: node.clone(),
                    });
                }
                drop_pin(&mut nets, &mut nodes, &mut net_index, &mut delta, e, v);
            }
        }
    }

    // Rebuild: survivors in original order, additions after them.
    let mut builder = HypergraphBuilder::named(graph.name());
    let mut new_ids: Vec<Option<NodeId>> = vec![None; nodes.len()];
    for (i, slot) in nodes.iter().enumerate() {
        if slot.alive {
            new_ids[i] = Some(builder.add_node(slot.name.clone(), slot.size));
        }
    }
    for net in &nets {
        if !net.alive {
            continue;
        }
        let pins = net.pins.iter().map(|&v| new_ids[v].expect("live net pins live nodes"));
        let id = builder.add_net(net.name.clone(), pins)?;
        for t in &net.terminals {
            builder.add_terminal(t.clone(), id)?;
        }
    }
    let edited = builder.finish()?;
    debug_assert_eq!(
        fingerprint::fingerprint_graph(graph) ^ delta,
        fingerprint::fingerprint_graph(&edited),
        "incremental fingerprint delta must equal the from-scratch recompute"
    );
    let node_map = new_ids[..original_nodes].to_vec();
    Ok(EditApplied {
        graph: edited,
        node_map,
        added_nodes,
        removed_nodes,
        fingerprint_delta: delta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NetId;

    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::named("s");
        let a = b.add_node("a", 1);
        let c = b.add_node("c", 2);
        let d = b.add_node("d", 1);
        let n0 = b.add_net("n0", [a, c]).unwrap();
        let _n1 = b.add_net("n1", [c, d]).unwrap();
        b.add_terminal("t0", n0).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn jsonl_round_trip_preserves_every_op() {
        let script = EditScript::new(vec![
            EditOp::AddNode { name: "x".into(), size: 3 },
            EditOp::RemoveNode { name: "a".into() },
            EditOp::ResizeNode { name: "c".into(), size: 5 },
            EditOp::AddNet { name: "nx".into(), pins: vec!["x".into(), "c".into()] },
            EditOp::RemoveNet { name: "n1".into() },
            EditOp::ConnectPin { net: "n0".into(), node: "d".into() },
            EditOp::DisconnectPin { net: "n0".into(), node: "c".into() },
        ]);
        let text = script.to_jsonl();
        let parsed = EditScript::parse(&text).unwrap();
        assert_eq!(parsed, script);
        // Reader sees the same thing byte-wise.
        let read = EditScript::read(text.as_bytes()).unwrap();
        assert_eq!(read, script);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "# a comment\n\n{\"op\": \"remove_node\", \"name\": \"a\"}\n";
        let script = EditScript::parse(text).unwrap();
        assert_eq!(script.len(), 1);
        assert_eq!(script.ops[0].line, 3);
    }

    #[test]
    fn apply_add_and_remove_produce_a_monotonic_map() {
        let g = sample();
        let script = EditScript::new(vec![
            EditOp::RemoveNode { name: "c".into() },
            EditOp::AddNode { name: "x".into(), size: 4 },
            EditOp::AddNet { name: "nx".into(), pins: vec!["x".into(), "d".into()] },
        ]);
        let applied = apply_script(&g, &script).unwrap();
        assert_eq!(applied.added_nodes, 1);
        assert_eq!(applied.removed_nodes, 1);
        // a and d survive; c is gone; x appends.
        assert_eq!(applied.node_map.len(), 3);
        assert_eq!(applied.node_map[0], Some(NodeId::from_index(0)));
        assert_eq!(applied.node_map[1], None);
        assert_eq!(applied.node_map[2], Some(NodeId::from_index(1)));
        assert_eq!(applied.graph.node_count(), 3);
        assert_eq!(applied.graph.node_name(NodeId::from_index(2)), "x");
        // n0 lost c but keeps a (and its terminal); n1 lost c and d
        // remains, so it survives as a one-pin net... no: n1 = {c, d},
        // removing c leaves {d}, which is non-empty, so n1 survives.
        assert_eq!(applied.graph.net_count(), 3);
        assert_eq!(applied.graph.terminal_count(), 1);
    }

    #[test]
    fn removing_the_last_pin_removes_the_net_and_terminals() {
        let g = sample();
        let script = EditScript::new(vec![
            EditOp::RemoveNode { name: "a".into() },
            EditOp::RemoveNode { name: "c".into() },
        ]);
        let applied = apply_script(&g, &script).unwrap();
        // n0 = {a, c} loses both pins -> removed with terminal t0;
        // n1 = {c, d} keeps d.
        assert_eq!(applied.graph.net_count(), 1);
        assert_eq!(applied.graph.terminal_count(), 0);
        assert_eq!(applied.graph.net_name(NetId::from_index(0)), "n1");
    }

    #[test]
    fn empty_script_rebuilds_an_identical_graph() {
        let g = sample();
        let applied = apply_script(&g, &EditScript::default()).unwrap();
        assert_eq!(applied.graph.node_count(), g.node_count());
        assert_eq!(applied.graph.net_count(), g.net_count());
        assert_eq!(applied.graph.terminal_count(), g.terminal_count());
        for v in g.node_ids() {
            assert_eq!(applied.node_map[v.index()], Some(v));
            assert_eq!(applied.graph.node_name(v), g.node_name(v));
            assert_eq!(applied.graph.node_size(v), g.node_size(v));
        }
        for e in g.net_ids() {
            assert_eq!(applied.graph.pins(e), g.pins(e));
        }
    }

    #[test]
    fn dangling_references_carry_the_script_line() {
        let g = sample();
        let script = EditScript::parse(
            "{\"op\": \"remove_node\", \"name\": \"a\"}\n{\"op\": \"remove_node\", \"name\": \"zz\"}\n",
        )
        .unwrap();
        let err = apply_script(&g, &script).unwrap_err();
        assert_eq!(err, ApplyEditError::UnknownNode { line: 2, name: "zz".into() });
    }

    #[test]
    fn connect_disconnect_round_trip() {
        let g = sample();
        let script = EditScript::new(vec![
            EditOp::ConnectPin { net: "n1".into(), node: "a".into() },
            EditOp::DisconnectPin { net: "n1".into(), node: "a".into() },
        ]);
        let applied = apply_script(&g, &script).unwrap();
        assert_eq!(applied.graph.pins(NetId::from_index(1)), g.pins(NetId::from_index(1)));
    }

    #[test]
    fn escapes_survive_the_round_trip() {
        let script = EditScript::new(vec![EditOp::AddNode { name: "a\"b\\c\nd".into(), size: 1 }]);
        let parsed = EditScript::parse(&script.to_jsonl()).unwrap();
        assert_eq!(parsed.ops[0].op, script.ops[0].op);
    }
}
