//! Validated construction of [`Hypergraph`] instances.

use std::collections::HashSet;

use crate::error::BuildError;
use crate::graph::Hypergraph;
use crate::ids::{NetId, NodeId, TerminalId};

/// Builder for [`Hypergraph`].
///
/// Nodes, nets, and terminals are appended in order; ids are dense indices
/// in insertion order. [`HypergraphBuilder::finish`] performs final
/// validation and freezes the graph.
///
/// # Example
///
/// ```
/// use fpart_hypergraph::HypergraphBuilder;
///
/// # fn main() -> Result<(), fpart_hypergraph::BuildError> {
/// let mut b = HypergraphBuilder::named("adder");
/// let s = b.add_node("sum", 1);
/// let c = b.add_node("carry", 1);
/// let n = b.add_net("out", [s, c])?;
/// b.add_terminal("pad_out", n)?;
/// let graph = b.finish()?;
/// assert_eq!(graph.name(), "adder");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct HypergraphBuilder {
    name: String,
    node_names: Vec<String>,
    node_sizes: Vec<u32>,
    net_names: Vec<String>,
    net_pins: Vec<Vec<NodeId>>,
    terminal_names: Vec<String>,
    terminal_nets: Vec<NetId>,
    check_duplicate_names: bool,
}

impl HypergraphBuilder {
    /// Creates an empty builder for an unnamed circuit.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder for a circuit with the given name.
    #[must_use]
    pub fn named(name: impl Into<String>) -> Self {
        Self { name: name.into(), ..Self::default() }
    }

    /// Sets or replaces the circuit name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Enables rejection of duplicate node/net/terminal names at
    /// [`Self::finish`] time. Disabled by default because synthetic
    /// generators produce guaranteed-unique names and the check is `O(n)`
    /// extra memory.
    #[must_use]
    pub fn check_duplicate_names(mut self, check: bool) -> Self {
        self.check_duplicate_names = check;
        self
    }

    /// Returns the number of nodes added so far.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_sizes.len()
    }

    /// Returns the number of nets added so far.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.net_pins.len()
    }

    /// Returns the number of terminals added so far.
    #[must_use]
    pub fn terminal_count(&self) -> usize {
        self.terminal_nets.len()
    }

    /// Adds an interior node with the given size and returns its id.
    ///
    /// A size of zero is tolerated here and rejected at [`Self::finish`],
    /// so that callers may build nodes before sizes are known.
    pub fn add_node(&mut self, name: impl Into<String>, size: u32) -> NodeId {
        let id = NodeId::from_index(self.node_names.len());
        self.node_names.push(name.into());
        self.node_sizes.push(size);
        id
    }

    /// Overrides the size of an already-added node.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not created by this builder.
    pub fn set_node_size(&mut self, node: NodeId, size: u32) {
        self.node_sizes[node.index()] = size;
    }

    /// Adds a net over the given interior pins and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnknownNode`] if a pin id is out of range,
    /// [`BuildError::DuplicatePin`] if a node appears twice, and
    /// [`BuildError::EmptyNet`] if `pins` is empty.
    pub fn add_net(
        &mut self,
        name: impl Into<String>,
        pins: impl IntoIterator<Item = NodeId>,
    ) -> Result<NetId, BuildError> {
        let name = name.into();
        let pins: Vec<NodeId> = pins.into_iter().collect();
        if pins.is_empty() {
            return Err(BuildError::EmptyNet { net: name });
        }
        let mut seen = HashSet::with_capacity(pins.len());
        for &p in &pins {
            if p.index() >= self.node_names.len() {
                return Err(BuildError::UnknownNode { node: p.index(), net: name });
            }
            if !seen.insert(p) {
                return Err(BuildError::DuplicatePin { net: name, node: p.index() });
            }
        }
        let id = NetId::from_index(self.net_names.len());
        self.net_names.push(name);
        self.net_pins.push(pins);
        Ok(id)
    }

    /// Adds a primary terminal attached to `net` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnknownNet`] if `net` is out of range.
    pub fn add_terminal(
        &mut self,
        name: impl Into<String>,
        net: NetId,
    ) -> Result<TerminalId, BuildError> {
        let name = name.into();
        if net.index() >= self.net_names.len() {
            return Err(BuildError::UnknownNet { net: net.index(), terminal: name });
        }
        let id = TerminalId::from_index(self.terminal_names.len());
        self.terminal_names.push(name);
        self.terminal_nets.push(net);
        Ok(id)
    }

    /// Validates and freezes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::ZeroSizeNode`] for any node of size zero, and
    /// [`BuildError::DuplicateName`] if duplicate-name checking was enabled
    /// and any two entities of the same kind share a name.
    pub fn finish(self) -> Result<Hypergraph, BuildError> {
        if let Some(i) = self.node_sizes.iter().position(|&s| s == 0) {
            return Err(BuildError::ZeroSizeNode { node: self.node_names[i].clone() });
        }
        if self.check_duplicate_names {
            for names in [&self.node_names, &self.net_names, &self.terminal_names] {
                let mut seen = HashSet::with_capacity(names.len());
                for n in names {
                    if !seen.insert(n.as_str()) {
                        return Err(BuildError::DuplicateName { name: n.clone() });
                    }
                }
            }
        }

        // net -> pins CSR
        let mut net_pin_offsets = Vec::with_capacity(self.net_pins.len() + 1);
        net_pin_offsets.push(0u32);
        let mut net_pins = Vec::new();
        for pins in &self.net_pins {
            net_pins.extend_from_slice(pins);
            net_pin_offsets.push(net_pins.len() as u32);
        }

        // node -> nets CSR (counting sort over pins)
        let n = self.node_sizes.len();
        let mut degree = vec![0u32; n];
        for pins in &self.net_pins {
            for p in pins {
                degree[p.index()] += 1;
            }
        }
        let mut node_net_offsets = vec![0u32; n + 1];
        for i in 0..n {
            node_net_offsets[i + 1] = node_net_offsets[i] + degree[i];
        }
        let mut cursor: Vec<u32> = node_net_offsets[..n].to_vec();
        let mut node_nets = vec![NetId::from_index(0); net_pins.len()];
        for (e, pins) in self.net_pins.iter().enumerate() {
            for p in pins {
                let c = &mut cursor[p.index()];
                node_nets[*c as usize] = NetId::from_index(e);
                *c += 1;
            }
        }

        // net -> terminals CSR
        let e = self.net_names.len();
        let mut tdeg = vec![0u32; e];
        for t in &self.terminal_nets {
            tdeg[t.index()] += 1;
        }
        let mut net_terminal_offsets = vec![0u32; e + 1];
        for i in 0..e {
            net_terminal_offsets[i + 1] = net_terminal_offsets[i] + tdeg[i];
        }
        let mut tcursor: Vec<u32> = net_terminal_offsets[..e].to_vec();
        let mut net_terminals = vec![TerminalId::from_index(0); self.terminal_nets.len()];
        for (t, net) in self.terminal_nets.iter().enumerate() {
            let c = &mut tcursor[net.index()];
            net_terminals[*c as usize] = TerminalId::from_index(t);
            *c += 1;
        }

        let total_size = self.node_sizes.iter().map(|&s| u64::from(s)).sum();

        Ok(Hypergraph {
            node_names: self.node_names,
            node_sizes: self.node_sizes,
            net_names: self.net_names,
            net_pin_offsets,
            net_pins,
            node_net_offsets,
            node_nets,
            terminal_names: self.terminal_names,
            terminal_nets: self.terminal_nets,
            net_terminal_offsets,
            net_terminals,
            total_size,
            name: self.name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_net() {
        let mut b = HypergraphBuilder::new();
        let err = b.add_net("n", []).unwrap_err();
        assert!(matches!(err, BuildError::EmptyNet { .. }));
    }

    #[test]
    fn rejects_unknown_pin() {
        let mut b = HypergraphBuilder::new();
        let _ = b.add_node("a", 1);
        let err = b.add_net("n", [NodeId::from_index(5)]).unwrap_err();
        assert!(matches!(err, BuildError::UnknownNode { node: 5, .. }));
    }

    #[test]
    fn rejects_duplicate_pin() {
        let mut b = HypergraphBuilder::new();
        let a = b.add_node("a", 1);
        let err = b.add_net("n", [a, a]).unwrap_err();
        assert!(matches!(err, BuildError::DuplicatePin { .. }));
    }

    #[test]
    fn rejects_unknown_net_for_terminal() {
        let mut b = HypergraphBuilder::new();
        let err = b.add_terminal("t", NetId::from_index(0)).unwrap_err();
        assert!(matches!(err, BuildError::UnknownNet { .. }));
    }

    #[test]
    fn rejects_zero_size_node_at_finish() {
        let mut b = HypergraphBuilder::new();
        let _ = b.add_node("a", 0);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, BuildError::ZeroSizeNode { .. }));
    }

    #[test]
    fn set_node_size_repairs_zero() {
        let mut b = HypergraphBuilder::new();
        let a = b.add_node("a", 0);
        b.set_node_size(a, 4);
        let h = b.finish().unwrap();
        assert_eq!(h.node_size(a), 4);
    }

    #[test]
    fn duplicate_name_check_is_opt_in() {
        let mut b = HypergraphBuilder::new();
        let _ = b.add_node("a", 1);
        let _ = b.add_node("a", 1);
        assert!(b.clone().finish().is_ok());
        let strict = b.check_duplicate_names(true);
        assert!(matches!(strict.finish().unwrap_err(), BuildError::DuplicateName { .. }));
    }

    #[test]
    fn csr_layout_matches_insertion_order() {
        let mut b = HypergraphBuilder::new();
        let a = b.add_node("a", 1);
        let c = b.add_node("c", 1);
        let d = b.add_node("d", 1);
        let n0 = b.add_net("n0", [a, d]).unwrap();
        let n1 = b.add_net("n1", [d, c]).unwrap();
        let h = b.finish().unwrap();
        assert_eq!(h.pins(n0), [a, d]);
        assert_eq!(h.pins(n1), [d, c]);
        // node→net lists are ordered by net id because nets fill in order
        assert_eq!(h.nets(d), [n0, n1]);
    }

    #[test]
    fn empty_graph_is_valid() {
        let h = HypergraphBuilder::new().finish().unwrap();
        assert_eq!(h.node_count(), 0);
        assert_eq!(h.net_count(), 0);
        assert_eq!(h.total_size(), 0);
        assert_eq!(h.max_node_degree(), 0);
        assert_eq!(h.max_net_degree(), 0);
    }

    #[test]
    fn counts_track_additions() {
        let mut b = HypergraphBuilder::new();
        assert_eq!((b.node_count(), b.net_count(), b.terminal_count()), (0, 0, 0));
        let a = b.add_node("a", 1);
        let n = b.add_net("n", [a]).unwrap();
        b.add_terminal("t", n).unwrap();
        assert_eq!((b.node_count(), b.net_count(), b.terminal_count()), (1, 1, 1));
    }
}
