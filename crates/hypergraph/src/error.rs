//! Error types for hypergraph construction and parsing.

use std::error::Error;
use std::fmt;

/// An error produced while building a [`crate::Hypergraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// A net referenced a node id that does not exist in the builder.
    UnknownNode {
        /// The offending raw node index.
        node: usize,
        /// Name of the net that referenced it.
        net: String,
    },
    /// A terminal referenced a net id that does not exist in the builder.
    UnknownNet {
        /// The offending raw net index.
        net: usize,
        /// Name of the terminal that referenced it.
        terminal: String,
    },
    /// A net listed the same node twice.
    DuplicatePin {
        /// Name of the offending net.
        net: String,
        /// The duplicated node.
        node: usize,
    },
    /// A net had no pins and no terminals, which no algorithm can interpret.
    EmptyNet {
        /// Name of the offending net.
        net: String,
    },
    /// Two nodes, nets, or terminals were given the same name.
    DuplicateName {
        /// The clashing name.
        name: String,
    },
    /// A node was declared with size zero.
    ZeroSizeNode {
        /// Name of the offending node.
        node: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownNode { node, net } => {
                write!(f, "net `{net}` references unknown node index {node}")
            }
            BuildError::UnknownNet { net, terminal } => {
                write!(f, "terminal `{terminal}` references unknown net index {net}")
            }
            BuildError::DuplicatePin { net, node } => {
                write!(f, "net `{net}` lists node index {node} more than once")
            }
            BuildError::EmptyNet { net } => write!(f, "net `{net}` has no pins"),
            BuildError::DuplicateName { name } => {
                write!(f, "name `{name}` is declared more than once")
            }
            BuildError::ZeroSizeNode { node } => {
                write!(f, "node `{node}` has size zero")
            }
        }
    }
}

impl Error for BuildError {}

/// An error produced while parsing the `.fhg` netlist text format.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseNetlistError {
    /// A line did not match any known record type.
    UnknownRecord {
        /// 1-based line number.
        line: usize,
        /// The unrecognized leading keyword.
        keyword: String,
    },
    /// A record had too few or malformed fields.
    MalformedRecord {
        /// 1-based line number.
        line: usize,
        /// Description of what was expected.
        expected: &'static str,
    },
    /// A record referenced a name that was never declared.
    UnknownName {
        /// 1-based line number.
        line: usize,
        /// The unresolved name.
        name: String,
    },
    /// A field was present but could not be parsed as what the format
    /// requires at that position.
    InvalidToken {
        /// 1-based line number.
        line: usize,
        /// 1-based column (in characters) where the token starts.
        column: usize,
        /// Description of what was expected.
        expected: &'static str,
        /// The offending token text.
        found: String,
    },
    /// The file ended while more records were still required.
    UnexpectedEnd {
        /// 1-based line number of the end of the file.
        line: usize,
        /// Description of what was still expected.
        expected: &'static str,
    },
    /// A line contained bytes that are not valid UTF-8.
    NotUtf8 {
        /// 1-based line number.
        line: usize,
    },
    /// The document asked for more resources than the configured
    /// [`crate::ParseLimits`] allow.
    LimitExceeded {
        /// 1-based line number.
        line: usize,
        /// 1-based column (in characters) of the offending token.
        column: usize,
        /// Which limit was exceeded (e.g. `"node count"`).
        what: &'static str,
        /// The configured maximum.
        limit: usize,
    },
    /// The parsed netlist failed structural validation.
    Build(BuildError),
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNetlistError::UnknownRecord { line, keyword } => {
                write!(f, "line {line}: unknown record type `{keyword}`")
            }
            ParseNetlistError::MalformedRecord { line, expected } => {
                write!(f, "line {line}: malformed record, expected {expected}")
            }
            ParseNetlistError::UnknownName { line, name } => {
                write!(f, "line {line}: reference to undeclared name `{name}`")
            }
            ParseNetlistError::InvalidToken { line, column, expected, found } => {
                write!(f, "line {line}, column {column}: expected {expected}, found `{found}`")
            }
            ParseNetlistError::UnexpectedEnd { line, expected } => {
                write!(f, "line {line}: file ended but {expected} was still expected")
            }
            ParseNetlistError::NotUtf8 { line } => {
                write!(f, "line {line}: not valid UTF-8")
            }
            ParseNetlistError::LimitExceeded { line, column, what, limit } => {
                write!(f, "line {line}, column {column}: {what} exceeds limit of {limit}")
            }
            ParseNetlistError::Build(e) => write!(f, "netlist validation failed: {e}"),
        }
    }
}

impl Error for ParseNetlistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseNetlistError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildError> for ParseNetlistError {
    fn from(e: BuildError) -> Self {
        ParseNetlistError::Build(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = BuildError::EmptyNet { net: "n7".into() };
        assert_eq!(e.to_string(), "net `n7` has no pins");
        let p = ParseNetlistError::UnknownName { line: 3, name: "zz".into() };
        assert!(p.to_string().starts_with("line 3:"));
    }

    #[test]
    fn location_carrying_variants_name_line_and_column() {
        let e = ParseNetlistError::InvalidToken {
            line: 4,
            column: 7,
            expected: "vertex count",
            found: "x9".into(),
        };
        assert_eq!(e.to_string(), "line 4, column 7: expected vertex count, found `x9`");
        let e = ParseNetlistError::UnexpectedEnd { line: 2, expected: "one line per hyperedge" };
        assert!(e.to_string().contains("file ended"));
        let e = ParseNetlistError::NotUtf8 { line: 9 };
        assert_eq!(e.to_string(), "line 9: not valid UTF-8");
    }

    #[test]
    fn parse_error_wraps_build_error_as_source() {
        let p: ParseNetlistError = BuildError::DuplicateName { name: "a".into() }.into();
        assert!(Error::source(&p).is_some());
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BuildError>();
        assert_send_sync::<ParseNetlistError>();
    }
}
