//! Line-oriented text format (`.fhg`) for circuit hypergraphs.
//!
//! The format is deliberately simple so benchmark netlists can be stored in
//! version control and diffed:
//!
//! ```text
//! # comment
//! circuit s5378
//! node u17 1
//! node u18 2
//! net n1 u17 u18
//! terminal pad3 n1
//! ```
//!
//! Records may appear in any order as long as every name is declared before
//! it is referenced. Blank lines and `#` comments are ignored.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};

use crate::builder::HypergraphBuilder;
use crate::error::ParseNetlistError;
use crate::graph::Hypergraph;
use crate::ids::{NetId, NodeId};
use crate::limits::{fields_with_columns, ParseLimits};

/// Parses a netlist from any reader (pass `&mut reader` if you need the
/// reader back afterwards), enforcing [`ParseLimits::default`].
///
/// # Errors
///
/// Returns [`ParseNetlistError`] on malformed records, undeclared names,
/// exceeded limits, or structural validation failure.
pub fn read_netlist<R: Read>(reader: R) -> Result<Hypergraph, ParseNetlistError> {
    read_netlist_limited(reader, &ParseLimits::default())
}

/// Parses a netlist from any reader with explicit resource limits.
///
/// Every count and length the parser allocates in proportion to is checked
/// against `limits` *before* the allocation happens, so hostile input fails
/// with a typed error instead of exhausting memory.
///
/// # Errors
///
/// See [`read_netlist`].
pub fn read_netlist_limited<R: Read>(
    reader: R,
    limits: &ParseLimits,
) -> Result<Hypergraph, ParseNetlistError> {
    // Files carry user-written names: a duplicate `node` record would
    // silently shadow the first in the name lookup below, so the strict
    // builder check is always on here (generators keep it off).
    let mut builder = HypergraphBuilder::new().check_duplicate_names(true);
    let mut nodes: HashMap<String, NodeId> = HashMap::new();
    let mut nets: HashMap<String, NetId> = HashMap::new();
    let mut pin_total = 0usize;

    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line_no = idx + 1;
        let line = line.map_err(|_| ParseNetlistError::NotUtf8 { line: line_no })?;
        limits.check_line(line_no, &line)?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields = fields_with_columns(line);
        let mut fields = fields.into_iter();
        let (_, keyword) = fields.next().expect("non-empty line has a first field");
        match keyword {
            "circuit" => {
                let (col, name) = fields.next().ok_or(ParseNetlistError::MalformedRecord {
                    line: line_no,
                    expected: "`circuit <name>`",
                })?;
                limits.check_name(line_no, col, name)?;
                builder.set_name(name);
            }
            "node" => {
                let name = fields.next();
                let size = fields.next().and_then(|(_, s)| s.parse::<u32>().ok());
                let (Some((col, name)), Some(size)) = (name, size) else {
                    return Err(ParseNetlistError::MalformedRecord {
                        line: line_no,
                        expected: "`node <name> <size>`",
                    });
                };
                limits.check_name(line_no, col, name)?;
                if nodes.len() >= limits.max_nodes {
                    return Err(ParseNetlistError::LimitExceeded {
                        line: line_no,
                        column: 1,
                        what: "node count",
                        limit: limits.max_nodes,
                    });
                }
                let id = builder.add_node(name, size);
                nodes.insert(name.to_owned(), id);
            }
            "net" => {
                let (col, name) = fields.next().ok_or(ParseNetlistError::MalformedRecord {
                    line: line_no,
                    expected: "`net <name> <node>...`",
                })?;
                limits.check_name(line_no, col, name)?;
                if nets.len() >= limits.max_nets {
                    return Err(ParseNetlistError::LimitExceeded {
                        line: line_no,
                        column: 1,
                        what: "net count",
                        limit: limits.max_nets,
                    });
                }
                let mut pins = Vec::new();
                for (col, pin) in fields {
                    if pin_total >= limits.max_pins {
                        return Err(ParseNetlistError::LimitExceeded {
                            line: line_no,
                            column: col,
                            what: "pin count",
                            limit: limits.max_pins,
                        });
                    }
                    let id = nodes.get(pin).ok_or_else(|| ParseNetlistError::UnknownName {
                        line: line_no,
                        name: pin.to_owned(),
                    })?;
                    pins.push(*id);
                    pin_total += 1;
                }
                let id = builder.add_net(name, pins)?;
                nets.insert(name.to_owned(), id);
            }
            "terminal" => {
                let name = fields.next();
                let net = fields.next();
                let (Some((col, name)), Some((_, net))) = (name, net) else {
                    return Err(ParseNetlistError::MalformedRecord {
                        line: line_no,
                        expected: "`terminal <name> <net>`",
                    });
                };
                limits.check_name(line_no, col, name)?;
                let net_id = nets.get(net).ok_or_else(|| ParseNetlistError::UnknownName {
                    line: line_no,
                    name: net.to_owned(),
                })?;
                builder.add_terminal(name, *net_id)?;
            }
            other => {
                return Err(ParseNetlistError::UnknownRecord {
                    line: line_no,
                    keyword: other.to_owned(),
                });
            }
        }
    }
    Ok(builder.finish()?)
}

/// Parses a netlist from a string slice.
///
/// # Errors
///
/// See [`read_netlist`].
pub fn parse_netlist(text: &str) -> Result<Hypergraph, ParseNetlistError> {
    read_netlist(text.as_bytes())
}

/// Parses a netlist from a string slice with explicit resource limits.
///
/// # Errors
///
/// See [`read_netlist_limited`].
pub fn parse_netlist_limited(
    text: &str,
    limits: &ParseLimits,
) -> Result<Hypergraph, ParseNetlistError> {
    read_netlist_limited(text.as_bytes(), limits)
}

/// Writes a netlist in `.fhg` format (pass `&mut writer` if you need the
/// writer back afterwards).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_netlist<W: Write>(mut writer: W, graph: &Hypergraph) -> std::io::Result<()> {
    if !graph.name().is_empty() {
        writeln!(writer, "circuit {}", graph.name())?;
    }
    for node in graph.node_ids() {
        writeln!(writer, "node {} {}", graph.node_name(node), graph.node_size(node))?;
    }
    for net in graph.net_ids() {
        write!(writer, "net {}", graph.net_name(net))?;
        for &pin in graph.pins(net) {
            write!(writer, " {}", graph.node_name(pin))?;
        }
        writeln!(writer)?;
    }
    for terminal in graph.terminal_ids() {
        writeln!(
            writer,
            "terminal {} {}",
            graph.terminal_name(terminal),
            graph.net_name(graph.terminal_net(terminal))
        )?;
    }
    Ok(())
}

/// Serializes a netlist to a `.fhg` string.
#[must_use]
pub fn netlist_to_string(graph: &Hypergraph) -> String {
    let mut out = Vec::new();
    write_netlist(&mut out, graph).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect(".fhg output is always UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# tiny sample
circuit demo
node a 1
node b 2
node c 1
net n1 a b
net n2 b c
terminal in0 n1
terminal out0 n2
";

    #[test]
    fn parse_sample() {
        let h = parse_netlist(SAMPLE).unwrap();
        assert_eq!(h.name(), "demo");
        assert_eq!(h.node_count(), 3);
        assert_eq!(h.net_count(), 2);
        assert_eq!(h.terminal_count(), 2);
        assert_eq!(h.total_size(), 4);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let h = parse_netlist(SAMPLE).unwrap();
        let text = netlist_to_string(&h);
        let h2 = parse_netlist(&text).unwrap();
        assert_eq!(h2.node_count(), h.node_count());
        assert_eq!(h2.net_count(), h.net_count());
        assert_eq!(h2.terminal_count(), h.terminal_count());
        assert_eq!(h2.total_size(), h.total_size());
        for (a, b) in h.net_ids().zip(h2.net_ids()) {
            assert_eq!(h.pins(a), h2.pins(b));
        }
    }

    #[test]
    fn rejects_unknown_keyword() {
        let err = parse_netlist("frobnicate x").unwrap_err();
        assert!(matches!(err, ParseNetlistError::UnknownRecord { line: 1, .. }));
    }

    #[test]
    fn rejects_undeclared_pin() {
        let err = parse_netlist("net n1 ghost").unwrap_err();
        assert!(matches!(err, ParseNetlistError::UnknownName { .. }));
    }

    #[test]
    fn rejects_malformed_node() {
        let err = parse_netlist("node a notanumber").unwrap_err();
        assert!(matches!(err, ParseNetlistError::MalformedRecord { .. }));
    }

    #[test]
    fn rejects_undeclared_terminal_net() {
        let err = parse_netlist("terminal t ghostnet").unwrap_err();
        assert!(matches!(err, ParseNetlistError::UnknownName { .. }));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let h = parse_netlist("\n# hi\n\nnode a 1\nnet n a\n").unwrap();
        assert_eq!(h.node_count(), 1);
    }

    #[test]
    fn node_count_limit_is_typed_with_location() {
        let limits = ParseLimits { max_nodes: 2, ..ParseLimits::unlimited() };
        let err = parse_netlist_limited("node a 1\nnode b 1\nnode c 1\nnet n a b c\n", &limits)
            .unwrap_err();
        assert_eq!(
            err,
            ParseNetlistError::LimitExceeded { line: 3, column: 1, what: "node count", limit: 2 }
        );
    }

    #[test]
    fn pin_count_limit_names_the_offending_column() {
        let limits = ParseLimits { max_pins: 2, ..ParseLimits::unlimited() };
        let err = parse_netlist_limited("node a 1\nnode b 1\nnode c 1\nnet n a b c\n", &limits)
            .unwrap_err();
        assert_eq!(
            err,
            ParseNetlistError::LimitExceeded { line: 4, column: 11, what: "pin count", limit: 2 }
        );
    }

    #[test]
    fn name_length_limit_applies_to_all_records() {
        let limits = ParseLimits { max_name_len: 3, ..ParseLimits::unlimited() };
        let err = parse_netlist_limited("node abcd 1\n", &limits).unwrap_err();
        assert!(matches!(
            err,
            ParseNetlistError::LimitExceeded { line: 1, column: 6, what: "name length", .. }
        ));
    }

    #[test]
    fn line_length_limit_rejects_before_parsing() {
        let limits = ParseLimits { max_line_len: 10, ..ParseLimits::unlimited() };
        let err = parse_netlist_limited("# this comment is quite long\n", &limits).unwrap_err();
        assert!(matches!(
            err,
            ParseNetlistError::LimitExceeded { line: 1, what: "line length", .. }
        ));
    }
}
