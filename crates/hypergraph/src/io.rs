//! Line-oriented text format (`.fhg`) for circuit hypergraphs.
//!
//! The format is deliberately simple so benchmark netlists can be stored in
//! version control and diffed:
//!
//! ```text
//! # comment
//! circuit s5378
//! node u17 1
//! node u18 2
//! net n1 u17 u18
//! terminal pad3 n1
//! ```
//!
//! Records may appear in any order as long as every name is declared before
//! it is referenced. Blank lines and `#` comments are ignored.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};

use crate::builder::HypergraphBuilder;
use crate::error::ParseNetlistError;
use crate::graph::Hypergraph;
use crate::ids::{NetId, NodeId};

/// Parses a netlist from any reader (pass `&mut reader` if you need the
/// reader back afterwards).
///
/// # Errors
///
/// Returns [`ParseNetlistError`] on malformed records, undeclared names, or
/// structural validation failure.
pub fn read_netlist<R: Read>(reader: R) -> Result<Hypergraph, ParseNetlistError> {
    // Files carry user-written names: a duplicate `node` record would
    // silently shadow the first in the name lookup below, so the strict
    // builder check is always on here (generators keep it off).
    let mut builder = HypergraphBuilder::new().check_duplicate_names(true);
    let mut nodes: HashMap<String, NodeId> = HashMap::new();
    let mut nets: HashMap<String, NetId> = HashMap::new();

    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line_no = idx + 1;
        let line = line.map_err(|_| ParseNetlistError::NotUtf8 { line: line_no })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let keyword = fields.next().expect("non-empty line has a first field");
        match keyword {
            "circuit" => {
                let name = fields.next().ok_or(ParseNetlistError::MalformedRecord {
                    line: line_no,
                    expected: "`circuit <name>`",
                })?;
                builder.set_name(name);
            }
            "node" => {
                let name = fields.next();
                let size = fields.next().and_then(|s| s.parse::<u32>().ok());
                let (Some(name), Some(size)) = (name, size) else {
                    return Err(ParseNetlistError::MalformedRecord {
                        line: line_no,
                        expected: "`node <name> <size>`",
                    });
                };
                let id = builder.add_node(name, size);
                nodes.insert(name.to_owned(), id);
            }
            "net" => {
                let name = fields.next().ok_or(ParseNetlistError::MalformedRecord {
                    line: line_no,
                    expected: "`net <name> <node>...`",
                })?;
                let mut pins = Vec::new();
                for pin in fields {
                    let id = nodes.get(pin).ok_or_else(|| ParseNetlistError::UnknownName {
                        line: line_no,
                        name: pin.to_owned(),
                    })?;
                    pins.push(*id);
                }
                let id = builder.add_net(name, pins)?;
                nets.insert(name.to_owned(), id);
            }
            "terminal" => {
                let name = fields.next();
                let net = fields.next();
                let (Some(name), Some(net)) = (name, net) else {
                    return Err(ParseNetlistError::MalformedRecord {
                        line: line_no,
                        expected: "`terminal <name> <net>`",
                    });
                };
                let net_id = nets.get(net).ok_or_else(|| ParseNetlistError::UnknownName {
                    line: line_no,
                    name: net.to_owned(),
                })?;
                builder.add_terminal(name, *net_id)?;
            }
            other => {
                return Err(ParseNetlistError::UnknownRecord {
                    line: line_no,
                    keyword: other.to_owned(),
                });
            }
        }
    }
    Ok(builder.finish()?)
}

/// Parses a netlist from a string slice.
///
/// # Errors
///
/// See [`read_netlist`].
pub fn parse_netlist(text: &str) -> Result<Hypergraph, ParseNetlistError> {
    read_netlist(text.as_bytes())
}

/// Writes a netlist in `.fhg` format (pass `&mut writer` if you need the
/// writer back afterwards).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_netlist<W: Write>(mut writer: W, graph: &Hypergraph) -> std::io::Result<()> {
    if !graph.name().is_empty() {
        writeln!(writer, "circuit {}", graph.name())?;
    }
    for node in graph.node_ids() {
        writeln!(writer, "node {} {}", graph.node_name(node), graph.node_size(node))?;
    }
    for net in graph.net_ids() {
        write!(writer, "net {}", graph.net_name(net))?;
        for &pin in graph.pins(net) {
            write!(writer, " {}", graph.node_name(pin))?;
        }
        writeln!(writer)?;
    }
    for terminal in graph.terminal_ids() {
        writeln!(
            writer,
            "terminal {} {}",
            graph.terminal_name(terminal),
            graph.net_name(graph.terminal_net(terminal))
        )?;
    }
    Ok(())
}

/// Serializes a netlist to a `.fhg` string.
#[must_use]
pub fn netlist_to_string(graph: &Hypergraph) -> String {
    let mut out = Vec::new();
    write_netlist(&mut out, graph).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect(".fhg output is always UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# tiny sample
circuit demo
node a 1
node b 2
node c 1
net n1 a b
net n2 b c
terminal in0 n1
terminal out0 n2
";

    #[test]
    fn parse_sample() {
        let h = parse_netlist(SAMPLE).unwrap();
        assert_eq!(h.name(), "demo");
        assert_eq!(h.node_count(), 3);
        assert_eq!(h.net_count(), 2);
        assert_eq!(h.terminal_count(), 2);
        assert_eq!(h.total_size(), 4);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let h = parse_netlist(SAMPLE).unwrap();
        let text = netlist_to_string(&h);
        let h2 = parse_netlist(&text).unwrap();
        assert_eq!(h2.node_count(), h.node_count());
        assert_eq!(h2.net_count(), h.net_count());
        assert_eq!(h2.terminal_count(), h.terminal_count());
        assert_eq!(h2.total_size(), h.total_size());
        for (a, b) in h.net_ids().zip(h2.net_ids()) {
            assert_eq!(h.pins(a), h2.pins(b));
        }
    }

    #[test]
    fn rejects_unknown_keyword() {
        let err = parse_netlist("frobnicate x").unwrap_err();
        assert!(matches!(err, ParseNetlistError::UnknownRecord { line: 1, .. }));
    }

    #[test]
    fn rejects_undeclared_pin() {
        let err = parse_netlist("net n1 ghost").unwrap_err();
        assert!(matches!(err, ParseNetlistError::UnknownName { .. }));
    }

    #[test]
    fn rejects_malformed_node() {
        let err = parse_netlist("node a notanumber").unwrap_err();
        assert!(matches!(err, ParseNetlistError::MalformedRecord { .. }));
    }

    #[test]
    fn rejects_undeclared_terminal_net() {
        let err = parse_netlist("terminal t ghostnet").unwrap_err();
        assert!(matches!(err, ParseNetlistError::UnknownName { .. }));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let h = parse_netlist("\n# hi\n\nnode a 1\nnet n a\n").unwrap();
        assert_eq!(h.node_count(), 1);
    }
}
