//! Connectivity clustering (coarsening) of circuit hypergraphs.
//!
//! Clustering is one of the classical FM quality levers the paper's
//! introduction surveys (Hagen/Huang/Kahng, Hauck/Borriello): matching
//! strongly connected cells into clusters shrinks the problem, a
//! partitioner runs on the coarse hypergraph, and the solution is
//! projected back for refinement on the original circuit.
//!
//! The matcher is heavy-edge style: cells are merged with their
//! most-connected neighbour (connectivity = Σ 1/(|e|−1) over shared
//! nets), subject to a cluster size cap, in three deterministic phases:
//!
//! 1. **Propose** — every cell independently scores all neighbours
//!    against the round-start snapshot (nobody matched yet) and records
//!    its best size-feasible candidate. Proposals are independent per
//!    cell, so this phase shards over contiguous node ranges and runs on
//!    worker threads; the output slots are disjoint, which makes the
//!    result bit-identical at any thread count.
//! 2. **Commit** — proposals are committed serially in a seeded shuffled
//!    order: a pair merges iff both endpoints are still unmatched.
//! 3. **Leftover** — cells whose proposal was taken are rescored against
//!    the remaining unmatched cells, serially, in the same shuffled
//!    order (the classic sequential matcher restricted to leftovers).
//!
//! Net projection onto the coarse graph is likewise split: the per-net
//! pin mapping (map + sort + dedup, the expensive part) is sharded over
//! worker threads into disjoint slots, and only the builder insertion
//! walks nets serially in index order.

use crate::builder::HypergraphBuilder;
use crate::graph::Hypergraph;
use crate::ids::{NetId, NodeId};
use crate::rng::StdRng;

/// A coarsened hypergraph together with the fine → coarse mapping.
#[derive(Debug, Clone)]
pub struct Coarsening {
    /// The clustered hypergraph. Cluster sizes are the sums of their
    /// members' sizes; nets are projected (duplicate pins collapsed) and
    /// nets falling entirely inside one cluster without terminals are
    /// dropped.
    pub coarse: Hypergraph,
    /// `map[fine_node] = coarse_node`.
    pub map: Vec<NodeId>,
}

impl Coarsening {
    /// Estimated heap footprint of this level in bytes: the coarse
    /// graph ([`Hypergraph::approx_bytes`]) plus the projection map.
    /// The same formula the byte-budgeted coarsener charges per level,
    /// so cache layers bound retained hierarchies in the same currency.
    #[must_use]
    pub fn approx_bytes(&self) -> u64 {
        self.coarse.approx_bytes() + std::mem::size_of_val(self.map.as_slice()) as u64
    }

    /// Projects a coarse per-node block assignment back onto the fine
    /// hypergraph.
    ///
    /// # Panics
    ///
    /// Panics if `coarse_assignment` does not cover the coarse graph.
    #[must_use]
    pub fn project(&self, coarse_assignment: &[u32]) -> Vec<u32> {
        let mut out = Vec::new();
        self.project_into(coarse_assignment, &mut out);
        out
    }

    /// [`Coarsening::project`] into a caller-owned buffer, so an n-level
    /// uncoarsening sweep reuses two assignment buffers instead of
    /// allocating one per level.
    ///
    /// # Panics
    ///
    /// Panics if `coarse_assignment` does not cover the coarse graph.
    pub fn project_into(&self, coarse_assignment: &[u32], out: &mut Vec<u32>) {
        assert_eq!(
            coarse_assignment.len(),
            self.coarse.node_count(),
            "assignment must cover the coarse graph"
        );
        out.clear();
        out.extend(self.map.iter().map(|c| coarse_assignment[c.index()]));
    }

    /// Coarsening ratio `fine nodes / coarse nodes`.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.coarse.node_count() == 0 {
            return 1.0;
        }
        self.map.len() as f64 / self.coarse.node_count() as f64
    }
}

/// Clusters `graph` by heavy-edge matching with the given cluster size
/// cap, deterministically from `seed`. Equivalent to
/// [`coarsen_by_connectivity_threaded`] with one worker.
///
/// Pass `max_cluster_size ≥` twice the max node size to allow any pair
/// to merge; the device size is a natural cap (a cluster larger than the
/// device could never be placed).
///
/// # Panics
///
/// Panics if `max_cluster_size == 0`.
#[must_use]
pub fn coarsen_by_connectivity(graph: &Hypergraph, max_cluster_size: u64, seed: u64) -> Coarsening {
    coarsen_by_connectivity_threaded(graph, max_cluster_size, seed, 1)
}

/// Splits `slots` into at most `threads` contiguous chunks and runs
/// `work(start_index, chunk)` on each, on scoped worker threads when
/// more than one chunk exists. Chunks are disjoint and the split depends
/// only on the slot count, so results never depend on thread count —
/// this is the hypergraph crate's local analogue of the core crate's
/// deterministic `run_indexed` fan-out (the dependency points the other
/// way, so it cannot be reused here).
fn sharded<T: Send>(slots: &mut [T], threads: usize, work: &(dyn Fn(usize, &mut [T]) + Sync)) {
    let threads = threads.max(1).min(slots.len().max(1));
    if threads == 1 {
        work(0, slots);
        return;
    }
    let chunk = slots.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (i, shard) in slots.chunks_mut(chunk).enumerate() {
            scope.spawn(move || work(i * chunk, shard));
        }
    });
}

/// Phase 1 worker: for each node in `out`'s range, score every
/// neighbour (round-start snapshot: nobody is matched) and record the
/// best size-feasible candidate. Ties break toward the smaller node
/// index, a total order, so the result is independent of scan order and
/// of how the range was sharded.
fn propose_range(
    graph: &Hypergraph,
    max_cluster_size: u64,
    start: usize,
    out: &mut [Option<NodeId>],
) {
    let n = graph.node_count();
    let mut connectivity = vec![0.0f64; n];
    let mut touched: Vec<usize> = Vec::new();
    for (offset, slot) in out.iter_mut().enumerate() {
        let v = NodeId::from_index(start + offset);
        touched.clear();
        for &net in graph.nets(v) {
            let pins = graph.pins(net);
            if pins.len() < 2 {
                continue;
            }
            let w = 1.0 / (pins.len() as f64 - 1.0);
            for &u in pins {
                if u != v {
                    if connectivity[u.index()] == 0.0 {
                        touched.push(u.index());
                    }
                    connectivity[u.index()] += w;
                }
            }
        }
        let v_size = u64::from(graph.node_size(v));
        *slot = touched
            .iter()
            .copied()
            .filter(|&u| {
                v_size + u64::from(graph.node_size(NodeId::from_index(u))) <= max_cluster_size
            })
            .max_by(|&a, &b| connectivity[a].total_cmp(&connectivity[b]).then_with(|| b.cmp(&a)))
            .map(NodeId::from_index);
        for &u in &touched {
            connectivity[u] = 0.0;
        }
    }
}

/// [`coarsen_by_connectivity`] with an explicit worker count for the
/// propose and net-projection phases. The result is bit-identical for
/// every `threads` value (the parallel phases write disjoint slots whose
/// contents do not depend on the sharding; all commits are serial), so
/// callers may size the pool freely without changing partitions.
///
/// # Panics
///
/// Panics if `max_cluster_size == 0`.
#[must_use]
pub fn coarsen_by_connectivity_threaded(
    graph: &Hypergraph,
    max_cluster_size: u64,
    seed: u64,
    threads: usize,
) -> Coarsening {
    assert!(max_cluster_size > 0, "cluster size cap must be positive");
    let n = graph.node_count();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);

    // Phase 1: parallel proposals against the all-unmatched snapshot.
    let mut proposal: Vec<Option<NodeId>> = vec![None; n];
    sharded(&mut proposal, threads, &|start, shard| {
        propose_range(graph, max_cluster_size, start, shard);
    });

    // Phase 2: serial commit in shuffled order. A proposal lands iff
    // both endpoints are still unmatched when its proposer is visited.
    let mut matched = vec![false; n];
    let mut absorbed = vec![false; n];
    let mut partner: Vec<Option<NodeId>> = vec![None; n];
    for &v_idx in &order {
        if matched[v_idx] {
            continue;
        }
        if let Some(u) = proposal[v_idx] {
            if !matched[u.index()] {
                matched[v_idx] = true;
                matched[u.index()] = true;
                absorbed[u.index()] = true;
                partner[v_idx] = Some(u);
            }
        }
    }

    // Phase 3: serial leftover matching. Cells whose candidate was taken
    // rescore against the remaining unmatched cells in the same order.
    let mut connectivity = vec![0.0f64; n];
    let mut touched: Vec<usize> = Vec::new();
    for &v_idx in &order {
        if matched[v_idx] {
            continue;
        }
        let v = NodeId::from_index(v_idx);
        touched.clear();
        for &net in graph.nets(v) {
            let pins = graph.pins(net);
            if pins.len() < 2 {
                continue;
            }
            let w = 1.0 / (pins.len() as f64 - 1.0);
            for &u in pins {
                if u != v && !matched[u.index()] {
                    if connectivity[u.index()] == 0.0 {
                        touched.push(u.index());
                    }
                    connectivity[u.index()] += w;
                }
            }
        }
        let v_size = u64::from(graph.node_size(v));
        let best = touched
            .iter()
            .copied()
            .filter(|&u| {
                v_size + u64::from(graph.node_size(NodeId::from_index(u))) <= max_cluster_size
            })
            .max_by(|&a, &b| connectivity[a].total_cmp(&connectivity[b]).then_with(|| b.cmp(&a)));
        for &u in &touched {
            connectivity[u] = 0.0;
        }
        matched[v_idx] = true;
        if let Some(u) = best {
            matched[u] = true;
            absorbed[u] = true;
            partner[v_idx] = Some(NodeId::from_index(u));
        }
    }

    // Assign cluster ids.
    let mut map = vec![NodeId::from_index(0); n];
    let mut builder = HypergraphBuilder::named(format!("{}_coarse", graph.name()));
    let mut next = 0usize;
    for v_idx in 0..n {
        let v = NodeId::from_index(v_idx);
        if let Some(u) = partner[v_idx] {
            let id = builder.add_node(format!("c{next}"), graph.node_size(v) + graph.node_size(u));
            map[v_idx] = id;
            map[u.index()] = id;
            next += 1;
        } else if !absorbed[v_idx] {
            // Singleton (not absorbed by anyone).
            let id = builder.add_node(format!("c{next}"), graph.node_size(v));
            map[v_idx] = id;
            next += 1;
        }
    }

    // Project nets: the per-net pin mapping (map + sort + dedup) shards
    // over workers into disjoint slots; coarse node ids are already
    // final, so projection is independent per net. `None` marks a net
    // absorbed inside one cluster with no terminal.
    let mut projected: Vec<Option<Vec<NodeId>>> = vec![None; graph.net_count()];
    sharded(&mut projected, threads, &|start, shard| {
        for (offset, slot) in shard.iter_mut().enumerate() {
            let net = NetId::from_index(start + offset);
            let mut pins: Vec<NodeId> = graph.pins(net).iter().map(|p| map[p.index()]).collect();
            pins.sort_unstable();
            pins.dedup();
            if pins.len() >= 2 || graph.net_has_terminal(net) {
                *slot = Some(pins);
            }
        }
    });
    for (net, pins) in graph.net_ids().zip(projected) {
        let Some(pins) = pins else { continue };
        let id = builder
            .add_net(graph.net_name(net), pins)
            .expect("projected pins are valid coarse nodes");
        for &t in graph.net_terminals(net) {
            builder.add_terminal(graph.terminal_name(t), id).expect("net id from this builder");
        }
    }

    let coarse = builder.finish().expect("coarse hypergraph is structurally valid");
    Coarsening { coarse, map }
}

/// A full n-level coarsening hierarchy: `levels[0]` clusters the input
/// hypergraph, `levels[i]` clusters `levels[i-1].coarse`. Produced by
/// [`coarsen_to_floor`], consumed finest-to-coarsest on the way down and
/// coarsest-to-finest during uncoarsening.
#[derive(Debug, Clone, Default)]
pub struct Hierarchy {
    /// The coarsening levels, finest first. Empty when the input was
    /// already at or below the floor (partition the input directly).
    pub levels: Vec<Coarsening>,
}

impl Hierarchy {
    /// Number of coarsening levels.
    #[must_use]
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Estimated heap footprint of the whole hierarchy in bytes (sum of
    /// [`Coarsening::approx_bytes`] over the levels).
    #[must_use]
    pub fn approx_bytes(&self) -> u64 {
        self.levels.iter().map(Coarsening::approx_bytes).sum()
    }

    /// The coarsest hypergraph, or `None` when no coarsening happened.
    #[must_use]
    pub fn coarsest(&self) -> Option<&Hypergraph> {
        self.levels.last().map(|c| &c.coarse)
    }

    /// Projects an assignment of the coarsest hypergraph all the way
    /// down to the input hypergraph (no per-level refinement; used to
    /// finish a budget-stopped uncoarsening cheaply).
    ///
    /// # Panics
    ///
    /// Panics if `coarse_assignment` does not cover the coarsest graph.
    #[must_use]
    pub fn project_to_finest(&self, coarse_assignment: &[u32]) -> Vec<u32> {
        let mut cur = coarse_assignment.to_vec();
        let mut next = Vec::new();
        for level in self.levels.iter().rev() {
            level.project_into(&cur, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }
}

/// Coarsening saturates when a level shrinks the node count by less than
/// this ratio: further matching rounds would only add projection cost.
const SATURATION_RATIO: f64 = 1.05;

/// Builds an n-level coarsening [`Hierarchy`] by repeated heavy-edge
/// matching until the node count drops to `floor`, matching saturates
/// (a level shrinks by less than 5%), or `max_levels` is reached.
///
/// Each level derives its matching order from `seed ^ level`, so the
/// hierarchy is deterministic for a given `(graph, cap, floor, seed)`.
///
/// # Panics
///
/// Panics if `max_cluster_size == 0`.
#[must_use]
pub fn coarsen_to_floor(
    graph: &Hypergraph,
    max_cluster_size: u64,
    floor: usize,
    max_levels: usize,
    seed: u64,
) -> Hierarchy {
    coarsen_to_floor_threaded(graph, max_cluster_size, floor, max_levels, seed, 1)
}

/// [`coarsen_to_floor`] with an explicit worker count per level. The
/// hierarchy is bit-identical for every `threads` value (see
/// [`coarsen_by_connectivity_threaded`]).
///
/// # Panics
///
/// Panics if `max_cluster_size == 0`.
#[must_use]
pub fn coarsen_to_floor_threaded(
    graph: &Hypergraph,
    max_cluster_size: u64,
    floor: usize,
    max_levels: usize,
    seed: u64,
    threads: usize,
) -> Hierarchy {
    coarsen_to_floor_timed(graph, max_cluster_size, floor, max_levels, seed, threads, None)
}

/// Per-level profiling callback for [`coarsen_to_floor_timed`]: level
/// index, the level's coarsening, and its wall time.
pub type OnLevel<'a> = &'a mut dyn FnMut(usize, &Coarsening, std::time::Duration);

/// [`coarsen_to_floor_threaded`] with an optional per-level profiling
/// callback, invoked once per **kept** level with the level index, the
/// level's coarsening, and its wall time. The clock is read only when a
/// callback is supplied, so the plain entry points stay free of timing
/// overhead; the callback can never change the hierarchy.
///
/// # Panics
///
/// Panics if `max_cluster_size == 0`.
#[must_use]
pub fn coarsen_to_floor_timed(
    graph: &Hypergraph,
    max_cluster_size: u64,
    floor: usize,
    max_levels: usize,
    seed: u64,
    threads: usize,
    on_level: Option<OnLevel<'_>>,
) -> Hierarchy {
    coarsen_to_floor_budgeted(
        graph,
        max_cluster_size,
        floor,
        max_levels,
        seed,
        threads,
        None,
        on_level,
    )
    .0
}

/// [`coarsen_to_floor_timed`] with an estimated-byte cap on the whole
/// hierarchy (input graph + every kept level's coarse graph and
/// projection map, via [`Hypergraph::approx_bytes`]).
///
/// When the next level would push the estimate past `max_bytes`, that
/// level is discarded and coarsening stops at the current depth; the
/// second return value reports whether the cap truncated the hierarchy.
/// The estimate is a deterministic function of the input and the
/// parameters — never of the allocator or thread count — so budgeted
/// runs stay bit-identical and checkpoint-safe.
///
/// # Panics
///
/// Panics if `max_cluster_size == 0`.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn coarsen_to_floor_budgeted(
    graph: &Hypergraph,
    max_cluster_size: u64,
    floor: usize,
    max_levels: usize,
    seed: u64,
    threads: usize,
    max_bytes: Option<u64>,
    mut on_level: Option<OnLevel<'_>>,
) -> (Hierarchy, bool) {
    let mut hierarchy = Hierarchy::default();
    let mut bytes = graph.approx_bytes();
    let mut truncated = false;
    for level in 0..max_levels {
        let current = hierarchy.coarsest().unwrap_or(graph);
        if current.node_count() <= floor {
            break;
        }
        let started = on_level.is_some().then(std::time::Instant::now);
        let coarsening = coarsen_by_connectivity_threaded(
            current,
            max_cluster_size,
            seed ^ level as u64,
            threads,
        );
        if coarsening.ratio() < SATURATION_RATIO {
            break;
        }
        if let Some(cap) = max_bytes {
            let level_bytes = coarsening.approx_bytes();
            if bytes.saturating_add(level_bytes) > cap {
                truncated = true;
                break;
            }
            bytes += level_bytes;
        }
        if let (Some(on_level), Some(started)) = (on_level.as_deref_mut(), started) {
            on_level(level, &coarsening, started.elapsed());
        }
        hierarchy.levels.push(coarsening);
    }
    (hierarchy, truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{clustered_circuit, window_circuit, ClusteredConfig, WindowConfig};

    #[test]
    fn coarsening_halves_node_count_roughly() {
        let g = window_circuit(&WindowConfig::new("w", 400, 20), 3);
        let c = coarsen_by_connectivity(&g, 4, 7);
        assert!(c.coarse.node_count() < g.node_count());
        assert!(c.coarse.node_count() >= g.node_count() / 2);
        assert!(c.ratio() > 1.0 && c.ratio() <= 2.0);
    }

    #[test]
    fn sizes_are_conserved() {
        let g = window_circuit(&WindowConfig::new("w", 200, 10), 5);
        let c = coarsen_by_connectivity(&g, 8, 1);
        assert_eq!(c.coarse.total_size(), g.total_size());
    }

    #[test]
    fn terminals_survive_coarsening() {
        let g = window_circuit(&WindowConfig::new("w", 150, 12), 9);
        let c = coarsen_by_connectivity(&g, 4, 2);
        assert_eq!(c.coarse.terminal_count(), g.terminal_count());
    }

    #[test]
    fn cluster_size_cap_is_respected() {
        let mut cfg = WindowConfig::new("w", 200, 10);
        cfg.extra_size_prob = 0.5;
        let g = window_circuit(&cfg, 4);
        let cap = 6u64;
        let c = coarsen_by_connectivity(&g, cap, 3);
        for v in c.coarse.node_ids() {
            // A singleton larger than the cap may exist (it was never
            // merged); merged clusters respect the cap.
            let size = u64::from(c.coarse.node_size(v));
            let max_fine = g.node_ids().map(|f| u64::from(g.node_size(f))).max().unwrap_or(1);
            assert!(size <= cap.max(max_fine), "cluster {v:?} has size {size}");
        }
    }

    #[test]
    fn projection_inverts_mapping() {
        let g = window_circuit(&WindowConfig::new("w", 100, 8), 11);
        let c = coarsen_by_connectivity(&g, 4, 5);
        let coarse_assignment: Vec<u32> =
            (0..c.coarse.node_count() as u32).map(|i| i % 3).collect();
        let fine = c.project(&coarse_assignment);
        assert_eq!(fine.len(), g.node_count());
        for v in g.node_ids() {
            assert_eq!(fine[v.index()], coarse_assignment[c.map[v.index()].index()]);
        }
    }

    #[test]
    fn planted_clusters_merge_internally() {
        // Heavy-edge matching on a planted circuit should merge within
        // clusters far more often than across.
        let (g, planted) = clustered_circuit(&ClusteredConfig::new("cl", 4, 20), 13);
        let c = coarsen_by_connectivity(&g, 2, 1);
        let mut cross = 0usize;
        let mut total = 0usize;
        // Two fine nodes sharing a coarse node: same planted cluster?
        for a in g.node_ids() {
            for b in g.node_ids() {
                if a < b && c.map[a.index()] == c.map[b.index()] {
                    total += 1;
                    if planted[a.index()] != planted[b.index()] {
                        cross += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        assert!(
            (cross as f64) < 0.2 * total as f64,
            "{cross}/{total} merges crossed planted clusters"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let g = window_circuit(&WindowConfig::new("w", 120, 8), 2);
        let a = coarsen_by_connectivity(&g, 4, 9);
        let b = coarsen_by_connectivity(&g, 4, 9);
        assert_eq!(a.map, b.map);
        assert_eq!(a.coarse.node_count(), b.coarse.node_count());
    }

    #[test]
    fn bit_identical_at_any_thread_count() {
        let g = window_circuit(&WindowConfig::new("w", 300, 16), 6);
        let serial = coarsen_by_connectivity(&g, 6, 31);
        for threads in 2..=5 {
            let par = coarsen_by_connectivity_threaded(&g, 6, 31, threads);
            assert_eq!(par.map, serial.map, "{threads} threads changed the matching");
            assert_eq!(par.coarse.node_count(), serial.coarse.node_count());
            assert_eq!(par.coarse.net_count(), serial.coarse.net_count());
            for net in serial.coarse.net_ids() {
                assert_eq!(par.coarse.pins(net), serial.coarse.pins(net));
            }
        }
    }

    #[test]
    fn hierarchy_bit_identical_at_any_thread_count() {
        let g = window_circuit(&WindowConfig::new("w", 500, 20), 6);
        let serial = coarsen_to_floor(&g, 8, 40, 32, 11);
        for threads in [2, 4] {
            let par = coarsen_to_floor_threaded(&g, 8, 40, 32, 11, threads);
            assert_eq!(par.level_count(), serial.level_count());
            for (a, b) in par.levels.iter().zip(&serial.levels) {
                assert_eq!(a.map, b.map);
                assert_eq!(a.coarse.node_count(), b.coarse.node_count());
            }
        }
    }

    #[test]
    fn hierarchy_reaches_floor_or_saturates() {
        let g = window_circuit(&WindowConfig::new("w", 600, 24), 17);
        let h = coarsen_to_floor(&g, 8, 50, 32, 5);
        assert!(h.level_count() >= 2, "600 nodes should coarsen more than once");
        let coarsest = h.coarsest().expect("levels exist");
        // Either the floor was reached or the next level would saturate.
        if coarsest.node_count() > 50 {
            let next = coarsen_by_connectivity(coarsest, 8, 5 ^ h.level_count() as u64);
            assert!(next.ratio() < 1.05, "stopped early without saturation");
        }
        // Node counts strictly decrease through the hierarchy.
        let mut prev = g.node_count();
        for level in &h.levels {
            assert!(level.coarse.node_count() < prev);
            assert_eq!(level.map.len(), prev);
            prev = level.coarse.node_count();
        }
        // Sizes are conserved end to end.
        assert_eq!(coarsest.total_size(), g.total_size());
    }

    #[test]
    fn hierarchy_is_empty_at_or_below_floor() {
        let g = window_circuit(&WindowConfig::new("w", 40, 6), 1);
        let h = coarsen_to_floor(&g, 8, 40, 32, 3);
        assert_eq!(h.level_count(), 0);
        assert!(h.coarsest().is_none());
        // Projection through an empty hierarchy is the identity.
        let assignment: Vec<u32> = (0..g.node_count() as u32).map(|i| i % 4).collect();
        assert_eq!(h.project_to_finest(&assignment), assignment);
    }

    #[test]
    fn hierarchy_projection_matches_per_level_projection() {
        let g = window_circuit(&WindowConfig::new("w", 300, 12), 23);
        let h = coarsen_to_floor(&g, 6, 30, 32, 9);
        assert!(h.level_count() >= 1);
        let coarsest = h.coarsest().unwrap();
        let coarse_assignment: Vec<u32> =
            (0..coarsest.node_count() as u32).map(|i| i % 5).collect();
        let direct = h.project_to_finest(&coarse_assignment);
        let mut expected = coarse_assignment.clone();
        for level in h.levels.iter().rev() {
            expected = level.project(&expected);
        }
        assert_eq!(direct, expected);
        assert_eq!(direct.len(), g.node_count());
    }

    #[test]
    fn project_into_reuses_buffer() {
        let g = window_circuit(&WindowConfig::new("w", 100, 8), 11);
        let c = coarsen_by_connectivity(&g, 4, 5);
        let coarse_assignment: Vec<u32> =
            (0..c.coarse.node_count() as u32).map(|i| i % 3).collect();
        let mut out = Vec::with_capacity(g.node_count());
        let cap = out.capacity();
        c.project_into(&coarse_assignment, &mut out);
        assert_eq!(out, c.project(&coarse_assignment));
        assert_eq!(out.capacity(), cap, "projection buffer reallocated");
    }

    #[test]
    fn empty_graph_coarsens_to_empty() {
        let g = crate::HypergraphBuilder::new().finish().unwrap();
        let c = coarsen_by_connectivity(&g, 4, 0);
        assert_eq!(c.coarse.node_count(), 0);
        assert_eq!(c.ratio(), 1.0);
    }
}
