//! BLIF (Berkeley Logic Interchange Format) subset reader.
//!
//! The MCNC benchmarks of the paper's era circulated as BLIF; this
//! module converts the structural subset — `.model`, `.inputs`,
//! `.outputs`, `.names`, `.latch`, `.end` — into a circuit
//! [`Hypergraph`]:
//!
//! * every `.names` (LUT) and `.latch` becomes an interior node of size 1
//!   (one CLB-ish cell per logic function, the granularity of the paper's
//!   mapped netlists);
//! * every signal becomes a net connecting its driver and consumers;
//! * `.inputs` / `.outputs` become primary terminals on their signals.
//!
//! Logic content (the PLA cover lines after `.names`) is parsed and
//! discarded — partitioning only sees structure. Unsupported constructs
//! (`.subckt`, multiple models) are reported as errors rather than
//! silently ignored.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};

use crate::builder::HypergraphBuilder;
use crate::error::ParseNetlistError;
use crate::graph::Hypergraph;
use crate::ids::NodeId;
use crate::limits::ParseLimits;

/// Parses a structural BLIF model into a hypergraph, enforcing
/// [`ParseLimits::default`].
///
/// # Errors
///
/// Returns [`ParseNetlistError`] on unsupported constructs, undeclared
/// signals used as latch inputs, exceeded limits, or structural
/// validation failure.
pub fn read_blif<R: Read>(reader: R) -> Result<Hypergraph, ParseNetlistError> {
    read_blif_limited(reader, &ParseLimits::default())
}

/// Parses a structural BLIF model with explicit resource limits.
///
/// Line length is checked on physical source lines; signal-name length
/// and element/pin counts are checked on logical (continuation-joined)
/// lines, reporting the line where the logical line started.
///
/// # Errors
///
/// See [`read_blif`].
pub fn read_blif_limited<R: Read>(
    reader: R,
    limits: &ParseLimits,
) -> Result<Hypergraph, ParseNetlistError> {
    // Collect logical lines (BLIF continues lines with a trailing `\`).
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line_no = idx + 1;
        let line = line.map_err(|_| ParseNetlistError::NotUtf8 { line: line_no })?;
        limits.check_line(line_no, &line)?;
        let without_comment = match line.find('#') {
            Some(pos) => &line[..pos],
            None => &line[..],
        };
        let trimmed = without_comment.trim_end();
        let (continued, content) = match trimmed.strip_suffix('\\') {
            Some(rest) => (true, rest.trim_end()),
            None => (false, trimmed),
        };
        match pending.take() {
            Some((no, mut acc)) => {
                acc.push(' ');
                acc.push_str(content.trim_start());
                if continued {
                    pending = Some((no, acc));
                } else {
                    logical.push((no, acc));
                }
            }
            None => {
                if continued {
                    pending = Some((line_no, content.to_owned()));
                } else if !content.trim().is_empty() {
                    logical.push((line_no, content.to_owned()));
                }
            }
        }
    }
    if let Some((no, acc)) = pending {
        logical.push((no, acc));
    }

    let mut model_name = String::new();
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    /// One logic element: the node's output signal and input signals.
    struct Element {
        output: String,
        inputs: Vec<String>,
        latch: bool,
    }
    let mut elements: Vec<Element> = Vec::new();
    let mut seen_model = false;
    let mut pin_total = 0usize;

    let mut i = 0usize;
    while i < logical.len() {
        let (line_no, line) = &logical[i];
        let line_no = *line_no;
        let fields = crate::limits::fields_with_columns(line);
        let mut fields = fields.into_iter();
        let Some((_, keyword)) = fields.next() else {
            i += 1;
            continue;
        };
        match keyword {
            ".model" => {
                if seen_model {
                    return Err(ParseNetlistError::UnknownRecord {
                        line: line_no,
                        keyword: ".model (multiple models are not supported)".to_owned(),
                    });
                }
                seen_model = true;
                model_name = match fields.next() {
                    Some((col, name)) => {
                        limits.check_name(line_no, col, name)?;
                        name.to_owned()
                    }
                    None => "blif".to_owned(),
                };
                i += 1;
            }
            ".inputs" => {
                for (col, name) in fields {
                    limits.check_name(line_no, col, name)?;
                    inputs.push(name.to_owned());
                }
                i += 1;
            }
            ".outputs" => {
                for (col, name) in fields {
                    limits.check_name(line_no, col, name)?;
                    outputs.push(name.to_owned());
                }
                i += 1;
            }
            ".names" => {
                let mut signals: Vec<String> = Vec::new();
                for (col, name) in fields {
                    limits.check_name(line_no, col, name)?;
                    if pin_total >= limits.max_pins {
                        return Err(ParseNetlistError::LimitExceeded {
                            line: line_no,
                            column: col,
                            what: "pin count",
                            limit: limits.max_pins,
                        });
                    }
                    pin_total += 1;
                    signals.push(name.to_owned());
                }
                let Some((output, input_signals)) = signals.split_last() else {
                    return Err(ParseNetlistError::MalformedRecord {
                        line: line_no,
                        expected: ".names <inputs…> <output>",
                    });
                };
                if elements.len() >= limits.max_nodes {
                    return Err(ParseNetlistError::LimitExceeded {
                        line: line_no,
                        column: 1,
                        what: "node count",
                        limit: limits.max_nodes,
                    });
                }
                elements.push(Element {
                    output: output.clone(),
                    inputs: input_signals.to_vec(),
                    latch: false,
                });
                // Skip the PLA cover lines (rows of 01- and output bits).
                i += 1;
                while i < logical.len() {
                    let body = logical[i].1.trim_start();
                    if body.starts_with('.') {
                        break;
                    }
                    i += 1;
                }
            }
            ".latch" => {
                let signals: Vec<(usize, &str)> = fields.collect();
                if signals.len() < 2 {
                    return Err(ParseNetlistError::MalformedRecord {
                        line: line_no,
                        expected: ".latch <input> <output> [type control] [init]",
                    });
                }
                for &(col, name) in &signals[..2] {
                    limits.check_name(line_no, col, name)?;
                }
                if elements.len() >= limits.max_nodes {
                    return Err(ParseNetlistError::LimitExceeded {
                        line: line_no,
                        column: 1,
                        what: "node count",
                        limit: limits.max_nodes,
                    });
                }
                pin_total += 2;
                elements.push(Element {
                    output: signals[1].1.to_owned(),
                    inputs: vec![signals[0].1.to_owned()],
                    latch: true,
                });
                i += 1;
            }
            ".end" => {
                i += 1;
            }
            other => {
                return Err(ParseNetlistError::UnknownRecord {
                    line: line_no,
                    keyword: other.to_owned(),
                });
            }
        }
    }

    // Build: one node per element; one net per signal with consumers.
    // Strict duplicate-name checking: a signal listed twice in
    // `.inputs`/`.outputs` is an input error, not two identical pads.
    let mut builder = HypergraphBuilder::named(model_name).check_duplicate_names(true);
    let mut driver_of: HashMap<&str, NodeId> = HashMap::new();
    let mut nodes = Vec::with_capacity(elements.len());
    for (idx, element) in elements.iter().enumerate() {
        let kind = if element.latch { "lat" } else { "lut" };
        let node = builder.add_node(format!("{kind}_{}_{idx}", element.output), 1);
        nodes.push(node);
        driver_of.insert(element.output.as_str(), node);
    }

    // Consumers per signal.
    let mut consumers: HashMap<&str, Vec<NodeId>> = HashMap::new();
    for (idx, element) in elements.iter().enumerate() {
        for input in &element.inputs {
            consumers.entry(input.as_str()).or_default().push(nodes[idx]);
        }
    }

    // Nets: every signal that has a driver or is a primary input, with
    // its pins (driver + consumers, deduplicated).
    let mut net_of: HashMap<&str, crate::ids::NetId> = HashMap::new();
    let mut signals: Vec<&str> = driver_of.keys().copied().collect();
    for input in &inputs {
        if !driver_of.contains_key(input.as_str()) {
            signals.push(input.as_str());
        }
    }
    signals.sort_unstable();
    for signal in signals {
        let mut pins: Vec<NodeId> = Vec::new();
        if let Some(&driver) = driver_of.get(signal) {
            pins.push(driver);
        }
        for &consumer in consumers.get(signal).map(Vec::as_slice).unwrap_or(&[]) {
            if !pins.contains(&consumer) {
                pins.push(consumer);
            }
        }
        if pins.is_empty() {
            continue; // dangling primary input
        }
        let net = builder.add_net(format!("n_{signal}"), pins)?;
        net_of.insert(signal, net);
    }

    for input in &inputs {
        if let Some(&net) = net_of.get(input.as_str()) {
            builder.add_terminal(format!("pi_{input}"), net)?;
        }
    }
    for output in &outputs {
        if let Some(&net) = net_of.get(output.as_str()) {
            builder.add_terminal(format!("po_{output}"), net)?;
        }
    }
    Ok(builder.finish()?)
}

/// Parses BLIF from a string slice.
///
/// # Errors
///
/// See [`read_blif`].
pub fn parse_blif(text: &str) -> Result<Hypergraph, ParseNetlistError> {
    read_blif(text.as_bytes())
}

/// Parses BLIF from a string slice with explicit resource limits.
///
/// # Errors
///
/// See [`read_blif_limited`].
pub fn parse_blif_limited(
    text: &str,
    limits: &ParseLimits,
) -> Result<Hypergraph, ParseNetlistError> {
    read_blif_limited(text.as_bytes(), limits)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL_ADDER: &str = "\
# a full adder
.model adder
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
";

    #[test]
    fn parses_full_adder() {
        let g = parse_blif(FULL_ADDER).unwrap();
        assert_eq!(g.name(), "adder");
        assert_eq!(g.node_count(), 2); // two .names
                                       // nets: a, b, cin (no driver, consumers only), sum, cout
        assert_eq!(g.net_count(), 5);
        // terminals: 3 inputs + 2 outputs
        assert_eq!(g.terminal_count(), 5);
    }

    #[test]
    fn latch_becomes_a_node() {
        let text = "\
.model seq
.inputs d clk
.outputs q
.latch d q re clk 0
.end
";
        let g = parse_blif(text).unwrap();
        assert_eq!(g.node_count(), 1);
        let node = g.node_ids().next().unwrap();
        assert!(g.node_name(node).starts_with("lat_"));
        // nets: d (pi → latch), q (latch → po). The latch control (clk)
        // is treated as a global clock and carries no partitioning pins,
        // so its dangling primary input is dropped.
        assert_eq!(g.net_count(), 2);
        assert_eq!(g.terminal_count(), 2);
    }

    #[test]
    fn continuation_lines_are_joined() {
        let text = "\
.model c
.inputs a \\
b
.outputs y
.names a b y
11 1
.end
";
        let g = parse_blif(text).unwrap();
        assert_eq!(g.terminal_count(), 3);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn unsupported_construct_is_an_error() {
        let text = ".model c\n.subckt foo a=b\n.end\n";
        let err = parse_blif(text).unwrap_err();
        assert!(matches!(err, ParseNetlistError::UnknownRecord { .. }));
    }

    #[test]
    fn multiple_models_rejected() {
        let text = ".model a\n.end\n.model b\n.end\n";
        let err = parse_blif(text).unwrap_err();
        assert!(matches!(err, ParseNetlistError::UnknownRecord { .. }));
    }

    #[test]
    fn fanout_nets_connect_driver_and_consumers() {
        let text = "\
.model f
.inputs a
.outputs y z
.names a m
1 1
.names m y
1 1
.names m z
1 1
.end
";
        let g = parse_blif(text).unwrap();
        assert_eq!(g.node_count(), 3);
        let m_net = g.find_net("n_m").unwrap();
        assert_eq!(g.pins(m_net).len(), 3); // driver + two consumers
    }

    #[test]
    fn constant_names_without_inputs() {
        // `.names y` followed by a cover defines a constant driver.
        let text = ".model k\n.outputs y\n.names y\n1\n.end\n";
        let g = parse_blif(text).unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.net_count(), 1);
        assert_eq!(g.terminal_count(), 1);
    }

    #[test]
    fn element_count_limit_is_typed() {
        let limits = ParseLimits { max_nodes: 1, ..ParseLimits::unlimited() };
        let err = parse_blif_limited(FULL_ADDER, &limits).unwrap_err();
        assert!(matches!(
            err,
            ParseNetlistError::LimitExceeded { line: 10, column: 1, what: "node count", limit: 1 }
        ));
    }

    #[test]
    fn signal_name_length_limit_is_typed() {
        let limits = ParseLimits { max_name_len: 4, ..ParseLimits::unlimited() };
        let err =
            parse_blif_limited(".model m\n.inputs verylongsignal\n.end\n", &limits).unwrap_err();
        assert!(matches!(
            err,
            ParseNetlistError::LimitExceeded { line: 2, column: 9, what: "name length", limit: 4 }
        ));
    }

    #[test]
    fn adjacency_is_consistent_after_blif_parse() {
        let g = parse_blif(FULL_ADDER).unwrap();
        for net in g.net_ids() {
            for &pin in g.pins(net) {
                assert!(g.nets(pin).contains(&net));
            }
        }
    }
}
