//! Table-driven corpus of malformed edit scripts.
//!
//! Mirrors `parser_robustness.rs`: every entry is a hostile input —
//! unknown ops, dangling references, duplicate adds, truncated lines,
//! non-UTF-8 bytes — paired with the *exact* typed error the edit-script
//! machinery must produce. Error locations (line, column) are part of
//! the format contract: the CLI prints them verbatim, so a refactor that
//! shifts a line number is a regression, not a cosmetic change.

use fpart_hypergraph::{
    apply_script, ApplyEditError, EditScript, Hypergraph, HypergraphBuilder, ParseEditError,
};

/// One parse-corpus entry: a name (for failure messages), the raw
/// input, and the expected rejection.
struct ParseCase {
    name: &'static str,
    input: &'static str,
    expected: ParseEditError,
}

fn parse_corpus() -> Vec<ParseCase> {
    vec![
        ParseCase {
            name: "not an object at all",
            input: "not json\n",
            expected: ParseEditError::InvalidToken {
                line: 1,
                column: 1,
                expected: "`{` opening the operation object",
                found: "not".into(),
            },
        },
        ParseCase {
            name: "unknown op name",
            input: "{\"op\": \"explode\", \"name\": \"x\"}\n",
            expected: ParseEditError::UnknownOp { line: 1, column: 2, op: "explode".into() },
        },
        ParseCase {
            name: "add_node without size",
            input: "{\"op\": \"add_node\", \"name\": \"x\"}\n",
            expected: ParseEditError::MissingField {
                line: 1,
                op: "add_node".into(),
                field: "size",
            },
        },
        ParseCase {
            name: "add_node without name",
            input: "{\"op\": \"add_node\", \"size\": 2}\n",
            expected: ParseEditError::MissingField {
                line: 1,
                op: "add_node".into(),
                field: "name",
            },
        },
        ParseCase {
            name: "no op field",
            input: "{\"name\": \"x\", \"size\": 2}\n",
            expected: ParseEditError::MissingField { line: 1, op: "?".into(), field: "op" },
        },
        ParseCase {
            name: "size is not a number",
            input: "{\"op\": \"add_node\", \"name\": \"x\", \"size\": \"two\"}\n",
            expected: ParseEditError::InvalidToken {
                line: 1,
                column: 41,
                expected: "an unsigned size",
                found: "\"two\"".into(),
            },
        },
        ParseCase {
            name: "field foreign to the op",
            input: "{\"op\": \"remove_node\", \"name\": \"x\", \"size\": 2}\n",
            expected: ParseEditError::UnknownField { line: 1, column: 36, field: "size".into() },
        },
        ParseCase {
            name: "duplicate field",
            input: "{\"op\": \"remove_net\", \"name\": \"a\", \"name\": \"b\"}\n",
            expected: ParseEditError::UnknownField { line: 1, column: 35, field: "name".into() },
        },
        ParseCase {
            name: "field no op knows",
            input: "{\"op\": \"add_node\", \"weight\": 2}\n",
            expected: ParseEditError::UnknownField { line: 1, column: 20, field: "weight".into() },
        },
        ParseCase {
            name: "truncated pin list",
            input: "{\"op\": \"add_net\", \"name\": \"n\", \"pins\": [\"a\", \"b\"\n",
            expected: ParseEditError::UnexpectedEnd {
                line: 1,
                expected: "`]` closing the pin list",
            },
        },
        ParseCase {
            name: "truncated string",
            input: "{\"op\": \"remove_node\", \"name\": \"x\n",
            expected: ParseEditError::UnexpectedEnd { line: 1, expected: "closing `\"`" },
        },
        ParseCase {
            name: "truncated object",
            input: "{\"op\": \"remove_node\", \"name\": \"x\"\n",
            expected: ParseEditError::UnexpectedEnd {
                line: 1,
                expected: "`}` closing the operation object",
            },
        },
        ParseCase {
            name: "trailing junk after the object",
            input: "{\"op\": \"remove_node\", \"name\": \"x\"} extra\n",
            expected: ParseEditError::InvalidToken {
                line: 1,
                column: 36,
                expected: "end of line after the operation object",
                found: "e".into(),
            },
        },
        ParseCase {
            name: "missing colon",
            input: "{\"op\" \"add_node\"}\n",
            expected: ParseEditError::InvalidToken {
                line: 1,
                column: 7,
                expected: "`:` after the field name",
                found: "\"add_node\"".into(),
            },
        },
        ParseCase {
            name: "bad string escape",
            input: "{\"op\": \"remove_node\", \"name\": \"a\\qb\"}\n",
            expected: ParseEditError::InvalidToken {
                line: 1,
                column: 33,
                expected: "string escape",
                found: "\\q".into(),
            },
        },
        ParseCase {
            name: "error location past comments and blanks",
            input: "# eco spin 7\n\n{\"op\": \"grow\", \"name\": \"x\"}\n",
            expected: ParseEditError::UnknownOp { line: 3, column: 2, op: "grow".into() },
        },
    ]
}

#[test]
fn every_malformed_script_is_rejected_with_an_exact_location() {
    for case in parse_corpus() {
        let got = EditScript::parse(case.input).expect_err(case.name);
        assert_eq!(got, case.expected, "case `{}`", case.name);
        // The same input through the byte reader hits the same error.
        let via_read = EditScript::read(case.input.as_bytes()).expect_err(case.name);
        assert_eq!(via_read, case.expected, "case `{}` via read", case.name);
    }
}

#[test]
fn non_utf8_bytes_name_the_line() {
    let bytes: &[u8] = b"{\"op\": \"remove_node\", \"name\": \"x\"}\n\xff\xfe\n";
    let err = EditScript::read(bytes).unwrap_err();
    assert_eq!(err, ParseEditError::NotUtf8 { line: 2 });
    // Non-UTF-8 on the first line too.
    let err = EditScript::read(&b"\xc3\x28\n"[..]).unwrap_err();
    assert_eq!(err, ParseEditError::NotUtf8 { line: 1 });
}

#[test]
fn parse_errors_render_with_line_and_column() {
    let err = EditScript::parse("{\"op\": \"explode\", \"name\": \"x\"}\n").unwrap_err();
    assert_eq!(err.to_string(), "line 1, column 2: unknown edit operation `explode`");
    let err = EditScript::parse("nope\n").unwrap_err();
    assert_eq!(
        err.to_string(),
        "line 1, column 1: expected `{` opening the operation object, found `nope`"
    );
}

/// Fixture for apply errors: nodes a, b, c; nets n0 = {a, b} (with a
/// terminal), n1 = {b, c}.
fn fixture() -> Hypergraph {
    let mut builder = HypergraphBuilder::named("fix");
    let a = builder.add_node("a", 1);
    let b = builder.add_node("b", 1);
    let c = builder.add_node("c", 1);
    let n0 = builder.add_net("n0", [a, b]).unwrap();
    builder.add_net("n1", [b, c]).unwrap();
    builder.add_terminal("t0", n0).unwrap();
    builder.finish().unwrap()
}

/// One apply-corpus entry: the script (JSONL text) and the expected
/// typed rejection, which must carry the script line of the bad op.
struct ApplyCase {
    name: &'static str,
    script: &'static str,
    expected: ApplyEditError,
}

fn apply_corpus() -> Vec<ApplyCase> {
    vec![
        ApplyCase {
            name: "remove of a node that never existed",
            script: "{\"op\": \"remove_node\", \"name\": \"zz\"}\n",
            expected: ApplyEditError::UnknownNode { line: 1, name: "zz".into() },
        },
        ApplyCase {
            name: "dangling node after an earlier removal",
            script: "{\"op\": \"remove_node\", \"name\": \"a\"}\n\
                     {\"op\": \"resize_node\", \"name\": \"a\", \"size\": 2}\n",
            expected: ApplyEditError::UnknownNode { line: 2, name: "a".into() },
        },
        ApplyCase {
            name: "dangling net",
            script: "{\"op\": \"connect_pin\", \"net\": \"nope\", \"node\": \"a\"}\n",
            expected: ApplyEditError::UnknownNet { line: 1, name: "nope".into() },
        },
        ApplyCase {
            name: "duplicate node add",
            script: "{\"op\": \"add_node\", \"name\": \"a\", \"size\": 1}\n",
            expected: ApplyEditError::DuplicateNode { line: 1, name: "a".into() },
        },
        ApplyCase {
            name: "duplicate net add",
            script: "{\"op\": \"add_net\", \"name\": \"n0\", \"pins\": [\"a\"]}\n",
            expected: ApplyEditError::DuplicateNet { line: 1, name: "n0".into() },
        },
        ApplyCase {
            name: "connecting an existing pin",
            script: "{\"op\": \"connect_pin\", \"net\": \"n0\", \"node\": \"a\"}\n",
            expected: ApplyEditError::DuplicatePin { line: 1, net: "n0".into(), node: "a".into() },
        },
        ApplyCase {
            name: "duplicate pin inside add_net",
            script: "{\"op\": \"add_net\", \"name\": \"nx\", \"pins\": [\"a\", \"a\"]}\n",
            expected: ApplyEditError::DuplicatePin { line: 1, net: "nx".into(), node: "a".into() },
        },
        ApplyCase {
            name: "disconnecting a pin the net does not have",
            script: "{\"op\": \"disconnect_pin\", \"net\": \"n0\", \"node\": \"c\"}\n",
            expected: ApplyEditError::MissingPin { line: 1, net: "n0".into(), node: "c".into() },
        },
        ApplyCase {
            name: "empty pin list",
            script: "{\"op\": \"add_net\", \"name\": \"nx\", \"pins\": []}\n",
            expected: ApplyEditError::EmptyNet { line: 1, net: "nx".into() },
        },
        ApplyCase {
            name: "zero-size add",
            script: "{\"op\": \"add_node\", \"name\": \"x\", \"size\": 0}\n",
            expected: ApplyEditError::ZeroSize { line: 1, name: "x".into() },
        },
        ApplyCase {
            name: "zero-size resize",
            script: "{\"op\": \"resize_node\", \"name\": \"a\", \"size\": 0}\n",
            expected: ApplyEditError::ZeroSize { line: 1, name: "a".into() },
        },
    ]
}

#[test]
fn every_bad_apply_is_rejected_with_the_script_line() {
    let graph = fixture();
    for case in apply_corpus() {
        let script = EditScript::parse(case.script).expect(case.name);
        let got = apply_script(&graph, &script).expect_err(case.name);
        assert_eq!(got, case.expected, "case `{}`", case.name);
    }
}

#[test]
fn apply_errors_render_the_script_line() {
    let graph = fixture();
    let script =
        EditScript::parse("# spin\n{\"op\": \"remove_node\", \"name\": \"zz\"}\n").unwrap();
    let err = apply_script(&graph, &script).unwrap_err();
    assert_eq!(err.to_string(), "line 2: reference to unknown node `zz`");
}
