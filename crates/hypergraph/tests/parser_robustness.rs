//! Table-driven corpus of malformed netlist files.
//!
//! Every entry is a small hostile input — truncated, inconsistent, or
//! plain binary garbage — paired with the *exact* error the parser must
//! produce. The point is that error locations (line, column) and
//! variants are part of the format contract: the CLI prints them
//! verbatim to users, so a refactor that shifts a line number or
//! collapses variants is a regression, not a cosmetic change.

use fpart_hypergraph::blif::{parse_blif, read_blif};
use fpart_hypergraph::hmetis::{parse_hmetis, read_hmetis};
use fpart_hypergraph::io::{parse_netlist, read_netlist};
use fpart_hypergraph::{BuildError, ParseNetlistError};

/// One corpus entry: a name (for failure messages), the raw input, and
/// the expected rejection.
struct Case {
    name: &'static str,
    parse: fn(&str) -> Result<(), ParseNetlistError>,
    input: &'static str,
    expected: ParseNetlistError,
}

fn hgr(input: &str) -> Result<(), ParseNetlistError> {
    parse_hmetis(input).map(|_| ())
}

fn fhg(input: &str) -> Result<(), ParseNetlistError> {
    parse_netlist(input).map(|_| ())
}

fn blif(input: &str) -> Result<(), ParseNetlistError> {
    parse_blif(input).map(|_| ())
}

fn corpus() -> Vec<Case> {
    vec![
        // --- hMETIS .hgr ---
        Case {
            name: "hgr: empty file",
            parse: hgr,
            input: "",
            expected: ParseNetlistError::UnexpectedEnd {
                line: 1,
                expected: "hMETIS header `<edges> <vertices> [fmt]`",
            },
        },
        Case {
            name: "hgr: comments only",
            parse: hgr,
            input: "% nothing\n% here\n",
            expected: ParseNetlistError::UnexpectedEnd {
                line: 2,
                expected: "hMETIS header `<edges> <vertices> [fmt]`",
            },
        },
        Case {
            name: "hgr: truncated header",
            parse: hgr,
            input: "3\n",
            expected: ParseNetlistError::MalformedRecord { line: 1, expected: "vertex count" },
        },
        Case {
            name: "hgr: non-numeric edge count",
            parse: hgr,
            input: "many 4\n1 2\n",
            expected: ParseNetlistError::InvalidToken {
                line: 1,
                column: 1,
                expected: "hyperedge count",
                found: "many".into(),
            },
        },
        Case {
            name: "hgr: unsupported fmt",
            parse: hgr,
            input: "1 2 99\n1 2\n",
            expected: ParseNetlistError::InvalidToken {
                line: 1,
                column: 5,
                expected: "fmt of 0, 1, 10, or 11",
                found: "99".into(),
            },
        },
        Case {
            name: "hgr: fewer edge lines than the header promises",
            parse: hgr,
            input: "% tiny\n2 3\n1 2\n",
            expected: ParseNetlistError::UnexpectedEnd {
                line: 3,
                expected: "one line per hyperedge",
            },
        },
        Case {
            name: "hgr: more edge lines than the header promises",
            parse: hgr,
            input: "1 3\n1 2\n2 3\n",
            expected: ParseNetlistError::MalformedRecord {
                line: 3,
                expected: "end of file after the last record",
            },
        },
        Case {
            name: "hgr: pin index past the vertex count",
            parse: hgr,
            input: "1 3\n1 7\n",
            expected: ParseNetlistError::UnknownName { line: 2, name: "7".into() },
        },
        Case {
            name: "hgr: pin index zero (format is 1-based)",
            parse: hgr,
            input: "1 3\n0 2\n",
            expected: ParseNetlistError::UnknownName { line: 2, name: "0".into() },
        },
        Case {
            name: "hgr: non-numeric pin with column",
            parse: hgr,
            input: "1 3\n1 2 vx\n",
            expected: ParseNetlistError::InvalidToken {
                line: 2,
                column: 5,
                expected: "1-based vertex index",
                found: "vx".into(),
            },
        },
        Case {
            name: "hgr: missing vertex weight lines (fmt 10)",
            parse: hgr,
            input: "1 2 10\n1 2\n3\n",
            expected: ParseNetlistError::UnexpectedEnd {
                line: 3,
                expected: "one weight line per vertex",
            },
        },
        Case {
            name: "hgr: zero vertex weight fails validation",
            parse: hgr,
            input: "1 2 10\n1 2\n1\n0\n",
            expected: ParseNetlistError::Build(BuildError::ZeroSizeNode { node: "v2".into() }),
        },
        Case {
            name: "hgr: empty net (no pins under fmt 1)",
            parse: hgr,
            input: "1 2 1\n5\n",
            expected: ParseNetlistError::Build(BuildError::EmptyNet { net: "e0".into() }),
        },
        // --- .fhg ---
        Case {
            name: "fhg: unknown record keyword",
            parse: fhg,
            input: "circuit c\nwire w a b\n",
            expected: ParseNetlistError::UnknownRecord { line: 2, keyword: "wire".into() },
        },
        Case {
            name: "fhg: node without a size",
            parse: fhg,
            input: "circuit c\nnode a\n",
            expected: ParseNetlistError::MalformedRecord {
                line: 2,
                expected: "`node <name> <size>`",
            },
        },
        Case {
            name: "fhg: net referencing an undeclared cell",
            parse: fhg,
            input: "node a 1\nnet n1 a ghost\n",
            expected: ParseNetlistError::UnknownName { line: 2, name: "ghost".into() },
        },
        Case {
            name: "fhg: duplicate cell name",
            parse: fhg,
            input: "node a 1\nnode a 2\nnet n a\n",
            expected: ParseNetlistError::Build(BuildError::DuplicateName { name: "a".into() }),
        },
        Case {
            name: "fhg: zero-size cell",
            parse: fhg,
            input: "node a 0\nnet n a\n",
            expected: ParseNetlistError::Build(BuildError::ZeroSizeNode { node: "a".into() }),
        },
        Case {
            name: "fhg: terminal on an undeclared net",
            parse: fhg,
            input: "node a 1\nnet n a\nterminal p ghost\n",
            expected: ParseNetlistError::UnknownName { line: 3, name: "ghost".into() },
        },
        // --- BLIF ---
        Case {
            name: "blif: unsupported construct",
            parse: blif,
            input: ".model c\n.subckt foo a=b\n.end\n",
            expected: ParseNetlistError::UnknownRecord { line: 2, keyword: ".subckt".into() },
        },
        Case {
            name: "blif: bare .names without signals",
            parse: blif,
            input: ".model c\n.names\n.end\n",
            expected: ParseNetlistError::MalformedRecord {
                line: 2,
                expected: ".names <inputs…> <output>",
            },
        },
        Case {
            name: "blif: .latch missing its output",
            parse: blif,
            input: ".model c\n.latch d\n.end\n",
            expected: ParseNetlistError::MalformedRecord {
                line: 2,
                expected: ".latch <input> <output> [type control] [init]",
            },
        },
    ]
}

#[test]
fn corpus_is_rejected_with_exact_errors() {
    let corpus = corpus();
    assert!(corpus.len() >= 15, "corpus should stay comprehensive");
    for case in &corpus {
        match (case.parse)(case.input) {
            Ok(()) => panic!("{}: parser accepted malformed input", case.name),
            Err(err) => assert_eq!(err, case.expected, "{}", case.name),
        }
    }
}

/// Non-UTF8 inputs can't be expressed as `&str` cases; cover the byte
/// paths directly for both line-oriented readers.
#[test]
fn non_utf8_bytes_are_a_typed_error_with_a_line_number() {
    let err = read_hmetis(&b"1 2\n\xc3\x28 1\n"[..]).unwrap_err();
    assert_eq!(err, ParseNetlistError::NotUtf8 { line: 2 });

    let err = read_netlist(&b"node a 1\nnet n \xff\n"[..]).unwrap_err();
    assert_eq!(err, ParseNetlistError::NotUtf8 { line: 2 });

    let err = read_blif(&b".model c\n.inputs \x80\n.end\n"[..]).unwrap_err();
    assert_eq!(err, ParseNetlistError::NotUtf8 { line: 2 });
}

/// Every corpus error message renders with location context and no
/// debug formatting — these strings reach CLI users verbatim.
#[test]
fn corpus_errors_display_with_location_context() {
    for case in &corpus() {
        let err = (case.parse)(case.input).unwrap_err();
        let text = err.to_string();
        match err {
            ParseNetlistError::Build(_) => {
                assert!(text.starts_with("netlist validation failed:"), "{}: {text}", case.name);
            }
            _ => assert!(text.starts_with("line "), "{}: {text}", case.name),
        }
        assert!(!text.contains("Error"), "{}: looks like debug output: {text}", case.name);
    }
}
