//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the Criterion API the workspace's benches
//! use — [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`criterion_group!`], [`criterion_main!`]
//! — with a simple measured-median reporter instead of Criterion's
//! statistical machinery. Good enough to keep the benches compiling,
//! runnable, and emitting comparable numbers without crates.io access.
//!
//! Each benchmark runs a short warmup, then `sample_size` timed samples
//! of an adaptively chosen iteration batch, and reports the median
//! per-iteration time on stdout as both a human line and a
//! machine-greppable `CRITERION_JSON {...}` line.

use std::time::{Duration, Instant};

/// Opaque hint preventing the optimizer from deleting a value.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Batch sizing hint for [`Bencher::iter_batched`]; only the API shape
/// matters to this stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap; batch many per timing sample.
    SmallInput,
    /// Inputs are expensive; batch few.
    LargeInput,
    /// One input per timing sample.
    PerIteration,
}

/// Benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(150),
            measure: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement-time budget.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measure = d;
        self
    }

    /// Runs one benchmark and prints its median per-iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measure: self.measure,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }
}

/// Per-benchmark measurement driver handed to the closure.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    sample_size: usize,
    /// Per-iteration seconds, one entry per timed sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup, and estimate a batch size targeting ~10ms per sample.
        let mut iters_done = 0u64;
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up || iters_done == 0 {
            black_box(routine());
            iters_done += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done as f64;
        let per_sample = self.measure.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed().as_secs_f64() / batch as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warmup one run to fault in caches and estimate cost.
        let input = setup();
        let warm_start = Instant::now();
        black_box(routine(input));
        let per_iter = warm_start.elapsed().as_secs_f64();
        let per_sample = self.measure.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 100_000);

        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(start.elapsed().as_secs_f64() / batch as f64);
        }
    }

    /// Prints the median per-iteration time for this benchmark.
    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        self.samples.sort_by(f64::total_cmp);
        let median = self.samples[self.samples.len() / 2];
        let lo = self.samples[0];
        let hi = self.samples[self.samples.len() - 1];
        println!(
            "{id:<40} median {}  [min {}, max {}]  ({} samples)",
            format_time(median),
            format_time(lo),
            format_time(hi),
            self.samples.len(),
        );
        println!(
            "CRITERION_JSON {{\"id\":\"{id}\",\"median_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{}}}",
            median * 1e9,
            lo * 1e9,
            hi * 1e9,
            self.samples.len(),
        );
    }
}

/// Human-readable seconds.
fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut count = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut c = Criterion::default().sample_size(2).warm_up_time(Duration::from_millis(1));
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u32, 2, 3],
                |v| v.into_iter().sum::<u32>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn format_time_picks_sane_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
