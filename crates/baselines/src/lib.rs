//! Baseline multi-way FPGA partitioners for comparison against FPART.
//!
//! The paper's evaluation (Tables 2–5) compares FPART against previously
//! published methods. This crate re-implements the two comparable,
//! self-contained ones plus a naive floor:
//!
//! * [`kway`] — a k-way.x-style `(p,p)` baseline: recursive bipartition
//!   with plain FM improvement between the two lately partitioned blocks
//!   only, ranking solutions by cut size (Kuznar/Brglez/Kozminski,
//!   DAC'93);
//! * [`flow`] — an FBB-MW-style network-flow method: star-expanded
//!   flow network, Dinic max-flow, flow-balanced-bipartition peeling with
//!   area and pin constraints (Liu & Wong, TCAD'98);
//! * [`naive`] — first-fit BFS clustering, the floor any serious method
//!   must beat;
//! * [`mod@replicate`] — a Kring–Newton-style logic-replication post-pass,
//!   the "r" ingredient of the r+p.0 and PROP comparison methods.
//!
//! The full replication/re-optimization flows (r+p.0, PROP) and the
//! emulator-specific methods (SC, WCDP) depend on machinery outside the
//! paper's own scope (vendor re-optimization, emulator set covering);
//! their columns are reproduced in the benchmark tables from the
//! published numbers, while [`mod@replicate`] demonstrates the replication
//! ingredient itself on our partitions.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod flow;
pub mod kway;
pub mod naive;
pub mod replicate;

pub use flow::{fbb_mw_partition, FlowConfig};
pub use kway::kway_partition;
pub use naive::first_fit_partition;
pub use replicate::{replicate, ReplicationOutcome};

use fpart_device::DeviceConstraints;
use fpart_hypergraph::Hypergraph;

/// Common result shape of all baseline partitioners.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// Final block index per node.
    pub assignment: Vec<u32>,
    /// Devices used.
    pub device_count: usize,
    /// Whether every block meets the constraints.
    pub feasible: bool,
    /// Nets spanning more than one block.
    pub cut: usize,
}

impl BaselineOutcome {
    /// Validates the outcome against the graph and device (used by tests
    /// and the benchmark harness).
    ///
    /// # Panics
    ///
    /// Panics if the assignment shape is inconsistent with the graph or
    /// `feasible` misreports the per-block constraint check.
    pub fn validate(&self, graph: &Hypergraph, constraints: DeviceConstraints) {
        assert_eq!(self.assignment.len(), graph.node_count());
        if graph.node_count() == 0 {
            return;
        }
        let k = self.device_count;
        assert!(self.assignment.iter().all(|&b| (b as usize) < k));
        let state = fpart_core::PartitionState::from_assignment(graph, self.assignment.clone(), k);
        let all_fit =
            (0..k).all(|b| constraints.fits(state.block_size(b), state.block_terminals(b)));
        assert_eq!(all_fit, self.feasible, "feasibility flag disagrees with blocks");
        assert_eq!(state.cut_count(), self.cut, "cut count disagrees");
    }
}
