//! Dinic's maximum-flow algorithm on an adjacency-list flow network.
//!
//! Used by the FBB-MW-style baseline: hypergraph min-cuts are computed by
//! max-flow on the star-expanded network, and the source side of the
//! minimum cut is read off the final residual graph.

/// Edge capacity type. `CAP_INF` models the uncuttable infinite edges of
/// the star expansion.
pub type Cap = u64;

/// Effectively infinite capacity (never saturated by unit-capacity nets).
pub const CAP_INF: Cap = u64::MAX / 4;

#[derive(Debug, Clone)]
struct Edge {
    to: u32,
    cap: Cap,
    /// Index of the reverse edge in `graph[to]`.
    rev: u32,
}

/// A flow network supporting incremental max-flow queries.
///
/// Nodes are dense `usize` indices fixed at construction; edges are added
/// with [`FlowNetwork::add_edge`]. Residual state persists between
/// [`FlowNetwork::max_flow`] calls, so augmenting after adding edges
/// (as the FBB loop does when collapsing nodes into the source) only pays
/// for the *new* flow.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    graph: Vec<Vec<Edge>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        FlowNetwork { graph: vec![Vec::new(); n], level: vec![-1; n], iter: vec![0; n] }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Returns `true` for an empty network.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Adds a directed edge `u → v` with the given capacity (the implicit
    /// reverse edge has capacity 0).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range or `u == v`.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: Cap) {
        assert!(u < self.graph.len() && v < self.graph.len(), "node out of range");
        assert_ne!(u, v, "self-loops carry no flow");
        let rev_u = self.graph[v].len() as u32;
        let rev_v = self.graph[u].len() as u32;
        self.graph[u].push(Edge { to: v as u32, cap, rev: rev_u });
        self.graph[v].push(Edge { to: u as u32, cap: 0, rev: rev_v });
    }

    /// Augments to a maximum flow from `s` to `t` over the current
    /// residual graph and returns the *additional* flow pushed.
    ///
    /// # Panics
    ///
    /// Panics if `s == t`.
    pub fn max_flow(&mut self, s: usize, t: usize) -> Cap {
        assert_ne!(s, t, "source equals sink");
        let mut flow = 0;
        while self.build_levels(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.augment(s, t, CAP_INF);
                if f == 0 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }

    /// BFS level graph; returns whether `t` is reachable.
    fn build_levels(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for e in &self.graph[v] {
                if e.cap > 0 && self.level[e.to as usize] < 0 {
                    self.level[e.to as usize] = self.level[v] + 1;
                    queue.push_back(e.to as usize);
                }
            }
        }
        self.level[t] >= 0
    }

    /// DFS blocking-flow augmentation.
    fn augment(&mut self, v: usize, t: usize, limit: Cap) -> Cap {
        if v == t {
            return limit;
        }
        while self.iter[v] < self.graph[v].len() {
            let i = self.iter[v];
            let (to, cap, rev) = {
                let e = &self.graph[v][i];
                (e.to as usize, e.cap, e.rev as usize)
            };
            if cap > 0 && self.level[to] == self.level[v] + 1 {
                let d = self.augment(to, t, limit.min(cap));
                if d > 0 {
                    self.graph[v][i].cap -= d;
                    self.graph[to][rev].cap += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0
    }

    /// Returns the source side of the minimum cut: all nodes reachable
    /// from `s` in the residual graph. Call after [`Self::max_flow`].
    #[must_use]
    pub fn min_cut_side(&self, s: usize) -> Vec<bool> {
        let mut side = vec![false; self.graph.len()];
        let mut queue = std::collections::VecDeque::new();
        side[s] = true;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for e in &self.graph[v] {
                if e.cap > 0 && !side[e.to as usize] {
                    side[e.to as usize] = true;
                    queue.push_back(e.to as usize);
                }
            }
        }
        side
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_path() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5);
        net.add_edge(1, 2, 3);
        assert_eq!(net.max_flow(0, 2), 3);
    }

    #[test]
    fn parallel_paths() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 2);
        net.add_edge(0, 2, 2);
        net.add_edge(1, 3, 2);
        net.add_edge(2, 3, 2);
        assert_eq!(net.max_flow(0, 3), 4);
    }

    #[test]
    fn classic_textbook_network() {
        // CLRS figure: max flow 23.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16);
        net.add_edge(0, 2, 13);
        net.add_edge(1, 2, 10);
        net.add_edge(2, 1, 4);
        net.add_edge(1, 3, 12);
        net.add_edge(3, 2, 9);
        net.add_edge(2, 4, 14);
        net.add_edge(4, 3, 7);
        net.add_edge(3, 5, 20);
        net.add_edge(4, 5, 4);
        assert_eq!(net.max_flow(0, 5), 23);
    }

    #[test]
    fn min_cut_side_is_minimal() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 10);
        net.add_edge(1, 2, 1); // bottleneck
        net.add_edge(2, 3, 10);
        assert_eq!(net.max_flow(0, 3), 1);
        let side = net.min_cut_side(0);
        assert_eq!(side, vec![true, true, false, false]);
    }

    #[test]
    fn incremental_augmentation_after_adding_edges() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 1);
        net.add_edge(1, 2, 5);
        assert_eq!(net.max_flow(0, 2), 1);
        // Widen the bottleneck: only the delta is returned.
        net.add_edge(0, 1, 3);
        assert_eq!(net.max_flow(0, 2), 3);
    }

    #[test]
    fn disconnected_sink_gets_zero() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 4);
        assert_eq!(net.max_flow(0, 2), 0);
        let side = net.min_cut_side(0);
        assert!(side[0] && side[1] && !side[2]);
    }

    #[test]
    #[should_panic(expected = "source equals sink")]
    fn same_source_sink_panics() {
        let mut net = FlowNetwork::new(2);
        let _ = net.max_flow(1, 1);
    }

    mod proptests {
        use super::super::*;
        use proptest::prelude::*;

        /// Brute-force min cut: minimum over all s-side subsets of the
        /// capacity leaving the subset.
        fn brute_force_min_cut(n: usize, edges: &[(usize, usize, Cap)]) -> Cap {
            let s = 0usize;
            let t = n - 1;
            let mut best = Cap::MAX;
            for mask in 0..(1u32 << n) {
                if mask & (1 << s) == 0 || mask & (1 << t) != 0 {
                    continue;
                }
                let cut: Cap = edges
                    .iter()
                    .filter(|&&(u, v, _)| mask & (1 << u) != 0 && mask & (1 << v) == 0)
                    .map(|&(_, _, c)| c)
                    .sum();
                best = best.min(cut);
            }
            best
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Max-flow equals the brute-forced min cut on small random
            /// digraphs (max-flow min-cut theorem as an oracle).
            #[test]
            fn dinic_matches_brute_force(
                n in 3usize..8,
                raw_edges in proptest::collection::vec(
                    (0usize..8, 0usize..8, 1u64..16), 1..24,
                ),
            ) {
                let edges: Vec<(usize, usize, Cap)> = raw_edges
                    .into_iter()
                    .map(|(u, v, c)| (u % n, v % n, c))
                    .filter(|&(u, v, _)| u != v)
                    .collect();
                let mut net = FlowNetwork::new(n);
                for &(u, v, c) in &edges {
                    net.add_edge(u, v, c);
                }
                let flow = net.max_flow(0, n - 1);
                let cut = brute_force_min_cut(n, &edges);
                prop_assert_eq!(flow, cut);
                // And the residual-reachable side is a valid s-side.
                let side = net.min_cut_side(0);
                prop_assert!(side[0]);
                prop_assert!(!side[n - 1]);
                let crossing: Cap = edges
                    .iter()
                    .filter(|&&(u, v, _)| side[u] && !side[v])
                    .map(|&(_, _, c)| c)
                    .sum();
                prop_assert_eq!(crossing, flow);
            }
        }
    }
}
