//! FBB-MW-style network-flow multi-way partitioner (after Liu & Wong,
//! "Network-Flow-Based Multiway Partitioning with Area and Pin
//! Constraints", TCAD 17(1), 1998).
//!
//! Each peeling step computes a sequence of minimum cuts on the
//! star-expanded flow network of the remainder's subcircuit
//! (flow-balanced bipartition): after every max-flow, the source side of
//! the min cut is a candidate block; the source set is then enlarged
//! (collapsing the cut side plus one adjacent cell) and the flow is
//! augmented incrementally, producing monotonically growing candidates.
//! The largest candidate meeting both the area (`S_MAX`) and pin
//! (`T_MAX`) constraints is peeled off; the procedure recurses on the
//! rest.

mod dinic;

pub use dinic::{Cap, FlowNetwork, CAP_INF};

use fpart_core::PartitionState;
use fpart_device::{lower_bound, DeviceConstraints};
use fpart_hypergraph::{Hypergraph, NodeId};

use crate::BaselineOutcome;

/// Configuration of the FBB-MW-style partitioner.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowConfig {
    /// Safety valve: abort after `M · max_iterations_factor + 32` peels.
    pub max_iterations_factor: usize,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig { max_iterations_factor: 4 }
    }
}

/// Errors of the flow-based partitioner (mirrors
/// [`fpart_core::PartitionError`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlowError {
    /// A node is larger than the device.
    OversizedNode {
        /// The offending node.
        node: NodeId,
        /// Its size.
        size: u32,
    },
    /// The peel loop hit its safety valve.
    IterationLimit {
        /// Iterations executed.
        iterations: usize,
    },
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::OversizedNode { node, size } => {
                write!(f, "node {node:?} of size {size} exceeds the device capacity")
            }
            FlowError::IterationLimit { iterations } => {
                write!(f, "no feasible partition within {iterations} peels")
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// Partitions `graph` with the FBB-MW-style flow method.
///
/// # Errors
///
/// Returns [`FlowError::OversizedNode`] for a cell that cannot fit any
/// device and [`FlowError::IterationLimit`] when peeling stalls.
///
/// # Example
///
/// ```
/// use fpart_baselines::{fbb_mw_partition, FlowConfig};
/// use fpart_device::DeviceConstraints;
/// use fpart_hypergraph::gen::{clustered_circuit, ClusteredConfig};
///
/// # fn main() -> Result<(), fpart_baselines::flow::FlowError> {
/// let (graph, _) = clustered_circuit(&ClusteredConfig::new("demo", 3, 20), 1);
/// let outcome = fbb_mw_partition(&graph, DeviceConstraints::new(25, 100), &FlowConfig::default())?;
/// assert!(outcome.device_count >= 3);
/// # Ok(())
/// # }
/// ```
pub fn fbb_mw_partition(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FlowConfig,
) -> Result<BaselineOutcome, FlowError> {
    if graph.node_count() == 0 {
        return Ok(BaselineOutcome {
            assignment: Vec::new(),
            device_count: 0,
            feasible: true,
            cut: 0,
        });
    }
    for v in graph.node_ids() {
        if u64::from(graph.node_size(v)) > constraints.s_max {
            return Err(FlowError::OversizedNode { node: v, size: graph.node_size(v) });
        }
    }

    let m = lower_bound(graph, constraints);
    let cap = m * config.max_iterations_factor + 32;
    let mut state = PartitionState::single_block(graph);
    let remainder = 0usize;
    let mut iterations = 0usize;
    let mut cells = Vec::new();

    while !constraints.fits(state.block_size(remainder), state.block_terminals(remainder)) {
        iterations += 1;
        if iterations > cap {
            return Err(FlowError::IterationLimit { iterations });
        }
        state.nodes_in_block_into(remainder, &mut cells);
        let peel = fbb_peel(graph, &state, &cells, constraints);
        let mut peel = if peel.is_empty() {
            // Degenerate subcircuit: peel a BFS chunk to guarantee progress.
            bfs_chunk(graph, &state, &cells, constraints)
        } else {
            peel
        };
        top_up(graph, &state, &cells, constraints, &mut peel);
        let p = state.add_block();
        for &v in &peel {
            state.move_node(v, p);
        }
    }

    // Compact empty blocks (the remainder can end empty).
    let k = state.block_count();
    let mut dense = vec![u32::MAX; k];
    let mut count = 0u32;
    for (b, slot) in dense.iter_mut().enumerate() {
        if state.block_size(b) > 0 {
            *slot = count;
            count += 1;
        }
    }
    let assignment: Vec<u32> = graph.node_ids().map(|v| dense[state.block_of(v)]).collect();
    let feasible = (0..k)
        .filter(|&b| state.block_size(b) > 0)
        .all(|b| constraints.fits(state.block_size(b), state.block_terminals(b)));
    Ok(BaselineOutcome {
        assignment,
        device_count: count as usize,
        feasible,
        cut: state.cut_count(),
    })
}

/// One flow-balanced-bipartition peel over the remainder's cells.
/// Returns the cells of the best candidate block (possibly empty when
/// the flow process degenerates).
///
/// Attempts run with a shrinking sink-ball budget: when the device's pin
/// constraint (rather than its size) binds, the first attempt's
/// candidates are all I/O-infeasible and a smaller neighbourhood must be
/// carved out.
fn fbb_peel(
    graph: &Hypergraph,
    state: &PartitionState<'_>,
    cells: &[NodeId],
    constraints: DeviceConstraints,
) -> Vec<NodeId> {
    let total: u64 = cells.iter().map(|&v| u64::from(graph.node_size(v))).sum();
    let mut budget = constraints.s_max.saturating_mul(3).min(total);
    let mut last_fallback: Vec<NodeId> = Vec::new();
    while budget >= 2 {
        let (best, fallback) = fbb_peel_attempt(graph, state, cells, constraints, budget);
        if let Some(x) = best {
            return x;
        }
        if let Some(x) = fallback {
            last_fallback = x;
        }
        budget /= 2;
    }
    last_fallback
}

/// One directed FBB attempt with a fixed sink-ball budget.
/// Returns `(feasible_best, size_feasible_fallback)`.
fn fbb_peel_attempt(
    graph: &Hypergraph,
    state: &PartitionState<'_>,
    cells: &[NodeId],
    constraints: DeviceConstraints,
    ball_budget: u64,
) -> (Option<Vec<NodeId>>, Option<Vec<NodeId>>) {
    if cells.len() < 2 {
        return (Some(cells.to_vec()), None);
    }

    // Local indexing of the subcircuit.
    let mut local = vec![u32::MAX; graph.node_count()];
    for (i, &v) in cells.iter().enumerate() {
        local[v.index()] = i as u32;
    }

    // Nets with ≥ 2 pins inside the subcircuit get star nodes.
    let mut star_nets = Vec::new();
    let mut seen = vec![false; graph.net_count()];
    for &v in cells {
        for &net in graph.nets(v) {
            if seen[net.index()] {
                continue;
            }
            seen[net.index()] = true;
            let inside = graph.pins(net).iter().filter(|p| local[p.index()] != u32::MAX).count();
            if inside >= 2 {
                star_nets.push(net);
            }
        }
    }

    let nc = cells.len();
    let source = nc + 2 * star_nets.len();
    let sink = source + 1;
    let mut network = FlowNetwork::new(sink + 1);
    for (j, &net) in star_nets.iter().enumerate() {
        let e_in = nc + 2 * j;
        let e_out = e_in + 1;
        network.add_edge(e_in, e_out, 1);
        for &p in graph.pins(net) {
            let l = local[p.index()];
            if l != u32::MAX {
                network.add_edge(l as usize, e_in, CAP_INF);
                network.add_edge(e_out, l as usize, CAP_INF);
            }
        }
    }

    // Seeds: the source seed is the biggest/highest-degree cell; the sink
    // is a *set* — every cell outside a BFS ball of ~3·S_MAX around the
    // source. Confining the cut to the source's neighbourhood keeps the
    // minimum cut on the source side (a min cut over the whole subcircuit
    // frequently isolates the sink instead) and bounds the grow loop.
    let seed_s = *cells
        .iter()
        .max_by_key(|&&v| (graph.node_size(v), graph.nets(v).len(), std::cmp::Reverse(v.index())))
        .expect("cells non-empty");
    let ball = bfs_ball(graph, cells, &local, seed_s, ball_budget);
    let mut in_sink = vec![true; nc];
    for &v in &ball {
        in_sink[local[v.index()] as usize] = false;
    }
    if in_sink.iter().all(|&s| !s) {
        // The ball swallowed everything: fall back to the farthest cell.
        let seed_t = farthest_within(graph, cells, &local, seed_s);
        if seed_t == seed_s {
            return (Some(vec![seed_s]), None);
        }
        in_sink[local[seed_t.index()] as usize] = true;
    }
    network.add_edge(source, local[seed_s.index()] as usize, CAP_INF);
    for (i, &s) in in_sink.iter().enumerate() {
        if s {
            network.add_edge(i, sink, CAP_INF);
        }
    }

    let mut in_source = vec![false; nc];
    in_source[local[seed_s.index()] as usize] = true;

    let mut best: Option<(u64, usize, Vec<NodeId>)> = None; // (size, T, cells)
    let mut fallback: Option<(u64, Vec<NodeId>)> = None; // size-feasible only
    for _ in 0..nc {
        let _ = network.max_flow(source, sink);
        let side = network.min_cut_side(source);
        let x: Vec<NodeId> =
            cells.iter().enumerate().filter(|&(i, _)| side[i]).map(|(_, &v)| v).collect();
        let w: u64 = x.iter().map(|&v| u64::from(graph.node_size(v))).sum();
        if w > constraints.s_max {
            break;
        }
        let t = peel_terminals(graph, state, &x);
        if constraints.fits(w, t) {
            let better = match &best {
                Some((bw, bt, _)) => (w, std::cmp::Reverse(t)) > (*bw, std::cmp::Reverse(*bt)),
                None => true,
            };
            if better {
                best = Some((w, t, x.clone()));
            }
        } else if best.is_none() {
            let better = fallback.as_ref().is_none_or(|(bw, _)| w > *bw);
            if better {
                fallback = Some((w, x.clone()));
            }
        }
        // Grow: collapse the cut side into the source plus one adjacent
        // free cell, forcing the next cut strictly further out.
        for (i, &s) in side.iter().enumerate().take(nc) {
            if s && !in_source[i] {
                in_source[i] = true;
                network.add_edge(source, i, CAP_INF);
            }
        }
        let next = pick_adjacent(graph, cells, &local, &side, &in_sink);
        let Some(next) = next else { break };
        let l = local[next.index()] as usize;
        in_source[l] = true;
        network.add_edge(source, l, CAP_INF);
    }

    (best.map(|(_, _, x)| x), fallback.map(|(_, x)| x))
}

/// BFS ball around `seed` containing cells of total size at most `budget`.
fn bfs_ball(
    graph: &Hypergraph,
    cells: &[NodeId],
    local: &[u32],
    seed: NodeId,
    budget: u64,
) -> Vec<NodeId> {
    let _ = cells;
    let mut ball = Vec::new();
    let mut size = 0u64;
    let mut seen = vec![false; graph.node_count()];
    let mut queue = std::collections::VecDeque::new();
    seen[seed.index()] = true;
    queue.push_back(seed);
    while let Some(v) = queue.pop_front() {
        let s = u64::from(graph.node_size(v));
        if size + s > budget {
            break;
        }
        size += s;
        ball.push(v);
        for &net in graph.nets(v) {
            for &u in graph.pins(net) {
                if local[u.index()] != u32::MAX && !seen[u.index()] {
                    seen[u.index()] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    ball
}

/// Greedily grows a peel with adjacent free cells while both device
/// constraints stay satisfied (or the peel is still infeasible and the
/// addition does not worsen it). Flow candidates land wherever the cut
/// topology puts them — often well below `S_MAX` — and this fill pass is
/// what makes the peeled device earn its keep.
fn top_up(
    graph: &Hypergraph,
    state: &PartitionState<'_>,
    cells: &[NodeId],
    constraints: DeviceConstraints,
    peel: &mut Vec<NodeId>,
) {
    let mut free = vec![false; graph.node_count()];
    for &v in cells {
        free[v.index()] = true;
    }
    let mut size = 0u64;
    for &v in peel.iter() {
        free[v.index()] = false;
        size += u64::from(graph.node_size(v));
    }
    // cov[net] = peel pins on the net; t = current exact terminal count.
    let mut cov = vec![0u32; graph.net_count()];
    for &v in peel.iter() {
        for &net in graph.nets(v) {
            cov[net.index()] += 1;
        }
    }
    let exposed = |cov_e: u32, net: fpart_hypergraph::NetId| {
        let n = graph.pins(net).len() as u32;
        cov_e >= 1 && (n > cov_e || graph.net_has_terminal(net) || state.net_span(net) > 1)
    };
    let mut t = 0usize;
    let mut seen = vec![false; graph.net_count()];
    for &v in peel.iter() {
        for &net in graph.nets(v) {
            if !seen[net.index()] {
                seen[net.index()] = true;
                if exposed(cov[net.index()], net) {
                    t += 1;
                }
            }
        }
    }

    loop {
        // Best adjacent candidate: smallest terminal delta, then biggest
        // size (fill fast without spending pins).
        let mut best: Option<(i64, std::cmp::Reverse<u32>, NodeId)> = None;
        let mut frontier_seen = vec![false; graph.node_count()];
        for &v in peel.iter() {
            for &net in graph.nets(v) {
                for &u in graph.pins(net) {
                    if !free[u.index()] || frontier_seen[u.index()] {
                        continue;
                    }
                    frontier_seen[u.index()] = true;
                    let s = u64::from(graph.node_size(u));
                    if size + s > constraints.s_max {
                        continue;
                    }
                    let mut dt = 0i64;
                    for &e in graph.nets(u) {
                        let c = cov[e.index()];
                        let before = exposed(c, e);
                        let after = {
                            let n = graph.pins(e).len() as u32;
                            n > c + 1 || graph.net_has_terminal(e) || state.net_span(e) > 1
                        };
                        dt += i64::from(after) - i64::from(before);
                    }
                    if t as i64 + dt > constraints.t_max as i64 {
                        continue;
                    }
                    let key = (dt, std::cmp::Reverse(graph.node_size(u)), u);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
            }
        }
        let Some((dt, _, u)) = best else { break };
        free[u.index()] = false;
        size += u64::from(graph.node_size(u));
        t = (t as i64 + dt) as usize;
        for &e in graph.nets(u) {
            cov[e.index()] += 1;
        }
        peel.push(u);
    }
}

/// Exact terminal count the candidate block would have in global context.
fn peel_terminals(graph: &Hypergraph, state: &PartitionState<'_>, x: &[NodeId]) -> usize {
    let mut in_x = vec![false; graph.node_count()];
    for &v in x {
        in_x[v.index()] = true;
    }
    let mut seen = vec![false; graph.net_count()];
    let mut t = 0usize;
    for &v in x {
        for &net in graph.nets(v) {
            if seen[net.index()] {
                continue;
            }
            seen[net.index()] = true;
            let exposed = graph.net_has_terminal(net)
                || graph.pins(net).iter().any(|p| !in_x[p.index()])
                || state.net_span(net) > 1;
            if exposed {
                t += 1;
            }
        }
    }
    t
}

/// BFS-farthest cell from `seed` within the subcircuit.
fn farthest_within(graph: &Hypergraph, cells: &[NodeId], local: &[u32], seed: NodeId) -> NodeId {
    let mut dist = vec![-1i64; graph.node_count()];
    let mut queue = std::collections::VecDeque::new();
    dist[seed.index()] = 0;
    queue.push_back(seed);
    let mut best = (seed, 0i64);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        if d > best.1 {
            best = (v, d);
        }
        for &net in graph.nets(v) {
            for &u in graph.pins(net) {
                if local[u.index()] != u32::MAX && dist[u.index()] < 0 {
                    dist[u.index()] = d + 1;
                    queue.push_back(u);
                }
            }
        }
    }
    if best.0 != seed {
        best.0
    } else {
        cells.iter().copied().find(|&c| c != seed).unwrap_or(seed)
    }
}

/// Picks a free cell (outside the cut side and not sink-collapsed)
/// adjacent to the cut side; falls back to any free cell. `None` when the
/// free pool is exhausted.
fn pick_adjacent(
    graph: &Hypergraph,
    cells: &[NodeId],
    local: &[u32],
    side: &[bool],
    in_sink: &[bool],
) -> Option<NodeId> {
    for &v in cells {
        if !side[local[v.index()] as usize] {
            continue;
        }
        for &net in graph.nets(v) {
            for &u in graph.pins(net) {
                let l = local[u.index()];
                if l != u32::MAX && !side[l as usize] && !in_sink[l as usize] {
                    return Some(u);
                }
            }
        }
    }
    cells.iter().copied().find(|&v| {
        let l = local[v.index()] as usize;
        !side[l] && !in_sink[l]
    })
}

/// BFS chunk respecting both device constraints — the guaranteed-progress
/// fallback when the flow process yields nothing. Returns at least one
/// cell (possibly alone-infeasible, which the caller reports).
fn bfs_chunk(
    graph: &Hypergraph,
    state: &PartitionState<'_>,
    cells: &[NodeId],
    constraints: DeviceConstraints,
) -> Vec<NodeId> {
    let mut in_set = vec![false; graph.node_count()];
    for &v in cells {
        in_set[v.index()] = true;
    }
    let mut chunk = Vec::new();
    let mut size = 0u64;
    let mut seen = vec![false; graph.node_count()];
    let mut queue = std::collections::VecDeque::new();
    let start = cells[0];
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        let s = u64::from(graph.node_size(v));
        if size + s > constraints.s_max {
            continue;
        }
        // Tentatively accept, then verify the pin budget exactly.
        chunk.push(v);
        let t = peel_terminals(graph, state, &chunk);
        if chunk.len() > 1 && !constraints.fits(size + s, t) {
            chunk.pop();
            continue;
        }
        size += s;
        for &net in graph.nets(v) {
            for &u in graph.pins(net) {
                if in_set[u.index()] && !seen[u.index()] {
                    seen[u.index()] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    if chunk.is_empty() {
        chunk.push(start);
    }
    chunk
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_hypergraph::gen::{clustered_circuit, ClusteredConfig};
    use fpart_hypergraph::HypergraphBuilder;

    #[test]
    fn flow_partition_is_valid_and_feasible() {
        let (g, _) = clustered_circuit(&ClusteredConfig::new("cl", 3, 20), 5);
        let constraints = DeviceConstraints::new(25, 100);
        let out = fbb_mw_partition(&g, constraints, &FlowConfig::default()).unwrap();
        out.validate(&g, constraints);
        assert!(out.feasible);
        assert!(out.device_count >= 3);
    }

    #[test]
    fn flow_respects_io_constraint() {
        // 48 terminal nets on a 25-IOB device: splitting is forced by I/O
        // even though the logic fits one device.
        let mut cfg = ClusteredConfig::new("cl", 4, 16);
        cfg.terminals = 48;
        let (g, _) = clustered_circuit(&cfg, 7);
        let constraints = DeviceConstraints::new(1000, 25);
        let out = fbb_mw_partition(&g, constraints, &FlowConfig::default()).unwrap();
        out.validate(&g, constraints);
        assert!(out.feasible);
        assert!(out.device_count >= 2);
    }

    #[test]
    fn flow_finds_thin_planted_cut() {
        let cfg = ClusteredConfig::new("cl", 2, 30);
        let (g, _) = clustered_circuit(&cfg, 13);
        // S_MAX equals the planted cluster size, so the top-up pass
        // cannot grow the peel past the planted boundary.
        let constraints = DeviceConstraints::new(30, 200);
        let out = fbb_mw_partition(&g, constraints, &FlowConfig::default()).unwrap();
        out.validate(&g, constraints);
        assert_eq!(out.device_count, 2);
        // The min-cut method should land at (or very near) the planted cut.
        assert!(out.cut <= cfg.inter_nets + 3, "cut {} vs planted {}", out.cut, cfg.inter_nets);
    }

    #[test]
    fn oversized_node_rejected() {
        let mut b = HypergraphBuilder::new();
        let x = b.add_node("x", 99);
        let y = b.add_node("y", 1);
        b.add_net("e", [x, y]).unwrap();
        let g = b.finish().unwrap();
        let err = fbb_mw_partition(&g, DeviceConstraints::new(50, 10), &FlowConfig::default())
            .unwrap_err();
        assert!(matches!(err, FlowError::OversizedNode { .. }));
    }

    #[test]
    fn empty_graph_ok() {
        let g = HypergraphBuilder::new().finish().unwrap();
        let out =
            fbb_mw_partition(&g, DeviceConstraints::new(10, 10), &FlowConfig::default()).unwrap();
        assert_eq!(out.device_count, 0);
    }

    #[test]
    fn two_cell_circuit() {
        let mut b = HypergraphBuilder::new();
        let x = b.add_node("x", 3);
        let y = b.add_node("y", 3);
        b.add_net("e", [x, y]).unwrap();
        let g = b.finish().unwrap();
        let constraints = DeviceConstraints::new(4, 10);
        let out = fbb_mw_partition(&g, constraints, &FlowConfig::default()).unwrap();
        out.validate(&g, constraints);
        assert_eq!(out.device_count, 2);
    }
}
