//! k-way.x-style `(p,p)` baseline (Kuznar, Brglez, Kozminski, DAC'93).
//!
//! Recursive bipartitioning: each iteration peels one feasible block off
//! the remainder and improves only between the two lately partitioned
//! blocks, with plain one-level FM gains and a cut-size-only cost. This
//! is the greedy paradigm the FPART paper starts from (§3): no
//! infeasibility-distance cost, no solution stacks, no extra improvement
//! schedule, no asymmetric move regions.
//!
//! Implemented by running the FPART engine under
//! [`FpartConfig::classical`], which disables every FPART-specific
//! device — making the comparison in the benchmark tables a controlled
//! experiment on the paper's actual contribution rather than on
//! incidental implementation differences.

use fpart_core::{partition, FpartConfig, PartitionError};
use fpart_device::DeviceConstraints;
use fpart_hypergraph::Hypergraph;

use crate::BaselineOutcome;

/// Partitions `graph` with the k-way.x-style recursive-FM baseline.
///
/// # Errors
///
/// Returns the underlying [`PartitionError`] when a node exceeds the
/// device size or the iteration safety valve trips.
///
/// # Example
///
/// ```
/// use fpart_baselines::kway_partition;
/// use fpart_device::Device;
/// use fpart_hypergraph::gen::{clustered_circuit, ClusteredConfig};
///
/// # fn main() -> Result<(), fpart_core::PartitionError> {
/// let (graph, _) = clustered_circuit(&ClusteredConfig::new("demo", 3, 20), 1);
/// let outcome = kway_partition(&graph, Device::XC3020.constraints(0.9))?;
/// assert!(outcome.device_count >= 1);
/// # Ok(())
/// # }
/// ```
pub fn kway_partition(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
) -> Result<BaselineOutcome, PartitionError> {
    let config = FpartConfig::classical();
    let outcome = partition(graph, constraints, &config)?;
    Ok(BaselineOutcome {
        assignment: outcome.assignment,
        device_count: outcome.device_count,
        feasible: outcome.feasible,
        cut: outcome.cut,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_core::partition;
    use fpart_hypergraph::gen::{clustered_circuit, ClusteredConfig};
    use fpart_hypergraph::gen::{find_profile, synthesize_mcnc, Technology};

    #[test]
    fn kway_produces_valid_feasible_partition() {
        let (g, _) = clustered_circuit(&ClusteredConfig::new("cl", 4, 20), 6);
        let constraints = DeviceConstraints::new(25, 100);
        let out = kway_partition(&g, constraints).unwrap();
        out.validate(&g, constraints);
        assert!(out.feasible);
    }

    /// The headline claim of the paper: FPART's guidance devices beat the
    /// plain recursive-FM baseline on device count (or at worst tie) on
    /// realistic workloads.
    #[test]
    fn fpart_is_no_worse_than_kway_on_mcnc_circuit() {
        let p = find_profile("s13207").unwrap();
        let g = synthesize_mcnc(p, Technology::Xc3000);
        let constraints = fpart_device::Device::XC3020.constraints(0.9);
        let kway = kway_partition(&g, constraints).unwrap();
        let fpart = partition(&g, constraints, &FpartConfig::default()).unwrap();
        assert!(
            fpart.device_count <= kway.device_count,
            "fpart {} vs kway {}",
            fpart.device_count,
            kway.device_count
        );
    }
}
