//! Logic replication post-pass (the "r" of the paper's r+p.0 and PROP
//! comparison methods, after Kring & Newton's undirected replication
//! model, generalized to multi-way IOB accounting).
//!
//! A cell may be *copied* into additional blocks. With copies, a net `e`
//! needs an IOB in block `b` only when `e` is present in `b` (an original
//! pin or a copy) and is not *closed* there — closed meaning every
//! original pin of `e` is either in `b` or copied into `b`, and `e` has
//! no primary terminal. Copying `v` into `b` therefore:
//!
//! * removes the IOB of every net whose only missing pin in `b` was `v`;
//! * adds an IOB for each of `v`'s other nets newly present in `b` that
//!   are not closed there (the copy's support signals must be imported —
//!   the undirected approximation of functional replication);
//! * consumes `size(v)` cells of `b`'s capacity.
//!
//! The pass greedily applies the best positive-gain copy until none is
//! left. The paper's point stands either way: replication lets the
//! recursive methods (r+p.0, PROP) buy IOBs with spare logic capacity,
//! which FPART instead achieves with guided iterative improvement.

use std::collections::HashSet;

use fpart_device::DeviceConstraints;
use fpart_hypergraph::{Hypergraph, NetId, NodeId};

/// One applied copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Copy {
    /// The replicated cell.
    pub node: NodeId,
    /// The block that received the copy.
    pub block: u32,
    /// IOB reduction of that block at the time the copy was applied.
    pub gain: usize,
}

/// Result of a replication pass.
#[derive(Debug, Clone)]
pub struct ReplicationOutcome {
    /// Applied copies, in application order.
    pub copies: Vec<Copy>,
    /// Per-block terminal counts before the pass.
    pub terminals_before: Vec<usize>,
    /// Per-block terminal counts after the pass.
    pub terminals_after: Vec<usize>,
    /// Per-block sizes after the pass (originals + copies).
    pub sizes_after: Vec<u64>,
}

impl ReplicationOutcome {
    /// Total IOBs saved across all blocks.
    #[must_use]
    pub fn terminals_saved(&self) -> usize {
        let before: usize = self.terminals_before.iter().sum();
        let after: usize = self.terminals_after.iter().sum();
        before.saturating_sub(after)
    }
}

/// State of the replication computation.
struct ReplicationState<'a> {
    graph: &'a Hypergraph,
    assignment: &'a [u32],
    k: usize,
    constraints: DeviceConstraints,
    /// `copied[node]` = blocks holding a copy of the node.
    copied: Vec<HashSet<u32>>,
    sizes: Vec<u64>,
}

impl ReplicationState<'_> {
    /// Whether net `e` is present in block `b` (original pin or copy).
    fn present(&self, e: NetId, b: u32) -> bool {
        self.graph
            .pins(e)
            .iter()
            .any(|&p| self.assignment[p.index()] == b || self.copied[p.index()].contains(&b))
    }

    /// Original pins of `e` missing from block `b`'s closure.
    fn missing_pins(&self, e: NetId, b: u32) -> Vec<NodeId> {
        self.graph
            .pins(e)
            .iter()
            .copied()
            .filter(|&p| self.assignment[p.index()] != b && !self.copied[p.index()].contains(&b))
            .collect()
    }

    /// Whether `e` consumes an IOB in `b` under the current copies.
    fn exposed(&self, e: NetId, b: u32) -> bool {
        if !self.present(e, b) {
            return false;
        }
        self.graph.net_has_terminal(e) || !self.missing_pins(e, b).is_empty()
    }

    /// Exact terminal count of block `b`.
    fn terminals(&self, b: u32) -> usize {
        let mut seen = vec![false; self.graph.net_count()];
        let mut count = 0usize;
        for v in self.graph.node_ids() {
            if self.assignment[v.index()] != b && !self.copied[v.index()].contains(&b) {
                continue;
            }
            for &e in self.graph.nets(v) {
                if !seen[e.index()] {
                    seen[e.index()] = true;
                    if self.exposed(e, b) {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    /// IOB change in block `b` if `v` were copied into it (positive =
    /// reduction), or `None` when the copy is inadmissible (already
    /// there, over capacity).
    fn copy_gain(&self, v: NodeId, b: u32) -> Option<i64> {
        if self.assignment[v.index()] == b || self.copied[v.index()].contains(&b) {
            return None;
        }
        let new_size = self.sizes[b as usize] + u64::from(self.graph.node_size(v));
        if new_size > self.constraints.s_max {
            return None;
        }
        let mut gain = 0i64;
        for &e in self.graph.nets(v) {
            let was_exposed = self.exposed(e, b);
            // After the copy: e is present in b; closed iff its missing
            // pins were exactly {v} and it has no terminal.
            let missing = self.missing_pins(e, b);
            let closed_after = !self.graph.net_has_terminal(e) && missing.iter().all(|&p| p == v);
            let present_before = self.present(e, b);
            let exposed_after = !closed_after;
            match (present_before, was_exposed, exposed_after) {
                // Newly present and not closed: one more import.
                (false, _, true) => gain -= 1,
                // Was exposed, now closed: one IOB saved.
                (true, true, false) => gain += 1,
                _ => {}
            }
        }
        Some(gain)
    }

    fn apply(&mut self, v: NodeId, b: u32) {
        self.copied[v.index()].insert(b);
        self.sizes[b as usize] += u64::from(self.graph.node_size(v));
    }
}

/// Runs the greedy replication pass over a finished `k`-way partition.
///
/// `assignment` maps every node to its block (`< k`). The pass never
/// violates the size constraint and only applies strictly IOB-reducing
/// copies, so the partition's feasibility can only improve.
///
/// # Panics
///
/// Panics if `assignment` does not cover the graph or references a block
/// `≥ k`.
///
/// # Example
///
/// ```
/// use fpart_baselines::{kway_partition, replicate};
/// use fpart_device::Device;
/// use fpart_hypergraph::gen::{window_circuit, WindowConfig};
///
/// # fn main() -> Result<(), fpart_core::PartitionError> {
/// let circuit = window_circuit(&WindowConfig::new("demo", 200, 16), 1);
/// let constraints = Device::XC3020.constraints(0.9);
/// let base = kway_partition(&circuit, constraints)?;
/// let report = replicate(&circuit, &base.assignment, base.device_count, constraints);
/// println!("{} copies save {} IOBs", report.copies.len(), report.terminals_saved());
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn replicate(
    graph: &Hypergraph,
    assignment: &[u32],
    k: usize,
    constraints: DeviceConstraints,
) -> ReplicationOutcome {
    assert_eq!(assignment.len(), graph.node_count(), "assignment must cover every node");
    assert!(assignment.iter().all(|&b| (b as usize) < k), "block out of range");

    let mut sizes = vec![0u64; k];
    for v in graph.node_ids() {
        sizes[assignment[v.index()] as usize] += u64::from(graph.node_size(v));
    }
    let mut state = ReplicationState {
        graph,
        assignment,
        k,
        constraints,
        copied: vec![HashSet::new(); graph.node_count()],
        sizes,
    };

    let terminals_before: Vec<usize> = (0..k as u32).map(|b| state.terminals(b)).collect();

    let mut copies = Vec::new();
    // Greedy rounds: scan boundary candidates, apply the single best
    // positive-gain copy, repeat. Bounded by the total spare capacity.
    loop {
        let mut best: Option<(i64, NodeId, u32)> = None;
        for e in graph.net_ids() {
            if state.graph.net_terminal_count(e) > 0 && graph.pins(e).len() < 2 {
                continue;
            }
            // Candidate pairs: each pin of a multi-block net × each other
            // block the net touches.
            let blocks: Vec<u32> = {
                let mut bs: Vec<u32> =
                    graph.pins(e).iter().map(|&p| assignment[p.index()]).collect();
                bs.sort_unstable();
                bs.dedup();
                bs
            };
            if blocks.len() < 2 {
                continue;
            }
            for &p in graph.pins(e) {
                for &b in &blocks {
                    if let Some(gain) = state.copy_gain(p, b) {
                        if gain > 0 && best.is_none_or(|(bg, _, _)| gain > bg) {
                            best = Some((gain, p, b));
                        }
                    }
                }
            }
        }
        let Some((gain, v, b)) = best else { break };
        state.apply(v, b);
        copies.push(Copy { node: v, block: b, gain: gain as usize });
        // Safety: never more copies than cells (the gain condition makes
        // this unreachable, but a bound keeps adversarial inputs finite).
        if copies.len() > graph.node_count() * state.k {
            break;
        }
    }

    let terminals_after: Vec<usize> = (0..k as u32).map(|b| state.terminals(b)).collect();
    ReplicationOutcome { copies, terminals_before, terminals_after, sizes_after: state.sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_hypergraph::HypergraphBuilder;

    /// Star driver: v drives three 2-pin nets into block 1; copying v
    /// into block 1 closes all three and opens nothing (v has no other
    /// nets).
    #[test]
    fn star_driver_replication_saves_iobs() {
        let mut bld = HypergraphBuilder::new();
        let v = bld.add_node("v", 1);
        let sinks: Vec<NodeId> = (0..3).map(|i| bld.add_node(format!("s{i}"), 1)).collect();
        for (i, &s) in sinks.iter().enumerate() {
            bld.add_net(format!("e{i}"), [v, s]).unwrap();
        }
        let g = bld.finish().unwrap();
        let assignment = vec![0, 1, 1, 1];
        let constraints = DeviceConstraints::new(10, 10);
        let out = replicate(&g, &assignment, 2, constraints);
        // The best first copy is v into block 1: closes all three nets
        // there at once.
        assert_eq!(out.copies[0].node, v);
        assert_eq!(out.copies[0].block, 1);
        assert_eq!(out.copies[0].gain, 3);
        assert_eq!(out.terminals_before, vec![3, 3]);
        assert_eq!(out.terminals_after[1], 0);
        // In the undirected model the sinks may then be copied back into
        // block 0, closing the nets on that side too (the duplicated
        // logic is charged against the capacity).
        assert!(out.terminals_saved() >= 3);
        for (b, &s) in out.sizes_after.iter().enumerate() {
            assert!(s <= constraints.s_max, "block {b} over capacity");
        }
    }

    /// A copy whose support imports outweigh (or equal) its savings is
    /// not applied.
    #[test]
    fn unprofitable_copy_is_skipped() {
        let mut bld = HypergraphBuilder::new();
        let v = bld.add_node("v", 1);
        let sink = bld.add_node("sink", 1);
        // One net into block 1 (potential saving = 1)…
        bld.add_net("out", [v, sink]).unwrap();
        // …but three support nets of v that would all need importing.
        for i in 0..3 {
            let u = bld.add_node(format!("u{i}"), 1);
            bld.add_net(format!("in{i}"), [v, u]).unwrap();
        }
        // And the sink drives a block-1-internal net, so copying the sink
        // back into block 0 would open that net there (gain 0, skipped).
        let w = bld.add_node("w", 1);
        bld.add_net("fanout", [sink, w]).unwrap();
        let g = bld.finish().unwrap();
        // v and its supports in block 0; sink and w in block 1.
        let assignment = vec![0, 1, 0, 0, 0, 1];
        let out = replicate(&g, &assignment, 2, DeviceConstraints::new(10, 10));
        assert!(out.copies.is_empty(), "copies: {:?}", out.copies);
        assert_eq!(out.terminals_saved(), 0);
    }

    /// Size capacity blocks replication.
    #[test]
    fn capacity_limits_replication() {
        let mut bld = HypergraphBuilder::new();
        let v = bld.add_node("v", 5);
        let s = bld.add_node("s", 8);
        bld.add_net("e", [v, s]).unwrap();
        let g = bld.finish().unwrap();
        let assignment = vec![0, 1];
        // Block 1 already at 8 of 10: the 5-cell copy does not fit.
        let out = replicate(&g, &assignment, 2, DeviceConstraints::new(10, 10));
        assert!(out.copies.is_empty());
    }

    /// Terminal-attached nets can never be closed by replication.
    #[test]
    fn terminal_nets_stay_exposed() {
        let mut bld = HypergraphBuilder::new();
        let v = bld.add_node("v", 1);
        let s = bld.add_node("s", 1);
        let e = bld.add_net("e", [v, s]).unwrap();
        bld.add_terminal("pad", e).unwrap();
        let g = bld.finish().unwrap();
        let out = replicate(&g, &[0, 1], 2, DeviceConstraints::new(10, 10));
        assert!(out.copies.is_empty());
        assert_eq!(out.terminals_after, vec![1, 1]);
    }

    /// Replication never increases any block's terminal count and never
    /// overfills a block, on a realistic workload.
    #[test]
    fn replication_is_monotone_on_generated_circuit() {
        use fpart_hypergraph::gen::{clustered_circuit, ClusteredConfig};
        let (g, planted) = clustered_circuit(&ClusteredConfig::new("cl", 3, 15), 9);
        let constraints = DeviceConstraints::new(25, 100);
        let out = replicate(&g, &planted, 3, constraints);
        for b in 0..3 {
            assert!(out.terminals_after[b] <= out.terminals_before[b], "block {b}");
            assert!(out.sizes_after[b] <= constraints.s_max);
        }
    }
}
