//! Naive first-fit BFS clustering baseline.
//!
//! Visits cells in breadth-first order from an arbitrary seed and packs
//! them greedily into the current block until either device constraint
//! would be violated, then opens a new block. Provides the floor against
//! which real partitioners are measured, and a guaranteed-terminating
//! fallback.

use fpart_core::PartitionState;
use fpart_device::DeviceConstraints;
use fpart_hypergraph::{Hypergraph, NodeId};

use crate::BaselineOutcome;

/// Partitions `graph` by first-fit BFS clustering.
///
/// Cells are taken in multi-source BFS order (restarting at the
/// lowest-index unvisited cell per component) and appended to the current
/// block while it stays within `constraints`; a violation opens a fresh
/// block. The result is always a valid partition; it is feasible unless a
/// single cell alone violates the constraints.
///
/// # Example
///
/// ```
/// use fpart_baselines::first_fit_partition;
/// use fpart_device::DeviceConstraints;
/// use fpart_hypergraph::gen::{clustered_circuit, ClusteredConfig};
///
/// let (graph, _) = clustered_circuit(&ClusteredConfig::new("demo", 3, 16), 1);
/// let outcome = first_fit_partition(&graph, DeviceConstraints::new(20, 100));
/// assert!(outcome.device_count >= 3);
/// ```
#[must_use]
pub fn first_fit_partition(graph: &Hypergraph, constraints: DeviceConstraints) -> BaselineOutcome {
    let n = graph.node_count();
    if n == 0 {
        return BaselineOutcome { assignment: Vec::new(), device_count: 0, feasible: true, cut: 0 };
    }

    // BFS order over the net adjacency, restarting per component.
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        seen[start] = true;
        queue.push_back(NodeId::from_index(start));
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &net in graph.nets(v) {
                for &u in graph.pins(net) {
                    if !seen[u.index()] {
                        seen[u.index()] = true;
                        queue.push_back(u);
                    }
                }
            }
        }
    }

    // Greedy packing with exact incremental terminal accounting: tentatively
    // place each cell in the current block and roll back on violation.
    let mut state = PartitionState::single_block(graph);
    // Start with everything in block 0 (the "unpacked pool"), pack into
    // fresh blocks; the pool must end empty.
    let mut current = state.add_block();
    for &v in &order {
        state.move_node(v, current);
        let ok = constraints.fits(state.block_size(current), state.block_terminals(current));
        if !ok && state.block_size(current) > u64::from(graph.node_size(v)) {
            // Not the only cell: roll back and open a new block.
            let fresh = state.add_block();
            state.move_node(v, fresh);
            current = fresh;
        }
    }

    // Compact: drop the (now empty) pool block and renumber.
    let k = state.block_count();
    let mut dense = vec![u32::MAX; k];
    let mut count = 0u32;
    for (b, slot) in dense.iter_mut().enumerate() {
        if state.block_size(b) > 0 {
            *slot = count;
            count += 1;
        }
    }
    let assignment: Vec<u32> = graph.node_ids().map(|v| dense[state.block_of(v)]).collect();
    let feasible = (0..k)
        .filter(|&b| state.block_size(b) > 0)
        .all(|b| constraints.fits(state.block_size(b), state.block_terminals(b)));

    BaselineOutcome { assignment, device_count: count as usize, feasible, cut: state.cut_count() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_hypergraph::gen::{clustered_circuit, window_circuit, ClusteredConfig, WindowConfig};
    use fpart_hypergraph::HypergraphBuilder;

    #[test]
    fn packs_all_cells() {
        let (g, _) = clustered_circuit(&ClusteredConfig::new("cl", 3, 15), 2);
        let constraints = DeviceConstraints::new(20, 100);
        let out = first_fit_partition(&g, constraints);
        out.validate(&g, constraints);
        assert!(out.feasible);
        assert!(out.device_count >= 3);
    }

    #[test]
    fn empty_graph() {
        let g = HypergraphBuilder::new().finish().unwrap();
        let out = first_fit_partition(&g, DeviceConstraints::new(10, 10));
        assert_eq!(out.device_count, 0);
        assert!(out.feasible);
    }

    #[test]
    fn single_oversized_cell_is_placed_but_infeasible() {
        let mut b = HypergraphBuilder::new();
        let x = b.add_node("x", 100);
        let y = b.add_node("y", 1);
        b.add_net("e", [x, y]).unwrap();
        let g = b.finish().unwrap();
        let constraints = DeviceConstraints::new(50, 10);
        let out = first_fit_partition(&g, constraints);
        out.validate(&g, constraints);
        assert!(!out.feasible);
    }

    #[test]
    fn respects_io_constraint() {
        let g = window_circuit(&WindowConfig::new("w", 200, 30), 3);
        let constraints = DeviceConstraints::new(1000, 20);
        let out = first_fit_partition(&g, constraints);
        out.validate(&g, constraints);
        // blocks capped by the 20-terminal budget, so several are needed
        assert!(out.device_count > 1);
        assert!(out.feasible);
    }

    #[test]
    fn is_a_floor_not_a_ceiling() {
        // The naive method should never beat the lower bound.
        let (g, _) = clustered_circuit(&ClusteredConfig::new("cl", 4, 25), 8);
        let constraints = DeviceConstraints::new(30, 200);
        let out = first_fit_partition(&g, constraints);
        let m = fpart_device::lower_bound(&g, constraints);
        assert!(out.device_count >= m);
    }
}
