//! Incremental partition state: block sizes, pin counts, and cut metrics
//! maintained under single-cell moves.
//!
//! # Pin accounting model
//!
//! A net is *exposed* to block `j` when it has a pin in `j` and either
//! spans more than one block or is attached to a primary terminal of the
//! circuit (an off-chip signal always consumes an IOB on every device it
//! enters). The block terminal count `T_j` is the number of nets exposed
//! to `j`; the external count `T_j^E` is the number of primary terminals
//! whose net touches `j` (used by the paper's external-I/O balancing
//! factor `d_k^E`).

use fpart_device::BlockUsage;
use fpart_hypergraph::{Hypergraph, NetId, NodeId};

/// Mutable k-way partition of a hypergraph with O(deg) single-cell moves.
///
/// All counters (`block_size`, `block_terminals`, `block_externals`, net
/// spans, cut count) are maintained incrementally by [`Self::move_node`];
/// [`Self::recount`] recomputes them from scratch and is used by tests and
/// debug assertions to verify the incremental bookkeeping.
#[derive(Debug, Clone)]
pub struct PartitionState<'a> {
    graph: &'a Hypergraph,
    assignment: Vec<u32>,
    block_sizes: Vec<u64>,
    block_terminals: Vec<usize>,
    block_externals: Vec<usize>,
    /// Net-major pin-distribution matrix: `dist[net * stride + block]`.
    dist: Vec<u32>,
    stride: usize,
    span: Vec<u32>,
    cut_nets: usize,
    /// Running `Σ T_i`, kept in lockstep with `block_terminals` so
    /// [`Self::terminal_sum`] is O(1) in the move loop.
    terminal_total: usize,
    k: usize,
}

impl<'a> PartitionState<'a> {
    /// Creates a single-block partition holding the whole circuit.
    #[must_use]
    pub fn single_block(graph: &'a Hypergraph) -> Self {
        Self::from_assignment(graph, vec![0; graph.node_count()], 1)
    }

    /// Creates a partition from an explicit per-node block assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != graph.node_count()`, `k == 0` while
    /// the graph is non-empty, or any entry is `≥ k`.
    #[must_use]
    pub fn from_assignment(graph: &'a Hypergraph, assignment: Vec<u32>, k: usize) -> Self {
        assert_eq!(assignment.len(), graph.node_count(), "assignment must cover every node");
        assert!(graph.node_count() == 0 || k > 0, "non-empty graph needs at least one block");
        assert!(assignment.iter().all(|&b| (b as usize) < k), "assignment references a block >= k");
        let stride = k.max(1).next_power_of_two();
        let mut state = PartitionState {
            graph,
            assignment,
            block_sizes: vec![0; k],
            block_terminals: vec![0; k],
            block_externals: vec![0; k],
            dist: vec![0; graph.net_count() * stride],
            stride,
            span: vec![0; graph.net_count()],
            cut_nets: 0,
            terminal_total: 0,
            k,
        };
        state.recount();
        state
    }

    /// Returns the underlying hypergraph.
    #[must_use]
    pub fn graph(&self) -> &'a Hypergraph {
        self.graph
    }

    /// Returns the number of blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.k
    }

    /// Returns the block a node currently belongs to.
    #[inline]
    #[must_use]
    pub fn block_of(&self, node: NodeId) -> usize {
        self.assignment[node.index()] as usize
    }

    /// Returns the total size `S_i` of a block.
    #[inline]
    #[must_use]
    pub fn block_size(&self, block: usize) -> u64 {
        self.block_sizes[block]
    }

    /// Returns the terminal (IOB) count `T_i` of a block.
    #[inline]
    #[must_use]
    pub fn block_terminals(&self, block: usize) -> usize {
        self.block_terminals[block]
    }

    /// Returns the external primary-I/O count `T_i^E` of a block.
    #[inline]
    #[must_use]
    pub fn block_externals(&self, block: usize) -> usize {
        self.block_externals[block]
    }

    /// Returns a block's occupancy point `(S_i, T_i)`.
    #[must_use]
    pub fn block_usage(&self, block: usize) -> BlockUsage {
        BlockUsage::new(self.block_sizes[block], self.block_terminals[block])
    }

    /// Returns the number of nets spanning more than one block (the
    /// classical cut size that FM gains optimize).
    #[must_use]
    pub fn cut_count(&self) -> usize {
        self.cut_nets
    }

    /// Returns the total terminal count `T^SUM = Σ T_i` (O(1); maintained
    /// incrementally by [`Self::move_node`]).
    #[must_use]
    pub fn terminal_sum(&self) -> usize {
        self.terminal_total
    }

    /// Returns how many pins of `net` lie in `block`.
    #[inline]
    #[must_use]
    pub fn net_pins_in(&self, net: NetId, block: usize) -> u32 {
        self.dist[net.index() * self.stride + block]
    }

    /// Returns the number of blocks `net` touches.
    #[inline]
    #[must_use]
    pub fn net_span(&self, net: NetId) -> u32 {
        self.span[net.index()]
    }

    /// Returns the full per-node assignment as raw block indices.
    #[must_use]
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Consumes the state and returns the assignment vector without
    /// copying, for flows (multilevel uncoarsening) that rebuild a
    /// fresh state per level from the same buffer.
    #[must_use]
    pub fn into_assignment(self) -> Vec<u32> {
        self.assignment
    }

    /// Collects the nodes of one block (O(n) scan).
    #[must_use]
    pub fn nodes_in_block(&self, block: usize) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.nodes_in_block_into(block, &mut out);
        out
    }

    /// Collects the nodes of one block into a caller-owned buffer
    /// (cleared first), so hot paths can reuse one allocation.
    pub fn nodes_in_block_into(&self, block: usize, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(self.graph.node_ids().filter(|&v| self.block_of(v) == block));
    }

    /// Appends a new empty block and returns its index.
    pub fn add_block(&mut self) -> usize {
        let b = self.k;
        self.k += 1;
        self.block_sizes.push(0);
        self.block_terminals.push(0);
        self.block_externals.push(0);
        if self.k > self.stride {
            let new_stride = self.stride * 2;
            let mut dist = vec![0u32; self.graph.net_count() * new_stride];
            for e in 0..self.graph.net_count() {
                let old = e * self.stride;
                let new = e * new_stride;
                dist[new..new + self.stride].copy_from_slice(&self.dist[old..old + self.stride]);
            }
            self.dist = dist;
            self.stride = new_stride;
        }
        b
    }

    /// Moves a node to another block, updating every counter in
    /// `O(degree(node))`.
    ///
    /// Moving a node to the block it already occupies is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `to >= block_count()`.
    pub fn move_node(&mut self, node: NodeId, to: usize) {
        assert!(to < self.k, "target block {to} out of range");
        let from = self.assignment[node.index()] as usize;
        if from == to {
            return;
        }
        self.assignment[node.index()] = to as u32;
        let size = u64::from(self.graph.node_size(node));
        self.block_sizes[from] -= size;
        self.block_sizes[to] += size;

        for &net in self.graph.nets(node) {
            let base = net.index() * self.stride;
            let da0 = self.dist[base + from];
            let db0 = self.dist[base + to];
            debug_assert!(da0 > 0, "node must be counted in its source block");
            self.dist[base + from] = da0 - 1;
            self.dist[base + to] = db0 + 1;

            let span0 = self.span[net.index()];
            let mut span1 = span0;
            if da0 == 1 {
                span1 -= 1;
            }
            if db0 == 0 {
                span1 += 1;
            }
            self.span[net.index()] = span1;

            if span0 >= 2 && span1 < 2 {
                self.cut_nets -= 1;
            } else if span0 < 2 && span1 >= 2 {
                self.cut_nets += 1;
            }

            let term_count = self.graph.net_terminal_count(net);
            let has_term = term_count > 0;
            let exposed0 = span0 >= 2 || has_term;
            let exposed1 = span1 >= 2 || has_term;

            // `from` always touched the net before the move.
            let from_counts_before = exposed0;
            let from_counts_after = da0 > 1 && exposed1;
            match (from_counts_before, from_counts_after) {
                (true, false) => {
                    self.block_terminals[from] -= 1;
                    self.terminal_total -= 1;
                }
                (false, true) => {
                    self.block_terminals[from] += 1;
                    self.terminal_total += 1;
                }
                _ => {}
            }
            // `to` always touches the net after the move.
            let to_counts_before = db0 > 0 && exposed0;
            let to_counts_after = exposed1;
            match (to_counts_before, to_counts_after) {
                (true, false) => {
                    self.block_terminals[to] -= 1;
                    self.terminal_total -= 1;
                }
                (false, true) => {
                    self.block_terminals[to] += 1;
                    self.terminal_total += 1;
                }
                _ => {}
            }

            if has_term {
                if da0 == 1 {
                    self.block_externals[from] -= term_count;
                }
                if db0 == 0 {
                    self.block_externals[to] += term_count;
                }
            }
        }
    }

    /// Applies a saved `(node, block)` assignment list (used to restore
    /// stacked solutions).
    pub fn apply(&mut self, moves: impl IntoIterator<Item = (NodeId, usize)>) {
        for (node, block) in moves {
            self.move_node(node, block);
        }
    }

    /// Recomputes every counter from the assignment. Quadratic-ish; used
    /// at construction and by [`Self::assert_consistent`].
    pub fn recount(&mut self) {
        self.block_sizes.iter_mut().for_each(|s| *s = 0);
        self.block_terminals.iter_mut().for_each(|t| *t = 0);
        self.block_externals.iter_mut().for_each(|t| *t = 0);
        self.dist.iter_mut().for_each(|d| *d = 0);
        self.cut_nets = 0;

        for v in self.graph.node_ids() {
            self.block_sizes[self.assignment[v.index()] as usize] +=
                u64::from(self.graph.node_size(v));
        }
        for e in self.graph.net_ids() {
            let base = e.index() * self.stride;
            for &p in self.graph.pins(e) {
                self.dist[base + self.assignment[p.index()] as usize] += 1;
            }
            let span = (0..self.k).filter(|&b| self.dist[base + b] > 0).count() as u32;
            self.span[e.index()] = span;
            if span >= 2 {
                self.cut_nets += 1;
            }
            let term_count = self.graph.net_terminal_count(e);
            let exposed = span >= 2 || term_count > 0;
            for b in 0..self.k {
                if self.dist[base + b] > 0 {
                    if exposed {
                        self.block_terminals[b] += 1;
                    }
                    if term_count > 0 {
                        self.block_externals[b] += term_count;
                    }
                }
            }
        }
        self.terminal_total = self.block_terminals.iter().sum();
    }

    /// Verifies the incremental counters against a fresh recount.
    ///
    /// # Panics
    ///
    /// Panics (with a description of the first mismatch) when any counter
    /// diverged — which would indicate a bookkeeping bug.
    pub fn assert_consistent(&self) {
        let mut fresh = self.clone();
        fresh.recount();
        assert_eq!(self.block_sizes, fresh.block_sizes, "block sizes diverged");
        assert_eq!(self.block_terminals, fresh.block_terminals, "terminal counts diverged");
        assert_eq!(self.block_externals, fresh.block_externals, "external counts diverged");
        assert_eq!(self.span, fresh.span, "net spans diverged");
        assert_eq!(self.cut_nets, fresh.cut_nets, "cut count diverged");
        assert_eq!(self.terminal_total, fresh.terminal_total, "terminal sum diverged");
        assert_eq!(self.dist, fresh.dist, "pin distribution diverged");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_hypergraph::HypergraphBuilder;

    /// 4 nodes, nets: {0,1}, {1,2,3}, {0,3}+terminal.
    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let n: Vec<NodeId> = (0..4).map(|i| b.add_node(format!("n{i}"), (i + 1) as u32)).collect();
        b.add_net("e0", [n[0], n[1]]).unwrap();
        b.add_net("e1", [n[1], n[2], n[3]]).unwrap();
        let e2 = b.add_net("e2", [n[0], n[3]]).unwrap();
        b.add_terminal("t0", e2).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn single_block_counts() {
        let g = sample();
        let s = PartitionState::single_block(&g);
        assert_eq!(s.block_count(), 1);
        assert_eq!(s.block_size(0), 1 + 2 + 3 + 4);
        assert_eq!(s.cut_count(), 0);
        // only the terminal net e2 is exposed
        assert_eq!(s.block_terminals(0), 1);
        assert_eq!(s.block_externals(0), 1);
    }

    #[test]
    fn bipartition_counts() {
        let g = sample();
        // nodes 0,1 in block 0; nodes 2,3 in block 1
        let s = PartitionState::from_assignment(&g, vec![0, 0, 1, 1], 2);
        assert_eq!(s.block_size(0), 3);
        assert_eq!(s.block_size(1), 7);
        // e1 spans both (cut), e2 spans both (cut + terminal), e0 internal.
        assert_eq!(s.cut_count(), 2);
        assert_eq!(s.block_terminals(0), 2);
        assert_eq!(s.block_terminals(1), 2);
        assert_eq!(s.terminal_sum(), 4);
        // terminal net e2 touches both blocks
        assert_eq!(s.block_externals(0), 1);
        assert_eq!(s.block_externals(1), 1);
        assert_eq!(s.net_span(NetId::from_index(1)), 2);
        assert_eq!(s.net_pins_in(NetId::from_index(1), 1), 2);
    }

    #[test]
    fn move_updates_all_counters() {
        let g = sample();
        let mut s = PartitionState::from_assignment(&g, vec![0, 0, 1, 1], 2);
        s.move_node(NodeId::from_index(1), 1);
        s.assert_consistent();
        // now block 0 = {0}, block 1 = {1,2,3}
        assert_eq!(s.block_size(0), 1);
        assert_eq!(s.block_size(1), 9);
        // e0 cut, e1 internal to 1, e2 cut(+term)
        assert_eq!(s.cut_count(), 2);
        assert_eq!(s.block_terminals(0), 2);
        assert_eq!(s.block_terminals(1), 2);
    }

    #[test]
    fn move_back_restores_counters() {
        let g = sample();
        let mut s = PartitionState::from_assignment(&g, vec![0, 0, 1, 1], 2);
        let before = (s.block_size(0), s.block_terminals(0), s.block_externals(1), s.cut_count());
        s.move_node(NodeId::from_index(2), 0);
        s.move_node(NodeId::from_index(2), 1);
        s.assert_consistent();
        let after = (s.block_size(0), s.block_terminals(0), s.block_externals(1), s.cut_count());
        assert_eq!(before, after);
    }

    #[test]
    fn noop_move_changes_nothing() {
        let g = sample();
        let mut s = PartitionState::from_assignment(&g, vec![0, 0, 1, 1], 2);
        s.move_node(NodeId::from_index(0), 0);
        s.assert_consistent();
        assert_eq!(s.block_size(0), 3);
    }

    #[test]
    fn add_block_and_grow() {
        let g = sample();
        let mut s = PartitionState::from_assignment(&g, vec![0, 0, 0, 0], 1);
        let b1 = s.add_block();
        let b2 = s.add_block(); // forces stride growth (1 → 2 → 4)
        assert_eq!((b1, b2), (1, 2));
        s.move_node(NodeId::from_index(3), b2);
        s.assert_consistent();
        assert_eq!(s.block_size(b2), 4);
        assert_eq!(s.block_count(), 3);
    }

    #[test]
    fn emptying_a_block_is_consistent() {
        let g = sample();
        let mut s = PartitionState::from_assignment(&g, vec![0, 0, 1, 1], 2);
        s.move_node(NodeId::from_index(2), 0);
        s.move_node(NodeId::from_index(3), 0);
        s.assert_consistent();
        assert_eq!(s.block_size(1), 0);
        assert_eq!(s.block_terminals(1), 0);
        assert_eq!(s.block_externals(1), 0);
        assert_eq!(s.cut_count(), 0);
    }

    #[test]
    fn terminal_net_exposure_without_cut() {
        // A terminal net fully inside one block still consumes an IOB.
        let mut b = HypergraphBuilder::new();
        let x = b.add_node("x", 1);
        let y = b.add_node("y", 1);
        let e = b.add_net("e", [x, y]).unwrap();
        b.add_terminal("t1", e).unwrap();
        b.add_terminal("t2", e).unwrap(); // a 2-terminal net
        let g = b.finish().unwrap();
        let s = PartitionState::single_block(&g);
        assert_eq!(s.block_terminals(0), 1); // one net → one IOB
        assert_eq!(s.block_externals(0), 2); // but two primary I/Os
        assert_eq!(s.cut_count(), 0);
    }

    #[test]
    fn apply_restores_assignment_list() {
        let g = sample();
        let mut s = PartitionState::from_assignment(&g, vec![0, 0, 1, 1], 2);
        let snapshot: Vec<(NodeId, usize)> = g.node_ids().map(|v| (v, s.block_of(v))).collect();
        s.move_node(NodeId::from_index(0), 1);
        s.move_node(NodeId::from_index(3), 0);
        s.apply(snapshot);
        s.assert_consistent();
        assert_eq!(s.assignment(), &[0, 0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn move_to_missing_block_panics() {
        let g = sample();
        let mut s = PartitionState::single_block(&g);
        s.move_node(NodeId::from_index(0), 3);
    }

    #[test]
    #[should_panic(expected = "cover every node")]
    fn wrong_assignment_length_panics() {
        let g = sample();
        let _ = PartitionState::from_assignment(&g, vec![0, 0], 1);
    }
}
