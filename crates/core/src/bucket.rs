//! Gain bucket structure: one instance per move direction (ordered block
//! pair), as in Sanchis' multi-way algorithm.
//!
//! Each bucket array is indexed by gain (offset by the maximum node degree
//! `p_max`, which bounds |gain|). Cells within a bucket are kept in a vector
//! with a position index per cell, giving O(1) insert/remove/adjust; the
//! maximum-gain pointer is maintained lazily. Within a bucket the *last*
//! inserted cell is scanned first, which preserves the classical LIFO
//! behaviour studied in the FM literature.

/// A gain-indexed bucket list over cells (`u32` node indices).
#[derive(Debug, Clone)]
pub struct GainBucket {
    /// `buckets[gain + offset]` holds the cells at that gain.
    buckets: Vec<Vec<u32>>,
    offset: i32,
    /// Per-cell position within its bucket; `u32::MAX` = not present.
    pos: Vec<u32>,
    /// Per-cell current gain (meaningful only when present).
    gain: Vec<i32>,
    /// Lazy upper bound on the best non-empty bucket.
    max_gain: i32,
    len: usize,
}

impl GainBucket {
    /// Creates a bucket structure for cells `0..cell_capacity` with gains
    /// in `[-p_max, p_max]`.
    #[must_use]
    pub fn new(cell_capacity: usize, p_max: usize) -> Self {
        let p = p_max as i32;
        GainBucket {
            buckets: vec![Vec::new(); 2 * p_max + 1],
            offset: p,
            pos: vec![u32::MAX; cell_capacity],
            gain: vec![0; cell_capacity],
            max_gain: -p,
            len: 0,
        }
    }

    /// Number of cells currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no cells are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns whether `cell` is present.
    #[inline]
    #[must_use]
    pub fn contains(&self, cell: u32) -> bool {
        self.pos[cell as usize] != u32::MAX
    }

    /// Returns the stored gain of `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not present.
    #[inline]
    #[must_use]
    pub fn gain_of(&self, cell: u32) -> i32 {
        assert!(self.contains(cell), "cell {cell} not in bucket");
        self.gain[cell as usize]
    }

    /// Inserts `cell` with the given gain.
    ///
    /// # Panics
    ///
    /// Panics if the cell is already present or the gain is out of the
    /// `[-p_max, p_max]` range.
    pub fn insert(&mut self, cell: u32, gain: i32) {
        assert!(!self.contains(cell), "cell {cell} inserted twice");
        let idx = self.bucket_index(gain);
        self.pos[cell as usize] = self.buckets[idx].len() as u32;
        self.gain[cell as usize] = gain;
        self.buckets[idx].push(cell);
        self.len += 1;
        if gain > self.max_gain {
            self.max_gain = gain;
        }
    }

    /// Removes `cell` if present; returns whether it was present.
    pub fn remove(&mut self, cell: u32) -> bool {
        let p = self.pos[cell as usize];
        if p == u32::MAX {
            return false;
        }
        let idx = self.bucket_index(self.gain[cell as usize]);
        let bucket = &mut self.buckets[idx];
        let last = *bucket.last().expect("cell position implies non-empty bucket");
        bucket.swap_remove(p as usize);
        if last != cell {
            self.pos[last as usize] = p;
        }
        self.pos[cell as usize] = u32::MAX;
        self.len -= 1;
        true
    }

    /// Adjusts a present cell's gain by `delta` (no-op for `delta == 0`).
    ///
    /// # Panics
    ///
    /// Panics if the cell is not present.
    pub fn adjust(&mut self, cell: u32, delta: i32) {
        if delta == 0 {
            return;
        }
        let g = self.gain_of(cell);
        self.remove(cell);
        self.insert(cell, g + delta);
    }

    /// Returns the highest gain with a non-empty bucket, or `None`.
    #[must_use]
    pub fn max_gain(&mut self) -> Option<i32> {
        if self.len == 0 {
            return None;
        }
        loop {
            let idx = self.bucket_index(self.max_gain);
            if !self.buckets[idx].is_empty() {
                return Some(self.max_gain);
            }
            self.max_gain -= 1;
        }
    }

    /// Returns the cells at exactly the given gain (most recently inserted
    /// last).
    #[must_use]
    pub fn cells_at(&self, gain: i32) -> &[u32] {
        &self.buckets[self.bucket_index(gain)]
    }

    /// Iterates over non-empty gains from the current maximum downward.
    pub fn gains_desc(&mut self) -> impl Iterator<Item = i32> + '_ {
        let top = self.max_gain();
        let offset = self.offset;
        let buckets = &self.buckets;
        top.into_iter().flat_map(move |t| {
            (-offset..=t).rev().filter(move |g| !buckets[(g + offset) as usize].is_empty())
        })
    }

    #[inline]
    fn bucket_index(&self, gain: i32) -> usize {
        let idx = gain + self.offset;
        assert!(
            idx >= 0 && (idx as usize) < self.buckets.len(),
            "gain {gain} out of range ±{}",
            self.offset
        );
        idx as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_max() {
        let mut b = GainBucket::new(10, 5);
        assert!(b.is_empty());
        b.insert(3, 2);
        b.insert(4, -1);
        b.insert(5, 2);
        assert_eq!(b.len(), 3);
        assert_eq!(b.max_gain(), Some(2));
        assert_eq!(b.cells_at(2), &[3, 5]);
    }

    #[test]
    fn remove_updates_max_lazily() {
        let mut b = GainBucket::new(10, 5);
        b.insert(1, 4);
        b.insert(2, 0);
        assert_eq!(b.max_gain(), Some(4));
        assert!(b.remove(1));
        assert_eq!(b.max_gain(), Some(0));
        assert!(!b.remove(1));
        assert!(b.remove(2));
        assert_eq!(b.max_gain(), None);
    }

    #[test]
    fn adjust_moves_between_buckets() {
        let mut b = GainBucket::new(4, 5);
        b.insert(0, 1);
        b.adjust(0, 3);
        assert_eq!(b.gain_of(0), 4);
        assert_eq!(b.max_gain(), Some(4));
        b.adjust(0, -5);
        assert_eq!(b.gain_of(0), -1);
        assert_eq!(b.max_gain(), Some(-1));
    }

    #[test]
    fn swap_remove_fixes_positions() {
        let mut b = GainBucket::new(5, 3);
        b.insert(0, 1);
        b.insert(1, 1);
        b.insert(2, 1);
        assert!(b.remove(0)); // cell 2 swaps into slot 0
        assert!(b.contains(2));
        assert!(b.remove(2));
        assert_eq!(b.cells_at(1), &[1]);
    }

    #[test]
    fn gains_desc_lists_nonempty_levels() {
        let mut b = GainBucket::new(8, 4);
        b.insert(0, 3);
        b.insert(1, -2);
        b.insert(2, 0);
        let gains: Vec<i32> = b.gains_desc().collect();
        assert_eq!(gains, vec![3, 0, -2]);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_panics() {
        let mut b = GainBucket::new(4, 2);
        b.insert(1, 0);
        b.insert(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gain_out_of_range_panics() {
        let mut b = GainBucket::new(4, 2);
        b.insert(0, 3);
    }
}
