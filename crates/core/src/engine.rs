//! The iterative-improvement engine: Sanchis-style multi-way FM passes
//! with the paper's solution selection, feasible-move regions, and dual
//! solution-stack restarts.
//!
//! One [`improve`] call corresponds to one `Improve(...)` invocation in
//! the paper's Algorithm 1: a first series of FM passes over the given
//! active blocks, then (when enabled) restart series from every solution
//! retained in the semi-feasible and infeasible stacks, keeping the
//! overall best solution under the lexicographic key of §3.4.

use fpart_hypergraph::NodeId;

use crate::bucket::GainBucket;
use crate::config::{FpartConfig, GainObjective};
use crate::constraints::{MoveRegions, PassKind};
use crate::cost::{CostEvaluator, SolutionKey};
use crate::gain::{deltas_for_move, io_gain, level1_gain, level2_gain, level_gain};
use crate::stack::DualStacks;
use crate::state::PartitionState;

/// Maximum cells inspected per gain level when selecting a move; bounds
/// the lazy second-level-gain tie-break work per selection.
const SELECTION_SCAN_CAP: usize = 64;

/// Sentinel for [`ImproveContext::remainder`] meaning "no remainder".
pub const NO_REMAINDER: usize = usize::MAX;

/// The remainder as an `Option`, guarding the sentinel and stale indices.
fn remainder_opt(ctx: &ImproveContext<'_>, state: &PartitionState<'_>) -> Option<usize> {
    (ctx.remainder < state.block_count()).then_some(ctx.remainder)
}

/// Shared context of one improvement call.
#[derive(Debug)]
pub struct ImproveContext<'c> {
    /// Solution-quality evaluator (device, λ weights, M, |Y₀|).
    pub evaluator: &'c CostEvaluator,
    /// Algorithm configuration.
    pub config: &'c FpartConfig,
    /// Index of the block currently designated the remainder `R_k`.
    /// Pass [`NO_REMAINDER`] when no block is distinguished (e.g. during
    /// multilevel refinement): no block is then exempt from the move
    /// regions and the `d_k^R` penalty is skipped.
    pub remainder: usize,
    /// `true` once the iteration count has exceeded the lower bound `M`
    /// (disables size-violating moves, §3.5).
    pub minimum_reached: bool,
}

/// Statistics of one improvement call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImproveStats {
    /// FM passes executed (including restart series).
    pub passes: usize,
    /// Cell moves retained across all passes.
    pub moves: usize,
    /// Restart series launched from stacked solutions.
    pub restarts: usize,
    /// Solution key before the call.
    pub initial_key: SolutionKey,
    /// Solution key after the call (never worse than `initial_key`).
    pub final_key: SolutionKey,
}

/// Internal per-pass bookkeeping shared by the selection and update steps.
struct PassEngine<'s, 'g, 'c> {
    state: &'s mut PartitionState<'g>,
    ctx: &'c ImproveContext<'c>,
    /// Blocks participating in this improvement call.
    active: Vec<usize>,
    /// `block_to_slot[block]` = index into `active`, or `usize::MAX`.
    block_to_slot: Vec<usize>,
    /// One bucket per ordered (from-slot, to-slot) pair.
    buckets: Vec<GainBucket>,
    locked: Vec<bool>,
    regions: MoveRegions,
    /// Gains live in `[-gain_bound, gain_bound]` (depends on objective).
    gain_bound: i32,
}

impl<'s, 'g, 'c> PassEngine<'s, 'g, 'c> {
    fn new(
        state: &'s mut PartitionState<'g>,
        active: &[usize],
        ctx: &'c ImproveContext<'c>,
    ) -> Self {
        let kind = if active.len() == 2 {
            PassKind::TwoBlock
        } else {
            PassKind::MultiBlock
        };
        let regions = MoveRegions::new(
            ctx.config,
            ctx.evaluator.constraints(),
            kind,
            ctx.remainder,
            ctx.minimum_reached,
        );
        let mut block_to_slot = vec![usize::MAX; state.block_count()];
        for (slot, &b) in active.iter().enumerate() {
            block_to_slot[b] = slot;
        }
        let n = state.graph().node_count();
        // Cut gains are bounded by the node degree; an I/O gain can move
        // two blocks' counts by one per net, so it needs twice the range.
        let p_max = match ctx.config.gain_objective {
            GainObjective::CutNets => state.graph().max_node_degree(),
            GainObjective::IoPins => 2 * state.graph().max_node_degree(),
        };
        let dirs = active.len() * active.len();
        let buckets = (0..dirs).map(|_| GainBucket::new(n, p_max)).collect();
        PassEngine {
            state,
            ctx,
            active: active.to_vec(),
            block_to_slot,
            buckets,
            locked: vec![false; n],
            regions,
            gain_bound: p_max as i32,
        }
    }

    #[inline]
    fn dir(&self, from_slot: usize, to_slot: usize) -> usize {
        from_slot * self.active.len() + to_slot
    }

    /// The configured first-level gain of a move.
    #[inline]
    fn move_gain(&self, node: NodeId, to: usize) -> i32 {
        match self.ctx.config.gain_objective {
            GainObjective::CutNets => level1_gain(self.state, node, to),
            GainObjective::IoPins => io_gain(self.state, node, to),
        }
    }

    /// Fills the buckets with the level-1 gains of every active cell.
    fn build_buckets(&mut self, cells: &[NodeId]) {
        for &v in cells {
            let c = self.state.block_of(v);
            let from_slot = self.block_to_slot[c];
            debug_assert_ne!(from_slot, usize::MAX, "active cell in inactive block");
            for to_slot in 0..self.active.len() {
                if to_slot == from_slot {
                    continue;
                }
                let gain = self.move_gain(v, self.active[to_slot]);
                let d = self.dir(from_slot, to_slot);
                self.buckets[d].insert(v.index() as u32, gain);
            }
        }
    }

    /// Selects the best legal move: maximum level-1 gain, ties broken by
    /// level-2 gain (when configured), then by size balance
    /// `MAX(S_FROM − S_TO)`, then by cell id.
    fn select_move(&mut self) -> Option<(NodeId, usize, usize)> {
        let slots = self.active.len();
        // Enabled directions with their optimistic max gains.
        let mut dir_max: Vec<(usize, usize, i32)> = Vec::with_capacity(slots * slots);
        let mut g_star = i32::MIN;
        for fs in 0..slots {
            if !self.regions.can_donate(self.state, self.active[fs]) {
                continue;
            }
            for ts in 0..slots {
                if ts == fs || !self.regions.can_receive(self.state, self.active[ts]) {
                    continue;
                }
                let d = self.dir(fs, ts);
                if let Some(g) = self.buckets[d].max_gain() {
                    dir_max.push((fs, ts, g));
                    g_star = g_star.max(g);
                }
            }
        }
        if dir_max.is_empty() {
            return None;
        }

        let levels = self.ctx.config.gain_levels;
        let mut g = g_star;
        while g >= -self.gain_bound {
            let mut best: Option<(NodeId, usize, usize, Vec<i32>, i64)> = None;
            let mut scanned = 0usize;
            for &(fs, ts, dmax) in &dir_max {
                if dmax < g {
                    continue;
                }
                let from = self.active[fs];
                let to = self.active[ts];
                let d = self.dir(fs, ts);
                // LIFO: most recently inserted cells first.
                for &cell in self.buckets[d].cells_at(g).iter().rev() {
                    if scanned >= SELECTION_SCAN_CAP {
                        break;
                    }
                    scanned += 1;
                    let node = NodeId::from_index(cell as usize);
                    let size = u64::from(self.state.graph().node_size(node));
                    if !self.regions.move_allowed(self.state, size, from, to) {
                        continue;
                    }
                    // Lazy higher-level gain vector (levels 2..=L) for
                    // tie-breaking among equal first-level gains.
                    let tie: Vec<i32> = (2..=levels)
                        .map(|level| {
                            if level == 2 {
                                level2_gain(self.state, node, to, &self.locked)
                            } else {
                                level_gain(self.state, node, to, &self.locked, level)
                            }
                        })
                        .collect();
                    let balance =
                        self.state.block_size(from) as i64 - self.state.block_size(to) as i64;
                    let better = match &best {
                        None => true,
                        Some((bn, _, _, btie, bbal)) => {
                            (&tie, balance, std::cmp::Reverse(node.index()))
                                > (btie, *bbal, std::cmp::Reverse(bn.index()))
                        }
                    };
                    if better {
                        best = Some((node, from, to, tie, balance));
                    }
                }
            }
            if let Some((node, from, to, _, _)) = best {
                return Some((node, from, to));
            }
            g -= 1;
        }
        None
    }

    /// Applies a selected move: updates the state, locks the cell, fixes
    /// neighbouring gains.
    fn apply_move(&mut self, node: NodeId, from: usize, to: usize) {
        let graph = self.state.graph();
        let pre: Vec<(u32, u32)> = graph
            .nets(node)
            .iter()
            .map(|&e| (self.state.net_pins_in(e, from), self.state.net_pins_in(e, to)))
            .collect();

        // Remove the cell's own entries and lock it.
        let from_slot = self.block_to_slot[from];
        for ts in 0..self.active.len() {
            if ts != from_slot {
                let d = self.dir(from_slot, ts);
                self.buckets[d].remove(node.index() as u32);
            }
        }
        self.locked[node.index()] = true;

        self.state.move_node(node, to);

        match self.ctx.config.gain_objective {
            GainObjective::CutNets => {
                // Correct the stored gains via exact delta updates.
                let (state, buckets, locked) =
                    (&*self.state, &mut self.buckets, &self.locked);
                let active = &self.active;
                let block_to_slot = &self.block_to_slot;
                let slots = active.len();
                deltas_for_move(state, node, from, to, &pre, active, locked, |delta| {
                    let fs = block_to_slot[delta.from];
                    let ts = block_to_slot[delta.to];
                    if fs == usize::MAX || ts == usize::MAX {
                        return; // direction not under improvement
                    }
                    let d = fs * slots + ts;
                    let cell = delta.cell.index() as u32;
                    if buckets[d].contains(cell) {
                        buckets[d].adjust(cell, delta.delta);
                    }
                });
            }
            GainObjective::IoPins => {
                // I/O gains have no compact delta form (they depend on
                // exposure transitions of every incident net); recompute
                // the affected neighbours instead.
                self.recompute_neighbor_gains(node);
            }
        }
    }

    /// Recomputes all stored gains of unlocked cells sharing a net with
    /// `moved` (used by the I/O-pin objective).
    fn recompute_neighbor_gains(&mut self, moved: NodeId) {
        let graph = self.state.graph();
        let mut touched: Vec<NodeId> = Vec::new();
        for &net in graph.nets(moved) {
            for &u in graph.pins(net) {
                if u != moved && !self.locked[u.index()] {
                    touched.push(u);
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for u in touched {
            let c = self.state.block_of(u);
            let from_slot = self.block_to_slot[c];
            if from_slot == usize::MAX {
                continue;
            }
            for to_slot in 0..self.active.len() {
                if to_slot == from_slot {
                    continue;
                }
                let d = self.dir(from_slot, to_slot);
                let cell = u.index() as u32;
                if self.buckets[d].contains(cell) {
                    let fresh = self.move_gain(u, self.active[to_slot]);
                    let stored = self.buckets[d].gain_of(cell);
                    self.buckets[d].adjust(cell, fresh - stored);
                }
            }
        }
    }
}

/// Runs a single FM pass over `cells` (the cells of the active blocks).
///
/// Returns `(improved, moves_kept, best_key)`. The state is left at the
/// best prefix of the move sequence (classical FM rollback).
fn run_pass(
    state: &mut PartitionState<'_>,
    cells: &[NodeId],
    ctx: &ImproveContext<'_>,
    active: &[usize],
    stacks: Option<&mut DualStacks>,
) -> (bool, usize, SolutionKey) {
    let initial_key = ctx.evaluator.key(state, remainder_opt(ctx, state));
    let mut engine = PassEngine::new(state, active, ctx);
    engine.build_buckets(cells);

    let mut move_log: Vec<(NodeId, usize, usize)> = Vec::new();
    let mut best_key = initial_key;
    let mut best_len = 0usize;
    let mut stacks = stacks;
    let patience = ctx.config.early_stop_patience;

    while let Some((node, from, to)) = engine.select_move() {
        engine.apply_move(node, from, to);
        move_log.push((node, from, to));
        let key = engine.ctx.evaluator.key(engine.state, remainder_opt(engine.ctx, engine.state));
        if key.better_than(&best_key) {
            best_key = key;
            best_len = move_log.len();
        } else if let Some(patience) = patience {
            // §5 future work: give up on a pass drifting away from the
            // feasible region instead of exhausting every move.
            if move_log.len() - best_len >= patience {
                break;
            }
        }
        if let Some(stacks) = stacks.as_deref_mut() {
            let snapshot_state = &*engine.state;
            stacks.offer(key, || {
                cells
                    .iter()
                    .map(|&v| snapshot_state.block_of(v) as u32)
                    .collect()
            });
        }
    }

    // Roll back to the best prefix.
    while move_log.len() > best_len {
        let (node, from, _) = move_log.pop().expect("length checked");
        engine.state.move_node(node, from);
    }
    (best_key.better_than(&initial_key), best_len, best_key)
}

/// Runs FM passes until a pass fails to improve or `max_passes` is hit.
fn run_series(
    state: &mut PartitionState<'_>,
    cells: &[NodeId],
    ctx: &ImproveContext<'_>,
    active: &[usize],
    mut stacks: Option<&mut DualStacks>,
) -> (usize, usize) {
    let mut passes = 0usize;
    let mut moves = 0usize;
    loop {
        let (improved, pass_moves, _) =
            run_pass(state, cells, ctx, active, stacks.as_deref_mut());
        passes += 1;
        moves += pass_moves;
        if !improved || passes >= ctx.config.max_passes {
            return (passes, moves);
        }
    }
}

/// One `Improve(...)` call of Algorithm 1 over the given active blocks.
///
/// The state is left at the best solution found; the returned
/// [`ImproveStats::final_key`] is never worse than
/// [`ImproveStats::initial_key`].
///
/// # Panics
///
/// Panics if `active` lists fewer than two blocks or contains an index
/// `≥ state.block_count()`.
pub fn improve(
    state: &mut PartitionState<'_>,
    active: &[usize],
    ctx: &ImproveContext<'_>,
) -> ImproveStats {
    assert!(active.len() >= 2, "improvement needs at least two blocks");
    assert!(
        active.iter().all(|&b| b < state.block_count()),
        "active block out of range"
    );
    let initial_key = ctx.evaluator.key(state, remainder_opt(ctx, state));

    // Cells eligible to move: everything currently in an active block.
    let mut in_active = vec![false; state.block_count()];
    for &b in active {
        in_active[b] = true;
    }
    let cells: Vec<NodeId> = state
        .graph()
        .node_ids()
        .filter(|&v| in_active[state.block_of(v)])
        .collect();
    if cells.is_empty() {
        return ImproveStats {
            passes: 0,
            moves: 0,
            restarts: 0,
            initial_key,
            final_key: initial_key,
        };
    }

    let mut stacks = ctx
        .config
        .use_solution_stacks
        .then(|| DualStacks::new(ctx.config.stack_depth));

    // First execution (records the stacks).
    let (mut passes, mut moves) = run_series(state, &cells, ctx, active, stacks.as_mut());

    let mut best_key = ctx.evaluator.key(state, remainder_opt(ctx, state));
    let mut best_snapshot: Vec<u32> = cells.iter().map(|&v| state.block_of(v) as u32).collect();
    let mut restarts = 0usize;

    if let Some(stacks) = stacks {
        let candidates: Vec<Vec<u32>> = stacks.iter().map(|(_, s)| s.to_vec()).collect();
        for snapshot in candidates {
            restore(state, &cells, &snapshot);
            let (p, m) = run_series(state, &cells, ctx, active, None);
            passes += p;
            moves += m;
            restarts += 1;
            let key = ctx.evaluator.key(state, remainder_opt(ctx, state));
            if key.better_than(&best_key) {
                best_key = key;
                best_snapshot = cells.iter().map(|&v| state.block_of(v) as u32).collect();
            }
        }
    }

    restore(state, &cells, &best_snapshot);
    debug_assert!(!initial_key.better_than(&best_key), "improve made things worse");
    ImproveStats {
        passes,
        moves,
        restarts,
        initial_key,
        final_key: best_key,
    }
}

/// Restores a snapshot of block assignments over the active cells.
fn restore(state: &mut PartitionState<'_>, cells: &[NodeId], snapshot: &[u32]) {
    debug_assert_eq!(cells.len(), snapshot.len());
    for (&v, &b) in cells.iter().zip(snapshot) {
        state.move_node(v, b as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_device::DeviceConstraints;
    use fpart_hypergraph::gen::{clustered_circuit, ClusteredConfig};
    use fpart_hypergraph::{Hypergraph, HypergraphBuilder};

    fn ctx<'c>(
        evaluator: &'c CostEvaluator,
        config: &'c FpartConfig,
        remainder: usize,
    ) -> ImproveContext<'c> {
        ImproveContext { evaluator, config, remainder, minimum_reached: false }
    }

    /// Two dense 4-cliques joined by one net; a bad split should be fixed.
    fn two_cliques() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let n: Vec<NodeId> = (0..8).map(|i| b.add_node(format!("n{i}"), 1)).collect();
        let cliques = [&n[0..4], &n[4..8]];
        let mut e = 0;
        for c in cliques {
            for i in 0..c.len() {
                for j in (i + 1)..c.len() {
                    b.add_net(format!("e{e}"), [c[i], c[j]]).unwrap();
                    e += 1;
                }
            }
        }
        b.add_net("bridge", [n[3], n[4]]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn improve_pulls_stray_cell_out_of_remainder() {
        let g = two_cliques();
        // Remainder (block 0) holds clique A plus stray cell 4 of clique B.
        let mut state =
            PartitionState::from_assignment(&g, vec![0, 0, 0, 0, 0, 1, 1, 1], 2);
        // Cut: nets (4,5),(4,6),(4,7) → 3 (the bridge {3,4} is inside 0).
        assert_eq!(state.cut_count(), 3);
        let config = FpartConfig::default();
        let evaluator =
            CostEvaluator::new(DeviceConstraints::new(8, 64), &config, 2, 0);
        let stats = improve(&mut state, &[0, 1], &ctx(&evaluator, &config, 0));
        state.assert_consistent();
        assert!(stats.final_key.cut <= stats.initial_key.cut);
        // The whole 8-cell circuit fits the device, so the best solution
        // under the paper's key absorbs the remainder entirely into block
        // 1 (T^SUM drops to 0). The strict ε²_min only freezes donations
        // *from* the non-remainder block, which is exactly the direction
        // not needed here.
        assert_eq!(state.cut_count(), 0, "stats: {stats:?}");
        assert_eq!(state.block_size(0), 0);
        assert_eq!(state.block_size(1), 8);
    }

    #[test]
    fn improve_never_worsens_key() {
        let (g, _) = clustered_circuit(&ClusteredConfig::new("cl", 3, 12), 7);
        // arbitrary stripes
        let assignment: Vec<u32> = (0..g.node_count() as u32).map(|i| i % 3).collect();
        let mut state = PartitionState::from_assignment(&g, assignment, 3);
        let config = FpartConfig::default();
        let evaluator =
            CostEvaluator::new(DeviceConstraints::new(14, 30), &config, 3, g.terminal_count());
        let c = ctx(&evaluator, &config, 2);
        let before = evaluator.key(&state, Some(2));
        let stats = improve(&mut state, &[0, 1, 2], &c);
        state.assert_consistent();
        assert!(!before.better_than(&stats.final_key));
        assert_eq!(stats.final_key, evaluator.key(&state, Some(2)));
    }

    #[test]
    fn improve_respects_move_regions() {
        // Remainder (block 0) huge, block 1 exactly full at S_MAX = 4:
        // no cell may enter block 1 beyond ε_max·S_MAX = 4 (4·1.05 ⌊⌋ = 4).
        let g = two_cliques();
        let mut state =
            PartitionState::from_assignment(&g, vec![0, 0, 0, 0, 1, 1, 1, 1], 2);
        let config = FpartConfig::default();
        let evaluator =
            CostEvaluator::new(DeviceConstraints::new(4, 64), &config, 2, 0);
        let stats = improve(&mut state, &[0, 1], &ctx(&evaluator, &config, 0));
        // Both blocks sit exactly at S_MAX = 4 with zero slack: the move
        // regions freeze every direction, so the pass must terminate with
        // no moves and the (already optimal) solution untouched.
        assert_eq!(stats.moves, 0);
        assert_eq!(state.block_size(1), 4);
        assert_eq!(stats.final_key.cut, 1);
    }

    #[test]
    fn improve_with_stacks_disabled_is_deterministic_and_sane() {
        let (g, _) = clustered_circuit(&ClusteredConfig::new("cl", 2, 16), 3);
        let assignment: Vec<u32> = (0..g.node_count() as u32).map(|i| i % 2).collect();
        let config = FpartConfig { use_solution_stacks: false, ..FpartConfig::default() };
        let evaluator =
            CostEvaluator::new(DeviceConstraints::new(20, 40), &config, 2, g.terminal_count());
        let mut s1 = PartitionState::from_assignment(&g, assignment.clone(), 2);
        let mut s2 = PartitionState::from_assignment(&g, assignment, 2);
        let c = ctx(&evaluator, &config, 1);
        let r1 = improve(&mut s1, &[0, 1], &c);
        let r2 = improve(&mut s2, &[0, 1], &c);
        assert_eq!(r1, r2);
        assert_eq!(s1.assignment(), s2.assignment());
        assert_eq!(r1.restarts, 0);
    }

    #[test]
    fn improve_reduces_planted_cut_to_planted_level() {
        let cfg = ClusteredConfig::new("cl", 2, 24);
        let (g, planted) = clustered_circuit(&cfg, 11);
        // Start from a noisy version of the planted partition.
        let mut assignment: Vec<u32> = planted.clone();
        for i in (0..assignment.len()).step_by(5) {
            assignment[i] = 1 - assignment[i];
        }
        let mut state = PartitionState::from_assignment(&g, assignment, 2);
        // Repairing noise needs moves in both directions; disable the
        // asymmetric regions (pure-FM behaviour) for this check.
        let config = FpartConfig { use_move_regions: false, ..FpartConfig::default() };
        let evaluator =
            CostEvaluator::new(DeviceConstraints::new(30, 200), &config, 2, g.terminal_count());
        improve(&mut state, &[0, 1], &ctx(&evaluator, &config, 0));
        state.assert_consistent();
        assert!(
            state.cut_count() <= cfg.inter_nets + 2,
            "cut {} vs planted {}",
            state.cut_count(),
            cfg.inter_nets
        );
    }

    #[test]
    fn improve_with_io_gain_objective_reduces_terminals() {
        let (g, _) = clustered_circuit(&ClusteredConfig::new("cl", 2, 20), 21);
        let assignment: Vec<u32> = (0..g.node_count() as u32).map(|i| i % 2).collect();
        let mut state = PartitionState::from_assignment(&g, assignment, 2);
        let config = FpartConfig {
            gain_objective: crate::config::GainObjective::IoPins,
            use_move_regions: false,
            ..FpartConfig::default()
        };
        let evaluator =
            CostEvaluator::new(DeviceConstraints::new(25, 60), &config, 2, g.terminal_count());
        let before = state.terminal_sum();
        let stats = improve(&mut state, &[0, 1], &ctx(&evaluator, &config, 0));
        state.assert_consistent();
        assert!(state.terminal_sum() <= before, "stats: {stats:?}");
        assert!(!stats.initial_key.better_than(&stats.final_key));
    }

    #[test]
    fn early_stop_patience_still_yields_valid_improvement() {
        let (g, _) = clustered_circuit(&ClusteredConfig::new("cl", 2, 16), 31);
        let assignment: Vec<u32> = (0..g.node_count() as u32).map(|i| i % 2).collect();
        let config = FpartConfig { early_stop_patience: Some(4), ..FpartConfig::default() };
        let evaluator =
            CostEvaluator::new(DeviceConstraints::new(20, 60), &config, 2, g.terminal_count());
        let mut state = PartitionState::from_assignment(&g, assignment, 2);
        let stats = improve(&mut state, &[0, 1], &ctx(&evaluator, &config, 0));
        state.assert_consistent();
        assert!(!stats.initial_key.better_than(&stats.final_key));
    }

    #[test]
    #[should_panic(expected = "at least two blocks")]
    fn improve_requires_two_blocks() {
        let g = two_cliques();
        let mut state = PartitionState::single_block(&g);
        let config = FpartConfig::default();
        let evaluator = CostEvaluator::new(DeviceConstraints::new(4, 4), &config, 1, 0);
        let _ = improve(&mut state, &[0], &ctx(&evaluator, &config, 0));
    }
}
