//! The iterative-improvement engine: Sanchis-style multi-way FM passes
//! with the paper's solution selection, feasible-move regions, and dual
//! solution-stack restarts.
//!
//! One [`improve`] call corresponds to one `Improve(...)` invocation in
//! the paper's Algorithm 1: a first series of FM passes over the given
//! active blocks, then (when enabled) restart series from every solution
//! retained in the semi-feasible and infeasible stacks, keeping the
//! overall best solution under the lexicographic key of §3.4.

use fpart_hypergraph::NodeId;

use crate::bucket::GainBucket;
use crate::config::{FpartConfig, GainObjective};
use crate::constraints::{MoveRegions, PassKind};
use crate::cost::{CostEvaluator, KeyTracker, SolutionKey};
use crate::gain::{deltas_for_move, io_gain, io_gain_net, level1_gain, level2_gain, level_gain};
use crate::obs::{Counter, Metrics};
use crate::stack::DualStacks;
use crate::state::PartitionState;

/// Maximum cells inspected per gain level when selecting a move; bounds
/// the lazy second-level-gain tie-break work per selection.
const SELECTION_SCAN_CAP: usize = 64;

/// Highest tie-break gain level the engine supports
/// (`FpartConfig::validate` caps `gain_levels` at 4, so levels 2..=4 fill
/// at most three slots of the fixed tie array).
const MAX_TIE_LEVELS: usize = 3;

/// Sentinel for [`ImproveContext::remainder`] meaning "no remainder".
pub const NO_REMAINDER: usize = usize::MAX;

/// The remainder as an `Option`, guarding the sentinel and stale indices.
fn remainder_opt(ctx: &ImproveContext<'_>, state: &PartitionState<'_>) -> Option<usize> {
    (ctx.remainder < state.block_count()).then_some(ctx.remainder)
}

/// Shared context of one improvement call.
#[derive(Debug)]
pub struct ImproveContext<'c> {
    /// Solution-quality evaluator (device, λ weights, M, |Y₀|).
    pub evaluator: &'c CostEvaluator,
    /// Algorithm configuration.
    pub config: &'c FpartConfig,
    /// Index of the block currently designated the remainder `R_k`.
    /// Pass [`NO_REMAINDER`] when no block is distinguished (e.g. during
    /// multilevel refinement): no block is then exempt from the move
    /// regions and the `d_k^R` penalty is skipped.
    pub remainder: usize,
    /// `true` once the iteration count has exceeded the lower bound `M`
    /// (disables size-violating moves, §3.5).
    pub minimum_reached: bool,
    /// Execution budget for this run, checked at every pass boundary
    /// (including before the first pass) and before each stack-restart
    /// series. `None` means unlimited and costs one branch per boundary.
    pub budget: Option<&'c crate::budget::BudgetTracker>,
}

/// Statistics of one improvement call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImproveStats {
    /// FM passes executed (including restart series).
    pub passes: usize,
    /// Cell moves retained across all passes.
    pub moves: usize,
    /// Restart series launched from stacked solutions.
    pub restarts: usize,
    /// Solution key before the call.
    pub initial_key: SolutionKey,
    /// Solution key after the call (never worse than `initial_key`).
    pub final_key: SolutionKey,
}

/// Reusable scratch buffers for the inner move loop.
///
/// All capacities are reserved when the pass engine is built, so the
/// per-move hot path (`select_move` + `apply_move`) performs **no heap
/// allocation**; debug builds assert the capacities never grow.
struct PassScratch {
    /// Pre-move `(pins_in(from), pins_in(to))` per net of the moved cell.
    pre: Vec<(u32, u32)>,
    /// Enabled directions with their optimistic max gains (`select_move`).
    dir_max: Vec<(usize, usize, i32)>,
    /// Epoch stamps per cell: `visited[v] == epoch` ⇔ `v` was already
    /// seen while processing the current move (replaces the former
    /// sort+dedup of a freshly allocated `touched` vector).
    visited: Vec<u32>,
    /// Unique unlocked neighbours of the current move (I/O objective).
    touched: Vec<u32>,
    /// Per-(neighbour, target-slot) accumulated I/O gain deltas; rows are
    /// lazily zeroed when a neighbour is first stamped.
    io_delta: Vec<i32>,
    /// Current epoch for `visited` (0 means "never stamped").
    epoch: u32,
}

impl PassScratch {
    fn new(n: usize, max_degree: usize, slots: usize, io_pins: bool) -> Self {
        PassScratch {
            pre: Vec::with_capacity(max_degree),
            dir_max: Vec::with_capacity(slots * slots),
            // The I/O-pin buffers are only touched by `update_io_gains`;
            // keep them empty under the cut-net objective.
            visited: if io_pins { vec![0; n] } else { Vec::new() },
            touched: if io_pins { Vec::with_capacity(n) } else { Vec::new() },
            io_delta: if io_pins { vec![0; n * slots] } else { Vec::new() },
            epoch: 0,
        }
    }

    /// Starts a new move: advances the visited epoch (clearing the stamp
    /// array only on the once-in-4-billion wraparound).
    #[inline]
    fn next_epoch(&mut self) -> u32 {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.visited.fill(0);
            self.epoch = 1;
        }
        self.epoch
    }
}

/// Internal per-pass bookkeeping shared by the selection and update steps.
struct PassEngine<'s, 'g, 'c> {
    state: &'s mut PartitionState<'g>,
    ctx: &'c ImproveContext<'c>,
    /// Blocks participating in this improvement call.
    active: Vec<usize>,
    /// `block_to_slot[block]` = index into `active`, or `usize::MAX`.
    block_to_slot: Vec<usize>,
    /// One bucket per ordered (from-slot, to-slot) pair.
    buckets: Vec<GainBucket>,
    locked: Vec<bool>,
    regions: MoveRegions,
    /// Gains live in `[-gain_bound, gain_bound]` (depends on objective).
    gain_bound: i32,
    /// Zero-allocation scratch for the move loop.
    scratch: PassScratch,
}

impl<'s, 'g, 'c> PassEngine<'s, 'g, 'c> {
    fn new(
        state: &'s mut PartitionState<'g>,
        active: &[usize],
        ctx: &'c ImproveContext<'c>,
    ) -> Self {
        let kind = if active.len() == 2 { PassKind::TwoBlock } else { PassKind::MultiBlock };
        let regions = MoveRegions::new(
            ctx.config,
            ctx.evaluator.constraints(),
            kind,
            ctx.remainder,
            ctx.minimum_reached,
        );
        let mut block_to_slot = vec![usize::MAX; state.block_count()];
        for (slot, &b) in active.iter().enumerate() {
            block_to_slot[b] = slot;
        }
        let n = state.graph().node_count();
        // Cut gains are bounded by the node degree; an I/O gain can move
        // two blocks' counts by one per net, so it needs twice the range.
        let p_max = match ctx.config.gain_objective {
            GainObjective::CutNets => state.graph().max_node_degree(),
            GainObjective::IoPins => 2 * state.graph().max_node_degree(),
        };
        let dirs = active.len() * active.len();
        let buckets = (0..dirs).map(|_| GainBucket::new(n, p_max)).collect();
        let scratch = PassScratch::new(
            n,
            state.graph().max_node_degree(),
            active.len(),
            ctx.config.gain_objective == GainObjective::IoPins,
        );
        PassEngine {
            state,
            ctx,
            active: active.to_vec(),
            block_to_slot,
            buckets,
            locked: vec![false; n],
            regions,
            gain_bound: p_max as i32,
            scratch,
        }
    }

    #[inline]
    fn dir(&self, from_slot: usize, to_slot: usize) -> usize {
        from_slot * self.active.len() + to_slot
    }

    /// The configured first-level gain of a move.
    #[inline]
    fn move_gain(&self, node: NodeId, to: usize) -> i32 {
        match self.ctx.config.gain_objective {
            GainObjective::CutNets => level1_gain(self.state, node, to),
            GainObjective::IoPins => io_gain(self.state, node, to),
        }
    }

    /// Fills the buckets with the level-1 gains of every active cell.
    fn build_buckets(&mut self, cells: &[NodeId]) {
        for &v in cells {
            let c = self.state.block_of(v);
            let from_slot = self.block_to_slot[c];
            debug_assert_ne!(from_slot, usize::MAX, "active cell in inactive block");
            for to_slot in 0..self.active.len() {
                if to_slot == from_slot {
                    continue;
                }
                let gain = self.move_gain(v, self.active[to_slot]);
                let d = self.dir(from_slot, to_slot);
                self.buckets[d].insert(v.index() as u32, gain);
            }
        }
    }

    /// Selects the best legal move: maximum level-1 gain, ties broken by
    /// level-2 gain (when configured), then by size balance
    /// `MAX(S_FROM − S_TO)`, then by cell id.
    fn select_move(&mut self, metrics: &mut Metrics) -> Option<(NodeId, usize, usize)> {
        let slots = self.active.len();
        // Enabled directions with their optimistic max gains, collected
        // into a reused scratch vector (no allocation per selection).
        let mut dir_max = std::mem::take(&mut self.scratch.dir_max);
        dir_max.clear();
        #[cfg(debug_assertions)]
        let dir_max_cap = dir_max.capacity();
        let mut g_star = i32::MIN;
        for fs in 0..slots {
            if !self.regions.can_donate(self.state, self.active[fs]) {
                continue;
            }
            for ts in 0..slots {
                if ts == fs || !self.regions.can_receive(self.state, self.active[ts]) {
                    continue;
                }
                let d = self.dir(fs, ts);
                if let Some(g) = self.buckets[d].max_gain() {
                    dir_max.push((fs, ts, g));
                    g_star = g_star.max(g);
                }
            }
        }
        #[cfg(debug_assertions)]
        assert_eq!(dir_max.capacity(), dir_max_cap, "dir_max scratch reallocated");
        let selected =
            if dir_max.is_empty() { None } else { self.scan_directions(&dir_max, g_star, metrics) };
        self.scratch.dir_max = dir_max;
        selected
    }

    /// Scans the enabled directions from gain `g_star` downward for the
    /// best legal move (the allocation-free body of [`Self::select_move`]).
    fn scan_directions(
        &mut self,
        dir_max: &[(usize, usize, i32)],
        g_star: i32,
        metrics: &mut Metrics,
    ) -> Option<(NodeId, usize, usize)> {
        let levels = self.ctx.config.gain_levels;
        // Bucket cells inspected over the whole selection, flushed to the
        // metrics registry once per call (not once per cell).
        let mut popped = 0u64;
        let mut g = g_star;
        while g >= -self.gain_bound {
            // Fixed-size tie arrays (levels 2..=4): unused slots stay 0 on
            // both sides of the comparison, so the ordering matches the
            // former per-candidate `Vec<i32>` without allocating.
            let mut best: Option<(NodeId, usize, usize, [i32; MAX_TIE_LEVELS], i64)> = None;
            let mut scanned = 0usize;
            for &(fs, ts, dmax) in dir_max {
                if dmax < g {
                    continue;
                }
                let from = self.active[fs];
                let to = self.active[ts];
                let d = self.dir(fs, ts);
                // LIFO: most recently inserted cells first.
                for &cell in self.buckets[d].cells_at(g).iter().rev() {
                    if scanned >= SELECTION_SCAN_CAP {
                        break;
                    }
                    scanned += 1;
                    popped += 1;
                    let node = NodeId::from_index(cell as usize);
                    let size = u64::from(self.state.graph().node_size(node));
                    if !self.regions.move_allowed(self.state, size, from, to) {
                        continue;
                    }
                    // Lazy higher-level gains (levels 2..=L) for
                    // tie-breaking among equal first-level gains.
                    let mut tie = [0i32; MAX_TIE_LEVELS];
                    for level in 2..=levels {
                        tie[usize::from(level) - 2] = if level == 2 {
                            level2_gain(self.state, node, to, &self.locked)
                        } else {
                            level_gain(self.state, node, to, &self.locked, level)
                        };
                    }
                    let balance =
                        self.state.block_size(from) as i64 - self.state.block_size(to) as i64;
                    let better = match &best {
                        None => true,
                        Some((bn, _, _, btie, bbal)) => {
                            (&tie, balance, std::cmp::Reverse(node.index()))
                                > (btie, *bbal, std::cmp::Reverse(bn.index()))
                        }
                    };
                    if better {
                        best = Some((node, from, to, tie, balance));
                    }
                }
            }
            if let Some((node, from, to, _, _)) = best {
                metrics.add(Counter::GainBucketPops, popped);
                return Some((node, from, to));
            }
            g -= 1;
        }
        metrics.add(Counter::GainBucketPops, popped);
        None
    }

    /// Applies a selected move: updates the state, locks the cell, fixes
    /// neighbouring gains. Allocation-free: the `pre` pin counts live in
    /// a scratch buffer reserved to the maximum node degree.
    fn apply_move(&mut self, node: NodeId, from: usize, to: usize) {
        let graph = self.state.graph();
        let mut pre = std::mem::take(&mut self.scratch.pre);
        pre.clear();
        #[cfg(debug_assertions)]
        let pre_cap = pre.capacity();
        pre.extend(
            graph
                .nets(node)
                .iter()
                .map(|&e| (self.state.net_pins_in(e, from), self.state.net_pins_in(e, to))),
        );
        #[cfg(debug_assertions)]
        assert_eq!(pre.capacity(), pre_cap, "pre scratch reallocated");

        // Remove the cell's own entries and lock it.
        let from_slot = self.block_to_slot[from];
        for ts in 0..self.active.len() {
            if ts != from_slot {
                let d = self.dir(from_slot, ts);
                self.buckets[d].remove(node.index() as u32);
            }
        }
        self.locked[node.index()] = true;

        self.state.move_node(node, to);

        match self.ctx.config.gain_objective {
            GainObjective::CutNets => {
                // Correct the stored gains via exact delta updates.
                let (state, buckets, locked) = (&*self.state, &mut self.buckets, &self.locked);
                let active = &self.active;
                let block_to_slot = &self.block_to_slot;
                let slots = active.len();
                deltas_for_move(state, node, from, to, &pre, active, locked, |delta| {
                    let fs = block_to_slot[delta.from];
                    let ts = block_to_slot[delta.to];
                    if fs == usize::MAX || ts == usize::MAX {
                        return; // direction not under improvement
                    }
                    let d = fs * slots + ts;
                    let cell = delta.cell.index() as u32;
                    if buckets[d].contains(cell) {
                        buckets[d].adjust(cell, delta.delta);
                    }
                });
            }
            GainObjective::IoPins => self.update_io_gains(node, from, to, &pre),
        }
        self.scratch.pre = pre;
    }

    /// Applies exact per-net I/O-gain deltas to every unlocked neighbour
    /// of `moved` after it went from block `a` to block `b`.
    ///
    /// Only nets of `moved` can change a neighbour's stored gain, and for
    /// a given net only the directions touching `a` or `b` — or any
    /// direction when the net's block span changed (exposure flips affect
    /// every direction). Fresh directions are skipped entirely instead of
    /// recomputing a full [`io_gain`] per neighbour per direction.
    ///
    /// Deltas are accumulated per (neighbour, target slot) in an
    /// epoch-stamped scratch table (no allocation, no sort+dedup) and
    /// applied to the buckets once per pair.
    fn update_io_gains(&mut self, moved: NodeId, a: usize, b: usize, pre: &[(u32, u32)]) {
        let graph = self.state.graph();
        let slots = self.active.len();
        let epoch = self.scratch.next_epoch();
        let mut touched = std::mem::take(&mut self.scratch.touched);
        touched.clear();
        #[cfg(debug_assertions)]
        let touched_cap = touched.capacity();

        for (i, &net) in graph.nets(moved).iter().enumerate() {
            let (da0, db0) = pre[i];
            let span1 = self.state.net_span(net);
            // `span0` reconstructed from the post-move span and the
            // pre-move counts (`a` emptied ⇒ span shrank; `b` newly
            // occupied ⇒ span grew).
            let span0 = span1 + u32::from(da0 == 1) - u32::from(db0 == 0);
            let span_changed = span0 != span1;
            let has_term = graph.net_has_terminal(net);
            for &u in graph.pins(net) {
                if u == moved || self.locked[u.index()] {
                    continue;
                }
                let c = self.state.block_of(u);
                if self.block_to_slot[c] == usize::MAX {
                    continue;
                }
                let row = u.index() * slots;
                if self.scratch.visited[u.index()] != epoch {
                    self.scratch.visited[u.index()] = epoch;
                    touched.push(u.index() as u32);
                    self.scratch.io_delta[row..row + slots].fill(0);
                }
                // Post- and pre-move pin counts of `u`'s own block.
                let dc1 = self.state.net_pins_in(net, c);
                let dc0 = dc1 + u32::from(c == a) - u32::from(c == b);
                for ts in 0..slots {
                    let t = self.active[ts];
                    if t == c {
                        continue;
                    }
                    // Fresh direction: neither endpoint's pin count nor
                    // the net's exposure changed ⇒ contribution intact.
                    if !span_changed && c != a && c != b && t != a && t != b {
                        continue;
                    }
                    let dt1 = self.state.net_pins_in(net, t);
                    let dt0 = dt1 + u32::from(t == a) - u32::from(t == b);
                    self.scratch.io_delta[row + ts] += io_gain_net(dc1, dt1, span1, has_term)
                        - io_gain_net(dc0, dt0, span0, has_term);
                }
            }
        }
        #[cfg(debug_assertions)]
        assert_eq!(touched.capacity(), touched_cap, "touched scratch reallocated");

        for &cell in &touched {
            let u = NodeId::from_index(cell as usize);
            let fs = self.block_to_slot[self.state.block_of(u)];
            let row = cell as usize * slots;
            for ts in 0..slots {
                if ts == fs {
                    continue;
                }
                let delta = self.scratch.io_delta[row + ts];
                let d = self.dir(fs, ts);
                if delta != 0 && self.buckets[d].contains(cell) {
                    self.buckets[d].adjust(cell, delta);
                }
                // The maintained gain must equal a fresh recomputation.
                #[cfg(debug_assertions)]
                if self.buckets[d].contains(cell) {
                    assert_eq!(
                        self.buckets[d].gain_of(cell),
                        self.move_gain(u, self.active[ts]),
                        "stale I/O gain for cell {cell} direction {fs}->{ts}"
                    );
                }
            }
        }
        self.scratch.touched = touched;
    }
}

/// Runs a single FM pass over `cells` (the cells of the active blocks).
///
/// Returns `(improved, moves_kept, best_key)`. The state is left at the
/// best prefix of the move sequence (classical FM rollback).
fn run_pass(
    state: &mut PartitionState<'_>,
    cells: &[NodeId],
    ctx: &ImproveContext<'_>,
    active: &[usize],
    stacks: Option<&mut DualStacks>,
    metrics: &mut Metrics,
) -> (bool, usize, SolutionKey) {
    metrics.bump(Counter::Passes);
    let initial_key = ctx.evaluator.key(state, remainder_opt(ctx, state));
    metrics.bump(Counter::KeyEvaluations);
    let mut engine = PassEngine::new(state, active, ctx);
    engine.build_buckets(cells);

    // Incremental key maintenance: one O(k) scan here, then O(1) updates
    // per applied move (bit-identical to the from-scratch evaluation —
    // asserted per move in debug builds).
    let mut tracker = KeyTracker::new(ctx.evaluator, engine.state);
    let mut move_log: Vec<(NodeId, usize, usize)> = Vec::with_capacity(cells.len());
    let mut best_key = initial_key;
    let mut best_len = 0usize;
    // Copy-on-accept stacking: during the move loop only the move-log
    // *prefix length* is stacked; the retained snapshots (at most
    // 2·D_stack of them) are materialized once, after the loop. The
    // retained set equals what per-move materialization would have kept:
    // a bounded best-first stack holds the top-D distinct keys of its
    // offers regardless of offer order.
    let mut prefix_stacks: Option<DualStacks<usize>> =
        stacks.is_some().then(|| DualStacks::new(ctx.config.stack_depth));
    let patience = ctx.config.early_stop_patience;

    while let Some((node, from, to)) = engine.select_move(metrics) {
        engine.apply_move(node, from, to);
        metrics.bump(Counter::MovesApplied);
        tracker.apply_move(ctx.evaluator, engine.state, from, to);
        move_log.push((node, from, to));
        let key = tracker.key(ctx.evaluator, engine.state, remainder_opt(ctx, engine.state));
        metrics.bump(Counter::KeyEvaluations);
        debug_assert_eq!(
            key,
            ctx.evaluator.key(engine.state, remainder_opt(ctx, engine.state)),
            "incremental key diverged from the from-scratch evaluation"
        );
        if key.better_than(&best_key) {
            best_key = key;
            best_len = move_log.len();
        } else if let Some(patience) = patience {
            // §5 future work: give up on a pass drifting away from the
            // feasible region instead of exhausting every move.
            if move_log.len() - best_len >= patience {
                break;
            }
        }
        if let Some(prefix_stacks) = prefix_stacks.as_mut() {
            let len = move_log.len();
            prefix_stacks.offer(key, || len);
        }
    }

    metrics.add(Counter::MovesReverted, (move_log.len() - best_len) as u64);
    match (prefix_stacks, stacks) {
        (Some(prefix_stacks), Some(stacks)) => {
            let materialized = materialize_snapshots(
                &mut engine,
                &prefix_stacks,
                stacks,
                cells,
                &move_log,
                best_len,
            );
            metrics.add(Counter::SnapshotsMaterialized, materialized as u64);
        }
        _ => {
            // Roll back to the best prefix.
            walk_to(engine.state, &move_log, move_log.len(), best_len);
        }
    }
    (best_key.better_than(&initial_key), best_len, best_key)
}

/// Replays the move log to take the state from prefix length `from_len`
/// to `to_len` (backward or forward).
fn walk_to(
    state: &mut PartitionState<'_>,
    move_log: &[(NodeId, usize, usize)],
    from_len: usize,
    to_len: usize,
) -> usize {
    let mut cur = from_len;
    while cur > to_len {
        let (node, from, _) = move_log[cur - 1];
        state.move_node(node, from);
        cur -= 1;
    }
    while cur < to_len {
        let (node, _, to) = move_log[cur];
        state.move_node(node, to);
        cur += 1;
    }
    cur
}

/// Materializes the retained prefix-length snapshots into the caller's
/// assignment stacks, then leaves the state at the best prefix.
///
/// Prefixes are visited in descending length order so the state walks
/// monotonically backward through the move log before settling on
/// `best_len`.
fn materialize_snapshots(
    engine: &mut PassEngine<'_, '_, '_>,
    prefix_stacks: &DualStacks<usize>,
    stacks: &mut DualStacks,
    cells: &[NodeId],
    move_log: &[(NodeId, usize, usize)],
    best_len: usize,
) -> usize {
    let mut retained: Vec<(SolutionKey, usize)> =
        prefix_stacks.iter().map(|(k, &len)| (*k, len)).collect();
    retained.sort_unstable_by_key(|r| std::cmp::Reverse(r.1));
    let materialized = retained.len();
    let mut cursor = move_log.len();
    for (key, len) in retained {
        cursor = walk_to(engine.state, move_log, cursor, len);
        let snapshot_state = &*engine.state;
        stacks.offer(key, || cells.iter().map(|&v| snapshot_state.block_of(v) as u32).collect());
    }
    walk_to(engine.state, move_log, cursor, best_len);
    materialized
}

/// Runs FM passes until a pass fails to improve or `max_passes` is hit.
fn run_series(
    state: &mut PartitionState<'_>,
    cells: &[NodeId],
    ctx: &ImproveContext<'_>,
    active: &[usize],
    mut stacks: Option<&mut DualStacks>,
    metrics: &mut Metrics,
) -> (usize, usize) {
    let mut passes = 0usize;
    let mut moves = 0usize;
    loop {
        // Budget boundary: checked before *every* pass (including the
        // first), so a stopped run performs no further passes and a
        // deadline overruns by at most the pass already in flight.
        if ctx.budget.is_some_and(super::budget::BudgetTracker::before_pass) {
            return (passes, moves);
        }
        let (improved, pass_moves, _) =
            run_pass(state, cells, ctx, active, stacks.as_deref_mut(), metrics);
        passes += 1;
        moves += pass_moves;
        if let Some(budget) = ctx.budget {
            budget.add_moves(pass_moves as u64);
        }
        if !improved || passes >= ctx.config.max_passes {
            return (passes, moves);
        }
    }
}

/// One `Improve(...)` call of Algorithm 1 over the given active blocks.
///
/// The state is left at the best solution found; the returned
/// [`ImproveStats::final_key`] is never worse than
/// [`ImproveStats::initial_key`].
///
/// # Panics
///
/// Panics if `active` lists fewer than two blocks or contains an index
/// `≥ state.block_count()`.
pub fn improve(
    state: &mut PartitionState<'_>,
    active: &[usize],
    ctx: &ImproveContext<'_>,
) -> ImproveStats {
    improve_metered(state, active, ctx, &mut Metrics::disabled())
}

/// [`improve`] with engine metrics recorded into `metrics`.
///
/// The registry never influences control flow: a metered run and an
/// unmetered run produce bit-identical partitions and [`ImproveStats`]
/// (proven by the `observability` property tests). A disabled registry
/// costs one predictable branch per recorded event.
pub fn improve_metered(
    state: &mut PartitionState<'_>,
    active: &[usize],
    ctx: &ImproveContext<'_>,
    metrics: &mut Metrics,
) -> ImproveStats {
    // Cells eligible to move: everything currently in an active block.
    let mut in_active = vec![false; state.block_count()];
    for &b in active {
        in_active[b] = true;
    }
    let cells: Vec<NodeId> =
        state.graph().node_ids().filter(|&v| in_active[state.block_of(v)]).collect();
    improve_cells_metered(state, active, &cells, ctx, metrics)
}

/// [`improve_metered`] over an explicit cell set instead of every cell of
/// the active blocks.
///
/// This is the boundary-refinement entry point of the n-level multilevel
/// flow: the caller passes only the cells incident to nets crossing the
/// active blocks, so each per-level FM pass builds gain buckets for the
/// boundary rather than the whole level. Cells not listed keep their
/// blocks (they are never inserted into a bucket and never moved); block
/// sizes, move regions, and the solution key still account for them.
///
/// # Panics
///
/// Panics if `active` lists fewer than two blocks, contains an index
/// `≥ state.block_count()`, or (debug builds) `cells` contains a cell
/// outside the active blocks or a duplicate.
pub fn improve_cells_metered(
    state: &mut PartitionState<'_>,
    active: &[usize],
    cells: &[NodeId],
    ctx: &ImproveContext<'_>,
    metrics: &mut Metrics,
) -> ImproveStats {
    assert!(active.len() >= 2, "improvement needs at least two blocks");
    assert!(active.iter().all(|&b| b < state.block_count()), "active block out of range");
    debug_assert!(
        {
            let mut seen = vec![false; state.graph().node_count()];
            cells.iter().all(|&v| {
                let fresh = !seen[v.index()];
                seen[v.index()] = true;
                fresh && active.contains(&state.block_of(v))
            })
        },
        "cells must be unique and live in active blocks"
    );
    metrics.bump(Counter::ImproveCalls);
    metrics.span_open(crate::obs::SpanKind::Improve, 0);
    let initial_key = ctx.evaluator.key(state, remainder_opt(ctx, state));
    metrics.bump(Counter::KeyEvaluations);

    if cells.is_empty() {
        metrics.span_close(crate::obs::SpanStats::default());
        return ImproveStats {
            passes: 0,
            moves: 0,
            restarts: 0,
            initial_key,
            final_key: initial_key,
        };
    }

    let mut stacks =
        ctx.config.use_solution_stacks.then(|| DualStacks::new(ctx.config.stack_depth));

    // First execution (records the stacks).
    let (mut passes, mut moves) = run_series(state, cells, ctx, active, stacks.as_mut(), metrics);

    let mut best_key = ctx.evaluator.key(state, remainder_opt(ctx, state));
    metrics.bump(Counter::KeyEvaluations);
    let mut best_snapshot: Vec<u32> = cells.iter().map(|&v| state.block_of(v) as u32).collect();
    let mut restarts = 0usize;

    if let Some(stacks) = stacks {
        let candidates: Vec<Vec<u32>> = stacks.iter().map(|(_, s)| s.clone()).collect();
        for snapshot in candidates {
            // Budget boundary: a stopped run restarts no further stack
            // candidates (the best solution so far is kept below).
            if ctx.budget.is_some_and(crate::budget::BudgetTracker::check) {
                break;
            }
            restore(state, cells, &snapshot);
            let (p, m) = run_series(state, cells, ctx, active, None, metrics);
            passes += p;
            moves += m;
            restarts += 1;
            metrics.bump(Counter::StackRestarts);
            let key = ctx.evaluator.key(state, remainder_opt(ctx, state));
            metrics.bump(Counter::KeyEvaluations);
            if key.better_than(&best_key) {
                best_key = key;
                best_snapshot = cells.iter().map(|&v| state.block_of(v) as u32).collect();
            }
        }
    }

    restore(state, cells, &best_snapshot);
    debug_assert!(!initial_key.better_than(&best_key), "improve made things worse");
    metrics.span_close(crate::obs::SpanStats {
        nodes: cells.len() as u64,
        moves: moves as u64,
        gain: initial_key.cut as i64 - best_key.cut as i64,
        ..crate::obs::SpanStats::default()
    });
    ImproveStats { passes, moves, restarts, initial_key, final_key: best_key }
}

/// Restores a snapshot of block assignments over the active cells.
fn restore(state: &mut PartitionState<'_>, cells: &[NodeId], snapshot: &[u32]) {
    debug_assert_eq!(cells.len(), snapshot.len());
    for (&v, &b) in cells.iter().zip(snapshot) {
        state.move_node(v, b as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_device::DeviceConstraints;
    use fpart_hypergraph::gen::{clustered_circuit, ClusteredConfig};
    use fpart_hypergraph::{Hypergraph, HypergraphBuilder};

    fn ctx<'c>(
        evaluator: &'c CostEvaluator,
        config: &'c FpartConfig,
        remainder: usize,
    ) -> ImproveContext<'c> {
        ImproveContext { evaluator, config, remainder, minimum_reached: false, budget: None }
    }

    /// Two dense 4-cliques joined by one net; a bad split should be fixed.
    fn two_cliques() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let n: Vec<NodeId> = (0..8).map(|i| b.add_node(format!("n{i}"), 1)).collect();
        let cliques = [&n[0..4], &n[4..8]];
        let mut e = 0;
        for c in cliques {
            for i in 0..c.len() {
                for j in (i + 1)..c.len() {
                    b.add_net(format!("e{e}"), [c[i], c[j]]).unwrap();
                    e += 1;
                }
            }
        }
        b.add_net("bridge", [n[3], n[4]]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn improve_pulls_stray_cell_out_of_remainder() {
        let g = two_cliques();
        // Remainder (block 0) holds clique A plus stray cell 4 of clique B.
        let mut state = PartitionState::from_assignment(&g, vec![0, 0, 0, 0, 0, 1, 1, 1], 2);
        // Cut: nets (4,5),(4,6),(4,7) → 3 (the bridge {3,4} is inside 0).
        assert_eq!(state.cut_count(), 3);
        let config = FpartConfig::default();
        let evaluator = CostEvaluator::new(DeviceConstraints::new(8, 64), &config, 2, 0);
        let stats = improve(&mut state, &[0, 1], &ctx(&evaluator, &config, 0));
        state.assert_consistent();
        assert!(stats.final_key.cut <= stats.initial_key.cut);
        // The whole 8-cell circuit fits the device, so the best solution
        // under the paper's key absorbs the remainder entirely into block
        // 1 (T^SUM drops to 0). The strict ε²_min only freezes donations
        // *from* the non-remainder block, which is exactly the direction
        // not needed here.
        assert_eq!(state.cut_count(), 0, "stats: {stats:?}");
        assert_eq!(state.block_size(0), 0);
        assert_eq!(state.block_size(1), 8);
    }

    #[test]
    fn improve_never_worsens_key() {
        let (g, _) = clustered_circuit(&ClusteredConfig::new("cl", 3, 12), 7);
        // arbitrary stripes
        let assignment: Vec<u32> = (0..g.node_count() as u32).map(|i| i % 3).collect();
        let mut state = PartitionState::from_assignment(&g, assignment, 3);
        let config = FpartConfig::default();
        let evaluator =
            CostEvaluator::new(DeviceConstraints::new(14, 30), &config, 3, g.terminal_count());
        let c = ctx(&evaluator, &config, 2);
        let before = evaluator.key(&state, Some(2));
        let stats = improve(&mut state, &[0, 1, 2], &c);
        state.assert_consistent();
        assert!(!before.better_than(&stats.final_key));
        assert_eq!(stats.final_key, evaluator.key(&state, Some(2)));
    }

    #[test]
    fn improve_respects_move_regions() {
        // Remainder (block 0) huge, block 1 exactly full at S_MAX = 4:
        // no cell may enter block 1 beyond ε_max·S_MAX = 4 (4·1.05 ⌊⌋ = 4).
        let g = two_cliques();
        let mut state = PartitionState::from_assignment(&g, vec![0, 0, 0, 0, 1, 1, 1, 1], 2);
        let config = FpartConfig::default();
        let evaluator = CostEvaluator::new(DeviceConstraints::new(4, 64), &config, 2, 0);
        let stats = improve(&mut state, &[0, 1], &ctx(&evaluator, &config, 0));
        // Both blocks sit exactly at S_MAX = 4 with zero slack: the move
        // regions freeze every direction, so the pass must terminate with
        // no moves and the (already optimal) solution untouched.
        assert_eq!(stats.moves, 0);
        assert_eq!(state.block_size(1), 4);
        assert_eq!(stats.final_key.cut, 1);
    }

    #[test]
    fn improve_with_stacks_disabled_is_deterministic_and_sane() {
        let (g, _) = clustered_circuit(&ClusteredConfig::new("cl", 2, 16), 3);
        let assignment: Vec<u32> = (0..g.node_count() as u32).map(|i| i % 2).collect();
        let config = FpartConfig { use_solution_stacks: false, ..FpartConfig::default() };
        let evaluator =
            CostEvaluator::new(DeviceConstraints::new(20, 40), &config, 2, g.terminal_count());
        let mut s1 = PartitionState::from_assignment(&g, assignment.clone(), 2);
        let mut s2 = PartitionState::from_assignment(&g, assignment, 2);
        let c = ctx(&evaluator, &config, 1);
        let r1 = improve(&mut s1, &[0, 1], &c);
        let r2 = improve(&mut s2, &[0, 1], &c);
        assert_eq!(r1, r2);
        assert_eq!(s1.assignment(), s2.assignment());
        assert_eq!(r1.restarts, 0);
    }

    #[test]
    fn improve_reduces_planted_cut_to_planted_level() {
        let cfg = ClusteredConfig::new("cl", 2, 24);
        let (g, planted) = clustered_circuit(&cfg, 11);
        // Start from a noisy version of the planted partition.
        let mut assignment: Vec<u32> = planted.clone();
        for i in (0..assignment.len()).step_by(5) {
            assignment[i] = 1 - assignment[i];
        }
        let mut state = PartitionState::from_assignment(&g, assignment, 2);
        // Repairing noise needs moves in both directions; disable the
        // asymmetric regions (pure-FM behaviour) for this check.
        let config = FpartConfig { use_move_regions: false, ..FpartConfig::default() };
        let evaluator =
            CostEvaluator::new(DeviceConstraints::new(30, 200), &config, 2, g.terminal_count());
        improve(&mut state, &[0, 1], &ctx(&evaluator, &config, 0));
        state.assert_consistent();
        assert!(
            state.cut_count() <= cfg.inter_nets + 2,
            "cut {} vs planted {}",
            state.cut_count(),
            cfg.inter_nets
        );
    }

    #[test]
    fn improve_with_io_gain_objective_reduces_terminals() {
        let (g, _) = clustered_circuit(&ClusteredConfig::new("cl", 2, 20), 21);
        let assignment: Vec<u32> = (0..g.node_count() as u32).map(|i| i % 2).collect();
        let mut state = PartitionState::from_assignment(&g, assignment, 2);
        let config = FpartConfig {
            gain_objective: crate::config::GainObjective::IoPins,
            use_move_regions: false,
            ..FpartConfig::default()
        };
        let evaluator =
            CostEvaluator::new(DeviceConstraints::new(25, 60), &config, 2, g.terminal_count());
        let before = state.terminal_sum();
        let stats = improve(&mut state, &[0, 1], &ctx(&evaluator, &config, 0));
        state.assert_consistent();
        assert!(state.terminal_sum() <= before, "stats: {stats:?}");
        assert!(!stats.initial_key.better_than(&stats.final_key));
    }

    #[test]
    fn early_stop_patience_still_yields_valid_improvement() {
        let (g, _) = clustered_circuit(&ClusteredConfig::new("cl", 2, 16), 31);
        let assignment: Vec<u32> = (0..g.node_count() as u32).map(|i| i % 2).collect();
        let config = FpartConfig { early_stop_patience: Some(4), ..FpartConfig::default() };
        let evaluator =
            CostEvaluator::new(DeviceConstraints::new(20, 60), &config, 2, g.terminal_count());
        let mut state = PartitionState::from_assignment(&g, assignment, 2);
        let stats = improve(&mut state, &[0, 1], &ctx(&evaluator, &config, 0));
        state.assert_consistent();
        assert!(!stats.initial_key.better_than(&stats.final_key));
    }

    #[test]
    #[should_panic(expected = "at least two blocks")]
    fn improve_requires_two_blocks() {
        let g = two_cliques();
        let mut state = PartitionState::single_block(&g);
        let config = FpartConfig::default();
        let evaluator = CostEvaluator::new(DeviceConstraints::new(4, 4), &config, 1, 0);
        let _ = improve(&mut state, &[0], &ctx(&evaluator, &config, 0));
    }
}
