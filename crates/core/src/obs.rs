//! Zero-overhead observability: engine metrics and structured event sinks.
//!
//! The paper's whole evaluation is schedule behaviour — which
//! `Improve(...)` slots fire, how many passes/moves/restarts each
//! consumes, how feasibility classes evolve (Figs. 1–2). This module
//! makes that behaviour measurable without perturbing it:
//!
//! * [`Metrics`] — a registry of named [`Counter`]s plus per-
//!   [`ImproveKind`] monotonic wall-time histograms ([`TimeStat`]).
//!   A disabled registry records nothing and costs **one predictable
//!   branch per event, no heap allocation, no clock reads** — the same
//!   discipline as [`Trace`]'s lazy recording.
//! * [`EventSink`] — the generalization of [`Trace`]: anything that can
//!   consume driver [`TraceEvent`]s. `Trace` itself is one sink;
//!   [`JsonlSink`] streams events as JSON Lines; [`FanoutSink`]
//!   broadcasts to several sinks.
//! * [`Observer`] — the bundle the driver threads through a run: an
//!   owned `Metrics` plus an optional `&mut dyn EventSink`.
//!
//! Instrumented and uninstrumented runs produce **bit-identical
//! partitions** (metrics never influence control flow); the
//! `observability` integration suite proves it by property test at 1
//! and 4 threads.
//!
//! All serialization here is dependency-free, hand-rolled JSON — the
//! workspace stays offline (no `serde`, no `tracing`).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use crate::cost::SolutionKey;
use crate::trace::{ImproveKind, TraceEvent};

/// Schema version of every machine-readable document this module emits
/// (the CLI `--metrics` file, the JSONL trace, `BENCH_*.json`). Bump it
/// whenever a field is renamed, removed, or changes meaning.
pub const SCHEMA_VERSION: u32 = 6;

/// The named engine counters. Every counter is a monotonically
/// increasing `u64`; [`Counter::name`] is the stable `snake_case` key used
/// in serialized form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// FM passes executed (`engine::run_pass` entries).
    Passes = 0,
    /// Cell moves applied inside pass loops (before any rollback).
    MovesApplied,
    /// Applied moves undone by best-prefix rollback.
    MovesReverted,
    /// Cells inspected (popped) from gain buckets during move selection.
    GainBucketPops,
    /// Restart series launched from stacked solutions.
    StackRestarts,
    /// Solution-key evaluations (incremental and from-scratch).
    KeyEvaluations,
    /// Stack snapshots materialized from move-log prefixes.
    SnapshotsMaterialized,
    /// `Improve(...)` calls issued by a driver schedule.
    ImproveCalls,
    /// Peeling iterations of Algorithm 1.
    Iterations,
    /// Constructive remainder bipartitions.
    Bipartitions,
    /// Independent runs/restarts aggregated into this registry.
    Runs,
    /// Runs stopped early by a budget (deadline, cancel, pass/move cap).
    BudgetStops,
    /// Faults injected by an installed [`crate::FaultPlan`] (panicking
    /// faults are counted on the surviving side as failed restarts).
    FaultsInjected,
    /// Restarts lost to an isolated panic.
    FailedRestarts,
    /// Coarsening levels built by the n-level multilevel flow.
    CoarsenLevels,
    /// Boundary-refinement improve calls run during uncoarsening.
    BoundaryRefinements,
    /// Netlist edit operations applied by the ECO flow.
    EcoEditsApplied,
    /// Blocks marked dirty (and therefore repaired) by the ECO flow.
    EcoDirtyBlocks,
    /// ECO repairs that fell back to full repartitioning.
    EcoFallbacks,
    /// Boundary-refinement pair jobs scheduled onto intra-run workers.
    PairJobs,
    /// Pair jobs lost to an isolated worker panic (their moves are
    /// dropped deterministically; the round's other pairs commit).
    PairPanics,
}

impl Counter {
    /// Every counter, in serialization order.
    pub const ALL: [Counter; 21] = [
        Counter::Passes,
        Counter::MovesApplied,
        Counter::MovesReverted,
        Counter::GainBucketPops,
        Counter::StackRestarts,
        Counter::KeyEvaluations,
        Counter::SnapshotsMaterialized,
        Counter::ImproveCalls,
        Counter::Iterations,
        Counter::Bipartitions,
        Counter::Runs,
        Counter::BudgetStops,
        Counter::FaultsInjected,
        Counter::FailedRestarts,
        Counter::CoarsenLevels,
        Counter::BoundaryRefinements,
        Counter::EcoEditsApplied,
        Counter::EcoDirtyBlocks,
        Counter::EcoFallbacks,
        Counter::PairJobs,
        Counter::PairPanics,
    ];

    /// Stable `snake_case` key of this counter in serialized metrics.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::Passes => "passes",
            Counter::MovesApplied => "moves_applied",
            Counter::MovesReverted => "moves_reverted",
            Counter::GainBucketPops => "gain_bucket_pops",
            Counter::StackRestarts => "stack_restarts",
            Counter::KeyEvaluations => "key_evaluations",
            Counter::SnapshotsMaterialized => "snapshots_materialized",
            Counter::ImproveCalls => "improve_calls",
            Counter::Iterations => "iterations",
            Counter::Bipartitions => "bipartitions",
            Counter::Runs => "runs",
            Counter::BudgetStops => "budget_stops",
            Counter::FaultsInjected => "faults_injected",
            Counter::FailedRestarts => "failed_restarts",
            Counter::CoarsenLevels => "coarsen_levels",
            Counter::BoundaryRefinements => "boundary_refinements",
            Counter::EcoEditsApplied => "eco_edits_applied",
            Counter::EcoDirtyBlocks => "eco_dirty_blocks",
            Counter::EcoFallbacks => "eco_fallbacks",
            Counter::PairJobs => "pair_jobs",
            Counter::PairPanics => "pair_panics",
        }
    }
}

/// Number of log₂ nanosecond buckets in a [`TimeStat`] histogram.
/// Bucket `b` counts durations in `[2^(b−1), 2^b)` ns (bucket 0 is
/// `< 1` ns); the last bucket absorbs everything from `2^38` ns
/// (≈ 4.6 min) up.
pub const TIME_BUCKETS: usize = 40;

/// A monotonic wall-time statistic: count, total, min/max, and a
/// log₂-bucketed histogram of observed durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeStat {
    /// Durations recorded.
    pub count: u64,
    /// Sum of recorded durations in nanoseconds.
    pub total_ns: u64,
    /// Shortest recorded duration (`u64::MAX` while empty).
    pub min_ns: u64,
    /// Longest recorded duration.
    pub max_ns: u64,
    /// `log2_hist[b]` counts durations with `⌈log₂ ns⌉ = b` (see
    /// [`TIME_BUCKETS`]).
    pub log2_hist: [u64; TIME_BUCKETS],
}

impl Default for TimeStat {
    fn default() -> Self {
        TimeStat {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            log2_hist: [0; TIME_BUCKETS],
        }
    }
}

impl TimeStat {
    /// Records one duration.
    pub fn record(&mut self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        let bucket = (64 - u64::leading_zeros(ns)) as usize;
        self.log2_hist[bucket.min(TIME_BUCKETS - 1)] += 1;
    }

    /// Merges another statistic into this one (commutative on the
    /// aggregates; callers merge in a fixed order anyway for
    /// determinism).
    pub fn merge(&mut self, other: &TimeStat) {
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (a, b) in self.log2_hist.iter_mut().zip(&other.log2_hist) {
            *a += b;
        }
    }

    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"log2_hist\": [",
            self.count,
            self.total_ns,
            if self.count == 0 { 0 } else { self.min_ns },
            self.max_ns
        );
        for (i, c) in self.log2_hist.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{c}");
        }
        out.push_str("]}");
    }
}

/// The metrics registry: named counters plus a wall-time statistic per
/// improvement-schedule slot.
///
/// A disabled registry ([`Metrics::disabled`]) never touches its
/// storage, never reads the clock ([`Metrics::start`] returns `None`),
/// and never allocates — every recording method is one predictable
/// branch.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    enabled: bool,
    counters: [u64; Counter::ALL.len()],
    improve_time: [TimeStat; ImproveKind::ALL.len()],
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            enabled: false,
            counters: [0; Counter::ALL.len()],
            improve_time: [TimeStat::default(); ImproveKind::ALL.len()],
        }
    }
}

impl Metrics {
    /// Creates an enabled (recording) registry.
    #[must_use]
    pub fn enabled() -> Self {
        Metrics { enabled: true, ..Metrics::default() }
    }

    /// Creates a disabled (no-op) registry.
    #[must_use]
    pub fn disabled() -> Self {
        Metrics::default()
    }

    /// Creates a registry with the same enabled-ness as `self` but no
    /// recorded data — the seed for a per-restart / per-thread child
    /// registry whose results are later [`Metrics::merge`]d back.
    #[must_use]
    pub fn fork(&self) -> Self {
        if self.enabled {
            Metrics::enabled()
        } else {
            Metrics::disabled()
        }
    }

    /// Returns whether events are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `n` to a counter (no-op when disabled).
    #[inline]
    pub fn add(&mut self, counter: Counter, n: u64) {
        if self.enabled {
            self.counters[counter as usize] += n;
        }
    }

    /// Increments a counter by one (no-op when disabled).
    #[inline]
    pub fn bump(&mut self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Current value of a counter.
    #[must_use]
    pub fn get(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// Reads the monotonic clock iff enabled — pair with
    /// [`Metrics::stop_improve`]. Disabled registries never pay for
    /// `Instant::now()`.
    #[inline]
    #[must_use]
    pub fn start(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    /// Records the wall time of one `Improve(...)` call of the given
    /// schedule slot (no-op when `started` is `None`).
    #[inline]
    pub fn stop_improve(&mut self, kind: ImproveKind, started: Option<Instant>) {
        if let Some(started) = started {
            self.improve_time[kind.index()].record(started.elapsed());
        }
    }

    /// The wall-time statistic of one improvement-schedule slot.
    #[must_use]
    pub fn improve_time(&self, kind: ImproveKind) -> &TimeStat {
        &self.improve_time[kind.index()]
    }

    /// Merges another registry into this one: counters add, time
    /// statistics combine. Callers merge children in restart-index
    /// order, so the aggregate is deterministic at every thread count.
    pub fn merge(&mut self, other: &Metrics) {
        self.enabled |= other.enabled;
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        for (a, b) in self.improve_time.iter_mut().zip(&other.improve_time) {
            a.merge(b);
        }
    }

    /// Serializes the registry as a JSON object:
    /// `{"counters": {<name>: <u64>, …}, "improve_time": {<kind>: <TimeStat>, …}}`.
    /// Counters appear in [`Counter::ALL`] order; only schedule slots
    /// with a nonzero count appear under `improve_time`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\": {");
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {}", c.name(), self.get(*c));
        }
        out.push_str("}, \"improve_time\": {");
        let mut first = true;
        for kind in ImproveKind::ALL {
            let stat = self.improve_time(kind);
            if stat.count == 0 {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(out, "\"{}\": ", kind.as_str());
            stat.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

/// A consumer of driver events — the generalization of [`Trace`]
/// (which records events in memory) to arbitrary destinations
/// (streaming JSONL, fan-out, test probes).
///
/// [`Trace`]: crate::trace::Trace
pub trait EventSink {
    /// Whether the sink currently wants events. Producers check this
    /// *before* constructing an event, so a disabled sink costs one
    /// branch and zero allocation per event.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn record_event(&mut self, event: &TraceEvent);
}

/// Streams events as JSON Lines (one event object per line) into any
/// [`std::io::Write`]. The line format is documented at
/// [`event_to_json`].
#[derive(Debug)]
pub struct JsonlSink<W: std::io::Write> {
    out: W,
    lines: u64,
}

impl<W: std::io::Write> JsonlSink<W> {
    /// Wraps a writer. Wrap files in a `BufWriter`: one line is written
    /// per event.
    pub fn new(out: W) -> Self {
        JsonlSink { out, lines: 0 }
    }

    /// Lines written so far.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: std::io::Write> EventSink for JsonlSink<W> {
    fn record_event(&mut self, event: &TraceEvent) {
        let mut line = event_to_json(event);
        line.push('\n');
        // An unwritable sink must not abort a partitioning run; the
        // caller can detect short output via `lines()`.
        if self.out.write_all(line.as_bytes()).is_ok() {
            self.lines += 1;
        }
    }
}

/// Broadcasts every event to several sinks (e.g. an in-memory [`Trace`]
/// plus a [`JsonlSink`]). Enabled iff any child is.
///
/// [`Trace`]: crate::trace::Trace
pub struct FanoutSink<'a> {
    sinks: Vec<&'a mut dyn EventSink>,
}

impl<'a> FanoutSink<'a> {
    /// Bundles the given sinks.
    #[must_use]
    pub fn new(sinks: Vec<&'a mut dyn EventSink>) -> Self {
        FanoutSink { sinks }
    }
}

impl EventSink for FanoutSink<'_> {
    fn is_enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.is_enabled())
    }

    fn record_event(&mut self, event: &TraceEvent) {
        for sink in &mut self.sinks {
            if sink.is_enabled() {
                sink.record_event(event);
            }
        }
    }
}

/// The observability bundle one partitioning run threads through the
/// driver and engine: an owned metrics registry plus an optional event
/// sink. Use one observer per run; [`Observer::none`] is the
/// fully-disabled default whose per-event cost is one branch.
pub struct Observer<'s> {
    /// The metrics registry of this run.
    pub metrics: Metrics,
    sink: Option<&'s mut dyn EventSink>,
}

impl<'s> Observer<'s> {
    /// A fully disabled observer (no metrics, no sink).
    #[must_use]
    pub fn none() -> Self {
        Observer { metrics: Metrics::disabled(), sink: None }
    }

    /// An observer with the given registry and sink.
    #[must_use]
    pub fn new(metrics: Metrics, sink: Option<&'s mut dyn EventSink>) -> Self {
        Observer { metrics, sink }
    }

    /// Emits an event to the sink, constructing it lazily — nothing is
    /// built when no enabled sink is attached.
    #[inline]
    pub fn emit(&mut self, event: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.sink.as_deref_mut() {
            if sink.is_enabled() {
                sink.record_event(&event());
            }
        }
    }
}

impl std::fmt::Debug for Observer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observer")
            .field("metrics", &self.metrics)
            .field("sink", &self.sink.as_ref().map(|s| s.is_enabled()))
            .finish()
    }
}

/// Writes a JSON string literal (with escaping) into `out`.
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an `f64` as a JSON number (`null` for non-finite values).
pub(crate) fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

fn push_key_json(out: &mut String, key: &SolutionKey) {
    let _ = write!(
        out,
        "{{\"feasible_blocks\": {}, \"total_blocks\": {}, \"infeasibility\": ",
        key.feasible_blocks, key.total_blocks
    );
    push_json_f64(out, key.infeasibility);
    let _ = write!(out, ", \"terminal_sum\": {}, \"external_balance\": ", key.terminal_sum);
    push_json_f64(out, key.external_balance);
    let _ = write!(out, ", \"cut\": {}}}", key.cut);
}

/// Serializes one [`TraceEvent`] as a single-line JSON object.
///
/// Every object carries `"event"` (one of `"iteration_start"`,
/// `"bipartition"`, `"improve"`, `"solution"`) and `"iteration"`,
/// followed by the variant's fields in declaration order. Solution keys
/// serialize with their full lexicographic field order
/// (`feasible_blocks`, `total_blocks`, `infeasibility`, `terminal_sum`,
/// `external_balance`, `cut`); enum values use their stable `snake_case`
/// names ([`ImproveKind::as_str`]).
#[must_use]
pub fn event_to_json(event: &TraceEvent) -> String {
    let mut out = String::new();
    match event {
        TraceEvent::IterationStart { iteration, remainder_size, remainder_terminals } => {
            let _ = write!(
                out,
                "{{\"event\": \"iteration_start\", \"iteration\": {iteration}, \
                 \"remainder_size\": {remainder_size}, \
                 \"remainder_terminals\": {remainder_terminals}}}"
            );
        }
        TraceEvent::Bipartition { iteration, method, peeled_size, peeled_terminals } => {
            let _ = write!(
                out,
                "{{\"event\": \"bipartition\", \"iteration\": {iteration}, \"method\": "
            );
            push_json_str(&mut out, &format!("{method:?}"));
            let _ = write!(
                out,
                ", \"peeled_size\": {peeled_size}, \"peeled_terminals\": {peeled_terminals}}}"
            );
        }
        TraceEvent::Improve {
            iteration,
            kind,
            blocks,
            initial_key,
            final_key,
            passes,
            moves,
            restarts,
        } => {
            let _ = write!(
                out,
                "{{\"event\": \"improve\", \"iteration\": {iteration}, \"kind\": \"{}\", \
                 \"blocks\": [",
                kind.as_str()
            );
            for (i, b) in blocks.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("], \"initial_key\": ");
            push_key_json(&mut out, initial_key);
            out.push_str(", \"final_key\": ");
            push_key_json(&mut out, final_key);
            let _ = write!(
                out,
                ", \"passes\": {passes}, \"moves\": {moves}, \"restarts\": {restarts}}}"
            );
        }
        TraceEvent::Solution { iteration, class, blocks } => {
            let _ =
                write!(out, "{{\"event\": \"solution\", \"iteration\": {iteration}, \"class\": ");
            push_json_str(&mut out, &format!("{class:?}"));
            out.push_str(", \"blocks\": [");
            for (i, b) in blocks.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{{\"size\": {}, \"terminals\": {}}}", b.size, b.terminals);
            }
            out.push_str("]}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    fn dummy_key() -> SolutionKey {
        SolutionKey {
            feasible_blocks: 1,
            total_blocks: 2,
            infeasibility: 0.25,
            terminal_sum: 7,
            external_balance: 0.5,
            cut: 3,
        }
    }

    fn improve_event() -> TraceEvent {
        TraceEvent::Improve {
            iteration: 2,
            kind: ImproveKind::MinIo,
            blocks: vec![0, 3],
            initial_key: dummy_key(),
            final_key: dummy_key(),
            passes: 4,
            moves: 9,
            restarts: 1,
        }
    }

    #[test]
    fn disabled_metrics_record_nothing_and_never_read_the_clock() {
        let mut m = Metrics::disabled();
        m.bump(Counter::Passes);
        m.add(Counter::MovesApplied, 100);
        assert!(m.start().is_none());
        m.stop_improve(ImproveKind::LastPair, None);
        assert_eq!(m.get(Counter::Passes), 0);
        assert_eq!(m.get(Counter::MovesApplied), 0);
        assert_eq!(m.improve_time(ImproveKind::LastPair).count, 0);
    }

    #[test]
    fn enabled_metrics_count_and_time() {
        let mut m = Metrics::enabled();
        m.bump(Counter::Passes);
        m.add(Counter::GainBucketPops, 41);
        m.bump(Counter::GainBucketPops);
        let started = m.start();
        assert!(started.is_some());
        m.stop_improve(ImproveKind::FinalSweep, started);
        assert_eq!(m.get(Counter::Passes), 1);
        assert_eq!(m.get(Counter::GainBucketPops), 42);
        let stat = m.improve_time(ImproveKind::FinalSweep);
        assert_eq!(stat.count, 1);
        assert!(stat.min_ns <= stat.max_ns);
        assert_eq!(stat.log2_hist.iter().sum::<u64>(), 1);
    }

    #[test]
    fn merge_adds_counters_and_combines_time() {
        let mut a = Metrics::enabled();
        a.add(Counter::Passes, 3);
        a.improve_time[ImproveKind::LastPair.index()].record(Duration::from_nanos(100));
        let mut b = Metrics::enabled();
        b.add(Counter::Passes, 4);
        b.improve_time[ImproveKind::LastPair.index()].record(Duration::from_nanos(7));
        a.merge(&b);
        assert_eq!(a.get(Counter::Passes), 7);
        let stat = a.improve_time(ImproveKind::LastPair);
        assert_eq!(stat.count, 2);
        assert_eq!(stat.total_ns, 107);
        assert_eq!(stat.min_ns, 7);
        assert_eq!(stat.max_ns, 100);
    }

    #[test]
    fn merge_order_is_deterministic() {
        // Counters and totals are commutative; merging the same set of
        // children in the same order must be reproducible.
        let children: Vec<Metrics> = (0..4)
            .map(|i| {
                let mut m = Metrics::enabled();
                m.add(Counter::MovesApplied, i * 10 + 1);
                m
            })
            .collect();
        let mut a = Metrics::enabled();
        let mut b = Metrics::enabled();
        for c in &children {
            a.merge(c);
            b.merge(c);
        }
        assert_eq!(a, b);
        assert_eq!(a.get(Counter::MovesApplied), 1 + 11 + 21 + 31);
    }

    #[test]
    fn fork_copies_enabledness_only() {
        let mut m = Metrics::enabled();
        m.add(Counter::Passes, 5);
        let f = m.fork();
        assert!(f.is_enabled());
        assert_eq!(f.get(Counter::Passes), 0);
        assert!(!Metrics::disabled().fork().is_enabled());
    }

    #[test]
    fn time_stat_buckets_are_log2() {
        let mut s = TimeStat::default();
        s.record(Duration::from_nanos(1)); // bucket 1: [1, 2)
        s.record(Duration::from_nanos(1023)); // bucket 10: [512, 1024)
        s.record(Duration::from_nanos(1024)); // bucket 11: [1024, 2048)
        assert_eq!(s.log2_hist[1], 1);
        assert_eq!(s.log2_hist[10], 1);
        assert_eq!(s.log2_hist[11], 1);
        assert_eq!(s.count, 3);
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.max_ns, 1024);
    }

    #[test]
    fn metrics_json_has_every_counter() {
        let mut m = Metrics::enabled();
        m.bump(Counter::Passes);
        let json = m.to_json();
        for c in Counter::ALL {
            assert!(json.contains(&format!("\"{}\":", c.name())), "missing {}", c.name());
        }
        assert!(json.contains("\"passes\": 1"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn jsonl_sink_streams_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record_event(&improve_event());
        sink.record_event(&TraceEvent::IterationStart {
            iteration: 1,
            remainder_size: 10,
            remainder_terminals: 2,
        });
        assert_eq!(sink.lines(), 2);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(text.contains("\"event\": \"improve\""));
        assert!(text.contains("\"kind\": \"min_io\""));
    }

    #[test]
    fn fanout_reaches_every_enabled_sink() {
        let mut trace = Trace::enabled();
        let mut off = Trace::disabled();
        let mut jsonl = JsonlSink::new(Vec::new());
        {
            let mut fanout = FanoutSink::new(vec![&mut trace, &mut off, &mut jsonl]);
            assert!(fanout.is_enabled());
            fanout.record_event(&improve_event());
        }
        assert_eq!(trace.events().len(), 1);
        assert!(off.events().is_empty());
        assert_eq!(jsonl.lines(), 1);
    }

    #[test]
    fn observer_emit_is_lazy_without_sink() {
        let mut obs = Observer::none();
        obs.emit(|| panic!("event constructed without a sink"));
        let mut disabled = Trace::disabled();
        let mut obs = Observer::new(Metrics::disabled(), Some(&mut disabled));
        obs.emit(|| panic!("event constructed for a disabled sink"));
    }

    #[test]
    fn json_escaping_is_safe() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
        let mut out = String::new();
        push_json_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        let mut out = String::new();
        push_json_f64(&mut out, 0.25);
        assert_eq!(out, "0.25");
    }
}
