//! Zero-overhead observability: engine metrics and structured event sinks.
//!
//! The paper's whole evaluation is schedule behaviour — which
//! `Improve(...)` slots fire, how many passes/moves/restarts each
//! consumes, how feasibility classes evolve (Figs. 1–2). This module
//! makes that behaviour measurable without perturbing it:
//!
//! * [`Metrics`] — a registry of named [`Counter`]s plus per-
//!   [`ImproveKind`] monotonic wall-time histograms ([`TimeStat`]).
//!   A disabled registry records nothing and costs **one predictable
//!   branch per event, no heap allocation, no clock reads** — the same
//!   discipline as [`Trace`]'s lazy recording.
//! * [`EventSink`] — the generalization of [`Trace`]: anything that can
//!   consume driver [`TraceEvent`]s. `Trace` itself is one sink;
//!   [`JsonlSink`] streams events as JSON Lines; [`FanoutSink`]
//!   broadcasts to several sinks.
//! * [`SpanStack`] — a hierarchical phase profiler: every pipeline
//!   phase (parse, coarsen level, initial, refine level, pair job,
//!   restart, ECO apply/place/repair) opens a [`SpanKind`] span whose
//!   self/total wall time, counter deltas, and structural stats
//!   ([`SpanStats`]) aggregate into [`SpanRecord`]s. Children fork and
//!   merge in job-index order exactly like the counters, so the record
//!   table is bit-identical at every thread count; only the wall-time
//!   fields (excluded from equality) vary run to run.
//! * [`Observer`] — the bundle the driver threads through a run: an
//!   owned `Metrics` plus an optional `&mut dyn EventSink` and a
//!   [`Heartbeat`] throttle for progress events.
//!
//! Instrumented and uninstrumented runs produce **bit-identical
//! partitions** (metrics never influence control flow); the
//! `observability` integration suite proves it by property test at 1
//! and 4 threads.
//!
//! All serialization here is dependency-free, hand-rolled JSON — the
//! workspace stays offline (no `serde`, no `tracing`).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use crate::cost::SolutionKey;
use crate::trace::{ImproveKind, TraceEvent};

/// Schema version of every machine-readable document this module emits
/// (the CLI `--metrics` file, the JSONL trace, `BENCH_*.json`). Bump it
/// whenever a field is renamed, removed, or changes meaning.
///
/// Version 9 adds the partition server: the `server_requests` /
/// `server_cancelled` counters, the protocol `hello` banner's
/// `schema_version` field, and the smoke bench's `server` section.
///
/// Version 10 adds fingerprint-keyed memoization: the
/// `hierarchy_cache_hits` / `hierarchy_cache_misses` /
/// `hierarchy_cache_evictions` / `memo_warm_starts` /
/// `server_coalesced` counters, and the smoke bench's `memo` section.
pub const SCHEMA_VERSION: u32 = 10;

/// The named engine counters. Every counter is a monotonically
/// increasing `u64`; [`Counter::name`] is the stable `snake_case` key used
/// in serialized form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// FM passes executed (`engine::run_pass` entries).
    Passes = 0,
    /// Cell moves applied inside pass loops (before any rollback).
    MovesApplied,
    /// Applied moves undone by best-prefix rollback.
    MovesReverted,
    /// Cells inspected (popped) from gain buckets during move selection.
    GainBucketPops,
    /// Restart series launched from stacked solutions.
    StackRestarts,
    /// Solution-key evaluations (incremental and from-scratch).
    KeyEvaluations,
    /// Stack snapshots materialized from move-log prefixes.
    SnapshotsMaterialized,
    /// `Improve(...)` calls issued by a driver schedule.
    ImproveCalls,
    /// Peeling iterations of Algorithm 1.
    Iterations,
    /// Constructive remainder bipartitions.
    Bipartitions,
    /// Independent runs/restarts aggregated into this registry.
    Runs,
    /// Runs stopped early by a budget (deadline, cancel, pass/move cap).
    BudgetStops,
    /// Faults injected by an installed [`crate::FaultPlan`] (panicking
    /// faults are counted on the surviving side as failed restarts).
    FaultsInjected,
    /// Restarts lost to an isolated panic.
    FailedRestarts,
    /// Coarsening levels built by the n-level multilevel flow.
    CoarsenLevels,
    /// Boundary-refinement improve calls run during uncoarsening.
    BoundaryRefinements,
    /// Netlist edit operations applied by the ECO flow.
    EcoEditsApplied,
    /// Blocks marked dirty (and therefore repaired) by the ECO flow.
    EcoDirtyBlocks,
    /// ECO repairs that fell back to full repartitioning.
    EcoFallbacks,
    /// Boundary-refinement pair jobs scheduled onto intra-run workers.
    PairJobs,
    /// Pair jobs lost to an isolated worker panic (their moves are
    /// dropped deterministically; the round's other pairs commit).
    PairPanics,
    /// Restarts whose results were restored from a checkpoint instead
    /// of being re-run.
    RestartsResumed,
    /// Checkpoint snapshots written to disk during the run.
    CheckpointsWritten,
    /// Protocol requests executed against a server session (the
    /// per-request registries merge into the session totals carrying
    /// this count).
    ServerRequests,
    /// Server requests stopped by an explicit `cancel` request.
    ServerCancelled,
    /// Coarsening-hierarchy cache lookups that reused a cached
    /// hierarchy (the run skipped `coarsen_to_floor`).
    HierarchyCacheHits,
    /// Coarsening-hierarchy cache lookups that missed and coarsened.
    HierarchyCacheMisses,
    /// Hierarchies evicted from the cache to honor its entry or byte
    /// bound.
    HierarchyCacheEvictions,
    /// Restarts replayed from the solution memo instead of searching
    /// (always verified against the live graph before being trusted).
    MemoWarmStarts,
    /// Duplicate in-flight server requests coalesced onto one run.
    ServerCoalesced,
}

impl Counter {
    /// Every counter, in serialization order.
    pub const ALL: [Counter; 30] = [
        Counter::Passes,
        Counter::MovesApplied,
        Counter::MovesReverted,
        Counter::GainBucketPops,
        Counter::StackRestarts,
        Counter::KeyEvaluations,
        Counter::SnapshotsMaterialized,
        Counter::ImproveCalls,
        Counter::Iterations,
        Counter::Bipartitions,
        Counter::Runs,
        Counter::BudgetStops,
        Counter::FaultsInjected,
        Counter::FailedRestarts,
        Counter::CoarsenLevels,
        Counter::BoundaryRefinements,
        Counter::EcoEditsApplied,
        Counter::EcoDirtyBlocks,
        Counter::EcoFallbacks,
        Counter::PairJobs,
        Counter::PairPanics,
        Counter::RestartsResumed,
        Counter::CheckpointsWritten,
        Counter::ServerRequests,
        Counter::ServerCancelled,
        Counter::HierarchyCacheHits,
        Counter::HierarchyCacheMisses,
        Counter::HierarchyCacheEvictions,
        Counter::MemoWarmStarts,
        Counter::ServerCoalesced,
    ];

    /// Stable `snake_case` key of this counter in serialized metrics.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::Passes => "passes",
            Counter::MovesApplied => "moves_applied",
            Counter::MovesReverted => "moves_reverted",
            Counter::GainBucketPops => "gain_bucket_pops",
            Counter::StackRestarts => "stack_restarts",
            Counter::KeyEvaluations => "key_evaluations",
            Counter::SnapshotsMaterialized => "snapshots_materialized",
            Counter::ImproveCalls => "improve_calls",
            Counter::Iterations => "iterations",
            Counter::Bipartitions => "bipartitions",
            Counter::Runs => "runs",
            Counter::BudgetStops => "budget_stops",
            Counter::FaultsInjected => "faults_injected",
            Counter::FailedRestarts => "failed_restarts",
            Counter::CoarsenLevels => "coarsen_levels",
            Counter::BoundaryRefinements => "boundary_refinements",
            Counter::EcoEditsApplied => "eco_edits_applied",
            Counter::EcoDirtyBlocks => "eco_dirty_blocks",
            Counter::EcoFallbacks => "eco_fallbacks",
            Counter::PairJobs => "pair_jobs",
            Counter::PairPanics => "pair_panics",
            Counter::RestartsResumed => "restarts_resumed",
            Counter::CheckpointsWritten => "checkpoints_written",
            Counter::ServerRequests => "server_requests",
            Counter::ServerCancelled => "server_cancelled",
            Counter::HierarchyCacheHits => "hierarchy_cache_hits",
            Counter::HierarchyCacheMisses => "hierarchy_cache_misses",
            Counter::HierarchyCacheEvictions => "hierarchy_cache_evictions",
            Counter::MemoWarmStarts => "memo_warm_starts",
            Counter::ServerCoalesced => "server_coalesced",
        }
    }
}

/// Number of log₂ nanosecond buckets in a [`TimeStat`] histogram.
/// Bucket `b` counts durations in `[2^(b−1), 2^b)` ns (bucket 0 is
/// `< 1` ns); the last bucket absorbs everything from `2^38` ns
/// (≈ 4.6 min) up.
pub const TIME_BUCKETS: usize = 40;

/// A monotonic wall-time statistic: count, total, min/max, and a
/// log₂-bucketed histogram of observed durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeStat {
    /// Durations recorded.
    pub count: u64,
    /// Sum of recorded durations in nanoseconds.
    pub total_ns: u64,
    /// Shortest recorded duration (`u64::MAX` while empty).
    pub min_ns: u64,
    /// Longest recorded duration.
    pub max_ns: u64,
    /// `log2_hist[b]` counts durations with `⌈log₂ ns⌉ = b` (see
    /// [`TIME_BUCKETS`]).
    pub log2_hist: [u64; TIME_BUCKETS],
}

impl Default for TimeStat {
    fn default() -> Self {
        TimeStat {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            log2_hist: [0; TIME_BUCKETS],
        }
    }
}

impl TimeStat {
    /// Records one duration.
    pub fn record(&mut self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        let bucket = (64 - u64::leading_zeros(ns)) as usize;
        self.log2_hist[bucket.min(TIME_BUCKETS - 1)] += 1;
    }

    /// Merges another statistic into this one (commutative on the
    /// aggregates; callers merge in a fixed order anyway for
    /// determinism).
    pub fn merge(&mut self, other: &TimeStat) {
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (a, b) in self.log2_hist.iter_mut().zip(&other.log2_hist) {
            *a += b;
        }
    }

    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"log2_hist\": [",
            self.count,
            self.total_ns,
            if self.count == 0 { 0 } else { self.min_ns },
            self.max_ns
        );
        for (i, c) in self.log2_hist.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{c}");
        }
        out.push_str("]}");
    }
}

/// One phase of the partitioning pipeline, as named by span records,
/// Chrome trace events, and progress heartbeats. [`SpanKind::as_str`]
/// is the stable `snake_case` key used in serialized form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum SpanKind {
    /// Netlist parsing / graph construction (CLI-side).
    Parse = 0,
    /// One independent restart of a multi-run search.
    Restart,
    /// One heavy-edge coarsening level of the multilevel flow.
    CoarsenLevel,
    /// The initial partition: the FPART peeling driver — the coarsest-
    /// level solve in the multilevel flow, the whole run in flat mode.
    Initial,
    /// One constructive remainder bipartition (peeling) or FM run.
    Bipartition,
    /// One `improve_cells_metered` call (FM pass loop over a cell set).
    Improve,
    /// Boundary refinement of one uncoarsening level.
    RefineLevel,
    /// One block-pair boundary-refinement job on an intra-run worker.
    PairJob,
    /// Applying a netlist edit script (ECO flow).
    EcoApply,
    /// Re-placing cells affected by an edit script (ECO flow).
    EcoPlace,
    /// Dirty-block boundary repair (ECO flow).
    EcoRepair,
}

impl SpanKind {
    /// Every span kind, in serialization order.
    pub const ALL: [SpanKind; 11] = [
        SpanKind::Parse,
        SpanKind::Restart,
        SpanKind::CoarsenLevel,
        SpanKind::Initial,
        SpanKind::Bipartition,
        SpanKind::Improve,
        SpanKind::RefineLevel,
        SpanKind::PairJob,
        SpanKind::EcoApply,
        SpanKind::EcoPlace,
        SpanKind::EcoRepair,
    ];

    /// Stable `snake_case` name of this phase in serialized form (the
    /// `--metrics` `spans` section, Chrome trace events, progress
    /// events). Part of the schema-versioned compat surface.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Parse => "parse",
            SpanKind::Restart => "restart",
            SpanKind::CoarsenLevel => "coarsen_level",
            SpanKind::Initial => "initial",
            SpanKind::Bipartition => "bipartition",
            SpanKind::Improve => "improve",
            SpanKind::RefineLevel => "refine_level",
            SpanKind::PairJob => "pair_job",
            SpanKind::EcoApply => "eco_apply",
            SpanKind::EcoPlace => "eco_place",
            SpanKind::EcoRepair => "eco_repair",
        }
    }
}

/// Structural statistics attached to a span when it closes: what the
/// phase worked on and what it accomplished. All fields are sums over
/// the span's executions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Nodes (cells or clusters) in scope of the phase.
    pub nodes: u64,
    /// Nets in scope of the phase.
    pub nets: u64,
    /// Boundary cells considered (refinement phases) or blocks touched
    /// (ECO phases).
    pub boundary: u64,
    /// Moves accepted by the phase.
    pub moves: u64,
    /// Net cut improvement produced by the phase (initial − final cut;
    /// negative when the phase regressed).
    pub gain: i64,
}

impl SpanStats {
    /// Adds another stats bundle field-wise.
    pub fn accumulate(&mut self, other: &SpanStats) {
        self.nodes += other.nodes;
        self.nets += other.nets;
        self.boundary += other.boundary;
        self.moves += other.moves;
        self.gain += other.gain;
    }
}

/// The aggregated profile of one `(kind, level, parent)` phase slot:
/// how often it ran, its total and self wall time, its structural
/// stats, and the counter activity booked while it was the innermost
/// open span.
///
/// Equality deliberately **ignores `total_ns` and `self_ns`**: two
/// profiles are equal when they are structurally identical (same
/// phases, same counts, same stats, same counter deltas) — wall time is
/// the one nondeterministic axis, and the determinism proptests compare
/// whole registries across thread counts.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// The phase this record profiles.
    pub kind: SpanKind,
    /// Hierarchy level of the phase (coarsen/refine level index;
    /// peeling iteration for [`SpanKind::Initial`]; 0 elsewhere).
    pub level: u32,
    /// Kind of the innermost span that was open when this one started
    /// (`None` for root spans).
    pub parent: Option<SpanKind>,
    /// Times the phase executed.
    pub count: u64,
    /// Total wall time, children included, in nanoseconds.
    pub total_ns: u64,
    /// Wall time excluding same-registry child spans, in nanoseconds.
    pub self_ns: u64,
    /// Summed structural stats of every execution.
    pub stats: SpanStats,
    counters: [u64; Counter::ALL.len()],
}

impl SpanRecord {
    fn new(kind: SpanKind, level: u32, parent: Option<SpanKind>) -> Self {
        SpanRecord {
            kind,
            level,
            parent,
            count: 0,
            total_ns: 0,
            self_ns: 0,
            stats: SpanStats::default(),
            counters: [0; Counter::ALL.len()],
        }
    }

    /// The counter delta booked while spans of this slot were open
    /// (closed spans only; deltas nest with the span hierarchy).
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }
}

impl PartialEq for SpanRecord {
    fn eq(&self, other: &Self) -> bool {
        // total_ns / self_ns excluded: wall time is nondeterministic.
        self.kind == other.kind
            && self.level == other.level
            && self.parent == other.parent
            && self.count == other.count
            && self.stats == other.stats
            && self.counters == other.counters
    }
}

impl Eq for SpanRecord {}

/// One completed span occurrence, kept for Chrome trace export: when it
/// started (relative to its registry's epoch), how long it ran, and
/// which lane (worker/restart) it ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// The phase that ran.
    pub kind: SpanKind,
    /// Hierarchy level (see [`SpanRecord::level`]).
    pub level: u32,
    /// Start offset from the registry epoch, in nanoseconds. Restart
    /// children created with a fresh registry carry their own epoch, so
    /// their events start near zero in their own lane.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Synthetic lane id (Chrome `tid`): 0 for the main flow, one lane
    /// per restart or intra-run worker.
    pub lane: u32,
}

#[derive(Debug, Clone)]
struct OpenSpan {
    slot: usize,
    started: Instant,
    child_ns: u64,
    counters_at_open: [u64; Counter::ALL.len()],
}

/// The hierarchical phase profiler: a stack of open spans over a table
/// of [`SpanRecord`]s plus the completed-span event log.
///
/// Deterministic-merge rules (mirroring [`Metrics::merge`]):
///
/// * records aggregate by `(kind, level, parent)` slot in first-seen
///   order; merging adds counts, times, stats, and counter deltas
///   slot-wise, and children are merged in job-index order — so the
///   record table is bit-identical at every thread count;
/// * equality compares **records only** (and record equality ignores
///   wall time), so instrumented-run comparisons across thread counts
///   are exact;
/// * the event log is append-only in completion order and only feeds
///   the Chrome trace export — it is excluded from equality.
#[derive(Debug, Clone, Default)]
pub struct SpanStack {
    records: Vec<SpanRecord>,
    open: Vec<OpenSpan>,
    events: Vec<SpanEvent>,
    epoch: Option<Instant>,
    ambient: Option<SpanKind>,
    lane: u32,
}

impl PartialEq for SpanStack {
    fn eq(&self, other: &Self) -> bool {
        self.records == other.records
    }
}

impl SpanStack {
    /// An empty stack whose epoch (the zero point of event timestamps)
    /// is now.
    #[must_use]
    pub fn started() -> Self {
        SpanStack { epoch: Some(Instant::now()), ..SpanStack::default() }
    }

    /// An empty child stack for a worker: shares the parent's epoch and
    /// lane, and inherits the parent's innermost open span as the
    /// ambient parent of its own root spans.
    #[must_use]
    pub fn fork(&self) -> Self {
        SpanStack {
            epoch: self.epoch,
            ambient: self.parent_kind(),
            lane: self.lane,
            ..SpanStack::default()
        }
    }

    fn parent_kind(&self) -> Option<SpanKind> {
        self.open.last().map(|o| self.records[o.slot].kind).or(self.ambient)
    }

    fn slot_for(&mut self, kind: SpanKind, level: u32, parent: Option<SpanKind>) -> usize {
        if let Some(i) = self
            .records
            .iter()
            .position(|r| r.kind == kind && r.level == level && r.parent == parent)
        {
            return i;
        }
        self.records.push(SpanRecord::new(kind, level, parent));
        self.records.len() - 1
    }

    /// Sets the Chrome-trace lane of subsequently completed spans.
    pub fn set_lane(&mut self, lane: u32) {
        self.lane = lane;
    }

    fn open(&mut self, kind: SpanKind, level: u32, counters: &[u64; Counter::ALL.len()]) {
        let parent = self.parent_kind();
        let slot = self.slot_for(kind, level, parent);
        self.open.push(OpenSpan {
            slot,
            started: Instant::now(),
            child_ns: 0,
            counters_at_open: *counters,
        });
    }

    fn close(&mut self, stats: &SpanStats, counters: &[u64; Counter::ALL.len()]) {
        let Some(top) = self.open.pop() else { return };
        let ns = u64::try_from(top.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let record = &mut self.records[top.slot];
        record.count += 1;
        record.total_ns = record.total_ns.saturating_add(ns);
        record.self_ns = record.self_ns.saturating_add(ns.saturating_sub(top.child_ns));
        record.stats.accumulate(stats);
        for (slot, (now, at_open)) in
            record.counters.iter_mut().zip(counters.iter().zip(&top.counters_at_open))
        {
            *slot += now.saturating_sub(*at_open);
        }
        let (kind, level) = (record.kind, record.level);
        if let Some(parent) = self.open.last_mut() {
            parent.child_ns = parent.child_ns.saturating_add(ns);
        }
        let start_ns = self.epoch.map_or(0, |epoch| {
            u64::try_from(top.started.duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
        });
        self.events.push(SpanEvent { kind, level, start_ns, dur_ns: ns, lane: self.lane });
    }

    fn record(&mut self, kind: SpanKind, level: u32, elapsed: Duration, stats: &SpanStats) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let parent = self.parent_kind();
        let slot = self.slot_for(kind, level, parent);
        let record = &mut self.records[slot];
        record.count += 1;
        record.total_ns = record.total_ns.saturating_add(ns);
        record.self_ns = record.self_ns.saturating_add(ns);
        record.stats.accumulate(stats);
        if let Some(top) = self.open.last_mut() {
            top.child_ns = top.child_ns.saturating_add(ns);
        }
        let start_ns = self.epoch.map_or(0, |epoch| {
            let now = u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
            now.saturating_sub(ns)
        });
        self.events.push(SpanEvent { kind, level, start_ns, dur_ns: ns, lane: self.lane });
    }

    /// Merges a child stack: records aggregate by `(kind, level,
    /// parent)` slot, events append in the child's completion order.
    /// Callers merge children in job-index order for determinism.
    pub fn merge(&mut self, other: &SpanStack) {
        for r in &other.records {
            let slot = self.slot_for(r.kind, r.level, r.parent);
            let record = &mut self.records[slot];
            record.count += r.count;
            record.total_ns = record.total_ns.saturating_add(r.total_ns);
            record.self_ns = record.self_ns.saturating_add(r.self_ns);
            record.stats.accumulate(&r.stats);
            for (a, b) in record.counters.iter_mut().zip(&r.counters) {
                *a += b;
            }
        }
        self.events.extend_from_slice(&other.events);
        if self.epoch.is_none() {
            self.epoch = other.epoch;
        }
    }

    /// The aggregated span records, in first-seen order.
    #[must_use]
    pub fn records(&self) -> &[SpanRecord] {
        &self.records
    }

    /// The completed-span event log, in completion order.
    #[must_use]
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Serializes the event log as a Chrome trace-event JSON array
    /// (complete `"ph": "X"` events, microsecond timestamps), loadable
    /// in Perfetto / `chrome://tracing`. `pid` is always 1; `tid` is
    /// the synthetic lane (0 = main flow, one lane per restart or
    /// intra-run worker).
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n ");
            }
            let _ = write!(
                out,
                "{{\"name\": \"{}\", \"cat\": \"fpart\", \"ph\": \"X\", \"ts\": {:.3}, \
                 \"dur\": {:.3}, \"pid\": 1, \"tid\": {}, \"args\": {{\"level\": {}}}}}",
                e.kind.as_str(),
                e.start_ns as f64 / 1000.0,
                e.dur_ns as f64 / 1000.0,
                e.lane,
                e.level
            );
        }
        out.push_str("]\n");
        out
    }
}

/// A throttle for progress/heartbeat events: [`Heartbeat::due`] returns
/// the elapsed time since the first call whenever at least the
/// configured interval has passed since the last emission. Disabled
/// heartbeats never read the clock.
#[derive(Debug, Clone)]
pub struct Heartbeat {
    enabled: bool,
    min_interval: Duration,
    started: Option<Instant>,
    last: Option<Instant>,
}

impl Heartbeat {
    /// A disabled heartbeat: [`Heartbeat::due`] is always `None` and
    /// costs one branch, no clock read.
    #[must_use]
    pub fn disabled() -> Self {
        Heartbeat { enabled: false, min_interval: Duration::ZERO, started: None, last: None }
    }

    /// A heartbeat firing at most once per `interval`
    /// (`Duration::ZERO` fires on every call — useful in tests).
    #[must_use]
    pub fn every(interval: Duration) -> Self {
        Heartbeat { enabled: true, min_interval: interval, started: None, last: None }
    }

    /// Whether this heartbeat can ever fire.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Returns `Some(elapsed-since-first-call)` and marks an emission
    /// when the throttle interval has passed; `None` otherwise. The
    /// first call always fires.
    pub fn due(&mut self) -> Option<Duration> {
        if !self.enabled {
            return None;
        }
        let now = Instant::now();
        let started = *self.started.get_or_insert(now);
        match self.last {
            Some(last) if now.duration_since(last) < self.min_interval => None,
            _ => {
                self.last = Some(now);
                Some(now.duration_since(started))
            }
        }
    }
}

/// The metrics registry: named counters plus a wall-time statistic per
/// improvement-schedule slot and a hierarchical phase profiler
/// ([`SpanStack`]).
///
/// A disabled registry ([`Metrics::disabled`]) never touches its
/// storage, never reads the clock ([`Metrics::start`] returns `None`,
/// the span methods return before any `Instant::now`), and never
/// allocates — every recording method is one predictable branch.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    enabled: bool,
    counters: [u64; Counter::ALL.len()],
    improve_time: [TimeStat; ImproveKind::ALL.len()],
    spans: SpanStack,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            enabled: false,
            counters: [0; Counter::ALL.len()],
            improve_time: [TimeStat::default(); ImproveKind::ALL.len()],
            spans: SpanStack::default(),
        }
    }
}

impl Metrics {
    /// Creates an enabled (recording) registry. The span epoch (zero
    /// point of Chrome trace timestamps) is the creation instant.
    #[must_use]
    pub fn enabled() -> Self {
        Metrics { enabled: true, spans: SpanStack::started(), ..Metrics::default() }
    }

    /// Creates a disabled (no-op) registry.
    #[must_use]
    pub fn disabled() -> Self {
        Metrics::default()
    }

    /// Creates a registry with the same enabled-ness as `self` but no
    /// recorded data — the seed for a per-restart / per-thread child
    /// registry whose results are later [`Metrics::merge`]d back.
    #[must_use]
    pub fn fork(&self) -> Self {
        if self.enabled {
            Metrics { enabled: true, spans: self.spans.fork(), ..Metrics::default() }
        } else {
            Metrics::disabled()
        }
    }

    /// Returns whether events are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `n` to a counter (no-op when disabled).
    #[inline]
    pub fn add(&mut self, counter: Counter, n: u64) {
        if self.enabled {
            self.counters[counter as usize] += n;
        }
    }

    /// Increments a counter by one (no-op when disabled).
    #[inline]
    pub fn bump(&mut self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Current value of a counter.
    #[must_use]
    pub fn get(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// Reads the monotonic clock iff enabled — pair with
    /// [`Metrics::stop_improve`]. Disabled registries never pay for
    /// `Instant::now()`.
    #[inline]
    #[must_use]
    pub fn start(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    /// Records the wall time of one `Improve(...)` call of the given
    /// schedule slot (no-op when `started` is `None`).
    #[inline]
    pub fn stop_improve(&mut self, kind: ImproveKind, started: Option<Instant>) {
        if let Some(started) = started {
            self.improve_time[kind.index()].record(started.elapsed());
        }
    }

    /// The wall-time statistic of one improvement-schedule slot.
    #[must_use]
    pub fn improve_time(&self, kind: ImproveKind) -> &TimeStat {
        &self.improve_time[kind.index()]
    }

    /// Opens a phase span nested under the innermost open span (no-op,
    /// no clock read, when disabled). Pair with [`Metrics::span_close`];
    /// open/close calls must nest.
    #[inline]
    pub fn span_open(&mut self, kind: SpanKind, level: u32) {
        if self.enabled {
            self.spans.open(kind, level, &self.counters);
        }
    }

    /// Closes the innermost open span, attaching the given structural
    /// stats (no-op when disabled or nothing is open).
    #[inline]
    pub fn span_close(&mut self, stats: SpanStats) {
        if self.enabled {
            self.spans.close(&stats, &self.counters);
        }
    }

    /// Records an externally timed phase as a completed span (for
    /// phases whose timing happens outside the registry, e.g. per-level
    /// coarsening callbacks). No counter delta is booked.
    #[inline]
    pub fn record_span(&mut self, kind: SpanKind, level: u32, elapsed: Duration, stats: SpanStats) {
        if self.enabled {
            self.spans.record(kind, level, elapsed, &stats);
        }
    }

    /// Sets the Chrome-trace lane of spans completed from now on (0 =
    /// main flow; restart and worker jobs set their own lane).
    #[inline]
    pub fn set_span_lane(&mut self, lane: u32) {
        if self.enabled {
            self.spans.set_lane(lane);
        }
    }

    /// The phase profiler of this registry.
    #[must_use]
    pub fn spans(&self) -> &SpanStack {
        &self.spans
    }

    /// Merges another registry into this one: counters add, time
    /// statistics combine. Callers merge children in restart-index
    /// order, so the aggregate is deterministic at every thread count.
    pub fn merge(&mut self, other: &Metrics) {
        self.enabled |= other.enabled;
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        for (a, b) in self.improve_time.iter_mut().zip(&other.improve_time) {
            a.merge(b);
        }
        self.spans.merge(&other.spans);
    }

    /// Serializes the registry as a JSON object:
    /// `{"counters": {<name>: <u64>, …}, "improve_time": {<kind>:
    /// <TimeStat>, …}, "spans": [<SpanRecord>, …]}`. Counters appear in
    /// [`Counter::ALL`] order; only schedule slots with a nonzero count
    /// appear under `improve_time`; span records appear in first-seen
    /// order, each with only its nonzero counter deltas.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\": {");
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {}", c.name(), self.get(*c));
        }
        out.push_str("}, \"improve_time\": {");
        let mut first = true;
        for kind in ImproveKind::ALL {
            let stat = self.improve_time(kind);
            if stat.count == 0 {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(out, "\"{}\": ", kind.as_str());
            stat.write_json(&mut out);
        }
        out.push_str("}, \"spans\": [");
        for (i, r) in self.spans.records().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"kind\": \"{}\", \"level\": {}, \"parent\": ",
                r.kind.as_str(),
                r.level
            );
            match r.parent {
                Some(p) => {
                    let _ = write!(out, "\"{}\"", p.as_str());
                }
                None => out.push_str("null"),
            }
            let _ = write!(
                out,
                ", \"count\": {}, \"total_ns\": {}, \"self_ns\": {}, \"nodes\": {}, \
                 \"nets\": {}, \"boundary\": {}, \"moves\": {}, \"gain\": {}, \"counters\": {{",
                r.count,
                r.total_ns,
                r.self_ns,
                r.stats.nodes,
                r.stats.nets,
                r.stats.boundary,
                r.stats.moves,
                r.stats.gain
            );
            let mut first = true;
            for c in Counter::ALL {
                let v = r.counter(c);
                if v == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(out, "\"{}\": {v}", c.name());
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

/// A consumer of driver events — the generalization of [`Trace`]
/// (which records events in memory) to arbitrary destinations
/// (streaming JSONL, fan-out, test probes).
///
/// [`Trace`]: crate::trace::Trace
pub trait EventSink {
    /// Whether the sink currently wants events. Producers check this
    /// *before* constructing an event, so a disabled sink costs one
    /// branch and zero allocation per event.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn record_event(&mut self, event: &TraceEvent);
}

/// Streams events as JSON Lines (one event object per line) into any
/// [`std::io::Write`]. The line format is documented at
/// [`event_to_json`].
#[derive(Debug)]
pub struct JsonlSink<W: std::io::Write> {
    out: W,
    lines: u64,
}

impl<W: std::io::Write> JsonlSink<W> {
    /// Wraps a writer. Wrap files in a `BufWriter`: one line is written
    /// per event.
    pub fn new(out: W) -> Self {
        JsonlSink { out, lines: 0 }
    }

    /// Lines written so far.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: std::io::Write> EventSink for JsonlSink<W> {
    fn record_event(&mut self, event: &TraceEvent) {
        let mut line = event_to_json(event);
        line.push('\n');
        // An unwritable sink must not abort a partitioning run; the
        // caller can detect short output via `lines()`.
        if self.out.write_all(line.as_bytes()).is_ok() {
            self.lines += 1;
        }
    }
}

/// Broadcasts every event to several sinks (e.g. an in-memory [`Trace`]
/// plus a [`JsonlSink`]). Enabled iff any child is.
///
/// [`Trace`]: crate::trace::Trace
pub struct FanoutSink<'a> {
    sinks: Vec<&'a mut dyn EventSink>,
}

impl<'a> FanoutSink<'a> {
    /// Bundles the given sinks.
    #[must_use]
    pub fn new(sinks: Vec<&'a mut dyn EventSink>) -> Self {
        FanoutSink { sinks }
    }
}

impl EventSink for FanoutSink<'_> {
    fn is_enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.is_enabled())
    }

    fn record_event(&mut self, event: &TraceEvent) {
        for sink in &mut self.sinks {
            if sink.is_enabled() {
                sink.record_event(event);
            }
        }
    }
}

/// The observability bundle one partitioning run threads through the
/// driver and engine: an owned metrics registry plus an optional event
/// sink. Use one observer per run; [`Observer::none`] is the
/// fully-disabled default whose per-event cost is one branch.
pub struct Observer<'s> {
    /// The metrics registry of this run.
    pub metrics: Metrics,
    /// Throttle for [`TraceEvent::Progress`] heartbeats (disabled by
    /// default; the CLI arms it for `--progress`).
    pub heartbeat: Heartbeat,
    sink: Option<&'s mut dyn EventSink>,
}

impl<'s> Observer<'s> {
    /// A fully disabled observer (no metrics, no sink, no heartbeat).
    #[must_use]
    pub fn none() -> Self {
        Observer { metrics: Metrics::disabled(), heartbeat: Heartbeat::disabled(), sink: None }
    }

    /// An observer with the given registry and sink (heartbeat
    /// disabled; assign [`Observer::heartbeat`] to arm it).
    #[must_use]
    pub fn new(metrics: Metrics, sink: Option<&'s mut dyn EventSink>) -> Self {
        Observer { metrics, heartbeat: Heartbeat::disabled(), sink }
    }

    /// Emits an event to the sink, constructing it lazily — nothing is
    /// built when no enabled sink is attached.
    #[inline]
    pub fn emit(&mut self, event: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.sink.as_deref_mut() {
            if sink.is_enabled() {
                sink.record_event(&event());
            }
        }
    }
}

impl std::fmt::Debug for Observer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observer")
            .field("metrics", &self.metrics)
            .field("heartbeat", &self.heartbeat)
            .field("sink", &self.sink.as_ref().map(|s| s.is_enabled()))
            .finish()
    }
}

/// Writes a JSON string literal (with escaping) into `out`.
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an `f64` as a JSON number (`null` for non-finite values).
pub(crate) fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

fn push_key_json(out: &mut String, key: &SolutionKey) {
    let _ = write!(
        out,
        "{{\"feasible_blocks\": {}, \"total_blocks\": {}, \"infeasibility\": ",
        key.feasible_blocks, key.total_blocks
    );
    push_json_f64(out, key.infeasibility);
    let _ = write!(out, ", \"terminal_sum\": {}, \"external_balance\": ", key.terminal_sum);
    push_json_f64(out, key.external_balance);
    let _ = write!(out, ", \"cut\": {}}}", key.cut);
}

/// Serializes one [`TraceEvent`] as a single-line JSON object.
///
/// Every object carries `"event"` (one of `"iteration_start"`,
/// `"bipartition"`, `"improve"`, `"progress"`, `"solution"`) and — for
/// all but `"progress"` — `"iteration"`, followed by the variant's
/// fields in declaration order. Solution keys
/// serialize with their full lexicographic field order
/// (`feasible_blocks`, `total_blocks`, `infeasibility`, `terminal_sum`,
/// `external_balance`, `cut`); enum values use their stable `snake_case`
/// names ([`ImproveKind::as_str`]).
#[must_use]
pub fn event_to_json(event: &TraceEvent) -> String {
    let mut out = String::new();
    match event {
        TraceEvent::IterationStart { iteration, remainder_size, remainder_terminals } => {
            let _ = write!(
                out,
                "{{\"event\": \"iteration_start\", \"iteration\": {iteration}, \
                 \"remainder_size\": {remainder_size}, \
                 \"remainder_terminals\": {remainder_terminals}}}"
            );
        }
        TraceEvent::Bipartition { iteration, method, peeled_size, peeled_terminals } => {
            let _ = write!(
                out,
                "{{\"event\": \"bipartition\", \"iteration\": {iteration}, \"method\": "
            );
            push_json_str(&mut out, &format!("{method:?}"));
            let _ = write!(
                out,
                ", \"peeled_size\": {peeled_size}, \"peeled_terminals\": {peeled_terminals}}}"
            );
        }
        TraceEvent::Improve {
            iteration,
            kind,
            blocks,
            initial_key,
            final_key,
            passes,
            moves,
            restarts,
        } => {
            let _ = write!(
                out,
                "{{\"event\": \"improve\", \"iteration\": {iteration}, \"kind\": \"{}\", \
                 \"blocks\": [",
                kind.as_str()
            );
            for (i, b) in blocks.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("], \"initial_key\": ");
            push_key_json(&mut out, initial_key);
            out.push_str(", \"final_key\": ");
            push_key_json(&mut out, final_key);
            let _ = write!(
                out,
                ", \"passes\": {passes}, \"moves\": {moves}, \"restarts\": {restarts}}}"
            );
        }
        TraceEvent::Progress {
            phase,
            level,
            passes,
            moves,
            cut,
            elapsed_ms,
            deadline_remaining_ms,
            passes_remaining,
        } => {
            let _ = write!(
                out,
                "{{\"event\": \"progress\", \"phase\": \"{}\", \"level\": {level}, \
                 \"passes\": {passes}, \"moves\": {moves}, \"cut\": ",
                phase.as_str()
            );
            match cut {
                Some(c) => {
                    let _ = write!(out, "{c}");
                }
                None => out.push_str("null"),
            }
            let _ = write!(out, ", \"elapsed_ms\": {elapsed_ms}, \"deadline_remaining_ms\": ");
            match deadline_remaining_ms {
                Some(ms) => {
                    let _ = write!(out, "{ms}");
                }
                None => out.push_str("null"),
            }
            out.push_str(", \"passes_remaining\": ");
            match passes_remaining {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
            out.push('}');
        }
        TraceEvent::Solution { iteration, class, blocks } => {
            let _ =
                write!(out, "{{\"event\": \"solution\", \"iteration\": {iteration}, \"class\": ");
            push_json_str(&mut out, &format!("{class:?}"));
            out.push_str(", \"blocks\": [");
            for (i, b) in blocks.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{{\"size\": {}, \"terminals\": {}}}", b.size, b.terminals);
            }
            out.push_str("]}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    fn dummy_key() -> SolutionKey {
        SolutionKey {
            feasible_blocks: 1,
            total_blocks: 2,
            infeasibility: 0.25,
            terminal_sum: 7,
            external_balance: 0.5,
            cut: 3,
        }
    }

    fn improve_event() -> TraceEvent {
        TraceEvent::Improve {
            iteration: 2,
            kind: ImproveKind::MinIo,
            blocks: vec![0, 3],
            initial_key: dummy_key(),
            final_key: dummy_key(),
            passes: 4,
            moves: 9,
            restarts: 1,
        }
    }

    #[test]
    fn disabled_metrics_record_nothing_and_never_read_the_clock() {
        let mut m = Metrics::disabled();
        m.bump(Counter::Passes);
        m.add(Counter::MovesApplied, 100);
        assert!(m.start().is_none());
        m.stop_improve(ImproveKind::LastPair, None);
        assert_eq!(m.get(Counter::Passes), 0);
        assert_eq!(m.get(Counter::MovesApplied), 0);
        assert_eq!(m.improve_time(ImproveKind::LastPair).count, 0);
    }

    #[test]
    fn enabled_metrics_count_and_time() {
        let mut m = Metrics::enabled();
        m.bump(Counter::Passes);
        m.add(Counter::GainBucketPops, 41);
        m.bump(Counter::GainBucketPops);
        let started = m.start();
        assert!(started.is_some());
        m.stop_improve(ImproveKind::FinalSweep, started);
        assert_eq!(m.get(Counter::Passes), 1);
        assert_eq!(m.get(Counter::GainBucketPops), 42);
        let stat = m.improve_time(ImproveKind::FinalSweep);
        assert_eq!(stat.count, 1);
        assert!(stat.min_ns <= stat.max_ns);
        assert_eq!(stat.log2_hist.iter().sum::<u64>(), 1);
    }

    #[test]
    fn merge_adds_counters_and_combines_time() {
        let mut a = Metrics::enabled();
        a.add(Counter::Passes, 3);
        a.improve_time[ImproveKind::LastPair.index()].record(Duration::from_nanos(100));
        let mut b = Metrics::enabled();
        b.add(Counter::Passes, 4);
        b.improve_time[ImproveKind::LastPair.index()].record(Duration::from_nanos(7));
        a.merge(&b);
        assert_eq!(a.get(Counter::Passes), 7);
        let stat = a.improve_time(ImproveKind::LastPair);
        assert_eq!(stat.count, 2);
        assert_eq!(stat.total_ns, 107);
        assert_eq!(stat.min_ns, 7);
        assert_eq!(stat.max_ns, 100);
    }

    #[test]
    fn merge_order_is_deterministic() {
        // Counters and totals are commutative; merging the same set of
        // children in the same order must be reproducible.
        let children: Vec<Metrics> = (0..4)
            .map(|i| {
                let mut m = Metrics::enabled();
                m.add(Counter::MovesApplied, i * 10 + 1);
                m
            })
            .collect();
        let mut a = Metrics::enabled();
        let mut b = Metrics::enabled();
        for c in &children {
            a.merge(c);
            b.merge(c);
        }
        assert_eq!(a, b);
        assert_eq!(a.get(Counter::MovesApplied), 1 + 11 + 21 + 31);
    }

    #[test]
    fn fork_copies_enabledness_only() {
        let mut m = Metrics::enabled();
        m.add(Counter::Passes, 5);
        let f = m.fork();
        assert!(f.is_enabled());
        assert_eq!(f.get(Counter::Passes), 0);
        assert!(!Metrics::disabled().fork().is_enabled());
    }

    #[test]
    fn time_stat_buckets_are_log2() {
        let mut s = TimeStat::default();
        s.record(Duration::from_nanos(1)); // bucket 1: [1, 2)
        s.record(Duration::from_nanos(1023)); // bucket 10: [512, 1024)
        s.record(Duration::from_nanos(1024)); // bucket 11: [1024, 2048)
        assert_eq!(s.log2_hist[1], 1);
        assert_eq!(s.log2_hist[10], 1);
        assert_eq!(s.log2_hist[11], 1);
        assert_eq!(s.count, 3);
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.max_ns, 1024);
    }

    #[test]
    fn metrics_json_has_every_counter() {
        let mut m = Metrics::enabled();
        m.bump(Counter::Passes);
        let json = m.to_json();
        for c in Counter::ALL {
            assert!(json.contains(&format!("\"{}\":", c.name())), "missing {}", c.name());
        }
        assert!(json.contains("\"passes\": 1"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn jsonl_sink_streams_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record_event(&improve_event());
        sink.record_event(&TraceEvent::IterationStart {
            iteration: 1,
            remainder_size: 10,
            remainder_terminals: 2,
        });
        assert_eq!(sink.lines(), 2);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(text.contains("\"event\": \"improve\""));
        assert!(text.contains("\"kind\": \"min_io\""));
    }

    #[test]
    fn fanout_reaches_every_enabled_sink() {
        let mut trace = Trace::enabled();
        let mut off = Trace::disabled();
        let mut jsonl = JsonlSink::new(Vec::new());
        {
            let mut fanout = FanoutSink::new(vec![&mut trace, &mut off, &mut jsonl]);
            assert!(fanout.is_enabled());
            fanout.record_event(&improve_event());
        }
        assert_eq!(trace.events().len(), 1);
        assert!(off.events().is_empty());
        assert_eq!(jsonl.lines(), 1);
    }

    #[test]
    fn observer_emit_is_lazy_without_sink() {
        let mut obs = Observer::none();
        obs.emit(|| panic!("event constructed without a sink"));
        let mut disabled = Trace::disabled();
        let mut obs = Observer::new(Metrics::disabled(), Some(&mut disabled));
        obs.emit(|| panic!("event constructed for a disabled sink"));
    }

    #[test]
    fn disabled_metrics_ignore_spans() {
        let mut m = Metrics::disabled();
        m.span_open(SpanKind::Initial, 0);
        m.span_close(SpanStats { moves: 5, ..SpanStats::default() });
        m.record_span(SpanKind::Parse, 0, Duration::from_millis(1), SpanStats::default());
        assert!(m.spans().records().is_empty());
        assert!(m.spans().events().is_empty());
    }

    #[test]
    fn spans_nest_and_attribute_self_time() {
        let mut m = Metrics::enabled();
        m.span_open(SpanKind::Initial, 0);
        m.bump(Counter::Iterations);
        m.span_open(SpanKind::Improve, 0);
        m.add(Counter::MovesApplied, 3);
        std::thread::sleep(Duration::from_millis(2));
        m.span_close(SpanStats { moves: 3, ..SpanStats::default() });
        m.span_close(SpanStats::default());

        let records = m.spans().records();
        assert_eq!(records.len(), 2);
        let outer = records.iter().find(|r| r.kind == SpanKind::Initial).unwrap();
        let inner = records.iter().find(|r| r.kind == SpanKind::Improve).unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(SpanKind::Initial));
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // The outer span's self time excludes the inner span.
        assert!(outer.total_ns >= inner.total_ns);
        assert!(outer.self_ns <= outer.total_ns - inner.total_ns + 1);
        assert_eq!(inner.stats.moves, 3);
        // Counter deltas nest: both spans saw the MovesApplied bump,
        // only the outer one saw the Iterations bump.
        assert_eq!(inner.counter(Counter::MovesApplied), 3);
        assert_eq!(outer.counter(Counter::MovesApplied), 3);
        assert_eq!(inner.counter(Counter::Iterations), 0);
        assert_eq!(outer.counter(Counter::Iterations), 1);
        assert_eq!(m.spans().events().len(), 2);
    }

    #[test]
    fn record_span_books_under_open_parent() {
        let mut m = Metrics::enabled();
        m.span_open(SpanKind::Restart, 0);
        m.record_span(
            SpanKind::CoarsenLevel,
            2,
            Duration::from_nanos(500),
            SpanStats { nodes: 10, ..SpanStats::default() },
        );
        m.span_close(SpanStats::default());
        let coarsen =
            m.spans().records().iter().find(|r| r.kind == SpanKind::CoarsenLevel).unwrap();
        assert_eq!(coarsen.parent, Some(SpanKind::Restart));
        assert_eq!(coarsen.level, 2);
        assert_eq!(coarsen.total_ns, 500);
        assert_eq!(coarsen.self_ns, 500);
        assert_eq!(coarsen.stats.nodes, 10);
        // The recorded child's time is subtracted from the parent's self.
        let restart = m.spans().records().iter().find(|r| r.kind == SpanKind::Restart).unwrap();
        assert!(restart.self_ns <= restart.total_ns.saturating_sub(500) + 1);
    }

    #[test]
    fn span_merge_aggregates_by_slot_and_ignores_wall_time_in_eq() {
        let build = |moves: u64, sleep_ns: u64| {
            let mut m = Metrics::enabled();
            m.span_open(SpanKind::PairJob, 0);
            std::thread::sleep(Duration::from_nanos(sleep_ns));
            m.span_close(SpanStats { moves, ..SpanStats::default() });
            m
        };
        let mut a = Metrics::enabled();
        a.merge(&build(2, 10));
        a.merge(&build(5, 200_000));
        let mut b = Metrics::enabled();
        b.merge(&build(2, 300_000));
        b.merge(&build(5, 10));
        // Same structure, different wall times: still equal.
        assert_eq!(a, b);
        let rec = a.spans().records().iter().find(|r| r.kind == SpanKind::PairJob).unwrap();
        assert_eq!(rec.count, 2);
        assert_eq!(rec.stats.moves, 7);
        assert_eq!(a.spans().events().len(), 2);
        // Different structure (stats differ): unequal.
        let mut c = Metrics::enabled();
        c.merge(&build(2, 10));
        c.merge(&build(6, 10));
        assert_ne!(a, c);
    }

    #[test]
    fn forked_children_inherit_ambient_parent_and_lane() {
        let mut parent = Metrics::enabled();
        parent.set_span_lane(0);
        parent.span_open(SpanKind::RefineLevel, 1);
        let mut child = parent.fork();
        child.set_span_lane(3);
        child.span_open(SpanKind::PairJob, 0);
        child.span_close(SpanStats::default());
        parent.merge(&child);
        parent.span_close(SpanStats::default());
        let pair = parent.spans().records().iter().find(|r| r.kind == SpanKind::PairJob).unwrap();
        assert_eq!(pair.parent, Some(SpanKind::RefineLevel));
        let pair_event =
            parent.spans().events().iter().find(|e| e.kind == SpanKind::PairJob).unwrap();
        assert_eq!(pair_event.lane, 3);
    }

    #[test]
    fn chrome_json_is_an_event_array() {
        let mut m = Metrics::enabled();
        m.span_open(SpanKind::Initial, 0);
        m.span_close(SpanStats::default());
        let json = m.spans().to_chrome_json();
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"name\": \"initial\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"pid\": 1"));
        assert!(json.contains("\"args\": {\"level\": 0}"));
        assert!(Metrics::enabled().spans().to_chrome_json().starts_with("[]"));
    }

    #[test]
    fn metrics_json_has_span_records() {
        let mut m = Metrics::enabled();
        m.span_open(SpanKind::EcoRepair, 0);
        m.bump(Counter::BoundaryRefinements);
        m.span_close(SpanStats { boundary: 4, ..SpanStats::default() });
        let json = m.to_json();
        assert!(json.contains("\"spans\": [{\"kind\": \"eco_repair\""));
        assert!(json.contains("\"parent\": null"));
        assert!(json.contains("\"boundary\": 4"));
        assert!(json.contains("\"counters\": {\"boundary_refinements\": 1}"));
    }

    #[test]
    fn heartbeat_throttles_and_never_ticks_disabled() {
        let mut off = Heartbeat::disabled();
        assert!(!off.is_enabled());
        assert!(off.due().is_none());

        let mut every = Heartbeat::every(Duration::ZERO);
        assert!(every.is_enabled());
        assert!(every.due().is_some());
        assert!(every.due().is_some());

        let mut slow = Heartbeat::every(Duration::from_secs(59));
        assert!(slow.due().is_some(), "first call always fires");
        assert!(slow.due().is_none(), "second call is throttled");
    }

    #[test]
    fn progress_event_serializes() {
        let json = event_to_json(&TraceEvent::Progress {
            phase: SpanKind::RefineLevel,
            level: 3,
            passes: 10,
            moves: 42,
            cut: Some(7),
            elapsed_ms: 1500,
            deadline_remaining_ms: None,
            passes_remaining: Some(90),
        });
        assert_eq!(
            json,
            "{\"event\": \"progress\", \"phase\": \"refine_level\", \"level\": 3, \
             \"passes\": 10, \"moves\": 42, \"cut\": 7, \"elapsed_ms\": 1500, \
             \"deadline_remaining_ms\": null, \"passes_remaining\": 90}"
        );
    }

    #[test]
    fn json_escaping_is_safe() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
        let mut out = String::new();
        push_json_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        let mut out = String::new();
        push_json_f64(&mut out, 0.25);
        assert_eq!(out, "0.25");
    }
}
