//! Dual solution stacks (paper §3.6).
//!
//! During the first FM execution of an improvement call the best solutions
//! encountered are retained — semi-feasible ones in one stack, infeasible
//! ones in another (an infeasible solution can have a better infeasibility
//! cost than any semi-feasible one, and exploring around it can escape a
//! local minimum). A series of FM passes is then restarted from each
//! stacked solution and the overall best result wins.

use crate::cost::{FeasibilityClass, SolutionKey};

/// A bounded, best-first-ordered stack of candidate restart solutions.
///
/// The stack is generic over the snapshot payload `S`. Restart callers
/// use the default `Vec<u32>` (per-cell block assignments of the
/// improvement call's active cells); the pass engine's inner loop instead
/// stacks bare move-log *prefix lengths* (`S = usize`) and materializes
/// the few retained assignments once, after the move loop — so a rejected
/// or later-evicted offer never costs an allocation.
#[derive(Debug, Clone)]
pub struct SolutionStack<S = Vec<u32>> {
    entries: Vec<(SolutionKey, S)>,
    depth: usize,
}

impl<S> SolutionStack<S> {
    /// Creates a stack retaining at most `depth` solutions
    /// (`D_stack = 4` in the paper).
    #[must_use]
    pub fn new(depth: usize) -> Self {
        SolutionStack { entries: Vec::with_capacity(depth + 1), depth }
    }

    /// Number of retained solutions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Offers a solution. It is retained when the stack has room or when
    /// it beats the current worst entry; exact key duplicates are
    /// rejected (restarting from an identical solution is wasted work).
    ///
    /// The snapshot is only materialized (via `snapshot`) when the
    /// solution is actually retained.
    pub fn offer(&mut self, key: SolutionKey, snapshot: impl FnOnce() -> S) -> bool {
        if self.depth == 0 {
            return false;
        }
        if self.entries.iter().any(|(k, _)| k.cmp_key(&key) == std::cmp::Ordering::Equal) {
            return false;
        }
        let pos =
            self.entries.partition_point(|(k, _)| k.better_than(&key) || k.cmp_key(&key).is_eq());
        if pos >= self.depth {
            return false;
        }
        self.entries.insert(pos, (key, snapshot()));
        self.entries.truncate(self.depth);
        true
    }

    /// Iterates retained solutions best-first.
    pub fn iter(&self) -> impl Iterator<Item = (&SolutionKey, &S)> {
        self.entries.iter().map(|(k, s)| (k, s))
    }

    /// The best retained key, if any.
    #[must_use]
    pub fn best_key(&self) -> Option<&SolutionKey> {
        self.entries.first().map(|(k, _)| k)
    }
}

/// The pair of stacks of §3.6: one for semi-feasible (or feasible)
/// solutions, one for infeasible ones.
#[derive(Debug, Clone)]
pub struct DualStacks<S = Vec<u32>> {
    /// Solutions with at most one constraint-violating block.
    pub semi_feasible: SolutionStack<S>,
    /// Solutions with two or more violating blocks.
    pub infeasible: SolutionStack<S>,
}

impl<S> DualStacks<S> {
    /// Creates both stacks with the same depth.
    #[must_use]
    pub fn new(depth: usize) -> Self {
        DualStacks {
            semi_feasible: SolutionStack::new(depth),
            infeasible: SolutionStack::new(depth),
        }
    }

    /// Routes a solution to the stack matching its feasibility class.
    pub fn offer(&mut self, key: SolutionKey, snapshot: impl FnOnce() -> S) -> bool {
        match key.class() {
            FeasibilityClass::Feasible | FeasibilityClass::SemiFeasible => {
                self.semi_feasible.offer(key, snapshot)
            }
            FeasibilityClass::Infeasible => self.infeasible.offer(key, snapshot),
        }
    }

    /// Iterates all retained solutions: semi-feasible stack first (as in
    /// the paper's restart order), each best-first.
    pub fn iter(&self) -> impl Iterator<Item = (&SolutionKey, &S)> {
        self.semi_feasible.iter().chain(self.infeasible.iter())
    }

    /// Total retained solutions across both stacks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.semi_feasible.len() + self.infeasible.len()
    }

    /// Returns `true` when both stacks are empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(feasible: usize, total: usize, dist: f64) -> SolutionKey {
        SolutionKey {
            feasible_blocks: feasible,
            total_blocks: total,
            infeasibility: dist,
            terminal_sum: 0,
            external_balance: 0.0,
            cut: 0,
        }
    }

    #[test]
    fn keeps_best_up_to_depth() {
        let mut s = SolutionStack::new(2);
        assert!(s.offer(key(3, 4, 2.0), || vec![0]));
        assert!(s.offer(key(3, 4, 1.0), || vec![1]));
        // worse than both and stack full → rejected
        assert!(!s.offer(key(3, 4, 3.0), || vec![2]));
        // better than the worst → inserted, worst evicted
        assert!(s.offer(key(3, 4, 0.5), || vec![3]));
        let kept: Vec<f64> = s.iter().map(|(k, _)| k.infeasibility).collect();
        assert_eq!(kept, vec![0.5, 1.0]);
    }

    #[test]
    fn rejects_duplicates() {
        let mut s = SolutionStack::new(4);
        assert!(s.offer(key(3, 4, 1.0), || vec![0]));
        assert!(!s.offer(key(3, 4, 1.0), || vec![1]));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn zero_depth_never_retains() {
        let mut s: SolutionStack<Vec<u32>> = SolutionStack::new(0);
        assert!(!s.offer(key(4, 4, 0.0), std::vec::Vec::new));
        assert!(s.is_empty());
    }

    #[test]
    fn snapshot_is_lazy() {
        let mut s = SolutionStack::new(1);
        assert!(s.offer(key(3, 4, 1.0), || vec![7]));
        // Rejected offer must not call the snapshot closure.
        let rejected = s.offer(key(3, 4, 2.0), || panic!("snapshot taken for rejected offer"));
        assert!(!rejected);
    }

    /// The retained set of a bounded best-first stack must be the top-D
    /// distinct keys of everything offered, regardless of offer order —
    /// this is what lets the pass engine batch its offers as prefix
    /// lengths and merge the materialized snapshots after the move loop.
    #[test]
    fn accept_reject_ordering_is_order_independent() {
        let keys = [2.0f64, 0.5, 3.0, 1.0, 2.5, 0.25];
        let mut forward: SolutionStack<Vec<u32>> = SolutionStack::new(3);
        for &d in &keys {
            forward.offer(key(3, 4, d), std::vec::Vec::new);
        }
        let mut reverse: SolutionStack<Vec<u32>> = SolutionStack::new(3);
        for &d in keys.iter().rev() {
            reverse.offer(key(3, 4, d), std::vec::Vec::new);
        }
        let fwd: Vec<f64> = forward.iter().map(|(k, _)| k.infeasibility).collect();
        let rev: Vec<f64> = reverse.iter().map(|(k, _)| k.infeasibility).collect();
        assert_eq!(fwd, vec![0.25, 0.5, 1.0]);
        assert_eq!(fwd, rev);
    }

    /// Offers after the stack is full: a worse key is rejected without
    /// touching the snapshot closure, a better key evicts the worst.
    #[test]
    fn full_stack_accepts_only_improvements() {
        let mut s: SolutionStack<usize> = SolutionStack::new(2);
        assert!(s.offer(key(3, 4, 1.0), || 10));
        assert!(s.offer(key(3, 4, 2.0), || 20));
        // Worse than the worst retained entry → rejected, lazily.
        assert!(!s.offer(key(3, 4, 5.0), || panic!("materialized a rejected snapshot")));
        // Better than the worst → accepted, worst evicted.
        assert!(s.offer(key(3, 4, 1.5), || 15));
        let kept: Vec<usize> = s.iter().map(|(_, &p)| p).collect();
        assert_eq!(kept, vec![10, 15]);
    }

    #[test]
    fn best_key_is_first() {
        let mut s: SolutionStack<Vec<u32>> = SolutionStack::new(3);
        s.offer(key(2, 4, 1.0), std::vec::Vec::new);
        s.offer(key(3, 4, 5.0), std::vec::Vec::new);
        assert_eq!(s.best_key().unwrap().feasible_blocks, 3);
    }

    #[test]
    fn dual_routing_by_class() {
        let mut d: DualStacks = DualStacks::new(2);
        assert!(d.offer(key(3, 4, 1.0), std::vec::Vec::new)); // semi-feasible
        assert!(d.offer(key(1, 4, 0.5), std::vec::Vec::new)); // infeasible
        assert!(d.offer(key(4, 4, 0.0), std::vec::Vec::new)); // feasible → semi stack
        assert_eq!(d.semi_feasible.len(), 2);
        assert_eq!(d.infeasible.len(), 1);
        assert_eq!(d.len(), 3);
        // iteration order: semi stack first
        let classes: Vec<usize> = d.iter().map(|(k, _)| k.feasible_blocks).collect();
        assert_eq!(classes, vec![4, 3, 1]);
    }
}
