//! Atomic file persistence: every artifact the partitioner writes
//! (metrics JSON, traces, assignments, checkpoints) goes through one
//! temp-file + rename helper, so a crash — even a SIGKILL mid-write —
//! leaves either the previous file or the complete new one on disk,
//! never a torn hybrid.
//!
//! The temp file lives in the destination's directory (rename is only
//! atomic within a filesystem) and carries a process-unique suffix so
//! concurrent writers to different destinations never collide. Contents
//! are flushed and fsynced before the rename; [`AtomicFile`] dropped
//! without [`AtomicFile::commit`] removes its temp file and leaves the
//! destination untouched.

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic per-process counter making temp names unique without a
/// clock or RNG (both would perturb deterministic replay).
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_path_for(path: &Path) -> PathBuf {
    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    path.with_file_name(format!(".{name}.tmp.{pid}.{seq}"))
}

/// Writes `bytes` to `path` atomically: temp file in the same
/// directory, write, flush, fsync, rename.
///
/// # Errors
///
/// Propagates I/O errors; on failure the temp file is removed and the
/// destination is left as it was.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = AtomicFile::create(path)?;
    file.write_all(bytes)?;
    file.commit()
}

/// A streaming writer whose output becomes visible at `path` only on
/// [`AtomicFile::commit`]. Dropping without committing discards the
/// temp file and leaves any existing destination untouched.
#[derive(Debug)]
pub struct AtomicFile {
    /// `Some` until commit/abort; holds the buffered temp-file writer.
    inner: Option<BufWriter<File>>,
    temp: PathBuf,
    dest: PathBuf,
}

impl AtomicFile {
    /// Opens a temp file next to `path` for streaming writes.
    ///
    /// # Errors
    ///
    /// Propagates the temp-file creation error.
    pub fn create(path: &Path) -> io::Result<AtomicFile> {
        let temp = temp_path_for(path);
        let file = File::create(&temp)?;
        Ok(AtomicFile { inner: Some(BufWriter::new(file)), temp, dest: path.to_path_buf() })
    }

    /// Flushes, fsyncs, and renames the temp file over the destination.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; on failure the temp file is removed and
    /// the destination is left as it was.
    pub fn commit(mut self) -> io::Result<()> {
        let writer = self.inner.take().expect("commit consumes the writer");
        let result = (|| {
            let file = writer.into_inner().map_err(io::IntoInnerError::into_error)?;
            file.sync_all()?;
            fs::rename(&self.temp, &self.dest)
        })();
        if result.is_err() {
            let _ = fs::remove_file(&self.temp);
        }
        result
    }

    /// The destination the commit will rename onto.
    #[must_use]
    pub fn dest(&self) -> &Path {
        &self.dest
    }
}

impl Write for AtomicFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.as_mut().expect("writer live until commit").write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.as_mut().expect("writer live until commit").flush()
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            let _ = fs::remove_file(&self.temp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fpart-persist-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_creates_and_replaces() {
        let dir = temp_dir("replace");
        let path = dir.join("out.json");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dropped_atomic_file_leaves_old_content_and_no_temp() {
        let dir = temp_dir("drop");
        let path = dir.join("out.json");
        write_atomic(&path, b"old").unwrap();
        {
            let mut file = AtomicFile::create(&path).unwrap();
            file.write_all(b"half-written new conte").unwrap();
            // No commit: simulates a crash before the rename.
        }
        assert_eq!(fs::read(&path).unwrap(), b"old", "destination untouched");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files cleaned up: {leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_writes_arrive_only_on_commit() {
        let dir = temp_dir("stream");
        let path = dir.join("out.jsonl");
        let mut file = AtomicFile::create(&path).unwrap();
        writeln!(file, "line 1").unwrap();
        assert!(!path.exists(), "destination must not exist before commit");
        writeln!(file, "line 2").unwrap();
        file.commit().unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "line 1\nline 2\n");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_temp_names_do_not_collide() {
        let a = temp_path_for(Path::new("/x/out.json"));
        let b = temp_path_for(Path::new("/x/out.json"));
        assert_ne!(a, b);
        assert!(a.to_string_lossy().contains(".out.json.tmp."));
    }
}
