//! Constructive initial bipartition of the remainder (paper §3.2).
//!
//! Two constructive methods are run and the better of their results (under
//! the lexicographic solution key) is kept:
//!
//! 1. **Greedy dual-seed merge** (after Brasen/Hiol/Saucier): two seeds —
//!    the biggest cell and the cell at maximal BFS distance from it — grow
//!    two clusters simultaneously, each step absorbing the frontier
//!    candidate with the best size-per-terminal ratio
//!    `Cost = S_(i+j) / T_(i+j)`, until both clusters saturate `S_MAX`.
//!    The bigger cluster becomes the peeled block `P_k`; everything else
//!    stays in the remainder.
//! 2. **Ratio-cut sweep** (after Wei/Cheng): from each seed, cells are
//!    absorbed one at a time (most-connected-first) while tracking the
//!    ratio `R = C / (S(P_i)·S(P_j))`; the prefix with the smallest ratio
//!    among those where at least one side meets the device constraints is
//!    retained.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use fpart_hypergraph::NodeId;

use crate::engine::ImproveContext;
use crate::state::PartitionState;

/// Which constructive method produced the chosen initial bipartition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InitialMethod {
    /// Greedy dual-seed merge won.
    GreedyMerge,
    /// Ratio-cut sweep (smallest-ratio prefix) won.
    RatioCut,
    /// The largest feasible sweep prefix won (fill-oriented companion of
    /// the ratio cut; decisive on large devices where the minimum ratio
    /// degenerates to tiny peels).
    MaxFill,
    /// All methods failed (degenerate remainder); the biggest cell was
    /// peeled alone.
    Fallback,
    /// Random peel (the `use_constructive_initial: false` ablation).
    Random,
}

/// Splits the cells of `remainder` between `remainder` and the (empty)
/// block `new_block`, constructively.
///
/// Returns the method whose result was kept. After the call `new_block`
/// is non-empty and, whenever the methods succeed, meets the device size
/// constraint.
///
/// # Panics
///
/// Panics if `new_block` is not empty or `remainder` has no cells.
pub fn bipartition_remainder(
    state: &mut PartitionState<'_>,
    remainder: usize,
    new_block: usize,
    ctx: &ImproveContext<'_>,
) -> InitialMethod {
    assert_eq!(state.block_size(new_block), 0, "target block must be empty");
    let cells = state.nodes_in_block(remainder);
    assert!(!cells.is_empty(), "remainder has no cells to split");

    if !ctx.config.use_constructive_initial {
        return random_peel(state, remainder, new_block, &cells, ctx);
    }

    let seed1 = biggest_cell(state, &cells);
    let seed2 = farthest_cell(state, &cells, seed1);

    let greedy = greedy_merge(state, &cells, seed1, seed2, ctx);
    let (ratio, max_fill) = ratio_cut_sweep(state, &cells, seed1, seed2, ctx);

    // Evaluate the candidate peels and keep the best one. The full
    // paper key is used even under cost ablations — see
    // [`crate::cost::CostEvaluator::with_full_cost`].
    let evaluator = ctx.evaluator.with_full_cost();
    let mut best: Option<(InitialMethod, crate::cost::SolutionKey, Vec<NodeId>)> = None;
    for (method, peel) in [
        (InitialMethod::GreedyMerge, greedy),
        (InitialMethod::RatioCut, ratio),
        (InitialMethod::MaxFill, max_fill),
    ] {
        let Some(peel) = peel else { continue };
        if peel.is_empty() || peel.len() == cells.len() {
            continue;
        }
        for &v in &peel {
            state.move_node(v, new_block);
        }
        let key = evaluator.key(state, Some(remainder));
        for &v in &peel {
            state.move_node(v, remainder);
        }
        match &best {
            Some((_, bk, _)) if !key.better_than(bk) => {}
            _ => best = Some((method, key, peel)),
        }
    }

    if let Some((method, _, peel)) = best {
        for &v in &peel {
            state.move_node(v, new_block);
        }
        method
    } else {
        // Degenerate: peel the biggest cell alone.
        state.move_node(seed1, new_block);
        InitialMethod::Fallback
    }
}

/// Random initial peel (the ablation the paper warns against): a
/// pseudo-random subset of the remainder's cells up to the device size,
/// with no attention to connectivity or pin counts.
fn random_peel(
    state: &mut PartitionState<'_>,
    remainder: usize,
    new_block: usize,
    cells: &[NodeId],
    ctx: &ImproveContext<'_>,
) -> InitialMethod {
    let mut order: Vec<NodeId> = cells.to_vec();
    let mut rng = fpart_hypergraph::rng::StdRng::seed_from_u64(
        ctx.config.seed ^ (state.block_count() as u64) << 17,
    );
    rng.shuffle(&mut order);
    let s_max = ctx.evaluator.constraints().s_max;
    let graph = state.graph();
    let mut size = 0u64;
    let mut moved_any = false;
    for v in order {
        let s = u64::from(graph.node_size(v));
        if size + s > s_max {
            continue;
        }
        size += s;
        state.move_node(v, new_block);
        moved_any = true;
        if size == s_max {
            break;
        }
    }
    if !moved_any {
        // Every single cell is over the cap: fall back to the biggest.
        let v = biggest_cell(state, cells);
        state.move_node(v, new_block);
    }
    let _ = remainder;
    InitialMethod::Random
}

/// The biggest cell (ties: higher degree, then lower id) — first seed.
fn biggest_cell(state: &PartitionState<'_>, cells: &[NodeId]) -> NodeId {
    let graph = state.graph();
    *cells
        .iter()
        .max_by(|&&a, &&b| {
            graph
                .node_size(a)
                .cmp(&graph.node_size(b))
                .then_with(|| graph.nets(a).len().cmp(&graph.nets(b).len()))
                .then_with(|| b.index().cmp(&a.index()))
        })
        .expect("cells is non-empty")
}

/// The cell at maximal BFS distance from `seed` *within the remainder's
/// cells*; falls back to any other cell when `seed` is isolated, or to
/// `seed` itself when it is the only cell.
fn farthest_cell(state: &PartitionState<'_>, cells: &[NodeId], seed: NodeId) -> NodeId {
    let graph = state.graph();
    let in_set = membership(state, cells, seed);
    let mut dist: Vec<i64> = vec![-1; graph.node_count()];
    let mut queue = std::collections::VecDeque::new();
    dist[seed.index()] = 0;
    queue.push_back(seed);
    let mut best = (seed, 0i64);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        if dv > best.1 {
            best = (v, dv);
        }
        for &net in graph.nets(v) {
            for &u in graph.pins(net) {
                if in_set[u.index()] && dist[u.index()] < 0 {
                    dist[u.index()] = dv + 1;
                    queue.push_back(u);
                }
            }
        }
    }
    if best.0 != seed {
        return best.0;
    }
    // Isolated seed: any other cell of the set.
    cells.iter().copied().find(|&c| c != seed).unwrap_or(seed)
}

/// Builds a node-indexed membership mask of `cells`; `seed` must belong.
fn membership(state: &PartitionState<'_>, cells: &[NodeId], seed: NodeId) -> Vec<bool> {
    let mut mask = vec![false; state.graph().node_count()];
    for &c in cells {
        mask[c.index()] = true;
    }
    debug_assert!(mask[seed.index()], "seed outside the cell set");
    mask
}

/// One growing cluster of the greedy merge.
struct Cluster {
    members: Vec<bool>,
    /// Members in absorption order (for feasibility checkpointing).
    order: Vec<NodeId>,
    size: u64,
    terminals: u64,
    /// Longest feasible prefix of `order` (both constraints satisfied)
    /// and its total size.
    feasible_len: usize,
    feasible_size: u64,
    /// `cov[net]` = pins of the net inside this cluster.
    cov: Vec<u32>,
    /// Frontier candidates (may contain stale/duplicate entries).
    frontier: Vec<NodeId>,
    saturated: bool,
}

impl Cluster {
    fn new(state: &PartitionState<'_>) -> Self {
        let graph = state.graph();
        Cluster {
            members: vec![false; graph.node_count()],
            order: Vec::new(),
            size: 0,
            terminals: 0,
            feasible_len: 0,
            feasible_size: 0,
            cov: vec![0; graph.net_count()],
            frontier: Vec::new(),
            saturated: false,
        }
    }

    /// Records the feasibility checkpoint after an absorption. `T` is not
    /// monotone in cluster growth, so the *longest* prefix satisfying
    /// both constraints is remembered and used as the peel — this is what
    /// lets the merge produce large blocks near (but not over) the pin
    /// budget.
    fn checkpoint(&mut self, constraints: fpart_device::DeviceConstraints) {
        if constraints.fits(self.size, self.terminals as usize) {
            self.feasible_len = self.order.len();
            self.feasible_size = self.size;
        }
    }

    /// Terminal-count change if `node` were absorbed.
    fn terminal_delta(&self, state: &PartitionState<'_>, node: NodeId) -> i64 {
        let graph = state.graph();
        let mut delta = 0i64;
        for &net in graph.nets(node) {
            let n = graph.pins(net).len() as u32;
            let c = self.cov[net.index()];
            let term = graph.net_has_terminal(net);
            let before = c >= 1 && (n - c > 0 || term);
            let after = n - c - 1 > 0 || term;
            delta += i64::from(after) - i64::from(before);
        }
        delta
    }

    fn absorb(&mut self, state: &PartitionState<'_>, node: NodeId, unassigned: &[bool]) {
        let graph = state.graph();
        debug_assert!(!self.members[node.index()]);
        self.terminals = (self.terminals as i64 + self.terminal_delta(state, node)) as u64;
        self.members[node.index()] = true;
        self.order.push(node);
        self.size += u64::from(graph.node_size(node));
        for &net in graph.nets(node) {
            self.cov[net.index()] += 1;
            for &u in graph.pins(net) {
                if unassigned[u.index()] && !self.members[u.index()] {
                    self.frontier.push(u);
                }
            }
        }
    }

    /// Picks the frontier candidate maximizing `(S + s_j) / T_(i+j)`
    /// subject to the size cap. Cleans stale frontier entries as it goes.
    fn best_candidate(
        &mut self,
        state: &PartitionState<'_>,
        unassigned: &[bool],
        s_max: u64,
    ) -> Option<NodeId> {
        let graph = state.graph();
        let mut best: Option<(NodeId, f64)> = None;
        self.frontier.retain(|&u| unassigned[u.index()]);
        self.frontier.sort_unstable();
        self.frontier.dedup();
        for &u in &self.frontier {
            let s = self.size + u64::from(graph.node_size(u));
            if s > s_max {
                continue;
            }
            let t = (self.terminals as i64 + self.terminal_delta(state, u)).max(0) as f64;
            let cost = s as f64 / t.max(1.0);
            match best {
                Some((_, bc)) if bc >= cost => {}
                _ => best = Some((u, cost)),
            }
        }
        best.map(|(u, _)| u)
    }
}

/// Greedy dual-seed merge; returns the cells to peel into the new block.
fn greedy_merge(
    state: &PartitionState<'_>,
    cells: &[NodeId],
    seed1: NodeId,
    seed2: NodeId,
    ctx: &ImproveContext<'_>,
) -> Option<Vec<NodeId>> {
    if seed1 == seed2 || cells.len() < 2 {
        return None;
    }
    let s_max = ctx.evaluator.constraints().s_max;
    let graph = state.graph();
    let mut unassigned = membership(state, cells, seed1);
    let mut a = Cluster::new(state);
    let mut b = Cluster::new(state);
    unassigned[seed1.index()] = false;
    a.absorb(state, seed1, &unassigned);
    unassigned[seed2.index()] = false;
    b.absorb(state, seed2, &unassigned);

    let mut remaining = cells.len() - 2;
    while remaining > 0 && !(a.saturated && b.saturated) {
        for cluster in [&mut a, &mut b] {
            if cluster.saturated || remaining == 0 {
                continue;
            }
            let pick = cluster.best_candidate(state, &unassigned, s_max).or_else(|| {
                // Disconnected frontier: restart growth from the biggest
                // unassigned cell that still fits.
                cells
                    .iter()
                    .copied()
                    .filter(|&u| {
                        unassigned[u.index()]
                            && cluster.size + u64::from(graph.node_size(u)) <= s_max
                    })
                    .max_by_key(|&u| (graph.node_size(u), Reverse(u.index())))
            });
            match pick {
                Some(u) => {
                    unassigned[u.index()] = false;
                    cluster.absorb(state, u, &unassigned);
                    cluster.checkpoint(ctx.evaluator.constraints());
                    remaining -= 1;
                }
                None => cluster.saturated = true,
            }
        }
    }

    // The bigger cluster — truncated to its longest feasible prefix when
    // one exists — is peeled off as P_k.
    let winner = if (a.feasible_size, a.size) >= (b.feasible_size, b.size) { a } else { b };
    let peel: Vec<NodeId> = if winner.feasible_len > 0 {
        winner.order[..winner.feasible_len].to_vec()
    } else {
        winner.order.clone()
    };
    Some(peel)
}

/// Ratio-cut sweep from both seeds; returns the min-ratio peel and the
/// max-fill peel.
fn ratio_cut_sweep(
    state: &PartitionState<'_>,
    cells: &[NodeId],
    seed1: NodeId,
    seed2: NodeId,
    ctx: &ImproveContext<'_>,
) -> (Option<Vec<NodeId>>, Option<Vec<NodeId>>) {
    if cells.len() < 2 {
        return (None, None);
    }
    let mut best: Option<(f64, Vec<NodeId>)> = None;
    let mut best_fill: Option<(u64, Vec<NodeId>)> = None;
    let mut seeds = vec![seed1];
    if seed2 != seed1 {
        seeds.push(seed2);
    }
    for seed in seeds {
        let outcome = sweep_from(state, cells, seed, ctx);
        if let Some((ratio, peel)) = outcome.min_ratio {
            match &best {
                Some((br, _)) if *br <= ratio => {}
                _ => best = Some((ratio, peel)),
            }
        }
        if let Some((size, peel)) = outcome.max_fill {
            match &best_fill {
                Some((bs, _)) if *bs >= size => {}
                _ => best_fill = Some((size, peel)),
            }
        }
    }
    (best.map(|(_, p)| p), best_fill.map(|(_, p)| p))
}

/// One sweep: grows `A` from `seed`, returning the best-ratio feasible
/// prefix (as the side that meets the constraints) and the largest
/// feasible `A` prefix.
fn sweep_from(
    state: &PartitionState<'_>,
    cells: &[NodeId],
    seed: NodeId,
    ctx: &ImproveContext<'_>,
) -> SweepOutcome {
    let graph = state.graph();
    let constraints = ctx.evaluator.constraints();
    let in_set = membership(state, cells, seed);

    let total_size: u64 = cells.iter().map(|&c| u64::from(graph.node_size(c))).sum();

    // cov_a[net] = pins in A; pins_in_set[net] = pins among `cells`.
    let mut cov_a = vec![0u32; graph.net_count()];
    let mut pins_in_set = vec![0u32; graph.net_count()];
    for e in graph.net_ids() {
        pins_in_set[e.index()] = graph.pins(e).iter().filter(|p| in_set[p.index()]).count() as u32;
    }

    let mut in_a = vec![false; graph.node_count()];
    let mut conn = vec![0u32; graph.node_count()];
    let mut heap: BinaryHeap<(u32, u32, Reverse<usize>)> = BinaryHeap::new();
    let mut order: Vec<NodeId> = Vec::with_capacity(cells.len());

    let mut s_a = 0u64;
    let mut cut = 0i64; // nets with pins both in A and in (cells − A)
    let mut t_a = 0i64;
    let mut t_rest: i64 = rest_terminals(state, cells);

    let absorb = |v: NodeId,
                  in_a: &mut Vec<bool>,
                  cov_a: &mut Vec<u32>,
                  conn: &mut Vec<u32>,
                  heap: &mut BinaryHeap<(u32, u32, Reverse<usize>)>,
                  s_a: &mut u64,
                  cut: &mut i64,
                  t_a: &mut i64,
                  t_rest: &mut i64| {
        in_a[v.index()] = true;
        *s_a += u64::from(graph.node_size(v));
        for &net in graph.nets(v) {
            let e = net.index();
            let n = graph.pins(net).len() as u32;
            let set_pins = pins_in_set[e];
            let c0 = cov_a[e];
            let c1 = c0 + 1;
            cov_a[e] = c1;
            let term = graph.net_has_terminal(net);
            let outside_global = |c: u32| n - c > 0 || term;

            // Cut between A and rest-of-set.
            let cut_before = c0 >= 1 && set_pins - c0 >= 1;
            let cut_after = set_pins - c1 >= 1; // c1 ≥ 1 always
            *cut += i64::from(cut_after) - i64::from(cut_before);

            // T_A: net touches A and has pins elsewhere (or a terminal).
            let ta_before = c0 >= 1 && outside_global(c0);
            let ta_after = outside_global(c1);
            *t_a += i64::from(ta_after) - i64::from(ta_before);

            // T_rest: net touches rest-of-set and is exposed beyond it.
            let rest0 = set_pins - c0;
            let rest1 = set_pins - c1;
            let exposed_beyond = |r: u32| n - r > 0 || term;
            let tr_before = rest0 >= 1 && exposed_beyond(rest0);
            let tr_after = rest1 >= 1 && exposed_beyond(rest1);
            *t_rest += i64::from(tr_after) - i64::from(tr_before);

            for &u in graph.pins(net) {
                if in_set[u.index()] && !in_a[u.index()] {
                    conn[u.index()] += 1;
                    heap.push((conn[u.index()], graph.node_size(u), Reverse(u.index())));
                }
            }
        }
    };

    absorb(
        seed,
        &mut in_a,
        &mut cov_a,
        &mut conn,
        &mut heap,
        &mut s_a,
        &mut cut,
        &mut t_a,
        &mut t_rest,
    );
    order.push(seed);

    let mut best: Option<(f64, usize)> = None;
    let mut best_fill: Option<(u64, usize)> = None;
    let mut assigned = 1usize;
    while assigned < cells.len() {
        // Pop the most-connected unabsorbed cell (lazy heap entries).
        let next = loop {
            match heap.pop() {
                Some((c, _, Reverse(idx))) => {
                    if !in_a[idx] && in_set[idx] && conn[idx] == c {
                        break Some(NodeId::from_index(idx));
                    }
                }
                None => break None,
            }
        };
        // Disconnected: take any unabsorbed cell.
        let next = next.or_else(|| cells.iter().copied().find(|&u| !in_a[u.index()]));
        let Some(v) = next else { break };
        absorb(
            v,
            &mut in_a,
            &mut cov_a,
            &mut conn,
            &mut heap,
            &mut s_a,
            &mut cut,
            &mut t_a,
            &mut t_rest,
        );
        order.push(v);
        assigned += 1;

        let s_rest = total_size - s_a;
        if s_rest == 0 {
            break;
        }
        let a_fits = constraints.fits(s_a, t_a.max(0) as usize);
        let rest_fits = constraints.fits(s_rest, t_rest.max(0) as usize);
        if a_fits {
            // Max-fill candidate: the largest feasible A prefix.
            match best_fill {
                Some((bs, _)) if bs >= s_a => {}
                _ => best_fill = Some((s_a, order.len())),
            }
        }
        if !(a_fits || rest_fits) {
            continue;
        }
        let ratio = cut.max(0) as f64 / (s_a as f64 * s_rest as f64);
        match best {
            Some((br, _)) if br <= ratio => {}
            _ => best = Some((ratio, order.len())),
        }
    }

    let fill_peel = best_fill.map(|(size, prefix)| (size, order[..prefix].to_vec()));

    let Some((ratio, prefix)) = best else {
        return SweepOutcome { min_ratio: None, max_fill: fill_peel };
    };
    // Re-derive which side fits at that prefix to decide the peel.
    let a_cells: Vec<NodeId> = order[..prefix].to_vec();
    let a_size: u64 = a_cells.iter().map(|&c| u64::from(graph.node_size(c))).sum();
    let (t_a_final, t_rest_final) = prefix_terminals(state, cells, &a_cells);
    let a_fits = constraints.fits(a_size, t_a_final);
    let min_ratio = if a_fits {
        Some((ratio, a_cells))
    } else {
        let mut mask = vec![false; graph.node_count()];
        for &c in &a_cells {
            mask[c.index()] = true;
        }
        let rest: Vec<NodeId> = cells.iter().copied().filter(|c| !mask[c.index()]).collect();
        let rest_size = total_size - a_size;
        if constraints.fits(rest_size, t_rest_final) {
            Some((ratio, rest))
        } else {
            None
        }
    };
    SweepOutcome { min_ratio, max_fill: fill_peel }
}

/// Candidates one directional sweep yields: the paper's smallest-ratio
/// prefix, and the largest feasible prefix (our fill-oriented companion,
/// needed on big devices where the minimum ratio degenerates to tiny
/// peels).
struct SweepOutcome {
    min_ratio: Option<(f64, Vec<NodeId>)>,
    max_fill: Option<(u64, Vec<NodeId>)>,
}

/// Terminal count of the whole cell set (the sweep's initial `T_rest`,
/// before the seed is absorbed — the seed's removal is accounted by the
/// incremental update).
fn rest_terminals(state: &PartitionState<'_>, cells: &[NodeId]) -> i64 {
    let graph = state.graph();
    let mut mask = vec![false; graph.node_count()];
    for &c in cells {
        mask[c.index()] = true;
    }
    let mut seen = vec![false; graph.net_count()];
    let mut t = 0i64;
    for &c in cells {
        for &net in graph.nets(c) {
            if seen[net.index()] {
                continue;
            }
            seen[net.index()] = true;
            let outside =
                graph.pins(net).iter().any(|p| !mask[p.index()]) || graph.net_has_terminal(net);
            if outside {
                t += 1;
            }
        }
    }
    t
}

/// Exact terminal counts of a prefix split (A vs cells − A), in global
/// context.
fn prefix_terminals(
    state: &PartitionState<'_>,
    cells: &[NodeId],
    a_cells: &[NodeId],
) -> (usize, usize) {
    let graph = state.graph();
    let mut in_a = vec![false; graph.node_count()];
    for &c in a_cells {
        in_a[c.index()] = true;
    }
    let mut in_set = vec![false; graph.node_count()];
    for &c in cells {
        in_set[c.index()] = true;
    }
    let mut t_a = 0usize;
    let mut t_rest = 0usize;
    let mut seen = vec![false; graph.net_count()];
    for &c in cells {
        for &net in graph.nets(c) {
            if seen[net.index()] {
                continue;
            }
            seen[net.index()] = true;
            let pins = graph.pins(net);
            let term = graph.net_has_terminal(net);
            let touches_a = pins.iter().any(|p| in_a[p.index()]);
            let touches_rest = pins.iter().any(|p| in_set[p.index()] && !in_a[p.index()]);
            let touches_outside = pins.iter().any(|p| !in_set[p.index()]);
            if touches_a && (touches_rest || touches_outside || term) {
                t_a += 1;
            }
            if touches_rest && (touches_a || touches_outside || term) {
                t_rest += 1;
            }
        }
    }
    (t_a, t_rest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FpartConfig;
    use crate::cost::CostEvaluator;
    use fpart_device::DeviceConstraints;
    use fpart_hypergraph::gen::{clustered_circuit, ClusteredConfig};
    use fpart_hypergraph::HypergraphBuilder;

    fn make_ctx<'c>(
        evaluator: &'c CostEvaluator,
        config: &'c FpartConfig,
        remainder: usize,
    ) -> ImproveContext<'c> {
        ImproveContext { evaluator, config, remainder, minimum_reached: false, budget: None }
    }

    #[test]
    fn bipartition_peels_a_feasible_block() {
        let (g, _) = clustered_circuit(&ClusteredConfig::new("cl", 2, 20), 3);
        let mut state = PartitionState::single_block(&g);
        let p = state.add_block();
        let config = FpartConfig::default();
        let evaluator =
            CostEvaluator::new(DeviceConstraints::new(22, 100), &config, 2, g.terminal_count());
        let ctx = make_ctx(&evaluator, &config, 0);
        let method = bipartition_remainder(&mut state, 0, p, &ctx);
        state.assert_consistent();
        assert_ne!(method, InitialMethod::Fallback);
        assert!(state.block_size(p) > 0);
        assert!(state.block_size(0) > 0);
        assert!(
            state.block_size(p) <= 22,
            "peeled block must meet the size constraint, got {}",
            state.block_size(p)
        );
    }

    #[test]
    fn bipartition_finds_planted_cut_on_clustered_circuit() {
        let cfg = ClusteredConfig::new("cl", 2, 30);
        let (g, _) = clustered_circuit(&cfg, 5);
        let mut state = PartitionState::single_block(&g);
        let p = state.add_block();
        let config = FpartConfig::default();
        let evaluator =
            CostEvaluator::new(DeviceConstraints::new(32, 100), &config, 2, g.terminal_count());
        let ctx = make_ctx(&evaluator, &config, 0);
        bipartition_remainder(&mut state, 0, p, &ctx);
        // A constructive method should land near the planted split: each
        // side holds one cluster ± a few cells.
        let diff = state.block_size(0).abs_diff(state.block_size(p));
        assert!(diff <= 10, "sizes {} vs {}", state.block_size(0), state.block_size(p));
        assert!(
            state.cut_count() <= cfg.inter_nets * 3,
            "cut {} far above planted {}",
            state.cut_count(),
            cfg.inter_nets
        );
    }

    #[test]
    fn two_cell_remainder_splits() {
        let mut b = HypergraphBuilder::new();
        let x = b.add_node("x", 3);
        let y = b.add_node("y", 2);
        b.add_net("e", [x, y]).unwrap();
        let g = b.finish().unwrap();
        let mut state = PartitionState::single_block(&g);
        let p = state.add_block();
        let config = FpartConfig::default();
        let evaluator = CostEvaluator::new(DeviceConstraints::new(3, 10), &config, 2, 0);
        let ctx = make_ctx(&evaluator, &config, 0);
        bipartition_remainder(&mut state, 0, p, &ctx);
        state.assert_consistent();
        assert!(state.block_size(p) > 0 && state.block_size(0) > 0);
    }

    #[test]
    fn single_cell_remainder_falls_back() {
        let mut b = HypergraphBuilder::new();
        let _ = b.add_node("x", 5);
        let g = b.finish().unwrap();
        let mut state = PartitionState::single_block(&g);
        let p = state.add_block();
        let config = FpartConfig::default();
        let evaluator = CostEvaluator::new(DeviceConstraints::new(3, 10), &config, 1, 0);
        let ctx = make_ctx(&evaluator, &config, 0);
        let method = bipartition_remainder(&mut state, 0, p, &ctx);
        assert_eq!(method, InitialMethod::Fallback);
        assert_eq!(state.block_size(p), 5);
        assert_eq!(state.block_size(0), 0);
    }

    #[test]
    #[should_panic(expected = "must be empty")]
    fn nonempty_target_panics() {
        let mut b = HypergraphBuilder::new();
        let x = b.add_node("x", 1);
        let y = b.add_node("y", 1);
        b.add_net("e", [x, y]).unwrap();
        let g = b.finish().unwrap();
        let mut state = PartitionState::from_assignment(&g, vec![0, 1], 2);
        let config = FpartConfig::default();
        let evaluator = CostEvaluator::new(DeviceConstraints::new(3, 10), &config, 1, 0);
        let ctx = make_ctx(&evaluator, &config, 0);
        let _ = bipartition_remainder(&mut state, 0, 1, &ctx);
    }
}
