//! Classical two-way Fiduccia–Mattheyses bipartitioning, as a standalone
//! facade over the multi-way engine.
//!
//! The FPART paper builds on plain FM \[4\]; this module exposes that
//! substrate directly for library users who just want a balanced min-cut
//! bipartition of a hypergraph — the classical formulation with a
//! symmetric balance tolerance, no devices, no remainders.

use fpart_device::DeviceConstraints;
use fpart_hypergraph::{Hypergraph, NodeId};

use crate::config::FpartConfig;
use crate::cost::CostEvaluator;
use crate::engine::{improve_metered, ImproveContext, NO_REMAINDER};
use crate::obs::{Counter, Metrics};
use crate::state::PartitionState;

/// Options of the classical bipartitioner.
#[derive(Debug, Clone, PartialEq)]
pub struct FmConfig {
    /// Allowed deviation from perfect balance: each side must hold
    /// between `(0.5 − tolerance)` and `(0.5 + tolerance)` of the total
    /// size. The classical choice is 0.05–0.10.
    pub balance_tolerance: f64,
    /// FM passes per run (a pass that fails to improve ends the run
    /// early).
    pub max_passes: usize,
    /// Gain levels for tie-breaking (1 or 2).
    pub gain_levels: u8,
    /// Independent runs from different seed splits; the best result wins.
    pub runs: usize,
    /// Worker threads for the independent runs (clamped to `runs`).
    /// Results are **bit-identical** for every thread count: each run is
    /// fully determined by its index, and the winner is reduced over the
    /// completed runs in index order, exactly as the sequential loop
    /// would. Callers with a single total worker budget (the CLI's
    /// `--threads`, [`crate::split_thread_budget`]) share it between
    /// this fan-out and the intra-run stages of the multilevel flow.
    pub threads: usize,
    /// Seed for the initial splits.
    pub seed: u64,
    /// Execution budget shared by all runs (each run enforces it with
    /// its own tracker). Unlimited by default.
    pub budget: crate::budget::RunBudget,
    /// Deterministic fault-injection schedule; `None` is a no-op branch.
    pub fault_plan: Option<crate::budget::FaultPlan>,
}

impl Default for FmConfig {
    fn default() -> Self {
        FmConfig {
            balance_tolerance: 0.1,
            max_passes: 8,
            gain_levels: 2,
            runs: 2,
            threads: 1,
            seed: 0xF11,
            budget: crate::budget::RunBudget::default(),
            fault_plan: None,
        }
    }
}

/// A two-way partition: side per node plus its quality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bipartition {
    /// `side[node]` ∈ {0, 1}.
    pub side: Vec<u32>,
    /// Nets spanning both sides.
    pub cut: usize,
    /// Total node size of side 0.
    pub size0: u64,
    /// Total node size of side 1.
    pub size1: u64,
}

impl Bipartition {
    /// Balance of the partition: `min(size0, size1) / total` (0.5 is
    /// perfect).
    #[must_use]
    pub fn balance(&self) -> f64 {
        let total = self.size0 + self.size1;
        if total == 0 {
            return 0.5;
        }
        self.size0.min(self.size1) as f64 / total as f64
    }
}

/// Bipartitions `graph` with classical FM under a symmetric balance
/// tolerance.
///
/// Runs `config.runs` independent FM runs from different BFS-based
/// initial splits and returns the best balanced result by cut size.
///
/// # Panics
///
/// Panics if `balance_tolerance` is not in `[0, 0.5)` or the graph has
/// fewer than two nodes.
///
/// # Example
///
/// ```
/// use fpart_core::fm::{bipartition_fm, FmConfig};
/// use fpart_hypergraph::gen::{clustered_circuit, ClusteredConfig};
///
/// let (graph, _) = clustered_circuit(&ClusteredConfig::new("demo", 2, 20), 1);
/// let result = bipartition_fm(&graph, &FmConfig::default());
/// assert!(result.balance() > 0.39);
/// assert!(result.cut < graph.net_count());
/// ```
#[must_use]
pub fn bipartition_fm(graph: &Hypergraph, config: &FmConfig) -> Bipartition {
    bipartition_fm_metered(graph, config, &mut Metrics::disabled())
}

/// [`bipartition_fm`] with engine metrics recorded into `metrics`.
///
/// Each independent run records into its own forked child registry
/// ([`crate::parallel::run_indexed_metered`]); the children merge back
/// in run-index order, so the aggregate — like the winning bipartition —
/// is bit-identical at every thread count. [`Counter::Runs`] counts the
/// independent runs.
///
/// # Panics
///
/// See [`bipartition_fm`].
#[must_use]
pub fn bipartition_fm_metered(
    graph: &Hypergraph,
    config: &FmConfig,
    metrics: &mut Metrics,
) -> Bipartition {
    assert!(
        (0.0..0.5).contains(&config.balance_tolerance),
        "balance tolerance must be in [0, 0.5)"
    );
    assert!(graph.node_count() >= 2, "bipartitioning needs at least two nodes");

    let total = graph.total_size();
    // Express the balance window as a device size cap: each side may
    // hold at most (0.5 + tolerance) · total — but never less than half
    // (rounded up), or no split could exist.
    let cap = ((total as f64) * (0.5 + config.balance_tolerance)).floor() as u64;
    let cap = cap.max(total.div_ceil(2));
    let constraints = DeviceConstraints::new(cap, usize::MAX / 2);

    // Engine configuration: classical FM — a *symmetric* balance window
    // enforced through the move-region machinery: upper bound exactly the
    // cap (ε_max = 1), lower bound `total − cap` (so neither side can
    // drain below the window; in particular no side can empty).
    let eps_min = if cap == 0 { 0.0 } else { (total - cap) as f64 / cap as f64 };
    let engine_config = FpartConfig {
        gain_levels: config.gain_levels,
        max_passes: config.max_passes,
        eps_max: 1.0,
        eps_min_two: eps_min,
        eps_min_multi: eps_min,
        use_solution_stacks: false,
        use_infeasibility_cost: false,
        use_external_balance: false,
        use_improvement_schedule: false,
        use_move_regions: true,
        ..FpartConfig::default()
    };
    let evaluator = CostEvaluator::new(constraints, &engine_config, 2, graph.terminal_count());

    // One fully deterministic run per index: nothing here depends on
    // execution order, so the runs parallelize without changing results.
    // Each run enforces the shared budget with its own tracker (checked
    // at the engine's pass boundaries) and is panic-isolated: a run lost
    // to a panic is dropped from the reduction below.
    let run_one = |run: usize, metrics: &mut Metrics| -> Bipartition {
        metrics.bump(Counter::Runs);
        metrics.set_span_lane(run as u32);
        metrics.span_open(crate::obs::SpanKind::Bipartition, 0);
        let budget = crate::budget::BudgetTracker::new(
            &config.budget,
            config.fault_plan.as_ref().and_then(|plan| plan.for_restart(run)),
        );
        let assignment = initial_split(graph, config.seed.wrapping_add(run as u64), cap);
        let mut state = PartitionState::from_assignment(graph, assignment, 2);
        let ctx = ImproveContext {
            evaluator: &evaluator,
            config: &engine_config,
            remainder: NO_REMAINDER,
            minimum_reached: false,
            budget: Some(&budget),
        };
        let stats = improve_metered(&mut state, &[0, 1], &ctx, metrics);
        if budget.stopped() {
            metrics.bump(Counter::BudgetStops);
        }
        metrics.add(Counter::FaultsInjected, budget.faults_injected());
        metrics.span_close(crate::obs::SpanStats {
            nodes: graph.node_count() as u64,
            nets: graph.net_count() as u64,
            moves: stats.moves as u64,
            gain: stats.initial_key.cut as i64 - stats.final_key.cut as i64,
            ..crate::obs::SpanStats::default()
        });
        Bipartition {
            side: state.assignment().to_vec(),
            cut: state.cut_count(),
            size0: state.block_size(0),
            size1: state.block_size(1),
        }
    };
    let candidates = crate::parallel::run_indexed_caught_metered(
        config.runs.max(1),
        config.threads,
        metrics,
        &run_one,
    );

    // Sequential reduction in run order — the same strict-improvement
    // fold the single-threaded loop performs, so ties keep favouring the
    // earliest run regardless of thread count. Panicked runs are skipped
    // (the fold errors only when every run was lost).
    let mut best: Option<Bipartition> = None;
    let mut first_panic: Option<crate::parallel::JobPanic> = None;
    for candidate in candidates {
        let candidate = match candidate {
            Ok(candidate) => candidate,
            Err(panic) => {
                metrics.bump(Counter::FailedRestarts);
                first_panic.get_or_insert(panic);
                continue;
            }
        };
        let in_balance = candidate.size0.max(candidate.size1) <= cap;
        let better = match &best {
            None => true,
            Some(b) => {
                let b_in_balance = b.size0.max(b.size1) <= cap;
                (in_balance, std::cmp::Reverse(candidate.cut))
                    > (b_in_balance, std::cmp::Reverse(b.cut))
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    match (best, first_panic) {
        (Some(best), _) => best,
        (None, Some(panic)) => {
            panic!("every bipartition run panicked; run {} first: {}", panic.index, panic.message)
        }
        (None, None) => unreachable!("at least one run executes"),
    }
}

/// BFS-based initial split: grow side 0 from a seed until half the total
/// size, rest is side 1.
fn initial_split(graph: &Hypergraph, seed: u64, cap: u64) -> Vec<u32> {
    let n = graph.node_count();
    let start = NodeId::from_index((seed as usize) % n);
    let half = graph.total_size() / 2;
    let mut side = vec![1u32; n];
    let mut size0 = 0u64;
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    'grow: loop {
        let Some(v) = queue.pop_front() else {
            // Disconnected: jump to the next unseen node.
            match (0..n).find(|&i| !seen[i]) {
                Some(i) => {
                    seen[i] = true;
                    queue.push_back(NodeId::from_index(i));
                    continue;
                }
                None => break 'grow,
            }
        };
        let s = u64::from(graph.node_size(v));
        if size0 + s > half.max(1) || size0 + s > cap {
            break;
        }
        side[v.index()] = 0;
        size0 += s;
        for &net in graph.nets(v) {
            for &u in graph.pins(net) {
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    // Guarantee both sides are non-empty.
    if size0 == 0 {
        side[start.index()] = 0;
    }
    if side.iter().all(|&s| s == 0) {
        side[n - 1] = 1;
    }
    side
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_hypergraph::gen::{clustered_circuit, window_circuit, ClusteredConfig, WindowConfig};
    use fpart_hypergraph::HypergraphBuilder;

    #[test]
    fn finds_planted_bipartition() {
        let cfg = ClusteredConfig::new("cl", 2, 30);
        let (g, _) = clustered_circuit(&cfg, 3);
        let result = bipartition_fm(&g, &FmConfig::default());
        assert!(result.balance() > 0.4, "balance {}", result.balance());
        assert!(
            result.cut <= cfg.inter_nets + 2,
            "cut {} vs planted {}",
            result.cut,
            cfg.inter_nets
        );
    }

    #[test]
    fn respects_balance_window() {
        let g = window_circuit(&WindowConfig::new("w", 200, 10), 5);
        let config = FmConfig { balance_tolerance: 0.05, ..FmConfig::default() };
        let result = bipartition_fm(&g, &config);
        let cap = (g.total_size() as f64 * 0.55).ceil() as u64;
        assert!(result.size0.max(result.size1) <= cap);
        assert_eq!(result.size0 + result.size1, g.total_size());
    }

    #[test]
    fn cut_matches_recount() {
        let g = window_circuit(&WindowConfig::new("w", 120, 8), 9);
        let result = bipartition_fm(&g, &FmConfig::default());
        let state = PartitionState::from_assignment(&g, result.side.clone(), 2);
        assert_eq!(state.cut_count(), result.cut);
        assert_eq!(state.block_size(0), result.size0);
        assert_eq!(state.block_size(1), result.size1);
    }

    #[test]
    fn deterministic() {
        let g = window_circuit(&WindowConfig::new("w", 150, 8), 2);
        let a = bipartition_fm(&g, &FmConfig::default());
        let b = bipartition_fm(&g, &FmConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn more_runs_never_hurt() {
        let g = window_circuit(&WindowConfig::new("w", 180, 12), 4);
        let one = bipartition_fm(&g, &FmConfig { runs: 1, ..FmConfig::default() });
        let four = bipartition_fm(&g, &FmConfig { runs: 4, ..FmConfig::default() });
        assert!(four.cut <= one.cut);
    }

    /// The parallel multi-run search must be bit-identical to the
    /// sequential one for every thread count, including thread counts
    /// exceeding the run count.
    #[test]
    fn parallel_runs_match_sequential() {
        let g = window_circuit(&WindowConfig::new("w", 220, 12), 8);
        let base = FmConfig { runs: 8, ..FmConfig::default() };
        let sequential = bipartition_fm(&g, &base);
        for threads in [2, 3, 4, 8, 16] {
            let parallel = bipartition_fm(&g, &FmConfig { threads, ..base.clone() });
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn two_node_graph() {
        let mut b = HypergraphBuilder::new();
        let x = b.add_node("x", 1);
        let y = b.add_node("y", 1);
        b.add_net("e", [x, y]).unwrap();
        let g = b.finish().unwrap();
        let result = bipartition_fm(&g, &FmConfig::default());
        assert_eq!(result.size0 + result.size1, 2);
        assert_eq!(result.cut, 1);
    }

    #[test]
    #[should_panic(expected = "balance tolerance")]
    fn bad_tolerance_panics() {
        let mut b = HypergraphBuilder::new();
        let x = b.add_node("x", 1);
        let y = b.add_node("y", 1);
        b.add_net("e", [x, y]).unwrap();
        let g = b.finish().unwrap();
        let _ = bipartition_fm(&g, &FmConfig { balance_tolerance: 0.7, ..FmConfig::default() });
    }
}
