//! N-level multilevel partitioning: coarsen to a size floor, partition
//! the coarsest hypergraph with the FPART driver, then uncoarsen level
//! by level with boundary-only FM refinement.
//!
//! Clustering is one of the classical FM quality/runtime levers the
//! paper's introduction surveys; the n-level organisation (many
//! fine-grained levels, real FM at every one of them) is what makes it
//! competitive at scale. The V-cycle here composes the substrates:
//!
//! * [`fpart_hypergraph::coarsen::coarsen_to_floor`] builds the full
//!   heavy-edge matching hierarchy until the node count reaches
//!   [`MultilevelConfig::coarsen_floor`] (or matching saturates) — not a
//!   fixed level count;
//! * the FPART driver partitions the coarsest hypergraph under the
//!   run's own execution budget;
//! * on the way back up, each level projects the solution (into reused
//!   buffers) and runs [`crate::refine::refine_boundary_metered`] — the
//!   real engine machinery (gain buckets, infeasibility-distance key,
//!   feasible-move regions) over boundary cells only.
//!
//! Budgets, metrics, and panic-isolated restarts from the flat driver
//! all work inside the V-cycle: a deadline expiring mid-uncoarsening
//! still projects down to the finest level (projection is cheap and
//! always completes), so the outcome stays a verifiable partition and
//! reports [`Completion::DeadlineExpired`].

use std::sync::Arc;
use std::time::Instant;

use fpart_device::{lower_bound, DeviceConstraints};
use fpart_hypergraph::coarsen::coarsen_to_floor_budgeted;
use fpart_hypergraph::{fingerprint_graph, order_checksum, Fingerprint, Hypergraph};

use crate::budget::{BudgetTracker, Completion};
use crate::config::FpartConfig;
use crate::cost::CostEvaluator;
use crate::driver::{
    partition_with_tracker, restart_config, search_restarts, search_restarts_observed,
    PartitionError, PartitionOutcome, RestartsReport,
};
use crate::obs::{Counter, Metrics, Observer, SpanKind, SpanStats};
use crate::refine::{refine_boundary_metered, RefineConfig};
use crate::state::PartitionState;
use crate::trace::Trace;

/// Options of the n-level multilevel mode.
#[derive(Debug, Clone, PartialEq)]
pub struct MultilevelConfig {
    /// Coarsening stops once the node count drops to this floor (or
    /// heavy-edge matching saturates). The hierarchy depth follows from
    /// the circuit, not from a preset level count.
    pub coarsen_floor: usize,
    /// Safety valve on the hierarchy depth (matching halves the node
    /// count at best, so 64 levels cover any practical circuit).
    pub max_levels: usize,
    /// Cluster size cap as a fraction of `S_MAX` (clusters larger than
    /// the device could never be placed; smaller caps keep refinement
    /// room). Clamped to at least 2 cells.
    pub cluster_cap_fraction: f64,
    /// Maximum boundary-refinement rounds per uncoarsening level.
    pub refine_rounds: usize,
    /// Block pairs refined per round (the most cut-connected ones).
    pub pairs_per_round: usize,
    /// Seed for the matching order.
    pub seed: u64,
    /// Intra-run worker threads for the parallel stages of one V-cycle
    /// (heavy-edge matching proposals, net projection, boundary pair
    /// jobs). The partition is bit-identical for every value; restart
    /// wrappers derive it from their total thread budget. Clamped to at
    /// least 1.
    pub threads: usize,
    /// Estimated-byte cap for hierarchy construction. When the next
    /// coarsening level would exceed it, coarsening stops at the current
    /// depth and the run reports [`Completion::Degraded`] instead of
    /// exhausting memory. The cap is a deterministic function of the
    /// input, so budgeted runs stay bit-identical at any thread count.
    pub memory: crate::budget::MemoryBudget,
    /// Optional shared memoization store (coarsening-hierarchy cache
    /// plus restart-solution memo, see [`crate::memo`]). `None` — the
    /// default — disables caching entirely; the cold path then performs
    /// no fingerprinting at all. The store never changes any result:
    /// cached runs are bit-identical to cold runs, so the handle is
    /// normalized out of run fingerprints and memo keys.
    pub memo: Option<Arc<crate::memo::MemoStore>>,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            coarsen_floor: 256,
            max_levels: 64,
            cluster_cap_fraction: 0.1,
            refine_rounds: 2,
            pairs_per_round: 16,
            seed: 0x5EED,
            threads: crate::parallel::default_threads(),
            memory: crate::budget::MemoryBudget::default(),
            memo: None,
        }
    }
}

impl MultilevelConfig {
    /// Panics on nonsensical parameters, mirroring
    /// [`FpartConfig::validate`]'s contract.
    ///
    /// # Panics
    ///
    /// Panics when `cluster_cap_fraction` is not positive and finite.
    pub fn validate(&self) {
        assert!(
            self.cluster_cap_fraction.is_finite() && self.cluster_cap_fraction > 0.0,
            "cluster_cap_fraction must be positive and finite"
        );
    }
}

/// The memoization identity of one input graph: its content
/// fingerprint and id-order checksum. Both are O(graph) to compute, so
/// restart drivers compute them **once per run** and thread the pair
/// through every restart's solution and hierarchy keys — the graph
/// never changes between restarts, and recomputing per restart is
/// exactly the kind of cold-path overhead the memo layer must not add.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GraphKey {
    /// [`fingerprint_graph`] of the input.
    pub(crate) fp: Fingerprint,
    /// [`order_checksum`] of the input.
    pub(crate) order: u64,
}

/// Computes a graph's [`GraphKey`] (one O(graph) pass of each hash).
pub(crate) fn graph_key(graph: &Hypergraph) -> GraphKey {
    GraphKey { fp: fingerprint_graph(graph), order: order_checksum(graph) }
}

/// The per-run [`GraphKey`] a restart driver precomputes: `Some` only
/// when a memo store is configured — without one, no fingerprinting
/// happens at all.
pub(crate) fn run_graph_key(graph: &Hypergraph, ml: &MultilevelConfig) -> Option<GraphKey> {
    ml.memo.as_ref().map(|_| graph_key(graph))
}

/// Partitions `graph` through the n-level multilevel flow: coarsen to
/// the configured floor, run FPART on the coarsest hypergraph, then
/// project the solution back one level at a time with boundary-only FM
/// refinement at every level.
///
/// # Errors
///
/// Propagates [`PartitionError`] from the coarse-level FPART run; an
/// oversized *cluster* cannot occur (the cap keeps clusters below
/// `S_MAX`), but an oversized original node still errors.
///
/// # Example
///
/// ```
/// use fpart_core::{partition_multilevel, FpartConfig, MultilevelConfig};
/// use fpart_device::Device;
/// use fpart_hypergraph::gen::{window_circuit, WindowConfig};
///
/// # fn main() -> Result<(), fpart_core::PartitionError> {
/// let circuit = window_circuit(&WindowConfig::new("demo", 300, 24), 1);
/// let outcome = partition_multilevel(
///     &circuit,
///     Device::XC3020.constraints(0.9),
///     &FpartConfig::default(),
///     &MultilevelConfig::default(),
/// )?;
/// assert!(outcome.feasible);
/// # Ok(())
/// # }
/// ```
pub fn partition_multilevel(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    ml: &MultilevelConfig,
) -> Result<PartitionOutcome, PartitionError> {
    let mut obs = Observer::none();
    partition_multilevel_observed(graph, constraints, config, ml, &mut obs)
}

/// [`partition_multilevel`] with metrics and driver events recorded into
/// the given [`Observer`] — coarsening depth, per-level boundary
/// refinement timing ([`crate::ImproveKind::Boundary`]), and everything
/// the coarse-level driver records.
///
/// The whole V-cycle runs under **one** [`BudgetTracker`] built from
/// `config.budget`: the coarse partition's passes, every level's
/// refinement passes, and the level boundaries all check the same
/// deadline/caps. When the budget stops the run mid-uncoarsening, the
/// remaining levels only project (no refinement), so the returned
/// assignment always covers the input graph and verifies.
///
/// # Errors
///
/// See [`partition_multilevel`].
pub fn partition_multilevel_observed(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    ml: &MultilevelConfig,
    obs: &mut Observer<'_>,
) -> Result<PartitionOutcome, PartitionError> {
    let gk = run_graph_key(graph, ml);
    partition_multilevel_observed_keyed(graph, constraints, config, ml, obs, gk.as_ref())
}

/// [`partition_multilevel_observed`] with the graph's memoization
/// identity precomputed by the caller — restart drivers hash the graph
/// once and reuse the key for every restart.
pub(crate) fn partition_multilevel_observed_keyed(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    ml: &MultilevelConfig,
    obs: &mut Observer<'_>,
    gk: Option<&GraphKey>,
) -> Result<PartitionOutcome, PartitionError> {
    config.validate();
    ml.validate();
    let start = Instant::now();

    if graph.node_count() == 0 {
        return Ok(PartitionOutcome {
            assignment: Vec::new(),
            blocks: Vec::new(),
            device_count: 0,
            lower_bound: 0,
            feasible: true,
            cut: 0,
            iterations: 0,
            improve_calls: 0,
            total_moves: 0,
            elapsed: start.elapsed(),
            trace: Trace::disabled(),
            metrics: obs.metrics.clone(),
            completion: Completion::Complete,
        });
    }
    for v in graph.node_ids() {
        let size = graph.node_size(v);
        if u64::from(size) > constraints.s_max {
            return Err(PartitionError::OversizedNode { node: v, size, s_max: constraints.s_max });
        }
    }

    // One budget tracker for the whole V-cycle (a direct call counts as
    // restart 0 for fault-plan targeting, like the flat driver).
    let tracker = BudgetTracker::new(
        &config.budget,
        config.fault_plan.as_ref().and_then(|plan| plan.for_restart(0)),
    );

    // Coarsen until the floor (or saturation) — the n-level hierarchy.
    // The worker count never changes the hierarchy (sharded proposals
    // commit serially), so intra-run parallelism keeps determinism.
    let cap = ((constraints.s_max as f64 * ml.cluster_cap_fraction) as u64).max(2);
    let cached = obtain_hierarchy(graph, cap, ml, obs, gk);
    let hierarchy = &cached.hierarchy;
    let memory_truncated = cached.truncated;
    obs.metrics.add(Counter::CoarsenLevels, hierarchy.level_count() as u64);

    // Partition the coarsest level under the shared tracker.
    let coarsest = hierarchy.coarsest().unwrap_or(graph);
    obs.metrics.span_open(SpanKind::Initial, 0);
    let coarse_result = partition_with_tracker(coarsest, constraints, config, obs, &tracker);
    obs.metrics.span_close(match &coarse_result {
        Ok(outcome) => SpanStats {
            nodes: coarsest.node_count() as u64,
            nets: coarsest.net_count() as u64,
            moves: outcome.total_moves as u64,
            ..SpanStats::default()
        },
        Err(_) => SpanStats::default(),
    });
    let coarse_outcome = coarse_result?;
    let coarse_stopped = tracker.stopped();
    let faults_after_coarse = tracker.faults_injected();

    let m = lower_bound(graph, constraints);
    let evaluator = CostEvaluator::new(constraints, config, m, graph.terminal_count());
    let refine = RefineConfig {
        rounds: ml.refine_rounds,
        pairs_per_round: ml.pairs_per_round,
        workers: ml.threads.max(1),
    };

    let mut iterations = coarse_outcome.iterations;
    let mut improve_calls = coarse_outcome.improve_calls;
    let mut total_moves = coarse_outcome.total_moves;
    let mut assignment = coarse_outcome.assignment;
    let mut k = coarse_outcome.device_count.max(1);

    // Uncoarsen: project one level at a time (into a reused buffer) and
    // refine the boundary. The fine side of level i is the coarse side
    // of level i−1 (level 0's fine side is the input graph). Projection
    // always completes — a budget stop only skips refinement — so the
    // final assignment covers the input graph even on a mid-V-cycle
    // deadline.
    let mut next: Vec<u32> = Vec::with_capacity(graph.node_count());
    for i in (0..hierarchy.level_count()).rev() {
        hierarchy.levels[i].project_into(&assignment, &mut next);
        std::mem::swap(&mut assignment, &mut next);
        if tracker.check() {
            continue;
        }
        let fine: &Hypergraph = if i == 0 { graph } else { &hierarchy.levels[i - 1].coarse };
        obs.metrics.span_open(SpanKind::RefineLevel, i as u32);
        let mut state = PartitionState::from_assignment(fine, std::mem::take(&mut assignment), k);
        let stats = refine_boundary_metered(
            &mut state,
            &evaluator,
            config,
            &refine,
            Some(&tracker),
            &mut obs.metrics,
        );
        improve_calls += stats.calls;
        total_moves += stats.moves;
        iterations += usize::from(stats.calls > 0);
        k = state.block_count();
        obs.metrics.span_close(SpanStats {
            nodes: fine.node_count() as u64,
            nets: fine.net_count() as u64,
            boundary: stats.boundary as u64,
            moves: stats.moves as u64,
            ..SpanStats::default()
        });
        if let Some(elapsed) = obs.heartbeat.due() {
            let snapshot = tracker.remaining();
            let passes = obs.metrics.get(Counter::Passes);
            let cut = state.cut_count();
            obs.emit(|| crate::trace::TraceEvent::Progress {
                phase: SpanKind::RefineLevel,
                level: i,
                passes,
                moves: total_moves as u64,
                cut: Some(cut),
                elapsed_ms: elapsed.as_millis() as u64,
                deadline_remaining_ms: snapshot.deadline_remaining.map(|d| d.as_millis() as u64),
                passes_remaining: snapshot.passes_remaining,
            });
        }
        assignment = state.into_assignment();
    }

    // The coarse run already accounted its own budget stop and faults;
    // record only what refinement added.
    if tracker.stopped() && !coarse_stopped {
        obs.metrics.bump(Counter::BudgetStops);
    }
    obs.metrics.add(Counter::FaultsInjected, tracker.faults_injected() - faults_after_coarse);

    let state = PartitionState::from_assignment(graph, assignment, k);
    Ok(crate::driver::assemble_outcome(
        graph,
        &state,
        constraints,
        m,
        iterations,
        improve_calls,
        total_moves,
        start.elapsed(),
        Trace::disabled(),
        obs.metrics.clone(),
        {
            let mut completion = tracker.completion().worst(coarse_outcome.completion);
            if memory_truncated {
                // A memory-capped hierarchy is a graceful degradation:
                // the run finished, just on a shallower V-cycle.
                completion = completion.worst(Completion::Degraded);
            }
            completion
        },
    ))
}

/// Builds or reuses the coarsening hierarchy of one V-cycle.
///
/// With a memo store configured, the finished hierarchy is cached under
/// the graph's content fingerprint, its id-order checksum, and every
/// parameter the coarsener derives the hierarchy from (including the
/// byte cap, which can truncate it). A hit skips coarsening entirely
/// and replays the per-level [`SpanKind::CoarsenLevel`] records from
/// the cached levels, so downstream span consumers see the same shape
/// as a cold run. Without a store this is exactly the cold path — no
/// fingerprinting happens at all.
fn obtain_hierarchy(
    graph: &Hypergraph,
    cap: u64,
    ml: &MultilevelConfig,
    obs: &mut Observer<'_>,
    gk: Option<&GraphKey>,
) -> Arc<crate::memo::CachedHierarchy> {
    let key = ml.memo.as_ref().map(|_| {
        let gk = gk.copied().unwrap_or_else(|| graph_key(graph));
        crate::memo::HierarchyKey {
            graph: gk.fp,
            order: gk.order,
            cap,
            floor: ml.coarsen_floor,
            max_levels: ml.max_levels,
            seed: ml.seed,
            max_bytes: ml.memory.max_bytes,
        }
    });
    if let (Some(store), Some(key)) = (ml.memo.as_deref(), key.as_ref()) {
        if let Some(cached) = store.lookup_hierarchy(key) {
            obs.metrics.bump(Counter::HierarchyCacheHits);
            if obs.metrics.is_enabled() {
                for (level, c) in cached.hierarchy.levels.iter().enumerate() {
                    obs.metrics.record_span(
                        SpanKind::CoarsenLevel,
                        level as u32,
                        std::time::Duration::ZERO,
                        SpanStats {
                            nodes: c.coarse.node_count() as u64,
                            nets: c.coarse.net_count() as u64,
                            ..SpanStats::default()
                        },
                    );
                }
            }
            return cached;
        }
        obs.metrics.bump(Counter::HierarchyCacheMisses);
    }
    let (hierarchy, truncated) = {
        // Per-level coarsening spans: timing happens inside the
        // coarsener (clock reads only when metrics are on) and lands
        // here as externally-timed records.
        let spans_on = obs.metrics.is_enabled();
        let metrics = &mut obs.metrics;
        let mut on_level = |level: usize,
                            c: &fpart_hypergraph::coarsen::Coarsening,
                            elapsed: std::time::Duration| {
            metrics.record_span(
                SpanKind::CoarsenLevel,
                level as u32,
                elapsed,
                SpanStats {
                    nodes: c.coarse.node_count() as u64,
                    nets: c.coarse.net_count() as u64,
                    ..SpanStats::default()
                },
            );
        };
        let on_level: Option<fpart_hypergraph::coarsen::OnLevel<'_>> =
            if spans_on { Some(&mut on_level) } else { None };
        coarsen_to_floor_budgeted(
            graph,
            cap,
            ml.coarsen_floor,
            ml.max_levels,
            ml.seed,
            ml.threads.max(1),
            ml.memory.max_bytes,
            on_level,
        )
    };
    let cached = Arc::new(crate::memo::CachedHierarchy { hierarchy, truncated });
    if let (Some(store), Some(key)) = (ml.memo.as_deref(), key) {
        let evicted = store.insert_hierarchy(key, Arc::clone(&cached));
        obs.metrics.add(Counter::HierarchyCacheEvictions, evicted as u64);
    }
    cached
}

/// Splits a total worker budget between the restart fan-out and the
/// intra-run stages of each restart: restarts claim workers first (they
/// parallelize with no cloning overhead), and any surplus becomes
/// intra-run workers shared evenly. Neither number changes any result —
/// restarts reduce in index order and the intra-run stages are
/// thread-count invariant — so the split is purely a throughput choice.
#[must_use]
pub fn split_thread_budget(threads: usize, restarts: usize) -> (usize, usize) {
    let threads = threads.max(1);
    let outer = threads.min(restarts.max(1));
    let inner = (threads / outer).max(1);
    (outer, inner)
}

/// Runs [`partition_multilevel`] `restarts` times with consecutive seed
/// offsets (both the driver seed and the matching seed diversify),
/// optionally across scoped worker threads, and returns the best
/// outcome under the same reduction as [`crate::partition_restarts`] —
/// reduced in restart order, so the result is **bit-identical for every
/// thread count**. Restarts are panic-isolated exactly like the flat
/// search.
///
/// `threads` is the *total* worker budget: it is split by
/// [`split_thread_budget`] between concurrent restarts and each
/// restart's intra-run stages (parallel matching proposals, net
/// projection, boundary pair jobs), overriding `ml.threads`.
///
/// # Errors
///
/// Returns [`PartitionError::InvalidConfig`] when `restarts` or
/// `threads` is zero, the first restart's typed error when every restart
/// fails, and [`PartitionError::RestartPanicked`] when every restart
/// panicked.
pub fn partition_multilevel_restarts(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    ml: &MultilevelConfig,
    restarts: usize,
    threads: usize,
) -> Result<PartitionOutcome, PartitionError> {
    let (outer, inner) = split_thread_budget(threads, restarts);
    let gk = run_graph_key(graph, ml);
    search_restarts(restarts, if threads == 0 { 0 } else { outer }, &|i| {
        let cfg = restart_config(config, i);
        let mlc =
            MultilevelConfig { seed: ml.seed.wrapping_add(i as u64), threads: inner, ..ml.clone() };
        let memo_key = restart_memo_key(gk.as_ref(), graph, constraints, &cfg, &mlc);
        if let (Some(store), Some(key)) = (mlc.memo.as_deref(), memo_key) {
            if let Some(sol) = store.lookup_solution(key) {
                if let Some((result, _metrics)) = replay_memo_solution(graph, constraints, &sol, i)
                {
                    return result;
                }
            }
        }
        let mut obs = Observer::none();
        let result = partition_multilevel_observed_keyed(
            graph,
            constraints,
            &cfg,
            &mlc,
            &mut obs,
            gk.as_ref(),
        );
        record_memo_solution(&mlc, memo_key, &result);
        result
    })
}

/// The solution-memo key for one restart's effective configs, or `None`
/// when no store is configured, the graph is empty, or the run is not
/// [`crate::memo::memoizable`].
fn restart_memo_key(
    gk: Option<&GraphKey>,
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    cfg: &FpartConfig,
    mlc: &MultilevelConfig,
) -> Option<Fingerprint> {
    mlc.memo.as_ref().filter(|_| graph.node_count() > 0 && crate::memo::memoizable(cfg)).map(|_| {
        let gk = gk.copied().unwrap_or_else(|| graph_key(graph));
        crate::memo::restart_solution_key(gk.fp, gk.order, constraints, cfg, mlc)
    })
}

/// Stores a finished restart in the solution memo — only `Complete`
/// outcomes qualify (a degraded or expired run is not a pure function
/// of the key).
fn record_memo_solution(
    mlc: &MultilevelConfig,
    memo_key: Option<Fingerprint>,
    result: &Result<PartitionOutcome, PartitionError>,
) {
    if let (Some(store), Some(key)) = (mlc.memo.as_deref(), memo_key) {
        if let Ok(outcome) = result {
            if outcome.completion == Completion::Complete {
                // Solution evictions stay in the store-level
                // `CacheStats`; only hierarchy evictions get a counter.
                let _ = store.insert_solution(
                    key,
                    crate::memo::MemoSolution {
                        assignment: outcome.assignment.clone(),
                        device_count: outcome.device_count,
                        cut: outcome.cut,
                        feasible: outcome.feasible,
                        iterations: outcome.iterations,
                        improve_calls: outcome.improve_calls,
                        total_moves: outcome.total_moves,
                    },
                );
            }
        }
    }
}

/// [`partition_multilevel_restarts`] with per-restart metrics recording
/// and a deterministic aggregate, mirroring
/// [`crate::partition_restarts_observed`].
///
/// # Errors
///
/// Same contract as [`partition_multilevel_restarts`].
pub fn partition_multilevel_restarts_observed(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    ml: &MultilevelConfig,
    restarts: usize,
    threads: usize,
) -> Result<RestartsReport, PartitionError> {
    let (outer, inner) = split_thread_budget(threads, restarts);
    let gk = run_graph_key(graph, ml);
    search_restarts_observed(restarts, if threads == 0 { 0 } else { outer }, &|i| {
        observed_multilevel_restart_job(graph, constraints, config, ml, inner, i, gk.as_ref())
    })
}

/// Runs restart `i` of the multilevel observed search exactly as
/// [`partition_multilevel_restarts_observed`] would: diversified driver
/// and matching seeds, `inner` intra-run threads, enabled metrics
/// registry, restart span. Shared with the checkpointing search so a
/// resumed run replays the identical per-restart computation.
pub(crate) fn observed_multilevel_restart_job(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    ml: &MultilevelConfig,
    inner: usize,
    i: usize,
    gk: Option<&GraphKey>,
) -> (Result<PartitionOutcome, PartitionError>, Metrics) {
    let cfg = restart_config(config, i);
    let mlc =
        MultilevelConfig { seed: ml.seed.wrapping_add(i as u64), threads: inner, ..ml.clone() };
    // Solution memo: only restarts with no external budget of any kind
    // qualify (their result is a pure function of the key), and a hit
    // is verified against the live graph before it is trusted.
    let memo_key = restart_memo_key(gk, graph, constraints, &cfg, &mlc);
    if let (Some(store), Some(key)) = (mlc.memo.as_deref(), memo_key) {
        if let Some(sol) = store.lookup_solution(key) {
            if let Some(hit) = replay_memo_solution(graph, constraints, &sol, i) {
                return hit;
            }
        }
    }
    let mut obs = Observer::new(Metrics::enabled(), None);
    obs.metrics.set_span_lane(i as u32);
    obs.metrics.span_open(SpanKind::Restart, 0);
    let result = partition_multilevel_observed_keyed(graph, constraints, &cfg, &mlc, &mut obs, gk);
    let mut metrics = obs.metrics;
    metrics.bump(Counter::Runs);
    let span_stats = match &result {
        Ok(outcome) => SpanStats {
            nodes: graph.node_count() as u64,
            nets: graph.net_count() as u64,
            moves: outcome.total_moves as u64,
            ..SpanStats::default()
        },
        Err(_) => SpanStats::default(),
    };
    metrics.span_close(span_stats);
    record_memo_solution(&mlc, memo_key, &result);
    (result, metrics)
}

/// Rebuilds a restart's outcome from a memoized solution, after
/// verifying the stored assignment against the live graph (coverage,
/// block-id range, and a full reassembly cross-check of cut,
/// feasibility, and block structure). Returns `None` — fall back to the
/// cold search — on any disagreement, so even a fingerprint collision
/// can never degrade quality.
fn replay_memo_solution(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    sol: &crate::memo::MemoSolution,
    i: usize,
) -> Option<(Result<PartitionOutcome, PartitionError>, Metrics)> {
    let start = Instant::now();
    if sol.assignment.len() != graph.node_count()
        || sol.device_count == 0
        || sol.assignment.iter().any(|&b| b as usize >= sol.device_count)
    {
        return None;
    }
    let mut metrics = Metrics::enabled();
    metrics.set_span_lane(i as u32);
    metrics.span_open(SpanKind::Restart, 0);
    metrics.bump(Counter::MemoWarmStarts);
    let m = lower_bound(graph, constraints);
    let state = PartitionState::from_assignment(graph, sol.assignment.clone(), sol.device_count);
    let outcome = crate::driver::assemble_outcome(
        graph,
        &state,
        constraints,
        m,
        sol.iterations,
        sol.improve_calls,
        sol.total_moves,
        start.elapsed(),
        Trace::disabled(),
        metrics.clone(),
        Completion::Complete,
    );
    // The reassembled outcome must agree with everything the cold
    // restart recorded; a collision shows up as a mismatch here.
    if outcome.assignment != sol.assignment
        || outcome.device_count != sol.device_count
        || outcome.cut != sol.cut
        || outcome.feasible != sol.feasible
    {
        return None;
    }
    metrics.bump(Counter::Runs);
    metrics.span_close(SpanStats {
        nodes: graph.node_count() as u64,
        nets: graph.net_count() as u64,
        moves: sol.total_moves as u64,
        ..SpanStats::default()
    });
    Some((Ok(outcome), metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::RunBudget;
    use crate::driver::partition;
    use crate::verify::verify_assignment;
    use fpart_device::Device;
    use fpart_hypergraph::gen::{find_profile, synthesize_mcnc, Technology};
    use fpart_hypergraph::gen::{window_circuit, WindowConfig};
    use std::time::Duration;

    #[test]
    fn multilevel_produces_valid_feasible_partition() {
        let g = window_circuit(&WindowConfig::new("w", 400, 30), 3);
        let constraints = Device::XC3020.constraints(0.9);
        let out = partition_multilevel(
            &g,
            constraints,
            &FpartConfig::default(),
            &MultilevelConfig::default(),
        )
        .expect("runs");
        assert_eq!(out.assignment.len(), g.node_count());
        let total: u64 = out.blocks.iter().map(|b| b.size).sum();
        assert_eq!(total, g.total_size());
        assert!(out.feasible, "blocks: {:?}", out.blocks);
        assert!(out.device_count >= out.lower_bound);
        assert!(verify_assignment(&g, &out.assignment, out.device_count, constraints).is_feasible());
    }

    #[test]
    fn multilevel_quality_is_comparable_to_flat_on_mcnc() {
        let p = find_profile("s9234").expect("known circuit");
        let g = synthesize_mcnc(p, Technology::Xc3000);
        let constraints = Device::XC3020.constraints(0.9);
        let flat = partition(&g, constraints, &FpartConfig::default()).expect("flat");
        let ml = partition_multilevel(
            &g,
            constraints,
            &FpartConfig::default(),
            &MultilevelConfig::default(),
        )
        .expect("multilevel");
        assert!(ml.feasible);
        // Clustering may trade a little quality for speed; hold it to a
        // generous band so regressions stand out.
        assert!(
            ml.device_count <= flat.device_count + flat.device_count / 2 + 1,
            "multilevel {} vs flat {}",
            ml.device_count,
            flat.device_count
        );
    }

    #[test]
    fn floor_above_node_count_degenerates_to_flat() {
        let g = window_circuit(&WindowConfig::new("w", 150, 16), 7);
        let constraints = Device::XC3020.constraints(0.9);
        let ml_config =
            MultilevelConfig { coarsen_floor: g.node_count(), ..MultilevelConfig::default() };
        let out = partition_multilevel(&g, constraints, &FpartConfig::default(), &ml_config)
            .expect("runs");
        let flat = partition(&g, constraints, &FpartConfig::default()).expect("flat");
        assert_eq!(out.device_count, flat.device_count);
        assert_eq!(out.assignment, flat.assignment);
        assert_eq!(out.cut, flat.cut);
    }

    #[test]
    fn multilevel_builds_a_deep_hierarchy_on_large_circuits() {
        let g = window_circuit(&WindowConfig::new("w", 2000, 40), 5);
        let constraints = Device::XC3020.constraints(0.9);
        let mut obs = Observer::new(Metrics::enabled(), None);
        let out = partition_multilevel_observed(
            &g,
            constraints,
            &FpartConfig::default(),
            &MultilevelConfig { coarsen_floor: 128, ..MultilevelConfig::default() },
            &mut obs,
        )
        .expect("runs");
        assert!(out.feasible);
        let levels = out.metrics.get(Counter::CoarsenLevels);
        assert!(levels >= 3, "2000 nodes → floor 128 needs several levels, got {levels}");
        assert!(out.metrics.get(Counter::BoundaryRefinements) > 0);
        assert!(
            out.metrics.improve_time(crate::ImproveKind::Boundary).count
                == out.metrics.get(Counter::BoundaryRefinements)
        );
    }

    #[test]
    fn oversized_node_still_errors() {
        let mut b = fpart_hypergraph::HypergraphBuilder::new();
        let x = b.add_node("x", 100);
        let y = b.add_node("y", 1);
        b.add_net("e", [x, y]).unwrap();
        let g = b.finish().unwrap();
        let err = partition_multilevel(
            &g,
            DeviceConstraints::new(50, 10),
            &FpartConfig::default(),
            &MultilevelConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, PartitionError::OversizedNode { .. }));
    }

    #[test]
    fn empty_graph_is_trivially_feasible() {
        let g = fpart_hypergraph::HypergraphBuilder::new().finish().unwrap();
        let out = partition_multilevel(
            &g,
            DeviceConstraints::new(10, 10),
            &FpartConfig::default(),
            &MultilevelConfig::default(),
        )
        .unwrap();
        assert_eq!(out.device_count, 0);
        assert!(out.feasible);
        assert_eq!(out.completion, Completion::Complete);
    }

    #[test]
    fn expired_deadline_still_returns_verifiable_output() {
        let g = window_circuit(&WindowConfig::new("w", 1200, 40), 9);
        let constraints = Device::XC3020.constraints(0.9);
        let config = FpartConfig {
            budget: RunBudget { deadline: Some(Duration::ZERO), ..RunBudget::default() },
            ..FpartConfig::default()
        };
        let out = partition_multilevel(&g, constraints, &config, &MultilevelConfig::default())
            .expect("degrades, does not error");
        assert_eq!(out.completion, Completion::DeadlineExpired);
        // The assignment still covers the whole input graph and is
        // structurally valid (only capacity violations are tolerable
        // on an expired budget), even though refinement never ran.
        assert_eq!(out.assignment.len(), g.node_count());
        let v = verify_assignment(&g, &out.assignment, out.device_count, constraints);
        assert!(
            v.violations.iter().all(|x| matches!(
                x,
                crate::verify::Violation::OverSize { .. }
                    | crate::verify::Violation::OverTerminals { .. }
            )),
            "violations: {:?}",
            v.violations
        );
    }

    #[test]
    fn memory_budget_truncates_hierarchy_and_degrades() {
        let g = window_circuit(&WindowConfig::new("w", 2000, 40), 5);
        let constraints = Device::XC3020.constraints(0.9);
        // A cap barely above the input graph leaves no room for any
        // coarsening level at all.
        let tight = MultilevelConfig {
            coarsen_floor: 128,
            memory: crate::budget::MemoryBudget::capped(g.approx_bytes() + 1024),
            ..MultilevelConfig::default()
        };
        let mut obs = Observer::new(Metrics::enabled(), None);
        let out = partition_multilevel_observed(
            &g,
            constraints,
            &FpartConfig::default(),
            &tight,
            &mut obs,
        )
        .expect("degrades, does not error");
        assert_eq!(out.completion, Completion::Degraded);
        assert_eq!(out.metrics.get(Counter::CoarsenLevels), 0, "no level fit under the cap");
        assert_eq!(out.assignment.len(), g.node_count());
        assert!(verify_assignment(&g, &out.assignment, out.device_count, constraints).is_feasible());

        // An unlimited budget is bit-identical to the plain entry point.
        let unlimited = MultilevelConfig { coarsen_floor: 128, ..MultilevelConfig::default() };
        let a = partition_multilevel(&g, constraints, &FpartConfig::default(), &unlimited).unwrap();
        let b = partition_multilevel(
            &g,
            constraints,
            &FpartConfig::default(),
            &MultilevelConfig {
                memory: crate::budget::MemoryBudget::capped(u64::MAX),
                ..unlimited
            },
        )
        .unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.cut, b.cut);
    }

    #[test]
    fn multilevel_restarts_are_thread_count_invariant() {
        let g = window_circuit(&WindowConfig::new("w", 500, 24), 5);
        let constraints = Device::XC3020.constraints(0.9);
        let config = FpartConfig::default();
        let ml = MultilevelConfig { coarsen_floor: 64, ..MultilevelConfig::default() };
        let sequential =
            partition_multilevel_restarts(&g, constraints, &config, &ml, 3, 1).unwrap();
        for threads in [2, 4] {
            let parallel =
                partition_multilevel_restarts(&g, constraints, &config, &ml, 3, threads).unwrap();
            assert_eq!(sequential.assignment, parallel.assignment, "threads={threads}");
            assert_eq!(sequential.device_count, parallel.device_count);
            assert_eq!(sequential.cut, parallel.cut);
        }
    }

    #[test]
    fn multilevel_restarts_validate_search_parameters() {
        let g = window_circuit(&WindowConfig::new("w", 60, 8), 1);
        let constraints = Device::XC3020.constraints(0.9);
        let err = partition_multilevel_restarts(
            &g,
            constraints,
            &FpartConfig::default(),
            &MultilevelConfig::default(),
            0,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, PartitionError::InvalidConfig { .. }));
    }

    #[test]
    fn observed_restarts_totals_are_per_restart_sums() {
        let g = window_circuit(&WindowConfig::new("w", 300, 16), 3);
        let constraints = Device::XC3020.constraints(0.9);
        let report = partition_multilevel_restarts_observed(
            &g,
            constraints,
            &FpartConfig::default(),
            &MultilevelConfig { coarsen_floor: 64, ..MultilevelConfig::default() },
            3,
            2,
        )
        .unwrap();
        assert_eq!(report.per_restart.len(), 3);
        for c in Counter::ALL {
            let sum: u64 = report.per_restart.iter().map(|m| m.get(c)).sum();
            assert_eq!(report.totals.get(c), sum, "counter {}", c.name());
        }
        assert!(report.totals.get(Counter::CoarsenLevels) >= 3);
    }
}
